// Tests for src/common: Status/Result, string utilities, Rng, Timer.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace ustl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StringUtilTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim("a  b c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("  ", ' '), std::vector<std::string>{});
  EXPECT_EQ(SplitAndTrim("", ' '), std::vector<std::string>{});
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("Mary Lee"), "mary lee");
  EXPECT_EQ(ToUpper("9th St"), "9TH ST");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("Street", "St"));
  EXPECT_FALSE(StartsWith("St", "Street"));
  EXPECT_TRUE(EndsWith("Avenue", "nue"));
  EXPECT_FALSE(EndsWith("Ave", "Avenue"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // leftmost, non-overlap
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringUtilTest, NormalizeWhitespace) {
  EXPECT_EQ(NormalizeWhitespace("  a \t b  "), "a b");
  EXPECT_EQ(NormalizeWhitespace(""), "");
  EXPECT_EQ(NormalizeWhitespace("x"), "x");
}

TEST(StringUtilTest, EscapeForDisplay) {
  EXPECT_EQ(EscapeForDisplay("a\tb"), "a\\x09b");
  EXPECT_EQ(EscapeForDisplay("plain"), "plain");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SkewedSizeWithinBounds) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.SkewedSize(5.0, 40);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 40);
    sum += static_cast<double>(v);
  }
  double mean = sum / 2000;
  EXPECT_GT(mean, 2.5);
  EXPECT_LT(mean, 8.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.Weighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(TimerTest, MonotoneNonNegative) {
  Timer t;
  int64_t first = t.ElapsedMicros();
  EXPECT_GE(first, 0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.ElapsedMicros(), first);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace ustl

// Tests for src/text: character classes, terms and matching (Appendix B),
// structure signatures (Section 7.2), and alignment (Appendix A).
#include <gtest/gtest.h>

#include "text/alignment.h"
#include "text/char_class.h"
#include "text/structure.h"
#include "text/terms.h"

namespace ustl {
namespace {

TEST(CharClassTest, Classification) {
  EXPECT_EQ(ClassOf('7'), CharClass::kDigit);
  EXPECT_EQ(ClassOf('a'), CharClass::kLower);
  EXPECT_EQ(ClassOf('Z'), CharClass::kUpper);
  EXPECT_EQ(ClassOf(' '), CharClass::kSpace);
  EXPECT_EQ(ClassOf('\t'), CharClass::kSpace);
  EXPECT_EQ(ClassOf(','), CharClass::kOther);
  EXPECT_EQ(ClassOf('.'), CharClass::kOther);
}

TEST(CharClassTest, TermNames) {
  EXPECT_STREQ(CharClassTermName(CharClass::kDigit), "Td");
  EXPECT_STREQ(CharClassTermName(CharClass::kLower), "Tl");
  EXPECT_STREQ(CharClassTermName(CharClass::kUpper), "TC");
  EXPECT_STREQ(CharClassTermName(CharClass::kSpace), "Tb");
}

TEST(TermTest, RegexMatchesMaximalRuns) {
  // s = "Lee, Mary": TC matches "L"[1,2) and "M"[6,7) (1-based as in the
  // paper's Figure 4).
  Term tc = Term::Regex(CharClass::kUpper);
  auto matches = FindMatches(tc, "Lee, Mary");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (TermMatch{1, 2}));
  EXPECT_EQ(matches[1], (TermMatch{6, 7}));
}

TEST(TermTest, LowercaseRuns) {
  Term tl = Term::Regex(CharClass::kLower);
  auto matches = FindMatches(tl, "Lee, Mary");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (TermMatch{2, 4}));   // "ee"
  EXPECT_EQ(matches[1], (TermMatch{7, 10}));  // "ary"
}

TEST(TermTest, DigitAndWhitespaceRuns) {
  auto digits = FindMatches(Term::Regex(CharClass::kDigit), "9 St, 02141 WI");
  ASSERT_EQ(digits.size(), 2u);
  EXPECT_EQ(digits[0], (TermMatch{1, 2}));
  EXPECT_EQ(digits[1], (TermMatch{7, 12}));
  auto spaces = FindMatches(Term::Regex(CharClass::kSpace), "a  b c");
  ASSERT_EQ(spaces.size(), 2u);
  EXPECT_EQ(spaces[0], (TermMatch{2, 4}));  // run of two spaces is one match
}

TEST(TermTest, NoMatches) {
  EXPECT_TRUE(FindMatches(Term::Regex(CharClass::kDigit), "abc").empty());
  EXPECT_TRUE(FindMatches(Term::Regex(CharClass::kUpper), "").empty());
}

TEST(TermTest, ConstantMatchesNonOverlapping) {
  Term t = Term::Constant("aa");
  auto matches = FindMatches(t, "aaaa");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (TermMatch{1, 3}));
  EXPECT_EQ(matches[1], (TermMatch{3, 5}));
}

TEST(TermTest, ConstantStringTermSemantics) {
  // Appendix B: a constant string term matches and only matches its
  // literal.
  Term t = Term::Constant("Mr.");
  auto matches = FindMatches(t, "Mr. Lee and Mr. Smith");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].begin, 1);
  EXPECT_EQ(matches[1].begin, 13);
}

TEST(TermTest, Ordering) {
  Term a = Term::Regex(CharClass::kDigit);
  Term b = Term::Regex(CharClass::kLower);
  Term c = Term::Constant("x");
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);  // regex terms order before constants
  EXPECT_FALSE(a < a);
  EXPECT_EQ(a, Term::Regex(CharClass::kDigit));
}

TEST(TermTest, ToStringForms) {
  EXPECT_EQ(Term::Regex(CharClass::kDigit).ToString(), "Td");
  EXPECT_EQ(Term::Constant("St").ToString(), "T\"St\"");
}

TEST(ClassTokensTest, SplitsByClassAndPunctSingles) {
  // Section 7.2: kOther characters are single-character terms, so "--"
  // yields two tokens.
  auto tokens = ClassTokens("9th--A");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "9");
  EXPECT_EQ(tokens[1].text, "th");
  EXPECT_EQ(tokens[2].text, "-");
  EXPECT_EQ(tokens[3].text, "-");
  EXPECT_EQ(tokens[4].text, "A");
  EXPECT_EQ(tokens[0].begin, 1);
  EXPECT_EQ(tokens[4].end, 7);
}

TEST(WhitespaceTokensTest, Basic) {
  EXPECT_EQ(WhitespaceTokens("  a b  c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(WhitespaceTokens("   ").empty());
}

// --- Structure signatures (Section 7.2). ---

TEST(StructureTest, PaperExamples) {
  // Struc("9") = Td and Struc("9th") = Td Tl.
  EXPECT_EQ(StructureOf("9"), "d");
  EXPECT_EQ(StructureOf("9th"), "dl");
}

TEST(StructureTest, MixedClassesAndLiterals) {
  EXPECT_EQ(StructureOf("Lee, Mary"), "ul,sul");
  EXPECT_EQ(StructureOf("M. Lee"), "u.sul");
  EXPECT_EQ(StructureOf("02141-WI"), "d-u");
  EXPECT_EQ(StructureOf(""), "");
}

TEST(StructureTest, ReplacementStructureKey) {
  // 9 -> 9th and 3 -> 3rd share the structure Td -> Td Tl.
  EXPECT_EQ(ReplacementStructure("9", "9th"), "d=>dl");
  EXPECT_EQ(ReplacementStructure("3", "3rd"), "d=>dl");
  EXPECT_TRUE(StructurallyEquivalent("9", "9th", "3", "3rd"));
  EXPECT_FALSE(StructurallyEquivalent("9", "9th", "3", "3RD"));
}

TEST(StructureTest, RunsCollapse) {
  EXPECT_EQ(StructureOf("aaa"), StructureOf("a"));
  EXPECT_EQ(StructureOf("  "), "s");
  // Punctuation does not collapse.
  EXPECT_EQ(StructureOf(".."), "..");
}

// --- Alignment (Appendix A). ---

TEST(AlignmentTest, PaperExampleA1) {
  // r1 = "9 St, 02141 Wisconsin", r2 = "9th St, 02141 WI"; the LCS is
  // "St, 02141", producing aligned pairs (9, 9th) and (Wisconsin, WI).
  auto segments = TokenLcsAlign("9 St, 02141 Wisconsin", "9th St, 02141 WI");
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].lhs, "9");
  EXPECT_EQ(segments[0].rhs, "9th");
  EXPECT_EQ(segments[1].lhs, "Wisconsin");
  EXPECT_EQ(segments[1].rhs, "WI");
  // 1-based character offsets into the original values.
  EXPECT_EQ(segments[0].lhs_begin, 1);
  EXPECT_EQ(segments[1].lhs_begin, 13);
  EXPECT_EQ(segments[1].rhs_begin, 15);
}

TEST(AlignmentTest, MultiTokenSegments) {
  // No common token: one whole-value segment pair.
  auto segments = TokenLcsAlign("9 Street", "9th St");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].lhs, "9 Street");
  EXPECT_EQ(segments[0].rhs, "9th St");
}

TEST(AlignmentTest, PureInsertionSkipped) {
  // "E" is inserted; one side of that gap is empty, so no pair is emitted.
  auto segments = TokenLcsAlign("3 Ave", "3 E Ave");
  EXPECT_TRUE(segments.empty());
}

TEST(AlignmentTest, IdenticalValuesNoSegments) {
  EXPECT_TRUE(TokenLcsAlign("a b c", "a b c").empty());
}

TEST(AlignmentTest, LcsLength) {
  // Common tokens are "St," and "02141" ("9" vs "9th" and "Wisconsin" vs
  // "WI" differ).
  EXPECT_EQ(TokenLcsLength("9 St, 02141 Wisconsin", "9th St, 02141 WI"), 2);
  EXPECT_EQ(TokenLcsLength("a b", "c d"), 0);
  EXPECT_EQ(TokenLcsLength("a b c", "a b c"), 3);
}

TEST(DamerauLevenshteinTest, Distances) {
  EXPECT_EQ(DamerauLevenshteinDistance("", ""), 0);
  EXPECT_EQ(DamerauLevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(DamerauLevenshteinDistance("abc", "abd"), 1);
  EXPECT_EQ(DamerauLevenshteinDistance("abc", "acb"), 1);  // transposition
  EXPECT_EQ(DamerauLevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(DamerauLevenshteinDistance("kitten", "sitting"), 3);
}

TEST(DamerauLevenshteinTest, AlignExtractsEditedRuns) {
  auto segments = DamerauLevenshteinAlign("Wisconsin Ave", "Wisconsin Avenue");
  // The edit is a pure insertion ("nue" appended); no two-sided segment.
  // A substitution run does produce one:
  segments = DamerauLevenshteinAlign("9 St", "8 St");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].lhs, "9");
  EXPECT_EQ(segments[0].rhs, "8");
}

TEST(DamerauLevenshteinTest, AlignOffsets) {
  auto segments = DamerauLevenshteinAlign("ab XY cd", "ab ZW cd");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].lhs, "XY");
  EXPECT_EQ(segments[0].rhs, "ZW");
  EXPECT_EQ(segments[0].lhs_begin, 4);
  EXPECT_EQ(segments[0].rhs_begin, 4);
}

}  // namespace
}  // namespace ustl

// Tests for consolidate/replay: applying persisted transformations to new
// data, log serialization round trips, and the end-to-end "approve once,
// replay on the next batch" flow through the real pipeline.
#include <gtest/gtest.h>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "consolidate/replay.h"
#include "datagen/generators.h"
#include "dsl/parser.h"
#include "eval/metrics.h"
#include "pipeline/oracle_broker.h"

namespace ustl {
namespace {

// "Keep the digits" — consistent with 9th -> 9, 22nd -> 22, ...
Program KeepDigits() {
  Term td = Term::Regex(CharClass::kDigit);
  return Program({StringFn::SubStr(PosFn::MatchPos(td, 1, Dir::kBegin),
                                   PosFn::MatchPos(td, 1, Dir::kEnd))});
}

TEST(ApplyTransformationTest, RewritesConsistentPairs) {
  Column column = {{"9th", "9", "9th"}, {"22nd", "22"}, {"5th", "7"}};
  ApprovedTransformation transformation;
  transformation.program = KeepDigits();
  transformation.direction = ReplaceDirection::kLhsToRhs;
  size_t edits = ApplyTransformation(&column, transformation);
  EXPECT_EQ(edits, 3u);  // two 9th cells + one 22nd cell
  EXPECT_EQ(column[0], (std::vector<std::string>{"9", "9", "9"}));
  EXPECT_EQ(column[1], (std::vector<std::string>{"22", "22"}));
  // 5th -> 7 is NOT consistent (digits differ): untouched.
  EXPECT_EQ(column[2], (std::vector<std::string>{"5th", "7"}));
}

TEST(ApplyTransformationTest, ReverseDirectionRewritesTheOtherSide) {
  Column column = {{"9th", "9"}};
  ApprovedTransformation transformation;
  transformation.program = KeepDigits();
  transformation.direction = ReplaceDirection::kRhsToLhs;
  EXPECT_EQ(ApplyTransformation(&column, transformation), 1u);
  EXPECT_EQ(column[0], (std::vector<std::string>{"9th", "9th"}));
}

TEST(ApplyTransformationTest, NoCrossClusterRewrites) {
  // "9" exists in cluster 1 but no "9th" does: nothing to do there.
  Column column = {{"9th", "9"}, {"9", "10"}};
  ApprovedTransformation transformation;
  transformation.program = KeepDigits();
  EXPECT_EQ(ApplyTransformation(&column, transformation), 1u);
  EXPECT_EQ(column[1], (std::vector<std::string>{"9", "10"}));
}

TEST(ReplayTransformationsTest, RespectsColumnAttribution) {
  Table table({"ordinal", "name"});
  size_t c = table.AddCluster();
  table.AddRecord(c, {"9th", "9th"});
  table.AddRecord(c, {"9", "9"});
  ApprovedTransformation transformation;
  transformation.column = "ordinal";
  transformation.program = KeepDigits();
  EXPECT_EQ(ReplayTransformations(&table, {transformation}), 1u);
  EXPECT_EQ(table.cluster(c)[0][0], "9");   // ordinal column rewritten
  EXPECT_EQ(table.cluster(c)[0][1], "9th");  // name column untouched
}

TEST(ReplayTransformationsTest, UnnamedTransformationAppliesEverywhere) {
  Table table({"a", "b"});
  size_t c = table.AddCluster();
  table.AddRecord(c, {"9th", "22nd"});
  table.AddRecord(c, {"9", "22"});
  ApprovedTransformation transformation;
  transformation.program = KeepDigits();
  EXPECT_EQ(ReplayTransformations(&table, {transformation}), 2u);
}

TEST(TransformationLogTest, RoundTrips) {
  ApprovedTransformation a;
  a.column = "Address";
  a.program = KeepDigits();
  a.direction = ReplaceDirection::kRhsToLhs;
  ApprovedTransformation b;
  b.program = Program({StringFn::ConstantStr("x (+) \"y\"")});
  b.direction = ReplaceDirection::kLhsToRhs;

  std::string log = SerializeTransformationLog({a, b});
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(log);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].column, "Address");
  EXPECT_EQ((*parsed)[0].direction, ReplaceDirection::kRhsToLhs);
  EXPECT_EQ((*parsed)[0].program.functions(), a.program.functions());
  EXPECT_EQ((*parsed)[1].column, "");
  EXPECT_EQ((*parsed)[1].program.functions(), b.program.functions());
}

TEST(TransformationLogTest, IgnoresUnknownKeysAndCrLf) {
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(
          "column: a\r\n"
          "size: 12\r\n"
          "direction: lhs->rhs\r\n"
          "program: ConstantStr(\"x\")\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].column, "a");
}

TEST(TransformationLogTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseTransformationLog("not a log line\n").ok());
  EXPECT_FALSE(
      ParseTransformationLog("direction: sideways\nprogram: x\n").ok());
  EXPECT_FALSE(ParseTransformationLog("program: Bogus(1)\n").ok());
}

TEST(TransformationLogTest, EmptyLogIsEmpty) {
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(TransformationLogTest, PairLinesRoundTripWithEscapes) {
  ApprovedTransformation a;
  a.column = "authors";
  a.program = KeepDigits();
  a.pairs.push_back({"smith, \"chris\"", "s. smith"});
  a.pairs.push_back({"line\nbreak \\ slash", "clean"});
  std::string log = SerializeTransformationLog({a});
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(log);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  ASSERT_EQ((*parsed)[0].pairs.size(), 2u);
  EXPECT_EQ((*parsed)[0].pairs[0], a.pairs[0]);
  EXPECT_EQ((*parsed)[0].pairs[1], a.pairs[1]);
  EXPECT_FALSE(ParseTransformationLog("pair: no quotes\n"
                                      "program: ConstantStr(\"x\")\n")
                   .ok());
  EXPECT_FALSE(ParseTransformationLog("pair: \"a\" -> \"unterminated\n"
                                      "program: ConstantStr(\"x\")\n")
                   .ok());
}

TEST(ApplyTransformationTest, RecordedPairsApplyOnlyThoseMembers) {
  // Both clusters hold a pair consistent with KeepDigits, but the session
  // only approved the first one: replay with recorded members must leave
  // the other cluster untouched (the over-application that used to break
  // the authorlist round trip).
  Column column = {{"9th", "9"}, {"22nd", "22"}};
  ApprovedTransformation transformation;
  transformation.program = KeepDigits();
  transformation.pairs.push_back({"9th", "9"});
  EXPECT_EQ(ApplyTransformation(&column, transformation), 1u);
  EXPECT_EQ(column[0], (std::vector<std::string>{"9", "9"}));
  EXPECT_EQ(column[1], (std::vector<std::string>{"22nd", "22"}));
}

// The live session and a replay of its approved log must agree byte for
// byte on every generated dataset — the replay-fidelity contract behind
// `ustl-consolidate --log/--replay`. Mirrors the CLI defaults (broker in
// front of an approve-all backend, default budget and candidate options).
class ReplayRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ReplayRoundTrip, LogReplaysByteIdentically) {
  GeneratedDataset dataset;
  AllDatasets all = GenerateAllDatasets(0.05, 7);
  std::string which = GetParam();
  if (which == "address") dataset = std::move(all.address);
  if (which == "authorlist") dataset = std::move(all.author_list);
  if (which == "journaltitle") dataset = std::move(all.journal_title);
  ASSERT_FALSE(dataset.column.empty());

  Column live = dataset.column;
  ApproveAllOracle approve_all;
  OracleBroker broker(&approve_all);
  FrameworkOptions options;
  options.column_name = "value";
  ColumnRunResult result = StandardizeColumn(&live, &broker, options);
  ASSERT_GT(result.groups_approved, 0u);

  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(broker.SerializeApprovedLog());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Column replayed = dataset.column;
  for (const ApprovedTransformation& transformation : *parsed) {
    ApplyTransformation(&replayed, transformation);
  }
  EXPECT_EQ(replayed, live) << which << " replay diverged from the session";
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, ReplayRoundTrip,
                         ::testing::Values("address", "authorlist",
                                           "journaltitle"));

TEST(ReplayEndToEndTest, ApproveOnceReplayOnSecondBatch) {
  // Batch 1 goes through real verification; the approved groups are
  // serialized and replayed on batch 2, which must come out standardized
  // without any oracle involvement.
  Column batch1 = {
      {"9th", "9"},       {"3rd", "3"},   {"22nd", "22"},
      {"101st", "101"},   {"47th", "47"},
  };
  Column batch2 = {{"8th", "8"}, {"33rd", "33", "33rd"}};

  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 10;
  ColumnRunResult result = StandardizeColumn(&batch1, &oracle, options);
  ASSERT_GT(result.groups_approved, 0u);

  std::vector<ApprovedTransformation> approved;
  for (const GroupTrace& trace : result.trace) {
    if (!trace.approved) continue;
    Result<Program> program = ParseProgram(trace.program);
    ASSERT_TRUE(program.ok()) << trace.program;
    ApprovedTransformation transformation;
    transformation.program = std::move(program).value();
    transformation.direction = trace.direction;
    approved.push_back(std::move(transformation));
  }
  std::string log = SerializeTransformationLog(approved);
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(log);
  ASSERT_TRUE(parsed.ok());

  size_t edits = 0;
  for (const ApprovedTransformation& transformation : *parsed) {
    edits += ApplyTransformation(&batch2, transformation);
  }
  EXPECT_GT(edits, 0u);
  // Both batch-2 clusters are fully standardized.
  EXPECT_EQ(batch2[0][0], batch2[0][1]);
  EXPECT_EQ(batch2[1][0], batch2[1][1]);
  EXPECT_EQ(batch2[1][1], batch2[1][2]);
}

}  // namespace
}  // namespace ustl

// Tests for src/obs: the metrics registry (sharded counters, gauges,
// fixed-bucket histograms, registration-ordered exposition) and the
// per-request tracing primitives (span ids, RAII emission, null-sink
// inertness, JSON-lines schema). The concurrency tests double as TSan
// targets: scrapes race with updates by design, and the sanitizer run
// keeps the relaxed-atomic claims honest.
#include <gtest/gtest.h>

#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace ustl {
namespace {

TEST(MetricsRegistryTest, CounterAggregatesAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("test_total", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(41);
  gauge.Add(2);
  gauge.Add(-1);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Set(-7);  // signed: queue depths may legitimately go negative
  EXPECT_EQ(gauge.Value(), -7);
}

TEST(MetricsRegistryTest, HistogramBucketsIncludeUpperBounds) {
  Histogram histogram({10, 100});
  // Bounds are inclusive: 10 lands in the first bucket, 101 in +Inf.
  for (int64_t value : {5, 10, 11, 100, 101}) histogram.Observe(value);
  Histogram::Snapshot snapshot = histogram.Aggregate();
  ASSERT_EQ(snapshot.bucket_counts.size(), 3u);  // two bounds + Inf
  EXPECT_EQ(snapshot.bucket_counts[0], 2u);      // 5, 10
  EXPECT_EQ(snapshot.bucket_counts[1], 2u);      // 11, 100
  EXPECT_EQ(snapshot.bucket_counts[2], 1u);      // 101
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 5 + 10 + 11 + 100 + 101);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter* first = registry.RegisterCounter("dup_total", "help");
  Counter* second = registry.RegisterCounter("dup_total", "other help");
  EXPECT_EQ(first, second);  // same instrument, independent subsystems
  Gauge* gauge = registry.RegisterGauge("depth", "help");
  EXPECT_EQ(gauge, registry.RegisterGauge("depth", "help"));
}

TEST(MetricsRegistryTest, TextExpositionIsRegistrationOrderedAndStable) {
  MetricsRegistry registry;
  registry.RegisterCounter("zzz_total", "registered first");
  registry.RegisterGauge("aaa_depth", "registered second");
  registry.RegisterHistogram("mmm_us", "registered third", {1000});
  const std::string first = registry.WriteText();
  const std::string second = registry.WriteText();
  // Identical state scrapes byte-identically (no hash-order leakage).
  EXPECT_EQ(first, second);
  // Registration order wins over lexicographic order.
  EXPECT_LT(first.find("zzz_total"), first.find("aaa_depth"));
  EXPECT_LT(first.find("aaa_depth"), first.find("mmm_us"));
  EXPECT_NE(first.find("# TYPE zzz_total counter"), std::string::npos);
  EXPECT_NE(first.find("# TYPE aaa_depth gauge"), std::string::npos);
  EXPECT_NE(first.find("# TYPE mmm_us histogram"), std::string::npos);
}

TEST(MetricsRegistryTest, TextHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* histogram = registry.RegisterHistogram("lat_us", "help", {10, 100});
  for (int64_t value : {5, 10, 11, 100, 101}) histogram->Observe(value);
  const std::string text = registry.WriteText();
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 4"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 227"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 5"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotCarriesValues) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("jobs_total", "help");
  counter->Increment(3);
  registry.RegisterGauge("depth", "help")->Set(-2);
  const std::string json = registry.WriteJson();
  EXPECT_EQ(json.find("{\"metrics\": ["), 0u);
  EXPECT_NE(json.find("\"name\": \"jobs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"value\": -2"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectorsRunAtScrapeTime) {
  MetricsRegistry registry;
  Gauge* mirrored = registry.RegisterGauge("mirrored", "help");
  int source = 0;
  registry.AddCollector([&source, mirrored] { mirrored->Set(source); });
  source = 17;
  EXPECT_NE(registry.WriteText().find("mirrored 17"), std::string::npos);
  source = 23;  // a later scrape re-runs the collector
  EXPECT_NE(registry.WriteText().find("mirrored 23"), std::string::npos);
}

TEST(MetricsRegistryTest, ScrapesRaceSafelyWithUpdates) {
  // TSan leg: concurrent Increment/Observe against WriteText must be
  // clean — scrapes read relaxed atomics, never a torn struct.
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("race_total", "help");
  Histogram* histogram =
      registry.RegisterHistogram("race_us", "help", {100, 10000});
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([counter, histogram] {
      for (int i = 0; i < 5000; ++i) {
        counter->Increment();
        histogram->Observe(i);
      }
    });
  }
  for (int s = 0; s < 20; ++s) {
    EXPECT_FALSE(registry.WriteText().empty());
  }
  for (std::thread& thread : writers) thread.join();
  EXPECT_EQ(counter->Value(), 20000u);
  EXPECT_EQ(histogram->Aggregate().count, 20000u);
}

TEST(TraceTest, NullContextAndNullSinkAreInert) {
  ScopedSpan no_context(nullptr, 0, "never");
  EXPECT_FALSE(no_context.active());
  EXPECT_EQ(no_context.id(), 0u);
  no_context.AddAttr("ignored", 1);  // must be safe

  TraceContext unsinked(nullptr, "r", SteadyNow());
  ScopedSpan no_sink(&unsinked, 0, "never");
  EXPECT_FALSE(no_sink.active());
  EXPECT_EQ(no_sink.id(), 0u);
  unsinked.Event(0, "never", "");  // no-op, must not crash
}

TEST(TraceTest, SpanIdsGrowAndChildrenOutnumberParents) {
  CountingTraceSink sink;
  TraceContext ctx(&sink, "req", SteadyNow());
  ScopedSpan parent(&ctx, 0, "parent");
  EXPECT_EQ(parent.id(), 1u);
  {
    ScopedSpan child(&ctx, parent.id(), "child");
    EXPECT_GT(child.id(), parent.id());
  }
  EXPECT_EQ(sink.count(), 1u);  // the child closed, the parent is open
  parent.End();
  EXPECT_EQ(sink.count(), 2u);
  parent.End();  // idempotent
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_GT(sink.formatted_bytes(), 0);
}

TEST(TraceTest, JsonLinesSchema) {
  TraceSpan span;
  span.request_id = "tab\"le#1";
  span.id = 3;
  span.parent = 1;
  span.name = "graph_build";
  span.detail = "u=>ul";
  span.start_us = 10;
  span.end_us = 25;
  span.cpu_us = 7;
  span.attrs = {{"pairs", 6}};
  EXPECT_EQ(FormatTraceSpanJson(span),
            "{\"request\": \"tab\\\"le#1\", \"id\": 3, \"parent\": 1, "
            "\"name\": \"graph_build\", \"detail\": \"u=>ul\", "
            "\"start_us\": 10, \"end_us\": 25, \"cpu_us\": 7, "
            "\"attrs\": {\"pairs\": 6}}");
  // detail and attrs are omitted when empty; cpu_us is always present
  // (0 marks hand-built cross-thread spans, not "unknown").
  TraceSpan bare;
  bare.request_id = "r";
  bare.id = 1;
  bare.name = "request";
  const std::string formatted = FormatTraceSpanJson(bare);
  EXPECT_EQ(formatted.find("detail"), std::string::npos);
  EXPECT_EQ(formatted.find("attrs"), std::string::npos);
  EXPECT_NE(formatted.find("\"cpu_us\": 0"), std::string::npos);
}

TEST(TraceTest, JsonLinesSinkWritesOneLinePerSpan) {
  std::ostringstream out;
  JsonLinesTraceSink sink(&out);
  TraceContext ctx(&sink, "req", SteadyNow());
  { ScopedSpan span(&ctx, 0, "a"); }
  ctx.Event(1, "b", "note", {{"n", 2}});
  const std::string text = out.str();
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"name\": \"a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"b\""), std::string::npos);
  // The event is a point span under parent 1.
  EXPECT_NE(text.find("\"parent\": 1"), std::string::npos);
}

TEST(TraceTest, MonotonicTimestampsAndContainment) {
  std::ostringstream out;
  JsonLinesTraceSink sink(&out);
  TraceContext ctx(&sink, "req", SteadyNow());
  ScopedSpan parent(&ctx, 0, "parent");
  { ScopedSpan child(&ctx, parent.id(), "child"); }
  parent.End();
  // Emission order is child first (RAII), and the parent's interval
  // contains the child's; spot-check via the formatted output order.
  const std::string text = out.str();
  EXPECT_LT(text.find("\"name\": \"child\""), text.find("\"name\": \"parent\""));
}

TEST(TraceTest, ConcurrentSpansGetUniqueIds) {
  // TSan leg: many threads open/close spans on one context; the id
  // counter and the sink must both be thread-safe.
  CountingTraceSink sink;
  TraceContext ctx(&sink, "req", SteadyNow());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ctx] {
      for (int i = 0; i < 1000; ++i) {
        ScopedSpan span(&ctx, 0, "work");
        span.AddAttr("i", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(sink.count(), 4000u);
  // All ids were handed out exactly once: the next one is #4001.
  EXPECT_EQ(ctx.NextSpanId(), 4001u);
}

TEST(MetricsRegistryTest, LabeledGaugeRendersLabelsInBothFormats) {
  MetricsRegistry registry;
  Gauge* info = registry.RegisterGauge(
      "build_info", "help",
      {{"compiler", "gcc 12.2.0"}, {"build_type", "Release"}});
  info->Set(1);
  const std::string text = registry.WriteText();
  EXPECT_NE(text.find("build_info{compiler=\"gcc 12.2.0\","
                      "build_type=\"Release\"} 1"),
            std::string::npos);
  const std::string json = registry.WriteJson();
  EXPECT_NE(json.find("\"labels\": {\"compiler\": \"gcc 12.2.0\", "
                      "\"build_type\": \"Release\"}"),
            std::string::npos);
  // Idempotency keys on the bare name, labels notwithstanding.
  EXPECT_EQ(info, registry.RegisterGauge("build_info", "help"));
}

TEST(MetricsRegistryTest, ProcessMetricsExposeRssCpuFdsAndBuildInfo) {
  MetricsRegistry registry;
  RegisterProcessMetrics(&registry);
  const std::string text = registry.WriteText();
  // Presence always; nonzero only where short-lived processes can
  // guarantee it (whole-second CPU time may legitimately read 0).
  EXPECT_NE(text.find("ustl_process_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("ustl_process_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(text.find("ustl_process_open_fds"), std::string::npos);
  EXPECT_NE(text.find("ustl_build_info{compiler=\""), std::string::npos);
  EXPECT_NE(text.find("build_type=\"" + std::string(BuildTypeString())),
            std::string::npos);
#if defined(__linux__)
  // A running gtest binary has a nonzero footprint and open fds.
  Gauge* rss = registry.RegisterGauge("ustl_process_rss_bytes", "");
  Gauge* fds = registry.RegisterGauge("ustl_process_open_fds", "");
  registry.WriteText();  // collectors refresh on scrape
  EXPECT_GT(rss->Value(), 0);
  EXPECT_GT(fds->Value(), 0);
#endif
}

/// Sink that keeps every span for structural assertions.
class VectorTraceSink : public TraceSink {
 public:
  void Emit(const TraceSpan& span) override {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(span);
  }
  std::vector<TraceSpan> spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

TEST(TraceTest, CpuTimeIsCapturedAndClampedToWall) {
  VectorTraceSink sink;
  TraceContext ctx(&sink, "req", SteadyNow());
  {
    ScopedSpan span(&ctx, 0, "busy");
    // Burn a little CPU so the thread clock moves on most schedulers.
    volatile uint64_t sum = 0;
    for (int i = 0; i < 200000; ++i) sum += i;
  }
  const std::vector<TraceSpan> spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].cpu_us, 0);
  EXPECT_LE(spans[0].cpu_us, spans[0].end_us - spans[0].start_us);
}

TEST(TraceTest, TeeFansOutToEverySinkAndSkipsNulls) {
  CountingTraceSink a;
  CountingTraceSink b;
  TeeTraceSink tee({&a, nullptr, &b});
  TraceContext ctx(&tee, "req", SteadyNow());
  { ScopedSpan span(&ctx, 0, "work"); }
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 1u);
}

/// A serial synthetic span tree with hand-picked intervals:
///   request [0,100] cpu 50
///     column.a [10,40] cpu 20
///       search_wave [20,30] cpu 5
///     column.b [50,90] cpu 10
/// Children emit before the root (RAII order).
void EmitSyntheticTree(TraceSink* sink) {
  TraceSpan wave;
  wave.request_id = "t#1";
  wave.id = 3;
  wave.parent = 2;
  wave.name = "search_wave";
  wave.start_us = 20;
  wave.end_us = 30;
  wave.cpu_us = 5;
  sink->Emit(wave);
  TraceSpan col_a;
  col_a.request_id = "t#1";
  col_a.id = 2;
  col_a.parent = 1;
  col_a.name = "column";
  col_a.start_us = 10;
  col_a.end_us = 40;
  col_a.cpu_us = 20;
  sink->Emit(col_a);
  TraceSpan col_b;
  col_b.request_id = "t#1";
  col_b.id = 4;
  col_b.parent = 1;
  col_b.name = "column";
  col_b.start_us = 50;
  col_b.end_us = 90;
  col_b.cpu_us = 10;
  sink->Emit(col_b);
  TraceSpan root;
  root.request_id = "t#1";
  root.id = 1;
  root.parent = 0;
  root.name = "request";
  root.start_us = 0;
  root.end_us = 100;
  root.cpu_us = 50;
  sink->Emit(root);
}

TEST(ProfileTest, FoldsInclusiveAndExclusiveTimes) {
  ProfileAccumulator profiler;
  EmitSyntheticTree(&profiler);
  const auto table = profiler.Table();
  ASSERT_EQ(table.size(), 3u);  // request, request;column, request;column;...
  const auto& root = table.at("request");
  EXPECT_EQ(root.count, 1u);
  EXPECT_EQ(root.wall_us, 100);
  EXPECT_EQ(root.self_wall_us, 100 - 30 - 40);  // minus both columns
  EXPECT_EQ(root.cpu_us, 50);
  EXPECT_EQ(root.self_cpu_us, 50 - 20 - 10);
  const auto& column = table.at("request;column");
  EXPECT_EQ(column.count, 2u);  // both columns share a path
  EXPECT_EQ(column.wall_us, 30 + 40);
  EXPECT_EQ(column.self_wall_us, (30 - 10) + 40);
  const auto& wave = table.at("request;column;search_wave");
  EXPECT_EQ(wave.count, 1u);
  EXPECT_EQ(wave.wall_us, 10);
  EXPECT_EQ(wave.self_wall_us, 10);  // leaf: inclusive == exclusive
  // Inclusive >= exclusive everywhere, and on a serial tree the self
  // wall times sum exactly to the root's wall time.
  int64_t self_sum = 0;
  for (const auto& row : table) {
    EXPECT_GE(row.second.wall_us, row.second.self_wall_us) << row.first;
    EXPECT_GE(row.second.cpu_us, row.second.self_cpu_us) << row.first;
    self_sum += row.second.self_wall_us;
  }
  EXPECT_EQ(self_sum, 100);
  EXPECT_EQ(profiler.folded_spans(), 4u);
  EXPECT_EQ(profiler.dropped_spans(), 0u);
  // TotalsByName collapses paths to their leaf name.
  const auto totals = profiler.TotalsByName();
  EXPECT_EQ(totals.at("column").count, 2u);
  EXPECT_EQ(totals.at("search_wave").self_wall_us, 10);
}

TEST(ProfileTest, JsonAndFoldedOutputsCarryTheTable) {
  ProfileAccumulator profiler;
  EmitSyntheticTree(&profiler);
  const std::string json = profiler.WriteJson();
  EXPECT_EQ(json.find("{\"profile\": ["), 0u);
  EXPECT_NE(json.find("\"path\": \"request;column;search_wave\""),
            std::string::npos);
  EXPECT_NE(json.find("\"folded_spans\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);
  const std::string folded = profiler.WriteFolded();
  EXPECT_NE(folded.find("request;column;search_wave 10\n"), std::string::npos);
  EXPECT_NE(folded.find("request 30\n"), std::string::npos);
}

TEST(ProfileTest, BufferBoundDropsInsteadOfGrowing) {
  ProfileAccumulator profiler(/*max_buffered_spans=*/2);
  for (uint64_t i = 0; i < 5; ++i) {
    TraceSpan span;
    span.request_id = "leaky#1";
    span.id = 10 + i;
    span.parent = 1;  // never-closing root: these can only buffer
    span.name = "column";
    profiler.Emit(span);
  }
  EXPECT_EQ(profiler.dropped_spans(), 3u);
  // The two buffered spans still fold when their root finally closes.
  TraceSpan root;
  root.request_id = "leaky#1";
  root.id = 1;
  root.parent = 0;
  root.name = "request";
  profiler.Emit(root);
  EXPECT_EQ(profiler.folded_spans(), 3u);  // root + 2 survivors
}

TEST(ProfileTest, ConcurrentRequestsFoldIndependently) {
  // TSan leg: many threads emit full synthetic trees under distinct
  // request ids while a reader snapshots the table.
  ProfileAccumulator profiler;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&profiler, t] {
      for (int i = 0; i < 200; ++i) {
        TraceSpan child;
        child.request_id = "r" + std::to_string(t) + "#" + std::to_string(i);
        child.id = 2;
        child.parent = 1;
        child.name = "column";
        child.start_us = 1;
        child.end_us = 2;
        profiler.Emit(child);
        TraceSpan root = child;
        root.id = 1;
        root.parent = 0;
        root.name = "request";
        root.start_us = 0;
        root.end_us = 3;
        profiler.Emit(root);
      }
    });
  }
  for (int s = 0; s < 20; ++s) (void)profiler.Table();
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(profiler.folded_spans(), 4u * 200 * 2);
  EXPECT_EQ(profiler.dropped_spans(), 0u);
  EXPECT_EQ(profiler.Table().at("request;column").count, 4u * 200);
}

TEST(FlightRecorderTest, RingKeepsTheNewestSpansAfterWraparound) {
  FlightRecorder recorder(/*capacity=*/4);
  for (uint64_t i = 1; i <= 10; ++i) {
    TraceSpan span;
    span.request_id = "r#1";
    span.id = i;
    span.name = "column";
    span.start_us = static_cast<int64_t>(i);
    recorder.Emit(span);
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-to-newest of the surviving tail: ids 7..10.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, 7 + i);
  }
}

TEST(FlightRecorderTest, DumpJsonCarriesReasonSpansAndContext) {
  FlightRecorder recorder(/*capacity=*/8);
  TraceSpan span;
  span.request_id = "elm#1";
  span.id = 2;
  span.parent = 1;
  span.name = "column";
  span.end_us = 5;
  recorder.Emit(span);
  const std::string dump =
      recorder.DumpJson("stall", 1234, "{\"requests\": []}");
  EXPECT_EQ(dump.find("{\"flight_recorder\": {"), 0u);
  EXPECT_NE(dump.find("\"reason\": \"stall\""), std::string::npos);
  EXPECT_NE(dump.find("\"dumped_us\": 1234"), std::string::npos);
  EXPECT_NE(dump.find("\"capacity\": 8"), std::string::npos);
  EXPECT_NE(dump.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(dump.find("\"name\": \"column\""), std::string::npos);
  EXPECT_NE(dump.find("\"context\": {\"requests\": []}"), std::string::npos);
  // Empty context stays schema-valid JSON.
  EXPECT_NE(recorder.DumpJson("drain_timeout", 1, "").find("\"context\": {}"),
            std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentEmitAndDumpAreSafe) {
  // TSan leg: writers race Snapshot/DumpJson; the ring must never tear.
  FlightRecorder recorder(/*capacity=*/32);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder] {
      for (int i = 0; i < 2000; ++i) {
        TraceSpan span;
        span.request_id = "r";
        span.id = static_cast<uint64_t>(i) + 1;
        span.name = "work";
        recorder.Emit(span);
      }
    });
  }
  for (int s = 0; s < 20; ++s) {
    EXPECT_FALSE(recorder.DumpJson("race", s, "").empty());
  }
  for (std::thread& thread : writers) thread.join();
  EXPECT_EQ(recorder.recorded(), 8000u);
  EXPECT_EQ(recorder.Snapshot().size(), 32u);
}

}  // namespace
}  // namespace ustl

// Tests for src/obs: the metrics registry (sharded counters, gauges,
// fixed-bucket histograms, registration-ordered exposition) and the
// per-request tracing primitives (span ids, RAII emission, null-sink
// inertness, JSON-lines schema). The concurrency tests double as TSan
// targets: scrapes race with updates by design, and the sanitizer run
// keeps the relaxed-atomic claims honest.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustl {
namespace {

TEST(MetricsRegistryTest, CounterAggregatesAcrossThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("test_total", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(41);
  gauge.Add(2);
  gauge.Add(-1);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Set(-7);  // signed: queue depths may legitimately go negative
  EXPECT_EQ(gauge.Value(), -7);
}

TEST(MetricsRegistryTest, HistogramBucketsIncludeUpperBounds) {
  Histogram histogram({10, 100});
  // Bounds are inclusive: 10 lands in the first bucket, 101 in +Inf.
  for (int64_t value : {5, 10, 11, 100, 101}) histogram.Observe(value);
  Histogram::Snapshot snapshot = histogram.Aggregate();
  ASSERT_EQ(snapshot.bucket_counts.size(), 3u);  // two bounds + Inf
  EXPECT_EQ(snapshot.bucket_counts[0], 2u);      // 5, 10
  EXPECT_EQ(snapshot.bucket_counts[1], 2u);      // 11, 100
  EXPECT_EQ(snapshot.bucket_counts[2], 1u);      // 101
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 5 + 10 + 11 + 100 + 101);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter* first = registry.RegisterCounter("dup_total", "help");
  Counter* second = registry.RegisterCounter("dup_total", "other help");
  EXPECT_EQ(first, second);  // same instrument, independent subsystems
  Gauge* gauge = registry.RegisterGauge("depth", "help");
  EXPECT_EQ(gauge, registry.RegisterGauge("depth", "help"));
}

TEST(MetricsRegistryTest, TextExpositionIsRegistrationOrderedAndStable) {
  MetricsRegistry registry;
  registry.RegisterCounter("zzz_total", "registered first");
  registry.RegisterGauge("aaa_depth", "registered second");
  registry.RegisterHistogram("mmm_us", "registered third", {1000});
  const std::string first = registry.WriteText();
  const std::string second = registry.WriteText();
  // Identical state scrapes byte-identically (no hash-order leakage).
  EXPECT_EQ(first, second);
  // Registration order wins over lexicographic order.
  EXPECT_LT(first.find("zzz_total"), first.find("aaa_depth"));
  EXPECT_LT(first.find("aaa_depth"), first.find("mmm_us"));
  EXPECT_NE(first.find("# TYPE zzz_total counter"), std::string::npos);
  EXPECT_NE(first.find("# TYPE aaa_depth gauge"), std::string::npos);
  EXPECT_NE(first.find("# TYPE mmm_us histogram"), std::string::npos);
}

TEST(MetricsRegistryTest, TextHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* histogram = registry.RegisterHistogram("lat_us", "help", {10, 100});
  for (int64_t value : {5, 10, 11, 100, 101}) histogram->Observe(value);
  const std::string text = registry.WriteText();
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 4"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 227"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 5"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotCarriesValues) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("jobs_total", "help");
  counter->Increment(3);
  registry.RegisterGauge("depth", "help")->Set(-2);
  const std::string json = registry.WriteJson();
  EXPECT_EQ(json.find("{\"metrics\": ["), 0u);
  EXPECT_NE(json.find("\"name\": \"jobs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"value\": -2"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectorsRunAtScrapeTime) {
  MetricsRegistry registry;
  Gauge* mirrored = registry.RegisterGauge("mirrored", "help");
  int source = 0;
  registry.AddCollector([&source, mirrored] { mirrored->Set(source); });
  source = 17;
  EXPECT_NE(registry.WriteText().find("mirrored 17"), std::string::npos);
  source = 23;  // a later scrape re-runs the collector
  EXPECT_NE(registry.WriteText().find("mirrored 23"), std::string::npos);
}

TEST(MetricsRegistryTest, ScrapesRaceSafelyWithUpdates) {
  // TSan leg: concurrent Increment/Observe against WriteText must be
  // clean — scrapes read relaxed atomics, never a torn struct.
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("race_total", "help");
  Histogram* histogram =
      registry.RegisterHistogram("race_us", "help", {100, 10000});
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([counter, histogram] {
      for (int i = 0; i < 5000; ++i) {
        counter->Increment();
        histogram->Observe(i);
      }
    });
  }
  for (int s = 0; s < 20; ++s) {
    EXPECT_FALSE(registry.WriteText().empty());
  }
  for (std::thread& thread : writers) thread.join();
  EXPECT_EQ(counter->Value(), 20000u);
  EXPECT_EQ(histogram->Aggregate().count, 20000u);
}

TEST(TraceTest, NullContextAndNullSinkAreInert) {
  ScopedSpan no_context(nullptr, 0, "never");
  EXPECT_FALSE(no_context.active());
  EXPECT_EQ(no_context.id(), 0u);
  no_context.AddAttr("ignored", 1);  // must be safe

  TraceContext unsinked(nullptr, "r", SteadyNow());
  ScopedSpan no_sink(&unsinked, 0, "never");
  EXPECT_FALSE(no_sink.active());
  EXPECT_EQ(no_sink.id(), 0u);
  unsinked.Event(0, "never", "");  // no-op, must not crash
}

TEST(TraceTest, SpanIdsGrowAndChildrenOutnumberParents) {
  CountingTraceSink sink;
  TraceContext ctx(&sink, "req", SteadyNow());
  ScopedSpan parent(&ctx, 0, "parent");
  EXPECT_EQ(parent.id(), 1u);
  {
    ScopedSpan child(&ctx, parent.id(), "child");
    EXPECT_GT(child.id(), parent.id());
  }
  EXPECT_EQ(sink.count(), 1u);  // the child closed, the parent is open
  parent.End();
  EXPECT_EQ(sink.count(), 2u);
  parent.End();  // idempotent
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_GT(sink.formatted_bytes(), 0);
}

TEST(TraceTest, JsonLinesSchema) {
  TraceSpan span;
  span.request_id = "tab\"le#1";
  span.id = 3;
  span.parent = 1;
  span.name = "graph_build";
  span.detail = "u=>ul";
  span.start_us = 10;
  span.end_us = 25;
  span.attrs = {{"pairs", 6}};
  EXPECT_EQ(FormatTraceSpanJson(span),
            "{\"request\": \"tab\\\"le#1\", \"id\": 3, \"parent\": 1, "
            "\"name\": \"graph_build\", \"detail\": \"u=>ul\", "
            "\"start_us\": 10, \"end_us\": 25, \"attrs\": {\"pairs\": 6}}");
  // detail and attrs are omitted when empty.
  TraceSpan bare;
  bare.request_id = "r";
  bare.id = 1;
  bare.name = "request";
  const std::string formatted = FormatTraceSpanJson(bare);
  EXPECT_EQ(formatted.find("detail"), std::string::npos);
  EXPECT_EQ(formatted.find("attrs"), std::string::npos);
}

TEST(TraceTest, JsonLinesSinkWritesOneLinePerSpan) {
  std::ostringstream out;
  JsonLinesTraceSink sink(&out);
  TraceContext ctx(&sink, "req", SteadyNow());
  { ScopedSpan span(&ctx, 0, "a"); }
  ctx.Event(1, "b", "note", {{"n", 2}});
  const std::string text = out.str();
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"name\": \"a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"b\""), std::string::npos);
  // The event is a point span under parent 1.
  EXPECT_NE(text.find("\"parent\": 1"), std::string::npos);
}

TEST(TraceTest, MonotonicTimestampsAndContainment) {
  std::ostringstream out;
  JsonLinesTraceSink sink(&out);
  TraceContext ctx(&sink, "req", SteadyNow());
  ScopedSpan parent(&ctx, 0, "parent");
  { ScopedSpan child(&ctx, parent.id(), "child"); }
  parent.End();
  // Emission order is child first (RAII), and the parent's interval
  // contains the child's; spot-check via the formatted output order.
  const std::string text = out.str();
  EXPECT_LT(text.find("\"name\": \"child\""), text.find("\"name\": \"parent\""));
}

TEST(TraceTest, ConcurrentSpansGetUniqueIds) {
  // TSan leg: many threads open/close spans on one context; the id
  // counter and the sink must both be thread-safe.
  CountingTraceSink sink;
  TraceContext ctx(&sink, "req", SteadyNow());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ctx] {
      for (int i = 0; i < 1000; ++i) {
        ScopedSpan span(&ctx, 0, "work");
        span.AddAttr("i", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(sink.count(), 4000u);
  // All ids were handed out exactly once: the next one is #4001.
  EXPECT_EQ(ctx.NextSpanId(), 4001u);
}

}  // namespace
}  // namespace ustl

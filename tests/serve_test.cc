// Tests for src/serve: the long-lived ConsolidationService. Pins the
// ISSUE 5 acceptance matrix — per-table byte-identity against a serial
// single-table run across threads {1,2,4} x admission-order permutations
// x warm/cold cache state — plus the weighted round-robin fairness
// policy, the streamed event contract, bounded admission, the
// cross-request search-cache warmth and error propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "consolidate/oracle.h"
#include "pipeline/pipeline.h"
#include "serve/service.h"

namespace ustl {
namespace {

constexpr size_t kBudget = 20;

// A small clustered table whose values form one obvious variant family
// per cluster ("<tag><i> Street" vs "<tag><i> St"), replicated into
// `columns` identical columns. Distinct tags make distinct tables;
// identical tags make byte-identical content (the cross-request reuse
// case).
Table MakeTable(const std::string& tag, size_t columns, int clusters) {
  std::vector<std::string> names;
  for (size_t i = 1; i <= columns; ++i) {
    names.push_back("value" + std::to_string(i));
  }
  Table table(names);
  for (int i = 1; i <= clusters; ++i) {
    const std::string n = tag + std::to_string(i);
    const size_t c = table.AddCluster();
    table.AddRecord(c, std::vector<std::string>(columns, n + " Street"));
    table.AddRecord(c, std::vector<std::string>(columns, n + " St"));
    table.AddRecord(c, std::vector<std::string>(columns, n + " St"));
  }
  return table;
}

FrameworkOptions TestFramework() {
  FrameworkOptions framework;
  framework.budget_per_column = kBudget;
  return framework;
}

// The contract's reference point: a serial single-table pipeline run.
std::string SerialFingerprint(Table table) {
  ApproveAllOracle oracle;
  PipelineOptions options;
  options.framework = TestFramework();
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  return FingerprintConsolidation(table, run.golden_records);
}

TEST(ConsolidationServiceTest,
     ByteIdenticalAcrossThreadsAdmissionOrdersAndWarmth) {
  // Three tables: two distinct, one repeating the first's content (so the
  // shared caches fire across requests within a round too).
  const std::vector<Table> originals = {MakeTable("Oak", 1, 6),
                                        MakeTable("Pine", 2, 5),
                                        MakeTable("Oak", 1, 6)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  ASSERT_NE(baselines[0], baselines[1]);
  ASSERT_EQ(baselines[0], baselines[2]);  // same content, same output

  for (int threads : {1, 2, 4}) {
    for (const std::vector<size_t>& order :
         {std::vector<size_t>{0, 1, 2}, std::vector<size_t>{2, 1, 0}}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " order="
                                      << order[0] << order[1] << order[2]);
      ServiceOptions options;
      options.framework = TestFramework();
      options.num_threads = threads;
      ApproveAllOracle oracle;
      ConsolidationService service(&oracle, options);
      // Two rounds through the same service: round 1 runs cold, round 2
      // against verdict/search caches warmed by round 1.
      for (int round = 1; round <= 2; ++round) {
        std::vector<Table> tables = originals;
        std::vector<uint64_t> handles(tables.size());
        for (size_t t : order) {
          handles[t] = service.Submit(&tables[t]);
        }
        for (size_t t : order) {
          RequestResult result = service.Wait(handles[t]);
          EXPECT_EQ(FingerprintConsolidation(tables[t],
                                             result.golden_records),
                    baselines[t])
              << "table " << t << " round " << round;
        }
      }
    }
  }
}

TEST(ConsolidationServiceTest, FairnessSmallTableOvertakesHugeTable) {
  // A huge table admitted first and a 1-column table admitted second:
  // under weighted round-robin the small table gets the very next column
  // slot and completes while the huge one is mid-flight. start_paused
  // makes the dispatch order reproducible (both requests are queued
  // before any job runs), and one worker makes it fully deterministic.
  Table huge = MakeTable("Huge", 5, 6);
  Table small = MakeTable("Tiny", 1, 3);
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 1;
  options.start_paused = true;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  const uint64_t huge_handle = service.Submit(&huge);
  const uint64_t small_handle = service.Submit(&small);
  service.Resume();
  service.Wait(small_handle);
  service.Wait(huge_handle);
  const std::vector<uint64_t> order = service.CompletionOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], small_handle);
  EXPECT_EQ(order[1], huge_handle);
  EXPECT_EQ(service.stats().max_concurrent_requests, 2u);
}

TEST(ConsolidationServiceTest, WarmSearchCacheSkipsRepeatedSearches) {
  ServiceOptions options;
  options.framework = TestFramework();
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);

  auto run_once = [&](uint64_t* searches, uint64_t* warm_hits) {
    Table table = MakeTable("Elm", 1, 8);
    RequestResult result = service.Wait(service.Submit(&table));
    *searches = 0;
    *warm_hits = 0;
    for (const ColumnRunResult& column : result.per_column) {
      *searches += column.grouping.searches;
      *warm_hits += column.grouping.warm_hits;
    }
  };

  uint64_t cold_searches = 0, cold_warm_hits = 0;
  run_once(&cold_searches, &cold_warm_hits);
  EXPECT_GT(cold_searches, 0u);
  EXPECT_EQ(cold_warm_hits, 0u);

  uint64_t warm_searches = 0, warm_warm_hits = 0;
  run_once(&warm_searches, &warm_warm_hits);
  EXPECT_GT(warm_warm_hits, 0u);
  EXPECT_LT(warm_searches, cold_searches);

  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.search_cache.publishes, 0u);
  EXPECT_GT(stats.search_cache.warm_starts, 0u);
  EXPECT_GT(stats.search_cache.entries_served, 0u);
}

TEST(ConsolidationServiceTest, StreamsOrderedEventsPerRequest) {
  Table table = MakeTable("Birch", 2, 5);
  ServiceOptions options;
  options.framework = TestFramework();
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<ServeEvent> events;  // serialized callback: no lock needed
  RequestOptions request;
  request.label = "birch";
  request.on_event = [&](const ServeEvent& event) {
    events.push_back(event);
  };
  RequestResult result = service.Wait(service.Submit(&table, request));

  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, ServeEvent::Kind::kAdmitted);
  EXPECT_EQ(events.back().kind, ServeEvent::Kind::kRequestDone);
  EXPECT_EQ(events.front().label, "birch");

  size_t verdicts = 0;
  size_t columns_done = 0;
  std::map<std::string, size_t> last_rank;
  for (const ServeEvent& event : events) {
    if (event.kind == ServeEvent::Kind::kVerdict) {
      ++verdicts;
      // Presentation ranks are 1-based and strictly increasing per
      // column, whatever the cross-column interleaving.
      EXPECT_EQ(event.presented, last_rank[event.column] + 1);
      last_rank[event.column] = event.presented;
      EXPECT_GT(event.group_size, 0u);
    } else if (event.kind == ServeEvent::Kind::kColumnDone) {
      ++columns_done;
    }
  }
  size_t presented_total = 0;
  for (const ColumnRunResult& column : result.per_column) {
    presented_total += column.groups_presented;
  }
  EXPECT_EQ(verdicts, presented_total);
  EXPECT_EQ(columns_done, table.num_columns());
  EXPECT_EQ(events.back().groups_presented, presented_total);
}

TEST(ConsolidationServiceTest, EventStreamOpensWithAdmittedUnderLoad) {
  // A request submitted while workers are already busy must still see
  // kAdmitted as its first event — admission is emitted before the
  // request becomes pickable.
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables = {MakeTable("Alder", 3, 6),
                               MakeTable("Cedar", 1, 4),
                               MakeTable("Maple", 2, 5)};
  // One vector per request; callbacks are serialized service-wide, so
  // unsynchronized writes are safe.
  std::vector<std::vector<ServeEvent::Kind>> kinds(tables.size());
  std::vector<uint64_t> handles(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestOptions request;
    request.on_event = [&kinds, t](const ServeEvent& event) {
      kinds[t].push_back(event.kind);
    };
    handles[t] = service.Submit(&tables[t], std::move(request));
  }
  for (uint64_t handle : handles) service.Wait(handle);
  for (size_t t = 0; t < tables.size(); ++t) {
    ASSERT_FALSE(kinds[t].empty()) << t;
    EXPECT_EQ(kinds[t].front(), ServeEvent::Kind::kAdmitted) << t;
    EXPECT_EQ(kinds[t].back(), ServeEvent::Kind::kRequestDone) << t;
  }
}

TEST(ConsolidationServiceTest, BoundedAdmissionStillDrainsEverything) {
  const std::string baseline = SerialFingerprint(MakeTable("Ash", 1, 5));
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  options.max_pending_requests = 1;  // every Submit waits for the backlog
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables(3, MakeTable("Ash", 1, 5));
  std::vector<uint64_t> handles;
  for (Table& table : tables) {
    handles.push_back(service.Submit(&table));
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestResult result = service.Wait(handles[t]);
    EXPECT_EQ(FingerprintConsolidation(tables[t], result.golden_records),
              baseline);
  }
  EXPECT_EQ(service.stats().requests_completed, 3u);
}

TEST(ConsolidationServiceTest, SharedBrokerDeduplicatesAcrossRequests) {
  // Identical tables admitted back to back: the second request's
  // questions are all verdict-cache hits, so the backend hears each
  // distinct question once per service lifetime.
  Table first = MakeTable("Fir", 1, 6);
  Table second = MakeTable("Fir", 1, 6);
  ServiceOptions options;
  options.framework = TestFramework();
  SimulatedOracle oracle(
      [](const StringPair& pair) { return pair.lhs.size() != pair.rhs.size(); },
      nullptr, SimulatedOracle::Options{});
  ConsolidationService service(&oracle, options);
  service.Wait(service.Submit(&first));
  const OracleBrokerStats after_first = service.stats().oracle;
  service.Wait(service.Submit(&second));
  const OracleBrokerStats after_second = service.stats().oracle;
  EXPECT_GT(after_first.backend_calls, 0u);
  EXPECT_EQ(after_second.backend_calls, after_first.backend_calls);
  EXPECT_GT(after_second.cache_hits, after_first.cache_hits);
  EXPECT_EQ(FingerprintConsolidation(first, {}),
            FingerprintConsolidation(second, {}));
}

// Throws on every question mentioning "Poison".
class PoisonOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    for (const StringPair& pair : group_pairs) {
      if (pair.lhs.find("Poison") != std::string::npos) {
        throw std::runtime_error("backend refused");
      }
    }
    Verdict verdict;
    verdict.approved = true;
    return verdict;
  }
};

TEST(ConsolidationServiceTest, BackendFailureSurfacesInWaitAndServiceLives) {
  Table poisoned = MakeTable("Poison", 1, 4);
  Table healthy = MakeTable("Willow", 1, 4);
  ServiceOptions options;
  options.framework = TestFramework();
  PoisonOracle oracle;
  ConsolidationService service(&oracle, options);
  const uint64_t bad = service.Submit(&poisoned);
  EXPECT_THROW(service.Wait(bad), std::runtime_error);
  // The service survives a failed request: later requests run normally.
  RequestResult result = service.Wait(service.Submit(&healthy));
  EXPECT_EQ(FingerprintConsolidation(healthy, result.golden_records),
            SerialFingerprint(MakeTable("Willow", 1, 4)));
}

TEST(SearchResultCacheTest, KeyBoundEvictsLeastRecentlyUsed) {
  SearchResultCache::Options options;
  options.max_keys = 2;
  SearchResultCache cache(options);
  auto key = [](uint64_t tag) {
    SearchKeyHasher hasher;
    hasher.U64(tag);
    return hasher.Finish();
  };
  CachedPivot pivot;
  pivot.path = {1, 2};
  pivot.members = {0};
  pivot.count = 1;
  cache.Publish(key(1), 0, pivot);  // keys: {1}
  cache.Publish(key(2), 0, pivot);  // keys: {1, 2}
  EXPECT_EQ(cache.WarmStart(key(1)).size(), 1u);  // 1 is now most recent
  cache.Publish(key(3), 0, pivot);  // evicts 2 (LRU)
  EXPECT_EQ(cache.WarmStart(key(1)).size(), 1u);
  EXPECT_EQ(cache.WarmStart(key(3)).size(), 1u);
  EXPECT_TRUE(cache.WarmStart(key(2)).empty());
  const SearchCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.keys, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ConsolidationServiceTest, ZeroColumnTableCompletesImmediately) {
  Table empty(std::vector<std::string>{});
  ServiceOptions options;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  RequestResult result = service.Wait(service.Submit(&empty));
  EXPECT_TRUE(result.per_column.empty());
  EXPECT_EQ(service.stats().requests_completed, 1u);
}

}  // namespace
}  // namespace ustl

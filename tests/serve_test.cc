// Tests for src/serve: the long-lived ConsolidationService. Pins the
// ISSUE 5 acceptance matrix — per-table byte-identity against a serial
// single-table run across threads {1,2,4} x admission-order permutations
// x warm/cold cache state — plus the weighted round-robin fairness
// policy, the streamed event contract, bounded admission, the
// cross-request search-cache warmth and error propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "consolidate/oracle.h"
#include "obs/trace.h"
#include "pipeline/fault_oracle.h"
#include "pipeline/pipeline.h"
#include "serve/service.h"

namespace ustl {
namespace {

constexpr size_t kBudget = 20;

// A small clustered table whose values form one obvious variant family
// per cluster ("<tag><i> Street" vs "<tag><i> St"), replicated into
// `columns` identical columns. Distinct tags make distinct tables;
// identical tags make byte-identical content (the cross-request reuse
// case).
Table MakeTable(const std::string& tag, size_t columns, int clusters) {
  std::vector<std::string> names;
  for (size_t i = 1; i <= columns; ++i) {
    names.push_back("value" + std::to_string(i));
  }
  Table table(names);
  for (int i = 1; i <= clusters; ++i) {
    const std::string n = tag + std::to_string(i);
    const size_t c = table.AddCluster();
    table.AddRecord(c, std::vector<std::string>(columns, n + " Street"));
    table.AddRecord(c, std::vector<std::string>(columns, n + " St"));
    table.AddRecord(c, std::vector<std::string>(columns, n + " St"));
  }
  return table;
}

FrameworkOptions TestFramework() {
  FrameworkOptions framework;
  framework.budget_per_column = kBudget;
  return framework;
}

// The contract's reference point: a serial single-table pipeline run.
std::string SerialFingerprint(Table table) {
  ApproveAllOracle oracle;
  PipelineOptions options;
  options.framework = TestFramework();
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  return FingerprintConsolidation(table, run.golden_records);
}

TEST(ConsolidationServiceTest,
     ByteIdenticalAcrossThreadsAdmissionOrdersAndWarmth) {
  // Three tables: two distinct, one repeating the first's content (so the
  // shared caches fire across requests within a round too).
  const std::vector<Table> originals = {MakeTable("Oak", 1, 6),
                                        MakeTable("Pine", 2, 5),
                                        MakeTable("Oak", 1, 6)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  ASSERT_NE(baselines[0], baselines[1]);
  ASSERT_EQ(baselines[0], baselines[2]);  // same content, same output

  for (int threads : {1, 2, 4}) {
    for (const std::vector<size_t>& order :
         {std::vector<size_t>{0, 1, 2}, std::vector<size_t>{2, 1, 0}}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " order="
                                      << order[0] << order[1] << order[2]);
      ServiceOptions options;
      options.framework = TestFramework();
      options.num_threads = threads;
      ApproveAllOracle oracle;
      ConsolidationService service(&oracle, options);
      // Two rounds through the same service: round 1 runs cold, round 2
      // against verdict/search caches warmed by round 1.
      for (int round = 1; round <= 2; ++round) {
        std::vector<Table> tables = originals;
        std::vector<uint64_t> handles(tables.size());
        for (size_t t : order) {
          handles[t] = service.Submit(&tables[t]);
        }
        for (size_t t : order) {
          RequestResult result = service.Wait(handles[t]);
          EXPECT_EQ(FingerprintConsolidation(tables[t],
                                             result.golden_records),
                    baselines[t])
              << "table " << t << " round " << round;
        }
      }
    }
  }
}

TEST(ConsolidationServiceTest, FairnessSmallTableOvertakesHugeTable) {
  // A huge table admitted first and a 1-column table admitted second:
  // under weighted round-robin the small table gets the very next column
  // slot and completes while the huge one is mid-flight. start_paused
  // makes the dispatch order reproducible (both requests are queued
  // before any job runs), and one worker makes it fully deterministic.
  Table huge = MakeTable("Huge", 5, 6);
  Table small = MakeTable("Tiny", 1, 3);
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 1;
  options.start_paused = true;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  const uint64_t huge_handle = service.Submit(&huge);
  const uint64_t small_handle = service.Submit(&small);
  service.Resume();
  service.Wait(small_handle);
  service.Wait(huge_handle);
  const std::vector<uint64_t> order = service.CompletionOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], small_handle);
  EXPECT_EQ(order[1], huge_handle);
  EXPECT_EQ(service.stats().max_concurrent_requests, 2u);
}

TEST(ConsolidationServiceTest, WarmSearchCacheSkipsRepeatedSearches) {
  ServiceOptions options;
  options.framework = TestFramework();
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);

  auto run_once = [&](uint64_t* searches, uint64_t* warm_hits) {
    Table table = MakeTable("Elm", 1, 8);
    RequestResult result = service.Wait(service.Submit(&table));
    *searches = 0;
    *warm_hits = 0;
    for (const ColumnRunResult& column : result.per_column) {
      *searches += column.grouping.searches;
      *warm_hits += column.grouping.warm_hits;
    }
  };

  uint64_t cold_searches = 0, cold_warm_hits = 0;
  run_once(&cold_searches, &cold_warm_hits);
  EXPECT_GT(cold_searches, 0u);
  EXPECT_EQ(cold_warm_hits, 0u);

  uint64_t warm_searches = 0, warm_warm_hits = 0;
  run_once(&warm_searches, &warm_warm_hits);
  EXPECT_GT(warm_warm_hits, 0u);
  EXPECT_LT(warm_searches, cold_searches);

  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.search_cache.publishes, 0u);
  EXPECT_GT(stats.search_cache.warm_starts, 0u);
  EXPECT_GT(stats.search_cache.entries_served, 0u);
}

TEST(ConsolidationServiceTest, StreamsOrderedEventsPerRequest) {
  Table table = MakeTable("Birch", 2, 5);
  ServiceOptions options;
  options.framework = TestFramework();
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<ServeEvent> events;  // serialized callback: no lock needed
  RequestOptions request;
  request.label = "birch";
  request.on_event = [&](const ServeEvent& event) {
    events.push_back(event);
  };
  RequestResult result = service.Wait(service.Submit(&table, request));

  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, ServeEvent::Kind::kAdmitted);
  EXPECT_EQ(events.back().kind, ServeEvent::Kind::kRequestDone);
  EXPECT_EQ(events.front().label, "birch");

  size_t verdicts = 0;
  size_t columns_done = 0;
  std::map<std::string, size_t> last_rank;
  for (const ServeEvent& event : events) {
    if (event.kind == ServeEvent::Kind::kVerdict) {
      ++verdicts;
      // Presentation ranks are 1-based and strictly increasing per
      // column, whatever the cross-column interleaving.
      EXPECT_EQ(event.presented, last_rank[event.column] + 1);
      last_rank[event.column] = event.presented;
      EXPECT_GT(event.group_size, 0u);
    } else if (event.kind == ServeEvent::Kind::kColumnDone) {
      ++columns_done;
    }
  }
  size_t presented_total = 0;
  for (const ColumnRunResult& column : result.per_column) {
    presented_total += column.groups_presented;
  }
  EXPECT_EQ(verdicts, presented_total);
  EXPECT_EQ(columns_done, table.num_columns());
  EXPECT_EQ(events.back().groups_presented, presented_total);
}

TEST(ConsolidationServiceTest, EventStreamOpensWithAdmittedUnderLoad) {
  // A request submitted while workers are already busy must still see
  // kAdmitted as its first event — admission is emitted before the
  // request becomes pickable.
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables = {MakeTable("Alder", 3, 6),
                               MakeTable("Cedar", 1, 4),
                               MakeTable("Maple", 2, 5)};
  // One vector per request; callbacks are serialized service-wide, so
  // unsynchronized writes are safe.
  std::vector<std::vector<ServeEvent::Kind>> kinds(tables.size());
  std::vector<uint64_t> handles(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestOptions request;
    request.on_event = [&kinds, t](const ServeEvent& event) {
      kinds[t].push_back(event.kind);
    };
    handles[t] = service.Submit(&tables[t], std::move(request));
  }
  for (uint64_t handle : handles) service.Wait(handle);
  for (size_t t = 0; t < tables.size(); ++t) {
    ASSERT_FALSE(kinds[t].empty()) << t;
    EXPECT_EQ(kinds[t].front(), ServeEvent::Kind::kAdmitted) << t;
    EXPECT_EQ(kinds[t].back(), ServeEvent::Kind::kRequestDone) << t;
  }
}

TEST(ConsolidationServiceTest, BoundedAdmissionStillDrainsEverything) {
  const std::string baseline = SerialFingerprint(MakeTable("Ash", 1, 5));
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  options.max_pending_requests = 1;  // every Submit waits for the backlog
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables(3, MakeTable("Ash", 1, 5));
  std::vector<uint64_t> handles;
  for (Table& table : tables) {
    handles.push_back(service.Submit(&table));
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestResult result = service.Wait(handles[t]);
    EXPECT_EQ(FingerprintConsolidation(tables[t], result.golden_records),
              baseline);
  }
  EXPECT_EQ(service.stats().requests_completed, 3u);
}

TEST(ConsolidationServiceTest, SharedBrokerDeduplicatesAcrossRequests) {
  // Identical tables admitted back to back: the second request's
  // questions are all verdict-cache hits, so the backend hears each
  // distinct question once per service lifetime.
  Table first = MakeTable("Fir", 1, 6);
  Table second = MakeTable("Fir", 1, 6);
  ServiceOptions options;
  options.framework = TestFramework();
  SimulatedOracle oracle(
      [](const StringPair& pair) { return pair.lhs.size() != pair.rhs.size(); },
      nullptr, SimulatedOracle::Options{});
  ConsolidationService service(&oracle, options);
  service.Wait(service.Submit(&first));
  const OracleBrokerStats after_first = service.stats().oracle;
  service.Wait(service.Submit(&second));
  const OracleBrokerStats after_second = service.stats().oracle;
  EXPECT_GT(after_first.backend_calls, 0u);
  EXPECT_EQ(after_second.backend_calls, after_first.backend_calls);
  EXPECT_GT(after_second.cache_hits, after_first.cache_hits);
  EXPECT_EQ(FingerprintConsolidation(first, {}),
            FingerprintConsolidation(second, {}));
}

// Throws on every question mentioning "Poison".
class PoisonOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    for (const StringPair& pair : group_pairs) {
      if (pair.lhs.find("Poison") != std::string::npos) {
        throw std::runtime_error("backend refused");
      }
    }
    Verdict verdict;
    verdict.approved = true;
    return verdict;
  }
};

TEST(ConsolidationServiceTest, BackendFailureSurfacesInWaitAndServiceLives) {
  Table poisoned = MakeTable("Poison", 1, 4);
  Table healthy = MakeTable("Willow", 1, 4);
  ServiceOptions options;
  options.framework = TestFramework();
  PoisonOracle oracle;
  ConsolidationService service(&oracle, options);
  const uint64_t bad = service.Submit(&poisoned);
  EXPECT_THROW(service.Wait(bad), std::runtime_error);
  // The service survives a failed request: later requests run normally.
  RequestResult result = service.Wait(service.Submit(&healthy));
  EXPECT_EQ(FingerprintConsolidation(healthy, result.golden_records),
            SerialFingerprint(MakeTable("Willow", 1, 4)));
}

TEST(SearchResultCacheTest, KeyBoundEvictsLeastRecentlyUsed) {
  SearchResultCache::Options options;
  options.max_keys = 2;
  SearchResultCache cache(options);
  auto key = [](uint64_t tag) {
    SearchKeyHasher hasher;
    hasher.U64(tag);
    return hasher.Finish();
  };
  CachedPivot pivot;
  pivot.path = {1, 2};
  pivot.members = {0};
  pivot.count = 1;
  cache.Publish(key(1), 0, pivot);  // keys: {1}
  cache.Publish(key(2), 0, pivot);  // keys: {1, 2}
  EXPECT_EQ(cache.WarmStart(key(1)).size(), 1u);  // 1 is now most recent
  cache.Publish(key(3), 0, pivot);  // evicts 2 (LRU)
  EXPECT_EQ(cache.WarmStart(key(1)).size(), 1u);
  EXPECT_EQ(cache.WarmStart(key(3)).size(), 1u);
  EXPECT_TRUE(cache.WarmStart(key(2)).empty());
  const SearchCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.keys, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ConsolidationServiceTest, ZeroColumnTableCompletesImmediately) {
  Table empty(std::vector<std::string>{});
  ServiceOptions options;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  RequestResult result = service.Wait(service.Submit(&empty));
  EXPECT_TRUE(result.per_column.empty());
  EXPECT_EQ(service.stats().requests_completed, 1u);
}

// ---------------------------------------------------------------------
// Fault-tolerance matrix (PR "robustness"): threads x fault plans x
// cancel points, byte-identity on survivors, bounded cancel latency.
// ---------------------------------------------------------------------

TEST(ServiceFaultToleranceTest,
     ByteIdenticalUnderEventuallySuccessfulFaultPlans) {
  // Every (threads x cache x fault-plan) cell must reproduce the serial
  // clean run byte for byte: retries recover every injected failure
  // (max_attempts > failures_per_question) and verdicts are pure
  // functions of question content, so the faults change only how often
  // the backend is asked.
  const std::vector<Table> originals = {MakeTable("Oak", 2, 5),
                                        MakeTable("Pine", 1, 6)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  std::vector<FaultPlan> plans(2);
  plans[0].fault_rate = 0.7;
  plans[0].failures_per_question = 2;
  plans[0].seed = 3;
  plans[1].fault_rate = 1.0;  // every question fails once
  plans[1].failures_per_question = 1;
  plans[1].seed = 4;

  for (int threads : {1, 4}) {
    for (bool cache : {true, false}) {
      for (size_t p = 0; p < plans.size(); ++p) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads
                                        << " cache=" << cache << " plan=" << p);
        ApproveAllOracle backend;
        FaultInjectingOracle faulty(&backend, plans[p]);
        ServiceOptions options;
        options.framework = TestFramework();
        options.num_threads = threads;
        options.broker.cache_verdicts = cache;
        options.enable_retry = true;
        options.retry.max_attempts = 3;
        ConsolidationService service(&faulty, options);
        std::vector<Table> tables = originals;
        std::vector<uint64_t> handles;
        for (Table& table : tables) handles.push_back(service.Submit(&table));
        for (size_t t = 0; t < tables.size(); ++t) {
          RequestResult result = service.Wait(handles[t]);
          EXPECT_EQ(result.status, RequestStatus::kOk);
          EXPECT_EQ(
              FingerprintConsolidation(tables[t], result.golden_records),
              baselines[t]);
        }
        const ServiceStats stats = service.stats();
        EXPECT_GT(faulty.faults_injected(), 0u);
        EXPECT_GT(stats.retry.retries, 0u);
        EXPECT_EQ(stats.retry.exhausted, 0u);
        EXPECT_EQ(stats.retry.breaker_opens, 0u);
      }
    }
  }
}

TEST(ServiceFaultToleranceTest, RetriedQuestionsEmitKRetriedEvents) {
  FaultPlan plan;
  plan.fault_rate = 1.0;
  plan.failures_per_question = 1;
  ApproveAllOracle backend;
  FaultInjectingOracle faulty(&backend, plan);
  ServiceOptions options;
  options.framework = TestFramework();
  options.enable_retry = true;
  options.retry.max_attempts = 2;
  ConsolidationService service(&faulty, options);
  Table table = MakeTable("Elm", 1, 4);
  size_t retried = 0;  // serialized callback: no lock needed
  RequestOptions request;
  request.on_event = [&](const ServeEvent& event) {
    if (event.kind == ServeEvent::Kind::kRetried) {
      ++retried;
      EXPECT_EQ(event.attempt, 1);  // first attempt failed
    }
  };
  RequestResult result = service.Wait(service.Submit(&table, request));
  EXPECT_EQ(result.status, RequestStatus::kOk);
  EXPECT_GT(retried, 0u);
  EXPECT_EQ(service.stats().retry.retries, retried);
}

TEST(ServiceFaultToleranceTest, PreAdmissionCancelCommitsNothing) {
  // Cancelled while paused, before any column job ran: the request
  // finalizes kCancelled without touching its table, and the survivor
  // admitted alongside it stays byte-identical.
  Table doomed = MakeTable("Doom", 2, 5);
  const Table doomed_before = doomed;
  Table survivor = MakeTable("Oak", 1, 6);
  const std::string baseline = SerialFingerprint(survivor);
  ServiceOptions options;
  options.framework = TestFramework();
  options.start_paused = true;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<ServeEvent::Kind> kinds;
  RequestOptions request;
  request.on_event = [&](const ServeEvent& event) {
    kinds.push_back(event.kind);
  };
  const uint64_t doomed_handle = service.Submit(&doomed, request);
  const uint64_t survivor_handle = service.Submit(&survivor);
  service.Cancel(doomed_handle);
  service.Resume();

  RequestResult cancelled = service.Wait(doomed_handle);
  EXPECT_EQ(cancelled.status, RequestStatus::kCancelled);
  EXPECT_TRUE(cancelled.per_column.empty());
  EXPECT_TRUE(cancelled.golden_records.empty());
  EXPECT_EQ(FingerprintConsolidation(doomed, {}),
            FingerprintConsolidation(doomed_before, {}));  // untouched
  ASSERT_GE(kinds.size(), 3u);
  EXPECT_EQ(kinds[kinds.size() - 2], ServeEvent::Kind::kCancelled);
  EXPECT_EQ(kinds.back(), ServeEvent::Kind::kRequestDone);

  RequestResult alive = service.Wait(survivor_handle);
  EXPECT_EQ(alive.status, RequestStatus::kOk);
  EXPECT_EQ(FingerprintConsolidation(survivor, alive.golden_records),
            baseline);
  EXPECT_EQ(service.stats().requests_cancelled, 1u);
}

TEST(ServiceFaultToleranceTest, MidColumnCancelUnwindsAndSparesSurvivors) {
  // Cancel from inside the request's own event stream after the first
  // verdict (the documented event-callback-safe use of Cancel): the
  // in-flight column unwinds at a checkpoint, the table stays untouched
  // and concurrently running requests still match the serial baseline.
  for (int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    Table doomed = MakeTable("Doom", 2, 6);
    const Table doomed_before = doomed;
    Table survivor = MakeTable("Pine", 1, 6);
    const std::string baseline = SerialFingerprint(survivor);
    ServiceOptions options;
    options.framework = TestFramework();
    options.num_threads = threads;
    ApproveAllOracle oracle;
    ConsolidationService service(&oracle, options);
    RequestOptions request;
    request.on_event = [&](const ServeEvent& event) {
      // The event carries its own request id, so the very first verdict
      // can cancel even if it beats Submit's return.
      if (event.kind == ServeEvent::Kind::kVerdict) {
        service.Cancel(event.request);
      }
    };
    const uint64_t doomed_handle = service.Submit(&doomed, request);
    const uint64_t survivor_handle = service.Submit(&survivor);

    const auto cancel_started = std::chrono::steady_clock::now();
    RequestResult cancelled = service.Wait(doomed_handle);
    const auto cancel_latency =
        std::chrono::steady_clock::now() - cancel_started;
    EXPECT_EQ(cancelled.status, RequestStatus::kCancelled);
    EXPECT_TRUE(cancelled.per_column.empty());
    EXPECT_EQ(FingerprintConsolidation(doomed, {}),
              FingerprintConsolidation(doomed_before, {}));
    // Bounded cancel latency: the unwind is checkpoint-to-checkpoint on
    // a small table, nowhere near this ceiling unless cancellation hangs.
    EXPECT_LT(cancel_latency, std::chrono::seconds(30));

    RequestResult alive = service.Wait(survivor_handle);
    EXPECT_EQ(alive.status, RequestStatus::kOk);
    EXPECT_EQ(FingerprintConsolidation(survivor, alive.golden_records),
              baseline);
  }
}

TEST(ServiceFaultToleranceTest, DeadlineExceededReturnsTypedStatus) {
  // A 1 ms deadline against a slow oracle (every question sleeps):
  // the request must come back kDeadlineExceeded — promptly, not after
  // serving the whole table — with nothing committed.
  FaultPlan plan;
  plan.slow_rate = 1.0;
  plan.slow_ms = 25;
  ApproveAllOracle backend;
  FaultInjectingOracle slow(&backend, plan);
  ServiceOptions options;
  options.framework = TestFramework();
  ConsolidationService service(&slow, options);
  Table doomed = MakeTable("Slow", 1, 8);
  const Table doomed_before = doomed;
  RequestOptions request;
  request.deadline_ms = 1;
  const auto started = std::chrono::steady_clock::now();
  RequestResult result = service.Wait(service.Submit(&doomed, request));
  const auto latency = std::chrono::steady_clock::now() - started;
  EXPECT_EQ(result.status, RequestStatus::kDeadlineExceeded);
  EXPECT_TRUE(result.per_column.empty());
  EXPECT_EQ(FingerprintConsolidation(doomed, {}),
            FingerprintConsolidation(doomed_before, {}));
  EXPECT_LT(latency, std::chrono::seconds(30));
  EXPECT_EQ(service.stats().requests_deadline_exceeded, 1u);
  // The service still serves: an undeadlined request runs clean.
  Table alive = MakeTable("Slow", 1, 8);
  RequestResult ok = service.Wait(service.Submit(&alive));
  EXPECT_EQ(ok.status, RequestStatus::kOk);
}

TEST(ServiceFaultToleranceTest, ExhaustedRetriesFailOnlyTheAskingRequest) {
  // A persistently faulty backend exhausts the poisoned request's
  // retries; the clean request sharing the service (and the broker
  // batch) still completes byte-identically.
  class SelectiveFaultOracle : public VerificationOracle {
   public:
    Verdict Verify(const std::vector<StringPair>& group_pairs) override {
      for (const StringPair& pair : group_pairs) {
        if (pair.lhs.find("Doom") != std::string::npos) {
          throw std::runtime_error("backend refuses this table");
        }
      }
      Verdict verdict;
      verdict.approved = true;
      return verdict;
    }
  };
  Table doomed = MakeTable("Doom", 1, 4);
  Table survivor = MakeTable("Oak", 1, 6);
  const std::string baseline = SerialFingerprint(survivor);
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  options.enable_retry = true;
  options.retry.max_attempts = 2;
  options.retry.breaker_failure_threshold = 0;  // isolate retry semantics
  SelectiveFaultOracle oracle;
  ConsolidationService service(&oracle, options);
  const uint64_t doomed_handle = service.Submit(&doomed);
  const uint64_t survivor_handle = service.Submit(&survivor);
  EXPECT_THROW(service.Wait(doomed_handle), std::runtime_error);
  RequestResult alive = service.Wait(survivor_handle);
  EXPECT_EQ(alive.status, RequestStatus::kOk);
  EXPECT_EQ(FingerprintConsolidation(survivor, alive.golden_records),
            baseline);
  EXPECT_GT(service.stats().retry.exhausted, 0u);
}

TEST(ConsolidationServiceTest, HandleGcReapsOldestUnwaitedResult) {
  ServiceOptions options;
  options.framework = TestFramework();
  options.max_retained_results = 1;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables(3, MakeTable("Ash", 1, 4));
  std::vector<uint64_t> handles;
  for (Table& table : tables) handles.push_back(service.Submit(&table));
  // Let everything complete without waiting any handle.
  while (service.stats().requests_completed < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Two oldest completed-unwaited handles were reaped; the newest kept.
  EXPECT_EQ(service.stats().handles_reaped, 2u);
  RequestResult reaped = service.Wait(handles[0]);
  EXPECT_EQ(reaped.status, RequestStatus::kReaped);
  EXPECT_TRUE(reaped.per_column.empty());
  RequestResult kept = service.Wait(handles[2]);
  EXPECT_EQ(kept.status, RequestStatus::kOk);
  EXPECT_FALSE(kept.per_column.empty());
  // The tables themselves were standardized either way — reaping frees
  // the result summary, not the committed work.
  EXPECT_EQ(FingerprintConsolidation(tables[0], {}),
            FingerprintConsolidation(tables[2], {}));
}

TEST(ConsolidationServiceTest, AgingKeepsOutputByteIdentical) {
  // An aggressive aging threshold reorders grants, never bytes: with
  // multi-column tables and threshold 1 the scheduler constantly
  // preempts, and each table still matches its serial baseline.
  const std::vector<Table> originals = {MakeTable("Oak", 3, 5),
                                        MakeTable("Pine", 3, 4),
                                        MakeTable("Ash", 2, 6)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  options.start_paused = true;
  options.aging_grant_threshold = 1;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables = originals;
  std::vector<uint64_t> handles;
  for (Table& table : tables) handles.push_back(service.Submit(&table));
  service.Resume();
  for (size_t t = 0; t < tables.size(); ++t) {
    RequestResult result = service.Wait(handles[t]);
    EXPECT_EQ(FingerprintConsolidation(tables[t], result.golden_records),
              baselines[t]);
  }
  EXPECT_GT(service.stats().aged_grants, 0u);
}

TEST(ServiceObservabilityTest, TracingNeverPerturbsOutputOrOracleTraffic) {
  // The ISSUE 8 zero-perturbation gate at test scope: the same workload
  // through a traced service and an untraced one must produce
  // byte-identical tables AND identical backend call counts (tracing
  // must not even shift the cache/batching behavior), across thread
  // counts.
  const std::vector<Table> originals = {MakeTable("Oak", 1, 6),
                                        MakeTable("Pine", 2, 5)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  for (int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    size_t backend_calls[2] = {0, 0};
    for (int traced = 0; traced < 2; ++traced) {
      ServiceOptions options;
      options.framework = TestFramework();
      options.num_threads = threads;
      ApproveAllOracle oracle;
      ConsolidationService service(&oracle, options);
      CountingTraceSink sink;
      std::vector<Table> tables = originals;
      std::vector<uint64_t> handles;
      for (Table& table : tables) {
        RequestOptions request;
        if (traced == 1) request.trace_sink = &sink;
        handles.push_back(service.Submit(&table, std::move(request)));
      }
      for (size_t t = 0; t < tables.size(); ++t) {
        RequestResult result = service.Wait(handles[t]);
        EXPECT_EQ(FingerprintConsolidation(tables[t], result.golden_records),
                  baselines[t])
            << "table " << t << " traced=" << traced;
      }
      backend_calls[traced] = service.stats().oracle.backend_calls;
      if (traced == 1) {
        EXPECT_GT(sink.count(), 0u);
      }
    }
    EXPECT_EQ(backend_calls[0], backend_calls[1]);
  }
}

TEST(ServiceObservabilityTest, TraceStreamClosesEveryRequestWithOneRoot) {
  // Each traced request must emit exactly one root "request" span
  // (parent 0, id 1) whose request id is unique even when labels repeat.
  std::ostringstream out;
  JsonLinesTraceSink sink(&out);
  ServiceOptions options;
  options.framework = TestFramework();
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  for (int round = 0; round < 2; ++round) {
    Table table = MakeTable("Elm", 1, 4);
    RequestOptions request;
    request.label = "elm";  // same label both rounds
    request.trace_sink = &sink;
    service.Wait(service.Submit(&table, std::move(request)));
  }
  const std::string text = out.str();
  size_t roots = 0;
  size_t pos = 0;
  while ((pos = text.find("\"name\": \"request\"", pos)) !=
         std::string::npos) {
    ++roots;
    pos += 1;
  }
  EXPECT_EQ(roots, 2u);
  // The label#id scheme keeps repeated labels distinct.
  EXPECT_NE(text.find("\"request\": \"elm#1\""), std::string::npos);
  EXPECT_NE(text.find("\"request\": \"elm#2\""), std::string::npos);
}

TEST(ServiceObservabilityTest, EventsCarryMonotonicSeqAndTimestamps) {
  // ServeEvent seq is the 1-based per-request emission order and ts_us
  // the service-relative steady clock: contiguous and non-decreasing per
  // request (both excluded from determinism comparisons).
  struct Seen {
    std::vector<uint64_t> seqs;
    std::vector<int64_t> ts;
  };
  std::map<uint64_t, Seen> per_request;
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 2;
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);
  std::vector<Table> tables = {MakeTable("Oak", 1, 6), MakeTable("Ash", 2, 4)};
  std::vector<uint64_t> handles;
  for (Table& table : tables) {
    RequestOptions request;
    request.on_event = [&per_request](const ServeEvent& event) {
      per_request[event.request].seqs.push_back(event.seq);
      per_request[event.request].ts.push_back(event.ts_us);
    };
    handles.push_back(service.Submit(&table, std::move(request)));
  }
  for (uint64_t handle : handles) service.Wait(handle);
  ASSERT_EQ(per_request.size(), 2u);
  for (const auto& entry : per_request) {
    const Seen& seen = entry.second;
    ASSERT_FALSE(seen.seqs.empty());
    for (size_t i = 0; i < seen.seqs.size(); ++i) {
      EXPECT_EQ(seen.seqs[i], i + 1);  // contiguous from 1
    }
    for (size_t i = 1; i < seen.ts.size(); ++i) {
      EXPECT_GE(seen.ts[i], seen.ts[i - 1]);
    }
  }
}

TEST(ServiceObservabilityTest, RecorderAndProfilerNeverPerturbOutput) {
  // ISSUE 10 acceptance at test scope: with the flight recorder AND the
  // profiler on (the always-on diagnosis configuration), a traced run
  // still produces byte-identical tables and identical backend traffic
  // vs a run with the whole diagnosis layer off, across thread counts.
  const std::vector<Table> originals = {MakeTable("Oak", 1, 6),
                                        MakeTable("Pine", 2, 5)};
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  for (int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    size_t backend_calls[2] = {0, 0};
    for (int diagnosed = 0; diagnosed < 2; ++diagnosed) {
      ServiceOptions options;
      options.framework = TestFramework();
      options.num_threads = threads;
      options.enable_flight_recorder = diagnosed == 1;
      options.enable_profiler = diagnosed == 1;
      ApproveAllOracle oracle;
      ConsolidationService service(&oracle, options);
      CountingTraceSink sink;
      std::vector<Table> tables = originals;
      std::vector<uint64_t> handles;
      for (Table& table : tables) {
        RequestOptions request;
        if (diagnosed == 1) request.trace_sink = &sink;
        handles.push_back(service.Submit(&table, std::move(request)));
      }
      for (size_t t = 0; t < tables.size(); ++t) {
        RequestResult result = service.Wait(handles[t]);
        EXPECT_EQ(FingerprintConsolidation(tables[t], result.golden_records),
                  baselines[t])
            << "table " << t << " diagnosed=" << diagnosed;
      }
      backend_calls[diagnosed] = service.stats().oracle.backend_calls;
      if (diagnosed == 1) {
        // The diagnosis layer actually saw the spans it must not act on.
        ASSERT_NE(service.flight_recorder(), nullptr);
        ASSERT_NE(service.profiler(), nullptr);
        EXPECT_GT(service.flight_recorder()->recorded(), 0u);
        EXPECT_GT(service.profiler()->folded_spans(), 0u);
        const auto totals = service.profiler()->TotalsByName();
        EXPECT_EQ(totals.at("request").count, 2u);
        EXPECT_GT(totals.count("column"), 0u);
        // The profile gauges surface through the registry.
        const std::string text = service.metrics().WriteText();
        EXPECT_NE(text.find("ustl_profile_folded_spans"), std::string::npos);
        EXPECT_NE(text.find("ustl_flight_recorder_spans"), std::string::npos);
        EXPECT_NE(text.find("ustl_build_info{compiler=\""),
                  std::string::npos);
      }
    }
    EXPECT_EQ(backend_calls[0], backend_calls[1]);
  }
}

TEST(ServiceObservabilityTest, TraceSamplingIsDeterministicAcrossThreads) {
  // --trace-sample selects requests by content hash, so the sampled SET
  // must be a pure function of the tables — identical across thread
  // counts and runs — and sampling must not change a single output byte.
  std::vector<Table> originals;
  for (int i = 0; i < 8; ++i) {
    originals.push_back(MakeTable("Samp" + std::to_string(i), 1, 4));
  }
  std::vector<std::string> baselines;
  for (const Table& table : originals) {
    baselines.push_back(SerialFingerprint(table));
  }
  std::vector<std::vector<bool>> sampled_by_threads;
  for (int threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ServiceOptions options;
    options.framework = TestFramework();
    options.num_threads = threads;
    options.trace_sample = 2;
    ApproveAllOracle oracle;
    ConsolidationService service(&oracle, options);
    // One sink per request: a sampled-away request leaves its own sink
    // untouched, which is how we read the per-table decision back out.
    std::vector<CountingTraceSink> sinks(originals.size());
    std::vector<Table> tables = originals;
    std::vector<uint64_t> handles;
    for (size_t t = 0; t < tables.size(); ++t) {
      RequestOptions request;
      request.trace_sink = &sinks[t];
      handles.push_back(service.Submit(&tables[t], std::move(request)));
    }
    std::vector<bool> sampled(originals.size());
    size_t sampled_count = 0;
    for (size_t t = 0; t < tables.size(); ++t) {
      RequestResult result = service.Wait(handles[t]);
      EXPECT_EQ(FingerprintConsolidation(tables[t], result.golden_records),
                baselines[t])
          << "table " << t;
      sampled[t] = sinks[t].count() > 0;
      sampled_count += sampled[t] ? 1 : 0;
    }
    // Every request was either sampled or counted as unsampled.
    const std::string text = service.metrics().WriteText();
    EXPECT_NE(text.find("ustl_trace_sampled_total " +
                        std::to_string(sampled_count)),
              std::string::npos);
    EXPECT_NE(text.find("ustl_trace_unsampled_total " +
                        std::to_string(originals.size() - sampled_count)),
              std::string::npos);
    sampled_by_threads.push_back(std::move(sampled));
  }
  EXPECT_EQ(sampled_by_threads[0], sampled_by_threads[1]);
}

TEST(ServiceObservabilityTest, DeadlineExceededFiresFlightDump) {
  // A request that dies on its deadline must leave a diagnosis artifact:
  // one flight-recorder dump whose JSON carries the reason, the recent
  // span ring and the per-request progress table.
  FaultPlan plan;
  plan.slow_rate = 1.0;
  plan.slow_ms = 25;
  ApproveAllOracle backend;
  FaultInjectingOracle slow(&backend, plan);
  ServiceOptions options;
  options.framework = TestFramework();
  std::vector<std::string> dumps;
  options.flight_dump_sink = [&dumps](const std::string& dump) {
    dumps.push_back(dump);
  };
  ConsolidationService service(&slow, options);
  Table doomed = MakeTable("Slow", 1, 8);
  RequestOptions request;
  request.deadline_ms = 1;
  RequestResult result = service.Wait(service.Submit(&doomed, request));
  ASSERT_EQ(result.status, RequestStatus::kDeadlineExceeded);
  ASSERT_EQ(dumps.size(), 1u);
  const std::string& dump = dumps[0];
  EXPECT_EQ(dump.find("{\"flight_recorder\": {"), 0u);
  EXPECT_NE(dump.find("\"reason\": \"deadline_exceeded\""),
            std::string::npos);
  // The culprit is still in the progress table when the dump fires.
  EXPECT_NE(dump.find("\"requests\": [{\"id\": 1,"), std::string::npos);
  EXPECT_NE(dump.find("\"broker\": {\"pending\":"), std::string::npos);
  EXPECT_NE(dump.find("\"persist\": {\"wal_appends\":"), std::string::npos);
  EXPECT_NE(service.metrics().WriteText().find("ustl_flight_dumps_total 1"),
            std::string::npos);
}

TEST(ServiceObservabilityTest, StallWatchdogDumpsSlowRequestsOnce) {
  // CheckStalls latches per request: a request older than the threshold
  // triggers exactly one dump however often the watchdog polls.
  FaultPlan plan;
  plan.slow_rate = 1.0;
  plan.slow_ms = 30;
  ApproveAllOracle backend;
  FaultInjectingOracle slow(&backend, plan);
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 1;
  options.stall_threshold_ms = 5;
  std::vector<std::string> dumps;
  options.flight_dump_sink = [&dumps](const std::string& dump) {
    dumps.push_back(dump);
  };
  ConsolidationService service(&slow, options);
  Table slow_table = MakeTable("Stall", 1, 4);
  const uint64_t handle = service.Submit(&slow_table);
  // Poll past the threshold: the first check past 5 ms dumps, later
  // checks see the latch and stay quiet.
  size_t stalled = 0;
  for (int i = 0; i < 100 && stalled == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stalled = service.CheckStalls();
  }
  EXPECT_EQ(stalled, 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(service.CheckStalls(), 0u);
  }
  RequestResult result = service.Wait(handle);
  EXPECT_EQ(result.status, RequestStatus::kOk);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("\"reason\": \"stall\""), std::string::npos);
}

TEST(ServiceShutdownTest, DrainRejectsNewSubmitsButFinishesInFlight) {
  // ISSUE 9 satellite: once Shutdown begins draining, a new Submit comes
  // back immediately with the typed kShuttingDown status, while requests
  // admitted before the drain complete normally with unchanged bytes.
  const std::string baseline = SerialFingerprint(MakeTable("Drain", 1, 5));
  ServiceOptions options;
  options.framework = TestFramework();
  options.num_threads = 1;
  options.start_paused = true;  // both in-flight requests queue first
  ApproveAllOracle oracle;
  ConsolidationService service(&oracle, options);

  Table in_flight_a = MakeTable("Drain", 1, 5);
  Table in_flight_b = MakeTable("Drain", 1, 5);
  const uint64_t handle_a = service.Submit(&in_flight_a);
  const uint64_t handle_b = service.Submit(&in_flight_b);

  service.Shutdown(/*drain=*/false);  // begin draining, don't block

  // Rejected without blocking: the handle is pre-completed.
  Table late = MakeTable("Late", 1, 4);
  const uint64_t handle_late = service.Submit(&late);
  RequestResult rejected = service.Wait(handle_late);
  EXPECT_EQ(rejected.status, RequestStatus::kShuttingDown);
  EXPECT_TRUE(rejected.golden_records.empty());
  EXPECT_EQ(service.stats().requests_rejected, 1u);

  // In-flight requests are unaffected by the drain: they complete with
  // kOk and the same bytes as a serial run.
  service.Resume();
  RequestResult result_a = service.Wait(handle_a);
  RequestResult result_b = service.Wait(handle_b);
  EXPECT_EQ(result_a.status, RequestStatus::kOk);
  EXPECT_EQ(result_b.status, RequestStatus::kOk);
  EXPECT_EQ(FingerprintConsolidation(in_flight_a, result_a.golden_records),
            baseline);
  EXPECT_EQ(FingerprintConsolidation(in_flight_b, result_b.golden_records),
            baseline);
  service.Shutdown(/*drain=*/true);  // idempotent; already drained
  EXPECT_EQ(service.stats().requests_completed, 2u);
}

TEST(ServiceShutdownTest, PersistedServiceWarmRestartsByteIdentical) {
  // ISSUE 9 acceptance at test scope: a service with persist_dir set
  // writes its warm state on shutdown; a second service over the same
  // directory recovers it, produces byte-identical output, and makes
  // strictly fewer (here: zero) backend calls.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("ustl_serve_persist_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  const std::string baseline = SerialFingerprint(MakeTable("Warm", 2, 6));

  size_t cold_calls = 0;
  {
    ServiceOptions options;
    options.framework = TestFramework();
    options.persist_dir = dir;
    ApproveAllOracle oracle;
    ConsolidationService service(&oracle, options);
    EXPECT_EQ(service.stats().persist.recovered_records, 0u);
    Table table = MakeTable("Warm", 2, 6);
    RequestResult result = service.Wait(service.Submit(&table));
    EXPECT_EQ(result.status, RequestStatus::kOk);
    EXPECT_EQ(FingerprintConsolidation(table, result.golden_records),
              baseline);
    cold_calls = service.stats().oracle.backend_calls;
    EXPECT_GT(cold_calls, 0u);
    EXPECT_GT(service.stats().persist.wal_appends, 0u);
    // Destructor = Shutdown(true): drains and writes the final snapshot.
  }
  ASSERT_TRUE(fs::exists(dir + "/snapshot.bin"));

  {
    ServiceOptions options;
    options.framework = TestFramework();
    options.persist_dir = dir;
    ApproveAllOracle oracle;
    ConsolidationService service(&oracle, options);
    EXPECT_GT(service.stats().persist.recovered_records, 0u);
    Table table = MakeTable("Warm", 2, 6);
    RequestResult result = service.Wait(service.Submit(&table));
    EXPECT_EQ(result.status, RequestStatus::kOk);
    // Byte-identical output from recovered state, zero backend traffic:
    // warm state only ever skips questions, never changes answers.
    EXPECT_EQ(FingerprintConsolidation(table, result.golden_records),
              baseline);
    EXPECT_EQ(service.stats().oracle.backend_calls, 0u);
    EXPECT_LT(service.stats().oracle.backend_calls, cold_calls);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ustl

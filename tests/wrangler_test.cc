// Tests for src/wrangler: the rule engine and the three hand-written
// dataset scripts (the paper's Trifacta baseline, Section 8).
#include <gtest/gtest.h>

#include "wrangler/rule.h"
#include "wrangler/scripts.h"

namespace ustl {
namespace {

WranglerRule Re(std::string pattern, std::string replacement) {
  WranglerRule rule;
  rule.pattern = std::move(pattern);
  rule.replacement = std::move(replacement);
  return rule;
}

TEST(WranglerRuleTest, CompileRejectsBadRegex) {
  EXPECT_FALSE(WranglerScript::Compile("bad", {Re("(", "x")}).ok());
}

TEST(WranglerRuleTest, CaptureGroupSubstitution) {
  // Section 8's second example rule: transpose "last, first initial.".
  auto script = WranglerScript::Compile(
      "transpose",
      {Re("([a-z]+), ([a-z]+) ([a-z]\\.)", "$2 $3 $1")});
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->Apply("knuth, donald e."), "donald e. knuth");
}

TEST(WranglerRuleTest, RemoveParenthesized) {
  // Section 8's first example rule: drop parenthesized annotations.
  auto script = WranglerScript::Compile(
      "strip", {Re("\\s*\\([a-z]+\\)", "")});
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->Apply("john carroll (edt)"), "john carroll");
  EXPECT_EQ(script->Apply("keith brown (author)"), "keith brown");
}

TEST(WranglerRuleTest, RulesApplyInOrder) {
  auto script = WranglerScript::Compile(
      "chain", {Re("a", "b"), Re("b", "c")});
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->Apply("a"), "c");
}

TEST(WranglerRuleTest, LowercaseRule) {
  WranglerRule lower;
  lower.kind = WranglerRule::Kind::kLowercase;
  auto script = WranglerScript::Compile("lower", {lower});
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->Apply("Journal of Biology"), "journal of biology");
}

TEST(WranglerRuleTest, ApplyToColumnCountsChanges) {
  auto script = WranglerScript::Compile("x", {Re("\\bSt\\b", "Street")});
  ASSERT_TRUE(script.ok());
  Column column = {{"9 St", "9 Street"}, {"Oak St", "unrelated"}};
  EXPECT_EQ(script->ApplyToColumn(&column), 2u);
  EXPECT_EQ(column[0][0], "9 Street");
  EXPECT_EQ(column[1][0], "Oak Street");
}

TEST(WranglerRuleTest, UnanchoredRuleCorruptsExpandedForms) {
  // Why the scripts anchor with \b: a naive "St" rule rewrites "Street"
  // into "Streetreet" — the global-application hazard of Section 8.
  auto script = WranglerScript::Compile("x", {Re("St", "Street")});
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->Apply("Street"), "Streetreet");
}

TEST(WranglerScriptsTest, AddressScriptExpandsAbbreviations) {
  const WranglerScript& script = AddressWranglerScript();
  EXPECT_EQ(script.Apply("9th St, 02141 WI"), "9 Street, 02141 Wisconsin");
  EXPECT_EQ(script.Apply("3 E Ave, 33990 CA"),
            "3 East Avenue, 33990 California");
}

TEST(WranglerScriptsTest, AddressScriptIsPartial) {
  // The baseline's recall ceiling: families the user missed stay put.
  const WranglerScript& script = AddressWranglerScript();
  EXPECT_EQ(script.Apply("5 Oak Ter, 10001 NV"), "5 Oak Ter, 10001 NV");
}

TEST(WranglerScriptsTest, AddressScriptGlobalCollateral) {
  // Global application is the baseline's failure mode (Section 8): an "E"
  // that is not a direction is still expanded.
  const WranglerScript& script = AddressWranglerScript();
  EXPECT_EQ(script.Apply("E"), "East");
}

TEST(WranglerScriptsTest, AuthorScriptTransposesAndStrips) {
  const WranglerScript& script = AuthorListWranglerScript();
  // The nickname rules fire after transposition ("dan" -> "daniel").
  EXPECT_EQ(script.Apply("fox, dan"), "daniel fox");
  EXPECT_EQ(script.Apply("fox, dan box, jon"), "daniel fox, jon box");
  EXPECT_EQ(script.Apply("brown, keith (author)"), "keith brown");
  EXPECT_EQ(script.Apply("bob smith"), "robert smith");
}

TEST(WranglerScriptsTest, JournalScriptExpandsAbbreviations) {
  const WranglerScript& script = JournalTitleWranglerScript();
  EXPECT_EQ(script.Apply("J. of Biology"), "Journal of Biology");
  EXPECT_EQ(script.Apply("Physics & Chemistry"), "Physics and Chemistry");
  EXPECT_EQ(script.Apply("The Annals of Ecology"), "Annals of Ecology");
  // Case variants are not handled (the baseline's recall ceiling).
  EXPECT_EQ(script.Apply("journal of biology"), "journal of biology");
}

TEST(WranglerScriptsTest, ScriptsHaveUserScaleRuleCounts) {
  // "the user wrote 30-40 lines of wrangler code" — our scripts stay in
  // the same ballpark (10-25 rules each; one hour of a skilled user).
  EXPECT_GE(AddressWranglerScript().num_rules(), 10u);
  EXPECT_LE(AddressWranglerScript().num_rules(), 40u);
  EXPECT_GE(AuthorListWranglerScript().num_rules(), 5u);
  EXPECT_GE(JournalTitleWranglerScript().num_rules(), 10u);
}

}  // namespace
}  // namespace ustl

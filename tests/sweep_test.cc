// Parameterized sweeps over the dataset generators and the grouping
// variants: generator sanity/determinism across scales and seeds, and the
// OneShot / EarlyTerm / Incremental equivalence (Theorem 6.4 plus the
// canonical tie order) on realistic generated workloads rather than
// hand-picked pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/generators.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

namespace ustl {
namespace {

enum class Kind { kAddress, kAuthorList, kJournalTitle };

GeneratedDataset Generate(Kind kind, double scale, uint64_t seed) {
  switch (kind) {
    case Kind::kAddress: {
      AddressGenOptions options;
      options.scale = scale;
      options.seed = seed;
      return GenerateAddressDataset(options);
    }
    case Kind::kAuthorList: {
      AuthorListGenOptions options;
      options.scale = scale;
      options.seed = seed;
      return GenerateAuthorListDataset(options);
    }
    case Kind::kJournalTitle: {
      JournalTitleGenOptions options;
      options.scale = scale;
      options.seed = seed;
      return GenerateJournalTitleDataset(options);
    }
  }
  return {};
}

struct SweepCase {
  Kind kind;
  double scale;
  uint64_t seed;
};

class GeneratorSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GeneratorSweepTest, StatsAreSane) {
  const SweepCase& param = GetParam();
  GeneratedDataset data = Generate(param.kind, param.scale, param.seed);
  DatasetStats stats = ComputeStats(data);
  EXPECT_GT(stats.num_clusters, 0u);
  EXPECT_GT(stats.num_records, stats.num_clusters / 2);
  EXPECT_GE(stats.avg_cluster_size, 1.0);
  EXPECT_GE(stats.max_cluster_size, stats.min_cluster_size);
  EXPECT_GT(stats.distinct_value_pairs, 0u);
  EXPECT_NEAR(stats.variant_pair_fraction + stats.conflict_pair_fraction,
              1.0, 1e-9);
  EXPECT_GT(stats.variant_pair_fraction, 0.0);
  EXPECT_GT(stats.conflict_pair_fraction, 0.0);
}

TEST_P(GeneratorSweepTest, TruthMatricesMatchColumnShape) {
  const SweepCase& param = GetParam();
  GeneratedDataset data = Generate(param.kind, param.scale, param.seed);
  ASSERT_EQ(data.cell_truth.size(), data.column.size());
  ASSERT_EQ(data.cluster_true_id.size(), data.column.size());
  for (size_t c = 0; c < data.column.size(); ++c) {
    ASSERT_EQ(data.cell_truth[c].size(), data.column[c].size());
  }
}

TEST_P(GeneratorSweepTest, DeterministicInSeed) {
  const SweepCase& param = GetParam();
  GeneratedDataset a = Generate(param.kind, param.scale, param.seed);
  GeneratedDataset b = Generate(param.kind, param.scale, param.seed);
  EXPECT_EQ(a.column, b.column);
  EXPECT_EQ(a.cell_truth, b.cell_truth);
  GeneratedDataset c = Generate(param.kind, param.scale, param.seed + 1);
  EXPECT_NE(a.column, c.column);
}

TEST_P(GeneratorSweepTest, VariantJudgeAgreesWithCellTruthOnFullValues) {
  // For whole-value pairs within a cluster, the pair-level judge and the
  // cell-level ground truth must tell the same story (the judge also
  // covers token-level segments, which cell truth cannot).
  const SweepCase& param = GetParam();
  GeneratedDataset data = Generate(param.kind, param.scale, param.seed);
  size_t checked = 0;
  for (size_t c = 0; c < data.column.size() && checked < 300; ++c) {
    const auto& cluster = data.column[c];
    for (size_t a = 0; a < cluster.size(); ++a) {
      for (size_t b = a + 1; b < cluster.size(); ++b) {
        if (cluster[a] == cluster[b]) continue;
        ++checked;
        const bool cells_same_id = data.IsVariantCellPair(c, a, b);
        if (cells_same_id) {
          EXPECT_TRUE(
              data.IsTrueVariantPair(StringPair{cluster[a], cluster[b]}))
              << cluster[a] << " vs " << cluster[b];
        }
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, GeneratorSweepTest,
    ::testing::Values(SweepCase{Kind::kAddress, 0.05, 1},
                      SweepCase{Kind::kAddress, 0.15, 2},
                      SweepCase{Kind::kAuthorList, 0.05, 3},
                      SweepCase{Kind::kAuthorList, 0.15, 4},
                      SweepCase{Kind::kJournalTitle, 0.05, 5},
                      SweepCase{Kind::kJournalTitle, 0.15, 6}));

// --- Grouping variants agree on generated workloads. ---------------------

class VariantEquivalenceTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(VariantEquivalenceTest, OneShotEarlyTermIncrementalAgree) {
  const SweepCase& param = GetParam();
  GeneratedDataset data = Generate(param.kind, param.scale, param.seed);
  ReplacementStore store(data.column, CandidateGenOptions{});
  const std::vector<StringPair>& pairs = store.pairs();

  auto vanilla = GroupAllUpfront(pairs, GroupingOptions{}, false, nullptr);
  auto early = GroupAllUpfront(pairs, GroupingOptions{}, true, nullptr);
  GroupingEngine engine(pairs, GroupingOptions{});
  std::vector<Group> incremental;
  while (auto group = engine.Next()) incremental.push_back(std::move(*group));

  // The early terminations are pure pruning: EarlyTerm must reproduce the
  // vanilla one-shot exactly (same groups, same order, same programs).
  ASSERT_EQ(vanilla.size(), early.size());
  for (size_t i = 0; i < vanilla.size(); ++i) {
    EXPECT_EQ(vanilla[i].member_pair_indices, early[i].member_pair_indices)
        << "rank " << i;
    EXPECT_EQ(vanilla[i].program, early[i].program) << "rank " << i;
  }

  // Incremental vs upfront: Theorem 6.4 assumes tie-free counts, and real
  // workloads do tie — the one-shot groups by each graph's assigned pivot
  // while the incremental groups by containment of the globally best
  // path, which can merge/split tied tails differently. The tie-free
  // guarantees that hold regardless:
  //  * both partition the same input,
  //  * incremental sizes are non-increasing,
  //  * the largest (first) group agrees exactly,
  //  * the group counts differ at most marginally (tied tails).
  std::set<size_t> covered_upfront, covered_incremental;
  for (const Group& group : vanilla) {
    for (size_t i : group.member_pair_indices) {
      EXPECT_TRUE(covered_upfront.insert(i).second);
    }
  }
  for (const Group& group : incremental) {
    for (size_t i : group.member_pair_indices) {
      EXPECT_TRUE(covered_incremental.insert(i).second);
    }
  }
  EXPECT_EQ(covered_upfront, covered_incremental);
  EXPECT_EQ(covered_upfront.size(), pairs.size());
  for (size_t i = 1; i < incremental.size(); ++i) {
    EXPECT_GE(incremental[i - 1].size(), incremental[i].size());
  }
  // The largest *size* is tie-free even when several groups share it
  // (which of the tied groups comes first is not specified).
  ASSERT_FALSE(vanilla.empty());
  ASSERT_FALSE(incremental.empty());
  EXPECT_EQ(vanilla[0].size(), incremental[0].size());
  const size_t count_gap = vanilla.size() > incremental.size()
                               ? vanilla.size() - incremental.size()
                               : incremental.size() - vanilla.size();
  EXPECT_LE(count_gap, vanilla.size() / 20 + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, VariantEquivalenceTest,
    ::testing::Values(SweepCase{Kind::kAddress, 0.03, 7},
                      SweepCase{Kind::kAuthorList, 0.02, 8},
                      SweepCase{Kind::kJournalTitle, 0.03, 9}));

}  // namespace
}  // namespace ustl

// Tests for src/index: posting lists and the adjacency-join intersection
// (Section 5.1, Example 5.1).
#include <gtest/gtest.h>

#include <random>

#include "graph/graph_builder.h"
#include "index/inverted_index.h"

namespace ustl {
namespace {

TEST(InvertedIndexTest, BuildIndexesEveryLabel) {
  TransformationGraph a("s1", "xy");
  a.AddLabel(1, 2, 0);
  a.AddLabel(2, 3, 1);
  TransformationGraph b("s2", "pq");
  b.AddLabel(1, 3, 0);
  std::vector<TransformationGraph> graphs = {a, b};
  InvertedIndex index = InvertedIndex::Build(graphs);
  EXPECT_EQ(index.ListLength(0), 2u);
  EXPECT_EQ(index.ListLength(1), 1u);
  EXPECT_EQ(index.ListLength(99), 0u);
  EXPECT_EQ(index.NumLabels(), 2u);
  EXPECT_EQ(index.Find(0)[0], (Posting{0, 1, 2}));
  EXPECT_EQ(index.Find(0)[1], (Posting{1, 1, 3}));
}

TEST(InvertedIndexTest, ExtendJoinsAdjacentSpans) {
  // (G, a, b) x (G, b, c) -> (G, a, c); non-adjacent spans don't join.
  PostingList current = {{0, 1, 3}, {1, 1, 2}};
  PostingList label = {{0, 3, 5}, {0, 4, 5}, {1, 3, 4}};
  PostingList joined = InvertedIndex::Extend(current, label, nullptr);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (Posting{0, 1, 5}));
}

TEST(InvertedIndexTest, ExtendFiltersDeadGraphs) {
  PostingList current = {{0, 1, 2}, {1, 1, 2}};
  PostingList label = {{0, 2, 3}, {1, 2, 3}};
  std::vector<char> alive = {1, 0};
  PostingList joined = InvertedIndex::Extend(current, label, &alive);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].graph, 0u);
}

TEST(InvertedIndexTest, ExtendDeduplicates) {
  // Two ways to reach the same span collapse to one posting.
  PostingList current = {{0, 1, 2}, {0, 1, 2}};
  PostingList label = {{0, 2, 4}};
  PostingList joined = InvertedIndex::Extend(current, label, nullptr);
  EXPECT_EQ(joined.size(), 1u);
}

TEST(InvertedIndexTest, DistinctGraphs) {
  PostingList list = {{0, 1, 2}, {0, 2, 3}, {2, 1, 2}, {5, 1, 2}, {5, 1, 3}};
  EXPECT_EQ(InvertedIndex::DistinctGraphs(list), 3u);
  EXPECT_EQ(InvertedIndex::DistinctGraphs({}), 0u);
}

TEST(InvertedIndexTest, Example51Intersection) {
  // Example 5.1: phi1 = "Lee, Mary" -> "M. Lee", phi2 = "Smith, James" ->
  // "J. Smith", phi3 = "Lee, Mary" -> "Mary Lee". The path f2 (+) f3 (+) f1
  // is contained by G1 and G2 with spans (1,7) and (1,9).
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  graphs.push_back(std::move(builder.Build("Lee, Mary", "M. Lee")).value());
  graphs.push_back(
      std::move(builder.Build("Smith, James", "J. Smith")).value());
  graphs.push_back(std::move(builder.Build("Lee, Mary", "Mary Lee")).value());
  InvertedIndex index = InvertedIndex::Build(graphs);

  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  LabelId f2, f3, f1;
  ASSERT_TRUE(interner.Lookup(
      StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                       PosFn::MatchPos(tc, -1, Dir::kEnd)),
      &f2));
  ASSERT_TRUE(interner.Lookup(StringFn::ConstantStr(". "), &f3));
  ASSERT_TRUE(interner.Lookup(
      StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                       PosFn::MatchPos(tl, 1, Dir::kEnd)),
      &f1));

  PostingList root = {{0, 1, 1}, {1, 1, 1}, {2, 1, 1}};
  PostingList after_f2 = InvertedIndex::Extend(root, index.Find(f2), nullptr);
  PostingList after_f3 =
      InvertedIndex::Extend(after_f2, index.Find(f3), nullptr);
  PostingList after_f1 =
      InvertedIndex::Extend(after_f3, index.Find(f1), nullptr);

  // Contained by G1 (span 1..7) and G2 (span 1..9), not by G3.
  ASSERT_EQ(after_f1.size(), 2u);
  EXPECT_EQ(after_f1[0], (Posting{0, 1, 7}));
  EXPECT_EQ(after_f1[1], (Posting{1, 1, 9}));
}

// Quadratic reference join for differential testing of the galloping
// merge in Extend.
PostingList NaiveExtend(const PostingList& current,
                        const PostingList& label_list,
                        const std::vector<char>* alive) {
  PostingList out;
  for (const Posting& a : current) {
    if (alive != nullptr && !(*alive)[a.graph]) continue;
    for (const Posting& b : label_list) {
      if (a.graph == b.graph && a.end == b.start) {
        out.push_back(Posting{a.graph, a.start, b.end});
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class ExtendDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtendDifferentialTest, MatchesNaiveJoinOnRandomLists) {
  std::mt19937_64 rng(GetParam());
  auto random_list = [&](size_t n, GraphId max_graph) {
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      GraphId g = static_cast<GraphId>(rng() % max_graph);
      int start = 1 + static_cast<int>(rng() % 6);
      int end = start + 1 + static_cast<int>(rng() % 4);
      list.push_back(Posting{g, start, end});
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
  };
  for (int round = 0; round < 50; ++round) {
    // Skewed sizes on alternating sides to force the galloping paths.
    const bool skew_current = (round % 2) == 0;
    PostingList current = random_list(skew_current ? 3 : 200, 64);
    PostingList label = random_list(skew_current ? 200 : 3, 64);
    std::vector<char> alive(64, 1);
    for (size_t g = 0; g < alive.size(); ++g) alive[g] = (rng() % 4) != 0;
    EXPECT_EQ(InvertedIndex::Extend(current, label, &alive),
              NaiveExtend(current, label, &alive));
    EXPECT_EQ(InvertedIndex::Extend(current, label, nullptr),
              NaiveExtend(current, label, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace ustl

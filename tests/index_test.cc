// Tests for src/index: packed postings, posting lists, the adjacency-join
// intersection (Section 5.1, Example 5.1) with its fused ExtendInto stats,
// and the sharded parallel index build.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "common/parallel.h"
#include "graph/graph_builder.h"
#include "grouping/group.h"
#include "index/block_postings.h"
#include "index/inverted_index.h"
#include "index/posting_codec.h"

namespace ustl {
namespace {

TEST(PostingTest, PackedRoundTripAtFieldWidthLimits) {
  const Posting zero(0, 0, 0);
  EXPECT_EQ(zero.graph(), 0u);
  EXPECT_EQ(zero.start(), 0);
  EXPECT_EQ(zero.end(), 0);
  EXPECT_EQ(zero.bits(), 0u);

  const Posting max(Posting::kMaxGraph, Posting::kMaxNode, Posting::kMaxNode);
  EXPECT_EQ(max.graph(), Posting::kMaxGraph);
  EXPECT_EQ(max.start(), Posting::kMaxNode);
  EXPECT_EQ(max.end(), Posting::kMaxNode);
  EXPECT_EQ(max.bits(), ~uint64_t{0});

  // Each field at its limit with the others at a small value: no field
  // bleeds into its neighbors.
  const Posting graph_max(Posting::kMaxGraph, 1, 2);
  EXPECT_EQ(graph_max.graph(), Posting::kMaxGraph);
  EXPECT_EQ(graph_max.start(), 1);
  EXPECT_EQ(graph_max.end(), 2);
  const Posting start_max(3, Posting::kMaxNode, 4);
  EXPECT_EQ(start_max.graph(), 3u);
  EXPECT_EQ(start_max.start(), Posting::kMaxNode);
  EXPECT_EQ(start_max.end(), 4);
  const Posting end_max(5, 6, Posting::kMaxNode);
  EXPECT_EQ(end_max.graph(), 5u);
  EXPECT_EQ(end_max.start(), 6);
  EXPECT_EQ(end_max.end(), Posting::kMaxNode);
}

TEST(PostingTest, PackedOrderMatchesTupleOrder) {
  // The packed-word order must equal lexicographic (graph, start, end)
  // order — including across field boundaries (graph dominates a maxed
  // start/end, start dominates a maxed end).
  const GraphId graphs[] = {0, 1, 7, Posting::kMaxGraph};
  const int nodes[] = {0, 1, 9, Posting::kMaxNode};
  std::vector<Posting> postings;
  std::vector<std::tuple<GraphId, int, int>> tuples;
  for (GraphId g : graphs) {
    for (int s : nodes) {
      for (int e : nodes) {
        postings.emplace_back(g, s, e);
        tuples.emplace_back(g, s, e);
      }
    }
  }
  for (size_t a = 0; a < postings.size(); ++a) {
    for (size_t b = 0; b < postings.size(); ++b) {
      EXPECT_EQ(postings[a] < postings[b], tuples[a] < tuples[b])
          << "a=" << a << " b=" << b;
      EXPECT_EQ(postings[a] == postings[b], tuples[a] == tuples[b]);
    }
  }
}

TEST(PostingTest, JoinKeepsGraphAndStartTakesEnd) {
  const Posting a(42, 3, 7);
  const Posting b(42, 7, 11);
  EXPECT_EQ(Posting::Join(a, b), Posting(42, 3, 11));
  const Posting al(Posting::kMaxGraph, Posting::kMaxNode, 1);
  const Posting bl(Posting::kMaxGraph, 1, Posting::kMaxNode);
  EXPECT_EQ(Posting::Join(al, bl),
            Posting(Posting::kMaxGraph, Posting::kMaxNode, Posting::kMaxNode));
}

TEST(InvertedIndexTest, BuildIndexesEveryLabel) {
  TransformationGraph a("s1", "xy");
  a.AddLabel(1, 2, 0);
  a.AddLabel(2, 3, 1);
  TransformationGraph b("s2", "pq");
  b.AddLabel(1, 3, 0);
  std::vector<TransformationGraph> graphs = {a, b};
  InvertedIndex index = InvertedIndex::Build(graphs);
  EXPECT_EQ(index.ListLength(0), 2u);
  EXPECT_EQ(index.ListLength(1), 1u);
  EXPECT_EQ(index.ListLength(99), 0u);
  EXPECT_EQ(index.NumLabels(), 2u);
  EXPECT_EQ(index.Find(0)[0], (Posting{0, 1, 2}));
  EXPECT_EQ(index.Find(0)[1], (Posting{1, 1, 3}));
}

TEST(InvertedIndexTest, ExtendJoinsAdjacentSpans) {
  // (G, a, b) x (G, b, c) -> (G, a, c); non-adjacent spans don't join.
  PostingList current = {{0, 1, 3}, {1, 1, 2}};
  PostingList label = {{0, 3, 5}, {0, 4, 5}, {1, 3, 4}};
  PostingList joined = InvertedIndex::Extend(current, label, nullptr);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (Posting{0, 1, 5}));
}

TEST(InvertedIndexTest, ExtendFiltersDeadGraphs) {
  PostingList current = {{0, 1, 2}, {1, 1, 2}};
  PostingList label = {{0, 2, 3}, {1, 2, 3}};
  std::vector<char> alive = {1, 0};
  PostingList joined = InvertedIndex::Extend(current, label, &alive);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].graph(), 0u);
}

TEST(InvertedIndexTest, ExtendDeduplicates) {
  // Two ways to reach the same span collapse to one posting.
  PostingList current = {{0, 1, 2}, {0, 1, 2}};
  PostingList label = {{0, 2, 4}};
  PostingList joined = InvertedIndex::Extend(current, label, nullptr);
  EXPECT_EQ(joined.size(), 1u);
}

TEST(InvertedIndexTest, ExtendEmptyAndSingleElementLists) {
  const PostingList empty;
  const PostingList one = {{3, 1, 2}};
  const PostingList adjacent = {{3, 2, 5}};
  const PostingList not_adjacent = {{3, 4, 5}};
  const PostingList other_graph = {{4, 2, 5}};

  EXPECT_TRUE(InvertedIndex::Extend(empty, empty, nullptr).empty());
  EXPECT_TRUE(InvertedIndex::Extend(empty, one, nullptr).empty());
  EXPECT_TRUE(InvertedIndex::Extend(one, empty, nullptr).empty());

  PostingList joined = InvertedIndex::Extend(one, adjacent, nullptr);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (Posting{3, 1, 5}));
  EXPECT_TRUE(InvertedIndex::Extend(one, not_adjacent, nullptr).empty());
  EXPECT_TRUE(InvertedIndex::Extend(one, other_graph, nullptr).empty());
}

TEST(InvertedIndexTest, ExtendAliveFilterDropsWholeRun) {
  // Graph 1's whole run (several postings on both sides) is dropped by
  // the alive filter; the join must resynchronize on graph 2 afterwards.
  PostingList current = {{0, 1, 2}, {1, 1, 2}, {1, 1, 3}, {1, 2, 3}, {2, 1, 2}};
  PostingList label = {{1, 2, 4}, {1, 3, 4}, {2, 2, 4}};
  std::vector<char> alive = {1, 0, 1};
  PostingList out;
  ExtendStats stats = InvertedIndex::ExtendInto(current, label, &alive, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Posting{2, 1, 4}));
  EXPECT_EQ(stats.distinct_graphs, 1u);
  // Killing graph 2 as well empties the result entirely.
  alive[2] = 0;
  stats = InvertedIndex::ExtendInto(current, label, &alive, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.distinct_graphs, 0u);
  EXPECT_EQ(stats.hash, kPostingHashSeed);
}

TEST(InvertedIndexTest, ExtendIntoFusedStatsMatchSeparatePasses) {
  std::mt19937_64 rng(99);
  auto random_list = [&](size_t n) {
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      GraphId g = static_cast<GraphId>(rng() % 16);
      int start = 1 + static_cast<int>(rng() % 6);
      int end = start + 1 + static_cast<int>(rng() % 4);
      list.push_back(Posting{g, start, end});
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
  };
  PostingList out;
  for (int round = 0; round < 30; ++round) {
    PostingList current = random_list(40);
    PostingList label = random_list(40);
    ExtendStats stats =
        InvertedIndex::ExtendInto(current, label, nullptr, &out);
    // The fused distinct count equals a separate scan of the output.
    EXPECT_EQ(stats.distinct_graphs, InvertedIndex::DistinctGraphs(out));
    // The fused hash is a pure function of the output content: recompute
    // it the definitional way and from a second identical join.
    uint64_t h = kPostingHashSeed;
    for (const Posting& p : out) {
      h ^= p.bits();
      h *= kPostingHashPrime;
    }
    EXPECT_EQ(stats.hash, h);
    PostingList out2;
    EXPECT_EQ(InvertedIndex::ExtendInto(current, label, nullptr, &out2).hash,
              stats.hash);
    EXPECT_EQ(out, out2);
  }
}

TEST(InvertedIndexTest, ExtendIntoReusesTheScratchBuffer) {
  PostingList scratch;
  PostingList current, label;
  for (GraphId g = 0; g < 64; ++g) {
    current.push_back(Posting{g, 1, 2});
    label.push_back(Posting{g, 2, 3});
  }
  InvertedIndex::ExtendInto(current, label, nullptr, &scratch);
  ASSERT_EQ(scratch.size(), 64u);
  const size_t capacity = scratch.capacity();
  const Posting* data = scratch.data();
  // A smaller follow-up join overwrites in place: same storage, no growth.
  PostingList small_current = {{0, 1, 2}};
  InvertedIndex::ExtendInto(small_current, label, nullptr, &scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch.capacity(), capacity);
  EXPECT_EQ(scratch.data(), data);
}

TEST(InvertedIndexTest, DistinctGraphs) {
  PostingList list = {{0, 1, 2}, {0, 2, 3}, {2, 1, 2}, {5, 1, 2}, {5, 1, 3}};
  EXPECT_EQ(InvertedIndex::DistinctGraphs(list), 3u);
  EXPECT_EQ(InvertedIndex::DistinctGraphs({}), 0u);
}

TEST(InvertedIndexTest, Example51Intersection) {
  // Example 5.1: phi1 = "Lee, Mary" -> "M. Lee", phi2 = "Smith, James" ->
  // "J. Smith", phi3 = "Lee, Mary" -> "Mary Lee". The path f2 (+) f3 (+) f1
  // is contained by G1 and G2 with spans (1,7) and (1,9).
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  graphs.push_back(std::move(builder.Build("Lee, Mary", "M. Lee")).value());
  graphs.push_back(
      std::move(builder.Build("Smith, James", "J. Smith")).value());
  graphs.push_back(std::move(builder.Build("Lee, Mary", "Mary Lee")).value());
  InvertedIndex index = InvertedIndex::Build(graphs);

  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  LabelId f2, f3, f1;
  ASSERT_TRUE(interner.Lookup(
      StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                       PosFn::MatchPos(tc, -1, Dir::kEnd)),
      &f2));
  ASSERT_TRUE(interner.Lookup(StringFn::ConstantStr(". "), &f3));
  ASSERT_TRUE(interner.Lookup(
      StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                       PosFn::MatchPos(tl, 1, Dir::kEnd)),
      &f1));

  PostingList root = {{0, 1, 1}, {1, 1, 1}, {2, 1, 1}};
  PostingList after_f2 = InvertedIndex::Extend(root, index.Find(f2), nullptr);
  PostingList after_f3 =
      InvertedIndex::Extend(after_f2, index.Find(f3), nullptr);
  PostingList after_f1 =
      InvertedIndex::Extend(after_f3, index.Find(f1), nullptr);

  // Contained by G1 (span 1..7) and G2 (span 1..9), not by G3.
  ASSERT_EQ(after_f1.size(), 2u);
  EXPECT_EQ(after_f1[0], (Posting{0, 1, 7}));
  EXPECT_EQ(after_f1[1], (Posting{1, 1, 9}));
}

// Quadratic reference join for differential testing of the galloping
// merge in Extend.
PostingList NaiveExtend(const PostingList& current,
                        const PostingList& label_list,
                        const std::vector<char>* alive) {
  PostingList out;
  for (const Posting& a : current) {
    if (alive != nullptr && !(*alive)[a.graph()]) continue;
    for (const Posting& b : label_list) {
      if (a.graph() == b.graph() && a.end() == b.start()) {
        out.push_back(Posting{a.graph(), a.start(), b.end()});
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class ExtendDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtendDifferentialTest, MatchesNaiveJoinOnRandomLists) {
  std::mt19937_64 rng(GetParam());
  auto random_list = [&](size_t n, GraphId max_graph) {
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      GraphId g = static_cast<GraphId>(rng() % max_graph);
      int start = 1 + static_cast<int>(rng() % 6);
      int end = start + 1 + static_cast<int>(rng() % 4);
      list.push_back(Posting{g, start, end});
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
  };
  for (int round = 0; round < 50; ++round) {
    // Skewed sizes on alternating sides to force the galloping paths.
    const bool skew_current = (round % 2) == 0;
    PostingList current = random_list(skew_current ? 3 : 200, 64);
    PostingList label = random_list(skew_current ? 200 : 3, 64);
    std::vector<char> alive(64, 1);
    for (size_t g = 0; g < alive.size(); ++g) alive[g] = (rng() % 4) != 0;
    EXPECT_EQ(InvertedIndex::Extend(current, label, &alive),
              NaiveExtend(current, label, &alive));
    EXPECT_EQ(InvertedIndex::Extend(current, label, nullptr),
              NaiveExtend(current, label, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---------------------------------------------------------------------
// Sharded parallel build.

std::vector<TransformationGraph> RealisticGraphs(LabelInterner* interner) {
  GraphBuilder builder(GraphBuilderOptions{}, interner);
  const std::vector<StringPair> pairs = {
      {"Lee, Mary", "M. Lee"},       {"Smith, James", "J. Smith"},
      {"Brown, Anna", "A. Brown"},   {"Clark, Susan", "S. Clark"},
      {"Walker, John", "J. Walker"}, {"Turner, Ruth", "R. Turner"},
      {"Street", "St"},              {"Avenue", "Ave"},
      {"Boulevard", "Blvd"},         {"Wisconsin", "WI"},
      {"9th", "9"},                  {"3rd", "3"},
  };
  std::vector<TransformationGraph> graphs;
  for (const StringPair& pair : pairs) {
    graphs.push_back(std::move(builder.Build(pair.lhs, pair.rhs)).value());
  }
  return graphs;
}

void ExpectSameIndex(const InvertedIndex& a, const InvertedIndex& b,
                     size_t label_bound) {
  ASSERT_EQ(a.NumLabels(), b.NumLabels());
  for (LabelId label = 0; label < label_bound; ++label) {
    const PostingList& la = a.Find(label);
    const PostingList& lb = b.Find(label);
    ASSERT_EQ(la.size(), lb.size()) << "label " << label;
    // Byte-identical contents: the packed words must match exactly.
    for (size_t k = 0; k < la.size(); ++k) {
      ASSERT_EQ(la[k].bits(), lb[k].bits()) << "label " << label << " #" << k;
    }
  }
}

TEST(InvertedIndexShardTest, ShardSweepIsByteIdenticalToSerialBuild) {
  LabelInterner interner;
  std::vector<TransformationGraph> graphs = RealisticGraphs(&interner);
  InvertedIndex serial = InvertedIndex::Build(graphs);
  ASSERT_GT(serial.NumLabels(), 10u);
  const size_t label_bound = interner.size() + 4;

  ThreadPool pool(4);
  // Shard counts below, equal to, and far above the pool/label count —
  // plus explicit serial sharding — must all reproduce the serial index
  // bit for bit.
  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                        size_t{16}, size_t{1000}}) {
    SCOPED_TRACE(shards);
    ExpectSameIndex(serial, InvertedIndex::Build(graphs, &pool, shards),
                    label_bound);
    ExpectSameIndex(serial, InvertedIndex::Build(graphs, nullptr, shards),
                    label_bound);
  }
  // Default shard count (one per pool thread).
  ExpectSameIndex(serial, InvertedIndex::Build(graphs, &pool), label_bound);
}

TEST(InvertedIndexShardTest, LabelCountHintMatchesScannedBuild) {
  LabelInterner interner;
  std::vector<TransformationGraph> graphs = RealisticGraphs(&interner);
  InvertedIndex scanned = InvertedIndex::Build(graphs);
  const size_t label_bound = interner.size() + 4;
  ThreadPool pool(3);
  // Exact hint, generous over-estimate, serial and sharded: identical
  // layout (trailing empties are trimmed either way).
  ExpectSameIndex(scanned,
                  InvertedIndex::Build(graphs, nullptr, 0, interner.size()),
                  label_bound);
  ExpectSameIndex(
      scanned,
      InvertedIndex::Build(graphs, &pool, 0, interner.size() + 1000),
      label_bound);
}

TEST(InvertedIndexShardTest, EmptyAndLabelFreeInputs) {
  EXPECT_EQ(InvertedIndex::Build({}).NumLabels(), 0u);
  // A graph with no labels at all: nothing to index, any shard count.
  std::vector<TransformationGraph> graphs;
  graphs.emplace_back("src", "tgt");
  ThreadPool pool(2);
  EXPECT_EQ(InvertedIndex::Build(graphs, &pool, 8).NumLabels(), 0u);
  EXPECT_EQ(InvertedIndex::Build(graphs, &pool, 8).ListLength(0), 0u);
}

// ---------------------------------------------------------------------
// Block-compressed postings: codecs, partitioning, the skip/prune join.

// A sorted unique list whose graph-id gaps are drawn up to `max_gap` —
// small gaps exercise narrow FOR widths, huge gaps exercise multi-byte
// varints and the full 32-bit delta range.
PostingList RandomGapList(std::mt19937_64* rng, size_t n, GraphId max_gap,
                          int max_node = 9) {
  PostingList list;
  uint64_t graph = (*rng)() % 4;
  for (size_t i = 0; i < n && graph <= Posting::kMaxGraph; ++i) {
    const int start = static_cast<int>((*rng)() % max_node);
    const int end =
        std::min<int>(start + 1 + static_cast<int>((*rng)() % max_node),
                      Posting::kMaxNode);
    list.push_back(
        Posting{static_cast<GraphId>(graph), start, end});
    // ~1/3 of postings stay in the same graph (multi-posting runs).
    if ((*rng)() % 3 != 0) graph += 1 + (*rng)() % max_gap;
  }
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
  return list;
}

TEST(PostingCodecTest, RoundTripAcrossGapWidthsAndSizes) {
  std::mt19937_64 rng(20260808);
  const GraphId gaps[] = {1, 7, 1u << 12, 1u << 22, Posting::kMaxGraph / 2};
  const size_t sizes[] = {1, 2, 3, 4, 5, 8, 64, 127, 128, 129, 500};
  for (GraphId gap : gaps) {
    for (size_t n : sizes) {
      const PostingList list =
          RandomGapList(&rng, n, gap, Posting::kMaxNode);
      ASSERT_FALSE(list.empty());
      for (PostingCodecId id :
           {PostingCodecId::kVarint, PostingCodecId::kForPacked}) {
        SCOPED_TRACE(static_cast<int>(id));
        const PostingCodec& codec = PostingCodec::Get(id);
        std::vector<uint8_t> bytes;
        codec.Encode(list.data(), list.size(), &bytes);
        // The size oracle is exact (the partitioner plans with it).
        EXPECT_EQ(bytes.size(), codec.EncodedBytes(list.data(), list.size()));
        PostingList decoded(list.size());
        const size_t consumed =
            codec.Decode(bytes.data(), list[0], list.size(), decoded.data());
        EXPECT_EQ(consumed, bytes.size());
        EXPECT_EQ(decoded, list);
      }
      // The selection model reports the winner's true size and is total:
      // re-running it answers the same.
      size_t chosen_bytes = 0;
      const PostingCodecId chosen =
          ChoosePostingCodec(list.data(), list.size(), &chosen_bytes);
      EXPECT_EQ(chosen_bytes,
                PostingCodec::Get(chosen).EncodedBytes(list.data(),
                                                       list.size()));
      EXPECT_EQ(chosen, ChoosePostingCodec(list.data(), list.size()));
    }
  }
}

// Mirrors InvertedIndex::Postings for a bare store: small lists surface
// as raw spans, blocked lists carry the store handle.
PostingsRef StoreRef(const BlockPostingStore& store, LabelId id) {
  const BlockPostingStore::LabelRef& ref = store.label(id);
  PostingsRef out;
  out.count = ref.count;
  if (ref.num_blocks == 0) {
    out.data = store.SmallSpan(ref);
  } else {
    out.store = &store;
    out.label = id;
  }
  return out;
}

TEST(BlockPostingStoreTest, MaterializeRoundTripsAndInvariantsHold) {
  std::mt19937_64 rng(77);
  for (int round = 0; round < 40; ++round) {
    std::vector<PostingList> lists;
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                     size_t{40}, size_t{300}}) {
      lists.push_back(RandomGapList(&rng, n, 1u << (rng() % 24)));
      if (n == 0) lists.back().clear();
    }
    BlockPostingsOptions options;
    options.target_block_size = 1 + rng() % 64;
    options.max_block_size = options.target_block_size * 4;
    options.small_list_cutoff = rng() % 6;
    options.greedy_partition = (round % 2) == 0;
    const std::vector<PostingList> originals = lists;
    const BlockPostingStore store =
        BlockPostingStore::Encode(std::move(lists), options);

    size_t total_postings = 0;
    for (LabelId id = 0; id < originals.size(); ++id) {
      SCOPED_TRACE(id);
      PostingList materialized;
      store.Materialize(id, &materialized);
      EXPECT_EQ(materialized, originals[id]);
      total_postings += originals[id].size();

      const BlockPostingStore::LabelRef& ref = store.label(id);
      EXPECT_EQ(ref.count, originals[id].size());
      EXPECT_EQ(ref.distinct, InvertedIndex::DistinctGraphs(originals[id]));
      if (ref.num_blocks == 0) continue;
      // Blocks are graph-run aligned: each block's first graph strictly
      // exceeds the previous block's bound, per-block distinct counts sum
      // to the label total, and suffix bounds telescope.
      uint32_t distinct_sum = 0;
      PostingList block_postings;
      for (size_t b = 0; b < ref.num_blocks; ++b) {
        const BlockPostingStore::Block& blk = store.block(ref, b);
        EXPECT_EQ(blk.distinct_prefix, distinct_sum);
        block_postings.resize(blk.count);
        store.DecodeBlock(ref, b, block_postings.data());
        EXPECT_EQ(block_postings[0].bits(), blk.first_bits);
        EXPECT_LE(block_postings.back().graph(), store.BlockMaxGraph(ref, b));
        if (b > 0) {
          EXPECT_GT(block_postings[0].graph(),
                    store.BlockMaxGraph(ref, b - 1));
        }
        distinct_sum += static_cast<uint32_t>(
            InvertedIndex::DistinctGraphs(block_postings));
        EXPECT_EQ(store.SuffixDistinct(ref, b), ref.distinct - blk.distinct_prefix);
      }
      EXPECT_EQ(distinct_sum, ref.distinct);
      EXPECT_EQ(store.BlockMaxGraph(ref, ref.num_blocks - 1), ref.last_graph);
    }
    const BlockPostingStore::MemoryStats memory = store.memory();
    EXPECT_EQ(memory.postings, total_postings);
    EXPECT_EQ(memory.blocks, memory.varint_blocks + memory.for_blocks);
  }
}

TEST(BlockPostingStoreTest, CompressesRealisticLists) {
  // Dense runs with small gaps — the shape pivot search produces — must
  // compress well below the raw 8 bytes/posting.
  std::mt19937_64 rng(5);
  std::vector<PostingList> lists;
  size_t raw_bytes = 0;
  for (int i = 0; i < 50; ++i) {
    lists.push_back(RandomGapList(&rng, 2000, 3));
    raw_bytes += lists.back().size() * sizeof(Posting);
  }
  const BlockPostingStore store =
      BlockPostingStore::Encode(std::move(lists), BlockPostingsOptions{});
  const BlockPostingStore::MemoryStats memory = store.memory();
  EXPECT_LT(memory.total_bytes() * 2, raw_bytes)
      << "expected >= 2x compression on dense lists";
}

// The skip/prune join must be byte-identical to the raw join whenever it
// does not prune, and a prune must only ever discard results the caller's
// threshold checks would discard anyway.
TEST(BlockExtendTest, DifferentialAgainstRawJoinWithSkipsAndPrunes) {
  std::mt19937_64 rng(123);
  uint64_t prunes_seen = 0;
  uint64_t skips_seen = 0;
  for (int round = 0; round < 200; ++round) {
    // `current` covers a narrow band of graphs so whole blocks of the
    // label list fall outside it (forcing graph-bound skips).
    PostingList current = RandomGapList(&rng, 30, 2);
    std::vector<PostingList> lists;
    lists.push_back(RandomGapList(&rng, 400, 2));
    BlockPostingsOptions options;
    options.target_block_size = 8;  // many blocks => many skip chances
    options.max_block_size = 32;
    options.small_list_cutoff = 2;
    options.greedy_partition = (round % 2) == 0;
    const PostingList label = lists[0];
    const BlockPostingStore store =
        BlockPostingStore::Encode(std::move(lists), options);

    std::vector<char> alive(1u << 12, 1);
    for (size_t g = 0; g < alive.size(); ++g) alive[g] = (rng() % 5) != 0;

    PostingList raw_out;
    const ExtendStats raw_stats =
        InvertedIndex::ExtendInto(current, label, &alive, &raw_out);

    PostingList block_out;
    PostingList scratch;
    ExtendControl control;
    control.decode_scratch = &scratch;
    control.current_distinct = InvertedIndex::DistinctGraphs(current);
    control.min_distinct = static_cast<int>(rng() % 8);
    const ExtendStats block_stats = InvertedIndex::ExtendInto(
        current, StoreRef(store, 0), &alive, &block_out, &control);
    skips_seen += control.blocks_skipped;

    if (control.pruned) {
      // Soundness: the prune fired only because the full result could
      // not reach min_distinct — the caller would have discarded it.
      ++prunes_seen;
      EXPECT_LT(raw_stats.distinct_graphs,
                static_cast<size_t>(control.min_distinct));
    } else {
      // No prune: the block path must reproduce the raw join exactly,
      // stats included (skipped blocks had nothing to contribute).
      EXPECT_EQ(block_out, raw_out);
      EXPECT_EQ(block_stats.distinct_graphs, raw_stats.distinct_graphs);
      EXPECT_EQ(block_stats.hash, raw_stats.hash);
    }
  }
  // The constructed shapes must actually exercise both mechanisms.
  EXPECT_GT(prunes_seen, 0u);
  EXPECT_GT(skips_seen, 0u);
}

TEST(BlockExtendTest, SkippedBlocksNeverChangeTheResult) {
  // A label list spanning three widely separated graph bands; `current`
  // only touches the middle band, so the first and last bands' blocks
  // are skipped (leading skip + trailing early exit).
  PostingList label;
  for (GraphId g = 0; g < 40; ++g) label.push_back(Posting{g, 2, 3});
  for (GraphId g = 1000; g < 1040; ++g) label.push_back(Posting{g, 2, 3});
  for (GraphId g = 2000; g < 2040; ++g) label.push_back(Posting{g, 2, 3});
  PostingList current;
  for (GraphId g = 1000; g < 1040; ++g) current.push_back(Posting{g, 1, 2});

  std::vector<PostingList> lists = {label};
  BlockPostingsOptions options;
  options.target_block_size = 8;
  const BlockPostingStore store =
      BlockPostingStore::Encode(std::move(lists), options);

  PostingList raw_out;
  const ExtendStats raw_stats =
      InvertedIndex::ExtendInto(current, label, nullptr, &raw_out);

  PostingList block_out;
  PostingList scratch;
  ExtendControl control;
  control.decode_scratch = &scratch;
  const ExtendStats block_stats = InvertedIndex::ExtendInto(
      current, StoreRef(store, 0), nullptr, &block_out, &control);

  EXPECT_EQ(block_out, raw_out);
  EXPECT_EQ(block_out.size(), 40u);
  EXPECT_EQ(block_stats.distinct_graphs, raw_stats.distinct_graphs);
  EXPECT_EQ(block_stats.hash, raw_stats.hash);
  EXPECT_GT(control.blocks_skipped, 0u);
  EXPECT_FALSE(control.pruned);
  // Both ends skipped: far fewer blocks decoded than the list holds.
  EXPECT_LT(control.blocks_decoded,
            store.label(0).num_blocks - control.blocks_skipped + 1);
}

TEST(BlockExtendTest, SteadyStateJoinIsAllocationFree) {
  // After warm-up, repeated joins through the block cursor must reuse the
  // caller's scratch and output capacity: same storage, no growth.
  std::mt19937_64 rng(9);
  std::vector<PostingList> lists = {RandomGapList(&rng, 600, 2)};
  const PostingList label = lists[0];
  BlockPostingsOptions options;
  options.target_block_size = 16;
  const BlockPostingStore store =
      BlockPostingStore::Encode(std::move(lists), options);
  PostingList current = RandomGapList(&rng, 50, 2);

  PostingList out;
  PostingList scratch;
  ExtendControl control;
  control.decode_scratch = &scratch;
  InvertedIndex::ExtendInto(current, StoreRef(store, 0), nullptr, &out,
                            &control);
  const Posting* out_data = out.data();
  const Posting* scratch_data = scratch.data();
  const size_t out_capacity = out.capacity();
  const size_t scratch_capacity = scratch.capacity();
  for (int i = 0; i < 10; ++i) {
    ExtendControl repeat;
    repeat.decode_scratch = &scratch;
    InvertedIndex::ExtendInto(current, StoreRef(store, 0), nullptr, &out,
                              &repeat);
    EXPECT_EQ(out.data(), out_data);
    EXPECT_EQ(scratch.data(), scratch_data);
    EXPECT_EQ(out.capacity(), out_capacity);
    EXPECT_EQ(scratch.capacity(), scratch_capacity);
  }
}

TEST(BlockIndexTest, BuildMatchesRawIndexOnRealGraphs) {
  LabelInterner interner;
  std::vector<TransformationGraph> graphs = RealisticGraphs(&interner);
  const InvertedIndex raw = InvertedIndex::Build(graphs);
  IndexBuildOptions build;
  build.codec = IndexCodec::kBlock;
  build.block.target_block_size = 4;  // force real blocks on small lists
  build.block.small_list_cutoff = 1;
  const InvertedIndex block =
      InvertedIndex::Build(graphs, nullptr, 0, 0, build);

  ASSERT_EQ(block.codec(), IndexCodec::kBlock);
  EXPECT_EQ(block.NumLabels(), raw.NumLabels());
  EXPECT_EQ(block.NumPostings(), raw.NumPostings());
  PostingList expect, got;
  for (LabelId label = 0; label < interner.size() + 4; ++label) {
    raw.Materialize(label, &expect);
    block.Materialize(label, &got);
    ASSERT_EQ(got, expect) << "label " << label;
    EXPECT_EQ(block.ListLength(label), raw.ListLength(label));
    // The ref agrees with the directory on both codecs.
    EXPECT_EQ(block.Postings(label).size(), raw.Postings(label).size());
  }
  // The sharded parallel build re-encodes to the identical store: the
  // encoder is a pure function of the (bit-identical) raw lists.
  ThreadPool pool(4);
  const InvertedIndex sharded =
      InvertedIndex::Build(graphs, &pool, 16, 0, build);
  for (LabelId label = 0; label < interner.size() + 4; ++label) {
    block.Materialize(label, &expect);
    sharded.Materialize(label, &got);
    ASSERT_EQ(got, expect) << "label " << label;
  }
}

}  // namespace
}  // namespace ustl

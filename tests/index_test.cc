// Tests for src/index: packed postings, posting lists, the adjacency-join
// intersection (Section 5.1, Example 5.1) with its fused ExtendInto stats,
// and the sharded parallel index build.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "common/parallel.h"
#include "graph/graph_builder.h"
#include "grouping/group.h"
#include "index/inverted_index.h"

namespace ustl {
namespace {

TEST(PostingTest, PackedRoundTripAtFieldWidthLimits) {
  const Posting zero(0, 0, 0);
  EXPECT_EQ(zero.graph(), 0u);
  EXPECT_EQ(zero.start(), 0);
  EXPECT_EQ(zero.end(), 0);
  EXPECT_EQ(zero.bits(), 0u);

  const Posting max(Posting::kMaxGraph, Posting::kMaxNode, Posting::kMaxNode);
  EXPECT_EQ(max.graph(), Posting::kMaxGraph);
  EXPECT_EQ(max.start(), Posting::kMaxNode);
  EXPECT_EQ(max.end(), Posting::kMaxNode);
  EXPECT_EQ(max.bits(), ~uint64_t{0});

  // Each field at its limit with the others at a small value: no field
  // bleeds into its neighbors.
  const Posting graph_max(Posting::kMaxGraph, 1, 2);
  EXPECT_EQ(graph_max.graph(), Posting::kMaxGraph);
  EXPECT_EQ(graph_max.start(), 1);
  EXPECT_EQ(graph_max.end(), 2);
  const Posting start_max(3, Posting::kMaxNode, 4);
  EXPECT_EQ(start_max.graph(), 3u);
  EXPECT_EQ(start_max.start(), Posting::kMaxNode);
  EXPECT_EQ(start_max.end(), 4);
  const Posting end_max(5, 6, Posting::kMaxNode);
  EXPECT_EQ(end_max.graph(), 5u);
  EXPECT_EQ(end_max.start(), 6);
  EXPECT_EQ(end_max.end(), Posting::kMaxNode);
}

TEST(PostingTest, PackedOrderMatchesTupleOrder) {
  // The packed-word order must equal lexicographic (graph, start, end)
  // order — including across field boundaries (graph dominates a maxed
  // start/end, start dominates a maxed end).
  const GraphId graphs[] = {0, 1, 7, Posting::kMaxGraph};
  const int nodes[] = {0, 1, 9, Posting::kMaxNode};
  std::vector<Posting> postings;
  std::vector<std::tuple<GraphId, int, int>> tuples;
  for (GraphId g : graphs) {
    for (int s : nodes) {
      for (int e : nodes) {
        postings.emplace_back(g, s, e);
        tuples.emplace_back(g, s, e);
      }
    }
  }
  for (size_t a = 0; a < postings.size(); ++a) {
    for (size_t b = 0; b < postings.size(); ++b) {
      EXPECT_EQ(postings[a] < postings[b], tuples[a] < tuples[b])
          << "a=" << a << " b=" << b;
      EXPECT_EQ(postings[a] == postings[b], tuples[a] == tuples[b]);
    }
  }
}

TEST(PostingTest, JoinKeepsGraphAndStartTakesEnd) {
  const Posting a(42, 3, 7);
  const Posting b(42, 7, 11);
  EXPECT_EQ(Posting::Join(a, b), Posting(42, 3, 11));
  const Posting al(Posting::kMaxGraph, Posting::kMaxNode, 1);
  const Posting bl(Posting::kMaxGraph, 1, Posting::kMaxNode);
  EXPECT_EQ(Posting::Join(al, bl),
            Posting(Posting::kMaxGraph, Posting::kMaxNode, Posting::kMaxNode));
}

TEST(InvertedIndexTest, BuildIndexesEveryLabel) {
  TransformationGraph a("s1", "xy");
  a.AddLabel(1, 2, 0);
  a.AddLabel(2, 3, 1);
  TransformationGraph b("s2", "pq");
  b.AddLabel(1, 3, 0);
  std::vector<TransformationGraph> graphs = {a, b};
  InvertedIndex index = InvertedIndex::Build(graphs);
  EXPECT_EQ(index.ListLength(0), 2u);
  EXPECT_EQ(index.ListLength(1), 1u);
  EXPECT_EQ(index.ListLength(99), 0u);
  EXPECT_EQ(index.NumLabels(), 2u);
  EXPECT_EQ(index.Find(0)[0], (Posting{0, 1, 2}));
  EXPECT_EQ(index.Find(0)[1], (Posting{1, 1, 3}));
}

TEST(InvertedIndexTest, ExtendJoinsAdjacentSpans) {
  // (G, a, b) x (G, b, c) -> (G, a, c); non-adjacent spans don't join.
  PostingList current = {{0, 1, 3}, {1, 1, 2}};
  PostingList label = {{0, 3, 5}, {0, 4, 5}, {1, 3, 4}};
  PostingList joined = InvertedIndex::Extend(current, label, nullptr);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (Posting{0, 1, 5}));
}

TEST(InvertedIndexTest, ExtendFiltersDeadGraphs) {
  PostingList current = {{0, 1, 2}, {1, 1, 2}};
  PostingList label = {{0, 2, 3}, {1, 2, 3}};
  std::vector<char> alive = {1, 0};
  PostingList joined = InvertedIndex::Extend(current, label, &alive);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].graph(), 0u);
}

TEST(InvertedIndexTest, ExtendDeduplicates) {
  // Two ways to reach the same span collapse to one posting.
  PostingList current = {{0, 1, 2}, {0, 1, 2}};
  PostingList label = {{0, 2, 4}};
  PostingList joined = InvertedIndex::Extend(current, label, nullptr);
  EXPECT_EQ(joined.size(), 1u);
}

TEST(InvertedIndexTest, ExtendEmptyAndSingleElementLists) {
  const PostingList empty;
  const PostingList one = {{3, 1, 2}};
  const PostingList adjacent = {{3, 2, 5}};
  const PostingList not_adjacent = {{3, 4, 5}};
  const PostingList other_graph = {{4, 2, 5}};

  EXPECT_TRUE(InvertedIndex::Extend(empty, empty, nullptr).empty());
  EXPECT_TRUE(InvertedIndex::Extend(empty, one, nullptr).empty());
  EXPECT_TRUE(InvertedIndex::Extend(one, empty, nullptr).empty());

  PostingList joined = InvertedIndex::Extend(one, adjacent, nullptr);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], (Posting{3, 1, 5}));
  EXPECT_TRUE(InvertedIndex::Extend(one, not_adjacent, nullptr).empty());
  EXPECT_TRUE(InvertedIndex::Extend(one, other_graph, nullptr).empty());
}

TEST(InvertedIndexTest, ExtendAliveFilterDropsWholeRun) {
  // Graph 1's whole run (several postings on both sides) is dropped by
  // the alive filter; the join must resynchronize on graph 2 afterwards.
  PostingList current = {{0, 1, 2}, {1, 1, 2}, {1, 1, 3}, {1, 2, 3}, {2, 1, 2}};
  PostingList label = {{1, 2, 4}, {1, 3, 4}, {2, 2, 4}};
  std::vector<char> alive = {1, 0, 1};
  PostingList out;
  ExtendStats stats = InvertedIndex::ExtendInto(current, label, &alive, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Posting{2, 1, 4}));
  EXPECT_EQ(stats.distinct_graphs, 1u);
  // Killing graph 2 as well empties the result entirely.
  alive[2] = 0;
  stats = InvertedIndex::ExtendInto(current, label, &alive, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.distinct_graphs, 0u);
  EXPECT_EQ(stats.hash, kPostingHashSeed);
}

TEST(InvertedIndexTest, ExtendIntoFusedStatsMatchSeparatePasses) {
  std::mt19937_64 rng(99);
  auto random_list = [&](size_t n) {
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      GraphId g = static_cast<GraphId>(rng() % 16);
      int start = 1 + static_cast<int>(rng() % 6);
      int end = start + 1 + static_cast<int>(rng() % 4);
      list.push_back(Posting{g, start, end});
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
  };
  PostingList out;
  for (int round = 0; round < 30; ++round) {
    PostingList current = random_list(40);
    PostingList label = random_list(40);
    ExtendStats stats =
        InvertedIndex::ExtendInto(current, label, nullptr, &out);
    // The fused distinct count equals a separate scan of the output.
    EXPECT_EQ(stats.distinct_graphs, InvertedIndex::DistinctGraphs(out));
    // The fused hash is a pure function of the output content: recompute
    // it the definitional way and from a second identical join.
    uint64_t h = kPostingHashSeed;
    for (const Posting& p : out) {
      h ^= p.bits();
      h *= kPostingHashPrime;
    }
    EXPECT_EQ(stats.hash, h);
    PostingList out2;
    EXPECT_EQ(InvertedIndex::ExtendInto(current, label, nullptr, &out2).hash,
              stats.hash);
    EXPECT_EQ(out, out2);
  }
}

TEST(InvertedIndexTest, ExtendIntoReusesTheScratchBuffer) {
  PostingList scratch;
  PostingList current, label;
  for (GraphId g = 0; g < 64; ++g) {
    current.push_back(Posting{g, 1, 2});
    label.push_back(Posting{g, 2, 3});
  }
  InvertedIndex::ExtendInto(current, label, nullptr, &scratch);
  ASSERT_EQ(scratch.size(), 64u);
  const size_t capacity = scratch.capacity();
  const Posting* data = scratch.data();
  // A smaller follow-up join overwrites in place: same storage, no growth.
  PostingList small_current = {{0, 1, 2}};
  InvertedIndex::ExtendInto(small_current, label, nullptr, &scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch.capacity(), capacity);
  EXPECT_EQ(scratch.data(), data);
}

TEST(InvertedIndexTest, DistinctGraphs) {
  PostingList list = {{0, 1, 2}, {0, 2, 3}, {2, 1, 2}, {5, 1, 2}, {5, 1, 3}};
  EXPECT_EQ(InvertedIndex::DistinctGraphs(list), 3u);
  EXPECT_EQ(InvertedIndex::DistinctGraphs({}), 0u);
}

TEST(InvertedIndexTest, Example51Intersection) {
  // Example 5.1: phi1 = "Lee, Mary" -> "M. Lee", phi2 = "Smith, James" ->
  // "J. Smith", phi3 = "Lee, Mary" -> "Mary Lee". The path f2 (+) f3 (+) f1
  // is contained by G1 and G2 with spans (1,7) and (1,9).
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  graphs.push_back(std::move(builder.Build("Lee, Mary", "M. Lee")).value());
  graphs.push_back(
      std::move(builder.Build("Smith, James", "J. Smith")).value());
  graphs.push_back(std::move(builder.Build("Lee, Mary", "Mary Lee")).value());
  InvertedIndex index = InvertedIndex::Build(graphs);

  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  LabelId f2, f3, f1;
  ASSERT_TRUE(interner.Lookup(
      StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                       PosFn::MatchPos(tc, -1, Dir::kEnd)),
      &f2));
  ASSERT_TRUE(interner.Lookup(StringFn::ConstantStr(". "), &f3));
  ASSERT_TRUE(interner.Lookup(
      StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                       PosFn::MatchPos(tl, 1, Dir::kEnd)),
      &f1));

  PostingList root = {{0, 1, 1}, {1, 1, 1}, {2, 1, 1}};
  PostingList after_f2 = InvertedIndex::Extend(root, index.Find(f2), nullptr);
  PostingList after_f3 =
      InvertedIndex::Extend(after_f2, index.Find(f3), nullptr);
  PostingList after_f1 =
      InvertedIndex::Extend(after_f3, index.Find(f1), nullptr);

  // Contained by G1 (span 1..7) and G2 (span 1..9), not by G3.
  ASSERT_EQ(after_f1.size(), 2u);
  EXPECT_EQ(after_f1[0], (Posting{0, 1, 7}));
  EXPECT_EQ(after_f1[1], (Posting{1, 1, 9}));
}

// Quadratic reference join for differential testing of the galloping
// merge in Extend.
PostingList NaiveExtend(const PostingList& current,
                        const PostingList& label_list,
                        const std::vector<char>* alive) {
  PostingList out;
  for (const Posting& a : current) {
    if (alive != nullptr && !(*alive)[a.graph()]) continue;
    for (const Posting& b : label_list) {
      if (a.graph() == b.graph() && a.end() == b.start()) {
        out.push_back(Posting{a.graph(), a.start(), b.end()});
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

class ExtendDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtendDifferentialTest, MatchesNaiveJoinOnRandomLists) {
  std::mt19937_64 rng(GetParam());
  auto random_list = [&](size_t n, GraphId max_graph) {
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      GraphId g = static_cast<GraphId>(rng() % max_graph);
      int start = 1 + static_cast<int>(rng() % 6);
      int end = start + 1 + static_cast<int>(rng() % 4);
      list.push_back(Posting{g, start, end});
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    return list;
  };
  for (int round = 0; round < 50; ++round) {
    // Skewed sizes on alternating sides to force the galloping paths.
    const bool skew_current = (round % 2) == 0;
    PostingList current = random_list(skew_current ? 3 : 200, 64);
    PostingList label = random_list(skew_current ? 200 : 3, 64);
    std::vector<char> alive(64, 1);
    for (size_t g = 0; g < alive.size(); ++g) alive[g] = (rng() % 4) != 0;
    EXPECT_EQ(InvertedIndex::Extend(current, label, &alive),
              NaiveExtend(current, label, &alive));
    EXPECT_EQ(InvertedIndex::Extend(current, label, nullptr),
              NaiveExtend(current, label, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---------------------------------------------------------------------
// Sharded parallel build.

std::vector<TransformationGraph> RealisticGraphs(LabelInterner* interner) {
  GraphBuilder builder(GraphBuilderOptions{}, interner);
  const std::vector<StringPair> pairs = {
      {"Lee, Mary", "M. Lee"},       {"Smith, James", "J. Smith"},
      {"Brown, Anna", "A. Brown"},   {"Clark, Susan", "S. Clark"},
      {"Walker, John", "J. Walker"}, {"Turner, Ruth", "R. Turner"},
      {"Street", "St"},              {"Avenue", "Ave"},
      {"Boulevard", "Blvd"},         {"Wisconsin", "WI"},
      {"9th", "9"},                  {"3rd", "3"},
  };
  std::vector<TransformationGraph> graphs;
  for (const StringPair& pair : pairs) {
    graphs.push_back(std::move(builder.Build(pair.lhs, pair.rhs)).value());
  }
  return graphs;
}

void ExpectSameIndex(const InvertedIndex& a, const InvertedIndex& b,
                     size_t label_bound) {
  ASSERT_EQ(a.NumLabels(), b.NumLabels());
  for (LabelId label = 0; label < label_bound; ++label) {
    const PostingList& la = a.Find(label);
    const PostingList& lb = b.Find(label);
    ASSERT_EQ(la.size(), lb.size()) << "label " << label;
    // Byte-identical contents: the packed words must match exactly.
    for (size_t k = 0; k < la.size(); ++k) {
      ASSERT_EQ(la[k].bits(), lb[k].bits()) << "label " << label << " #" << k;
    }
  }
}

TEST(InvertedIndexShardTest, ShardSweepIsByteIdenticalToSerialBuild) {
  LabelInterner interner;
  std::vector<TransformationGraph> graphs = RealisticGraphs(&interner);
  InvertedIndex serial = InvertedIndex::Build(graphs);
  ASSERT_GT(serial.NumLabels(), 10u);
  const size_t label_bound = interner.size() + 4;

  ThreadPool pool(4);
  // Shard counts below, equal to, and far above the pool/label count —
  // plus explicit serial sharding — must all reproduce the serial index
  // bit for bit.
  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                        size_t{16}, size_t{1000}}) {
    SCOPED_TRACE(shards);
    ExpectSameIndex(serial, InvertedIndex::Build(graphs, &pool, shards),
                    label_bound);
    ExpectSameIndex(serial, InvertedIndex::Build(graphs, nullptr, shards),
                    label_bound);
  }
  // Default shard count (one per pool thread).
  ExpectSameIndex(serial, InvertedIndex::Build(graphs, &pool), label_bound);
}

TEST(InvertedIndexShardTest, LabelCountHintMatchesScannedBuild) {
  LabelInterner interner;
  std::vector<TransformationGraph> graphs = RealisticGraphs(&interner);
  InvertedIndex scanned = InvertedIndex::Build(graphs);
  const size_t label_bound = interner.size() + 4;
  ThreadPool pool(3);
  // Exact hint, generous over-estimate, serial and sharded: identical
  // layout (trailing empties are trimmed either way).
  ExpectSameIndex(scanned,
                  InvertedIndex::Build(graphs, nullptr, 0, interner.size()),
                  label_bound);
  ExpectSameIndex(
      scanned,
      InvertedIndex::Build(graphs, &pool, 0, interner.size() + 1000),
      label_bound);
}

TEST(InvertedIndexShardTest, EmptyAndLabelFreeInputs) {
  EXPECT_EQ(InvertedIndex::Build({}).NumLabels(), 0u);
  // A graph with no labels at all: nothing to index, any shard count.
  std::vector<TransformationGraph> graphs;
  graphs.emplace_back("src", "tgt");
  ThreadPool pool(2);
  EXPECT_EQ(InvertedIndex::Build(graphs, &pool, 8).NumLabels(), 0u);
  EXPECT_EQ(InvertedIndex::Build(graphs, &pool, 8).ListLength(0), 0u);
}

}  // namespace
}  // namespace ustl

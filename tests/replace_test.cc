// Tests for src/replace: candidate generation (Section 3 step 1,
// Appendix A) and the replacement store with its Section 7.1 update
// semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "replace/candidate_gen.h"
#include "replace/replacement_store.h"

namespace ustl {
namespace {

Column Table1NameColumn() {
  // The Name column of Table 1, lowercased clusters {r1,r2,r3}, {r4,r5,r6}.
  return {{"Mary Lee", "M. Lee", "Lee, Mary"},
          {"Smith, James", "James Smith", "J. Smith"}};
}

TEST(CandidateGenTest, FullValuePairsBothDirections) {
  CandidateGenOptions options;
  options.token_level = false;
  CandidateSet set = GenerateCandidates(Table1NameColumn(), options);
  // 3 values per cluster -> 6 ordered pairs per cluster -> 12 total
  // (Section 3: "12 candidate replacements from the two clusters").
  EXPECT_EQ(set.pairs.size(), 12u);
  EXPECT_NE(set.Find("Mary Lee", "M. Lee"), static_cast<size_t>(-1));
  EXPECT_NE(set.Find("M. Lee", "Mary Lee"), static_cast<size_t>(-1));
  EXPECT_EQ(set.Find("Mary Lee", "J. Smith"), static_cast<size_t>(-1))
      << "cross-cluster pairs must not be generated";
}

TEST(CandidateGenTest, OccurrencesPointAtLhsCells) {
  CandidateGenOptions options;
  options.token_level = false;
  CandidateSet set = GenerateCandidates(Table1NameColumn(), options);
  size_t index = set.Find("Mary Lee", "M. Lee");
  ASSERT_NE(index, static_cast<size_t>(-1));
  ASSERT_EQ(set.occurrences[index].size(), 1u);
  const Occurrence& occ = set.occurrences[index][0];
  EXPECT_EQ(occ.cluster, 0u);
  EXPECT_EQ(occ.row, 0u);  // the cell holding "Mary Lee"
  EXPECT_TRUE(occ.whole_value);
}

TEST(CandidateGenTest, TokenLevelExampleA1) {
  // Appendix A: "9 St, 02141 Wisconsin" ~ "9th St, 02141 WI" produces the
  // four segment replacements 9->9th, 9th->9, Wisconsin->WI, WI->Wisconsin.
  Column column = {{"9 St, 02141 Wisconsin", "9th St, 02141 WI"}};
  CandidateGenOptions options;
  options.full_value_pairs = false;
  CandidateSet set = GenerateCandidates(column, options);
  EXPECT_EQ(set.pairs.size(), 4u);
  EXPECT_NE(set.Find("9", "9th"), static_cast<size_t>(-1));
  EXPECT_NE(set.Find("9th", "9"), static_cast<size_t>(-1));
  EXPECT_NE(set.Find("Wisconsin", "WI"), static_cast<size_t>(-1));
  EXPECT_NE(set.Find("WI", "Wisconsin"), static_cast<size_t>(-1));
}

TEST(CandidateGenTest, TokenOccurrenceOffsets) {
  Column column = {{"9 St, 02141 Wisconsin", "9th St, 02141 WI"}};
  CandidateGenOptions options;
  options.full_value_pairs = false;
  CandidateSet set = GenerateCandidates(column, options);
  size_t index = set.Find("Wisconsin", "WI");
  ASSERT_NE(index, static_cast<size_t>(-1));
  ASSERT_EQ(set.occurrences[index].size(), 1u);
  EXPECT_EQ(set.occurrences[index][0].begin, 13);  // 1-based offset
  EXPECT_FALSE(set.occurrences[index][0].whole_value);
}

TEST(CandidateGenTest, CharLevelAlignment) {
  Column column = {{"9 St", "8 St"}};
  CandidateGenOptions options;
  options.full_value_pairs = false;
  options.token_level = false;
  options.char_level = true;
  CandidateSet set = GenerateCandidates(column, options);
  EXPECT_NE(set.Find("9", "8"), static_cast<size_t>(-1));
}

TEST(CandidateGenTest, LongValuesSkipped) {
  CandidateGenOptions options;
  options.max_value_len = 4;
  Column column = {{"aaaaaaaa", "b"}};
  CandidateSet set = GenerateCandidates(column, options);
  EXPECT_TRUE(set.pairs.empty());
}

TEST(CandidateGenTest, DuplicateValuesProduceSharedPair) {
  // Two cells with "9" and one with "9th": the pair 9 -> 9th has two
  // occurrences (one per "9" cell).
  Column column = {{"9", "9", "9th"}};
  CandidateGenOptions options;
  options.token_level = false;
  CandidateSet set = GenerateCandidates(column, options);
  size_t index = set.Find("9", "9th");
  ASSERT_NE(index, static_cast<size_t>(-1));
  EXPECT_EQ(set.occurrences[index].size(), 2u);
}

// --- Replacement store (Section 7.1). ---

TEST(ReplacementStoreTest, ApplyWholeValue) {
  ReplacementStore store(Table1NameColumn(), CandidateGenOptions{});
  size_t index = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "Lee, Mary" && store.pair(i).rhs == "Mary Lee") {
      index = i;
    }
  }
  ASSERT_LT(index, store.num_pairs());
  size_t edits = store.Apply(index);
  EXPECT_EQ(edits, 1u);
  EXPECT_EQ(store.column()[0][2], "Mary Lee");
}

TEST(ReplacementStoreTest, Section71EntryMigration) {
  // Section 7.1's example: after v1 -> v2 is applied, the replacement
  // v1 -> v3 becomes v2 -> v3 (its occurrence migrates) and v2 -> v1 no
  // longer exists anywhere.
  Column column = {{"v1x", "v2x", "v3x"}};
  CandidateGenOptions options;
  options.token_level = false;
  ReplacementStore store(column, options);
  size_t v1v2 = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "v1x" && store.pair(i).rhs == "v2x") v1v2 = i;
  }
  ASSERT_LT(v1v2, store.num_pairs());
  EXPECT_EQ(store.Apply(v1v2), 1u);
  EXPECT_EQ(store.column()[0][0], "v2x");

  for (size_t i = 0; i < store.num_pairs(); ++i) {
    const StringPair& pair = store.pair(i);
    if (pair.lhs == "v1x" || pair.rhs == "v1x") {
      EXPECT_TRUE(store.occurrences(i).empty())
          << pair.lhs << " -> " << pair.rhs << " should be dead";
    }
    if (pair.lhs == "v2x" && pair.rhs == "v3x") {
      // Both v2x cells now pair with v3x.
      EXPECT_EQ(store.occurrences(i).size(), 2u);
    }
  }
}

TEST(ReplacementStoreTest, ApplyReverseUsesMirrorOccurrences) {
  Column column = {{"Street", "St"}};
  CandidateGenOptions options;
  options.token_level = false;
  ReplacementStore store(column, options);
  size_t index = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "St" && store.pair(i).rhs == "Street") index = i;
  }
  ASSERT_LT(index, store.num_pairs());
  // Reverse of St -> Street replaces Street cells by St.
  EXPECT_EQ(store.ApplyReverse(index), 1u);
  EXPECT_EQ(store.column()[0][0], "St");
  EXPECT_EQ(store.column()[0][1], "St");
}

TEST(ReplacementStoreTest, TokenLevelApplyEditsInPlace) {
  Column column = {{"9 St, 02141 Wisconsin", "9th St, 02141 WI"}};
  CandidateGenOptions options;
  options.full_value_pairs = false;
  ReplacementStore store(column, options);
  size_t index = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "Wisconsin" && store.pair(i).rhs == "WI") {
      index = i;
    }
  }
  ASSERT_LT(index, store.num_pairs());
  EXPECT_EQ(store.Apply(index), 1u);
  EXPECT_EQ(store.column()[0][0], "9 St, 02141 WI");
}

TEST(ReplacementStoreTest, StaleOccurrencesSkipped) {
  // Applying the same whole-value replacement twice edits nothing new.
  Column column = {{"a1", "b2"}};
  CandidateGenOptions options;
  options.token_level = false;
  ReplacementStore store(column, options);
  size_t index = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "a1") index = i;
  }
  ASSERT_LT(index, store.num_pairs());
  EXPECT_EQ(store.Apply(index), 1u);
  EXPECT_EQ(store.Apply(index), 0u);
  EXPECT_EQ(store.column()[0][0], "b2");
}

TEST(ReplacementStoreTest, ConvergenceMakesClusterIdentical) {
  // Applying the right replacements makes all variants identical — the TP
  // condition of the evaluation protocol.
  Column column = {{"9 St, 02141 Wisconsin", "9th St, 02141 WI",
                    "9th Street, 02141 WI"}};
  ReplacementStore store(column, CandidateGenOptions{});
  // Apply whole-value replacements toward "9th Street, 02141 WI".
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).rhs == "9th Street, 02141 WI" &&
        !store.occurrences(i).empty() &&
        store.occurrences(i)[0].whole_value) {
      store.Apply(i);
    }
  }
  EXPECT_EQ(store.column()[0][0], store.column()[0][1]);
  EXPECT_EQ(store.column()[0][1], store.column()[0][2]);
}

TEST(ReplacementStoreTest, WholeValueRewriteSubsumesTokenOccurrence) {
  // Regression: the pair 9 -> 9th carries both a whole-value occurrence
  // and a token occurrence on the same cell. One Apply must rewrite the
  // cell exactly once — the token occurrence firing after the whole-value
  // rewrite produced "9thth".
  Column column = {{"9th", "9"}};
  ReplacementStore store(column, CandidateGenOptions{});
  size_t index = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "9" && store.pair(i).rhs == "9th") index = i;
  }
  ASSERT_LT(index, store.num_pairs());
  EXPECT_EQ(store.Apply(index), 1u);
  EXPECT_EQ(store.column()[0], (std::vector<std::string>{"9th", "9th"}));
}

TEST(ReplacementStoreTest, MultipleTokenOccurrencesInOneCellAllApply) {
  // "St" appears twice in one cell; the token-level pair St -> Street
  // must rewrite both spans (right-to-left so offsets stay valid), not
  // just the first.
  Column column = {{"St Mary St Boston", "Street Mary Street Boston"}};
  ReplacementStore store(column, CandidateGenOptions{});
  size_t index = store.pairs().size();
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.pair(i).lhs == "St" && store.pair(i).rhs == "Street") {
      index = i;
    }
  }
  ASSERT_LT(index, store.num_pairs());
  EXPECT_EQ(store.Apply(index), 2u);
  EXPECT_EQ(store.column()[0][0], "Street Mary Street Boston");
}

}  // namespace
}  // namespace ustl

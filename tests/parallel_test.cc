// Tests for src/common/parallel.h (ThreadPool, ParallelFor, ParallelMap)
// and the determinism contract of the parallel pipeline: batch graph
// construction and grouping must be bit-identical for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "datagen/generators.h"
#include "graph/graph_builder.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

namespace ustl {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(5), 5);
  EXPECT_EQ(ResolveThreadCount(-3), ResolveThreadCount(0));
}

TEST(ThreadPoolTest, ReportsThreadCountAndRunsTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  EXPECT_FALSE(pool.InWorkerThread());
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  ParallelFor(nullptr, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int> out(100, 0);
  ParallelFor(nullptr, out.size(), [&](size_t i) { out[i] = static_cast<int>(i); });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(&pool, kN, [&](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForTest, WorkersAreMarkedAsPoolThreads) {
  ThreadPool pool(4);
  // With far more indices than threads, at least one chunk runs on a
  // worker thread (the caller can't drain 32 chunks alone while workers
  // are awake) — but that is timing-dependent, so only assert consistency:
  // an index either ran inline (caller: not a worker) or on a worker.
  std::atomic<int> on_worker{0}, on_caller{0};
  ParallelFor(&pool, 1000, [&](size_t) {
    pool.InWorkerThread() ? ++on_worker : ++on_caller;
  });
  EXPECT_EQ(on_worker.load() + on_caller.load(), 1000);
}

TEST(ParallelForTest, NestedUseRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::vector<int>> out(kOuter, std::vector<int>(kInner, 0));
  ParallelFor(&pool, kOuter, [&](size_t i) {
    ParallelFor(&pool, kInner, [&](size_t j) { out[i][j] = 1; });
  });
  for (const auto& row : out) {
    EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0),
              static_cast<int>(kInner));
  }
}

TEST(ParallelForTest, PropagatesTheLowestIndexedException) {
  ThreadPool pool(4);
  // Several chunks throw; the caller must observe the failure of the
  // lowest-indexed chunk, like a serial loop surfacing its first error.
  try {
    ParallelFor(&pool, 1000, [&](size_t i) {
      if (i % 250 == 100) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 100");
  }
}

TEST(ParallelForTest, ExceptionStillRunsIndependentChunks) {
  ThreadPool pool(2);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(ParallelFor(&pool, 100,
                           [&](size_t i) {
                             if (i == 99) throw std::runtime_error("tail");
                             ++ran;
                           }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 99u);
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadPool pool(8);
  std::vector<int> squares =
      ParallelMap<int>(&pool, 500, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(squares.size(), 500u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

// ---------------------------------------------------------------------
// Determinism of the parallel pipeline.

std::vector<StringPair> DatasetPairs(GeneratedDataset* data) {
  AddressGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 23;
  *data = GenerateAddressDataset(gen);
  ReplacementStore store(data->column, CandidateGenOptions{});
  return store.pairs();
}

TEST(ParallelDeterminismTest, BuildBatchMatchesSerialBuildBitForBit) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  ASSERT_GT(pairs.size(), 50u);

  std::vector<GraphBuilder::BuildRequest> requests;
  for (const StringPair& pair : pairs) requests.push_back({pair.lhs, pair.rhs});

  LabelInterner serial_interner;
  GraphBuilder serial_builder(GraphBuilderOptions{}, &serial_interner);
  std::vector<TransformationGraph> serial_graphs;
  for (const StringPair& pair : pairs) {
    Result<TransformationGraph> graph = serial_builder.Build(pair.lhs, pair.rhs);
    ASSERT_TRUE(graph.ok());
    serial_graphs.push_back(std::move(graph).value());
  }

  ThreadPool pool(4);
  LabelInterner batch_interner;
  GraphBuilder batch_builder(GraphBuilderOptions{}, &batch_interner);
  Result<std::vector<TransformationGraph>> batch =
      batch_builder.BuildBatch(requests, &pool);
  ASSERT_TRUE(batch.ok());

  // The shared interners must assign identical ids in identical order...
  ASSERT_EQ(batch_interner.size(), serial_interner.size());
  for (LabelId id = 0; id < serial_interner.size(); ++id) {
    EXPECT_TRUE(serial_interner.Get(id) == batch_interner.Get(id)) << id;
  }
  // ...and every graph must carry identical edges and label ids.
  ASSERT_EQ(batch->size(), serial_graphs.size());
  for (size_t g = 0; g < serial_graphs.size(); ++g) {
    const TransformationGraph& a = serial_graphs[g];
    const TransformationGraph& b = (*batch)[g];
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    for (int node = 1; node <= a.num_nodes(); ++node) {
      const auto& ea = a.edges_from(node);
      const auto& eb = b.edges_from(node);
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t e = 0; e < ea.size(); ++e) {
        EXPECT_EQ(ea[e].to, eb[e].to);
        EXPECT_EQ(ea[e].labels, eb[e].labels);
      }
    }
  }
}

TEST(ParallelDeterminismTest, ShardedIndexBuildMatchesSerialBitForBit) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  ASSERT_GT(pairs.size(), 50u);
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  std::vector<TransformationGraph> graphs;
  for (const StringPair& pair : pairs) {
    graphs.push_back(std::move(builder.Build(pair.lhs, pair.rhs)).value());
  }

  InvertedIndex serial = InvertedIndex::Build(graphs);
  ASSERT_GT(serial.NumLabels(), 100u);
  ThreadPool pool(4);
  for (size_t shards : {size_t{0}, size_t{2}, size_t{3}, size_t{8},
                        size_t{64}}) {
    SCOPED_TRACE(shards);
    InvertedIndex sharded =
        InvertedIndex::Build(graphs, &pool, shards, interner.size());
    ASSERT_EQ(sharded.NumLabels(), serial.NumLabels());
    for (LabelId label = 0; label < interner.size() + 2; ++label) {
      const PostingList& a = serial.Find(label);
      const PostingList& b = sharded.Find(label);
      ASSERT_EQ(a.size(), b.size()) << "label " << label;
      for (size_t k = 0; k < a.size(); ++k) {
        ASSERT_EQ(a[k].bits(), b[k].bits()) << "label " << label << " #" << k;
      }
    }
  }
}

// Drains a GroupingEngine configured with `threads` into a comparable
// serialized form.
std::vector<Group> DrainEngine(const std::vector<StringPair>& pairs,
                               int threads, bool search_cache = true,
                               IncrementalStats* stats = nullptr,
                               IndexCodec codec = IndexCodec::kRaw) {
  GroupingOptions options;
  options.num_threads = threads;
  options.reuse_search_results = search_cache;
  options.index_codec = codec;
  // Small blocks so the address lists split into several blocks each —
  // the skip/prune cursor gets real work instead of one-block lists.
  options.block_postings.target_block_size = 16;
  options.block_postings.small_list_cutoff = 2;
  GroupingEngine engine(pairs, options);
  std::vector<Group> groups;
  while (std::optional<Group> group = engine.Next()) {
    groups.push_back(std::move(*group));
  }
  if (stats != nullptr) *stats = engine.stats();
  return groups;
}

void ExpectSameGroups(const std::vector<Group>& a,
                      const std::vector<Group>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pivot, b[i].pivot) << i;
    EXPECT_EQ(a[i].structure, b[i].structure) << i;
    EXPECT_EQ(a[i].program, b[i].program) << i;
    EXPECT_EQ(a[i].member_pair_indices, b[i].member_pair_indices) << i;
    EXPECT_EQ(a[i].pure_constant, b[i].pure_constant) << i;
    EXPECT_EQ(a[i].constant_coverage, b[i].constant_coverage) << i;
  }
}

TEST(ParallelDeterminismTest, GroupingEngineIsIdenticalAcrossThreadCounts) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  std::vector<Group> one = DrainEngine(pairs, 1);
  ASSERT_GT(one.size(), 5u);
  ExpectSameGroups(one, DrainEngine(pairs, 2));
  ExpectSameGroups(one, DrainEngine(pairs, 8));
}

// ISSUE 4 acceptance: grouped output (groups, members, order) must be
// byte-identical across thread counts x search-cache settings in the
// incremental driver. The 1-thread cache-on run must also see cross-round
// reuse actually firing.
TEST(ParallelDeterminismTest, GroupingEngineThreadAndSearchCacheMatrix) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  IncrementalStats baseline_stats;
  std::vector<Group> baseline =
      DrainEngine(pairs, 1, /*search_cache=*/true, &baseline_stats);
  ASSERT_GT(baseline.size(), 5u);
  EXPECT_GT(baseline_stats.cache_hits, 0u);
  for (int threads : {1, 2, 4}) {
    for (bool cache : {true, false}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " cache=" << cache);
      ExpectSameGroups(baseline, DrainEngine(pairs, threads, cache));
    }
  }
}

// ISSUE 6 acceptance: grouped output must be byte-identical across index
// codec x thread count x search-cache state, and the block-codec runs
// must actually exercise the skip/prune cursor rather than degenerating
// to small raw spans.
TEST(ParallelDeterminismTest, GroupingEngineCodecThreadMatrix) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  IncrementalStats raw_stats;
  std::vector<Group> baseline =
      DrainEngine(pairs, 1, /*search_cache=*/true, &raw_stats);
  ASSERT_GT(baseline.size(), 5u);
  // The raw codec has no blocks to count.
  EXPECT_EQ(raw_stats.blocks_decoded, 0u);
  EXPECT_EQ(raw_stats.blocks_skipped, 0u);
  IncrementalStats block_stats;
  for (int threads : {1, 4}) {
    for (bool cache : {true, false}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " cache=" << cache);
      ExpectSameGroups(
          baseline,
          DrainEngine(pairs, threads, cache,
                      (threads == 1 && cache) ? &block_stats : nullptr,
                      IndexCodec::kBlock));
    }
  }
  // The serial cache-on block run decoded real blocks and skipped some.
  EXPECT_GT(block_stats.blocks_decoded, 0u);
  EXPECT_GT(block_stats.blocks_skipped, 0u);
}

TEST(ParallelDeterminismTest, GroupAllUpfrontIsIdenticalAcrossThreadCounts) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  std::vector<std::vector<Group>> runs;
  std::vector<uint64_t> expansions;
  for (int threads : {1, 2, 8}) {
    GroupingOptions options;
    options.num_threads = threads;
    UpfrontStats stats;
    runs.push_back(GroupAllUpfront(pairs, options, true, &stats));
    expansions.push_back(stats.expansions);
    EXPECT_GT(stats.expansions, 0u);
  }
  ASSERT_GT(runs[0].size(), 5u);
  ExpectSameGroups(runs[0], runs[1]);
  ExpectSameGroups(runs[0], runs[2]);
  // The wave scan searches against the Glo snapshot its wave started
  // with, so multi-threaded runs may spend pruning expansions the serial
  // scan avoids — groups must match, the counters need not (see
  // GroupingOptions::num_threads).
}

// The wave scan of one structure group, exercised directly on an
// IncrementalEngine sharing a pool: group sequence and membership must be
// byte-identical to the serial engine, cache on or off.
TEST(ParallelDeterminismTest, IncrementalWaveScanMatchesSerialScan) {
  GeneratedDataset data;
  std::vector<StringPair> all_pairs = DatasetPairs(&data);
  // The engine serves one structure group at a time in production; take
  // the largest one (heterogeneous sets make pivot search explode).
  std::vector<StringPair> pairs;
  for (const auto& [structure, indices] :
       PartitionByStructure(all_pairs, true)) {
    if (indices.size() > pairs.size()) {
      pairs.clear();
      for (size_t i : indices) pairs.push_back(all_pairs[i]);
    }
  }
  ASSERT_GT(pairs.size(), 10u);
  auto drain = [&](ThreadPool* pool, bool cache) {
    LabelInterner interner;
    GraphBuilder builder(GraphBuilderOptions{}, &interner);
    Result<GraphSet> set = GraphSet::Build(pairs, builder, pool);
    EXPECT_TRUE(set.ok());
    IncrementalOptions options;
    options.reuse_search_results = cache;
    IncrementalEngine engine(std::move(set).value(), options, pool);
    std::vector<ReplacementGroup> groups;
    while (auto group = engine.Next()) groups.push_back(std::move(*group));
    return groups;
  };
  std::vector<ReplacementGroup> serial = drain(nullptr, false);
  ASSERT_GT(serial.size(), 1u);
  ThreadPool pool(4);
  for (bool cache : {true, false}) {
    SCOPED_TRACE(cache);
    std::vector<ReplacementGroup> waved = drain(&pool, cache);
    ASSERT_EQ(waved.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].pivot, waved[i].pivot) << i;
      EXPECT_EQ(serial[i].members, waved[i].members) << i;
    }
  }
}

// A finite total expansion budget must keep the engine on the documented
// lazy serial order whatever the thread count: identical groups AND
// identical search statistics (the budget makes spend order-dependent, so
// the engine may not speculate).
TEST(ParallelDeterminismTest, FiniteBudgetKeepsTheLazySerialOrder) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  auto run = [&](int threads) {
    GroupingOptions options;
    options.num_threads = threads;
    options.max_total_expansions = 20000;  // enough for a few groups
    GroupingEngine engine(pairs, options);
    std::vector<Group> groups;
    while (std::optional<Group> group = engine.Next()) {
      groups.push_back(std::move(*group));
    }
    return std::make_pair(std::move(groups), engine.stats());
  };
  auto [one, one_stats] = run(1);
  ASSERT_FALSE(one.empty());
  for (int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    auto [many, many_stats] = run(threads);
    ExpectSameGroups(one, many);
    EXPECT_EQ(one_stats.searches, many_stats.searches);
    EXPECT_EQ(one_stats.expansions, many_stats.expansions);
    EXPECT_EQ(many_stats.speculative_searches, 0u);
    EXPECT_EQ(many_stats.cache_hits, 0u);
  }
}

// ISSUE 5: adaptive wave sizing moves speculation statistics only — the
// group sequence stays byte-identical to the serial baseline for any
// thread count, with sizing on or off.
TEST(ParallelDeterminismTest, AdaptiveWaveSizingKeepsGroupsIdentical) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  auto run = [&](int threads, bool adaptive) {
    GroupingOptions options;
    options.num_threads = threads;
    options.adaptive_wave_sizing = adaptive;
    GroupingEngine engine(pairs, options);
    std::vector<Group> groups;
    while (std::optional<Group> group = engine.Next()) {
      groups.push_back(std::move(*group));
    }
    return groups;
  };
  std::vector<Group> baseline = run(1, true);
  ASSERT_GT(baseline.size(), 5u);
  for (int threads : {1, 2, 4}) {
    for (bool adaptive : {true, false}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " adaptive=" << adaptive);
      ExpectSameGroups(baseline, run(threads, adaptive));
    }
  }
}

// ISSUE 5: the cross-engine search cache warm-starts an identical-content
// engine — fewer searches, some warm hits — without changing one byte of
// the group sequence, for any thread count on either side.
TEST(ParallelDeterminismTest, SharedSearchCacheWarmStartIsByteIdentical) {
  GeneratedDataset data;
  std::vector<StringPair> pairs = DatasetPairs(&data);
  auto run = [&](int threads, SearchResultCache* cache,
                 IncrementalStats* stats) {
    GroupingOptions options;
    options.num_threads = threads;
    options.shared_search_cache = cache;
    GroupingEngine engine(pairs, options);
    std::vector<Group> groups;
    while (std::optional<Group> group = engine.Next()) {
      groups.push_back(std::move(*group));
    }
    if (stats != nullptr) *stats = engine.stats();
    return groups;
  };
  IncrementalStats cold_stats;
  std::vector<Group> baseline = run(1, nullptr, &cold_stats);
  ASSERT_GT(baseline.size(), 5u);

  SearchResultCache cache;
  IncrementalStats publish_stats;
  ExpectSameGroups(baseline, run(1, &cache, &publish_stats));
  EXPECT_EQ(publish_stats.warm_hits, 0u);  // nothing published yet
  EXPECT_GT(cache.stats().publishes, 0u);
  EXPECT_GT(cache.stats().entries, 0u);

  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    IncrementalStats warm_stats;
    ExpectSameGroups(baseline, run(threads, &cache, &warm_stats));
    EXPECT_GT(warm_stats.warm_hits, 0u);
    EXPECT_LT(warm_stats.searches, cold_stats.searches);
  }
}

}  // namespace
}  // namespace ustl

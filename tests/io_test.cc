// Tests for src/io: RFC-4180 CSV parsing/writing (quoting, CRLF, embedded
// newlines), the write/parse round trip on adversarial fields, and the
// clustered-table CSV mapping the CLI tool relies on.
#include <gtest/gtest.h>

#include <random>

#include "io/csv.h"

namespace ustl {
namespace {

TEST(CsvParseTest, SimpleRowsAndFields) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (CsvRow{"1", "2"}));
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndNewlines) {
  auto rows = ParseCsv("\"a,b\",\"line1\nline2\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a,b", "line1\nline2", "say \"hi\""}));
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, BareCrEndsRow) {
  auto rows = ParseCsv("a\rb\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"b"}));
}

TEST(CsvParseTest, EmptyFieldsSurvive) {
  auto rows = ParseCsv(",a,\n,,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"", "a", ""}));
  EXPECT_EQ((*rows)[1], (CsvRow{"", "", ""}));
}

TEST(CsvParseTest, EmptyDocumentHasNoRows) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvParseTest, UnterminatedQuoteIsAnError) {
  EXPECT_FALSE(ParseCsv("\"abc\n").ok());
}

TEST(CsvParseTest, QuoteInsideUnquotedFieldIsAnError) {
  EXPECT_FALSE(ParseCsv("ab\"c,d\n").ok());
}

TEST(CsvWriteTest, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscapeField("plain"), "plain");
  EXPECT_EQ(CsvEscapeField("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvEscapeField("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvEscapeField("with\nnewline"), "\"with\nnewline\"");
  EXPECT_EQ(WriteCsvRow({"a", "b,c"}), "a,\"b,c\"");
}

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, RandomDocumentsRoundTrip) {
  std::mt19937_64 rng(GetParam());
  static const char alphabet[] = "ab,\"\n\r x9";
  auto random_field = [&]() {
    std::string field;
    const size_t len = rng() % 6;
    for (size_t i = 0; i < len; ++i) {
      field.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    // A bare CR inside an unquoted written field would be read back as a
    // row break; CsvEscapeField quotes it, so any content round-trips.
    return field;
  };
  for (int round = 0; round < 30; ++round) {
    std::vector<CsvRow> rows;
    const size_t num_rows = 1 + rng() % 5;
    for (size_t r = 0; r < num_rows; ++r) {
      CsvRow row;
      const size_t num_fields = 1 + rng() % 4;
      for (size_t f = 0; f < num_fields; ++f) {
        row.push_back(random_field());
      }
      // An all-empty single-field last row is indistinguishable from no
      // row; keep at least one visible character in the first field.
      if (row.size() == 1 && row[0].empty()) row[0] = "x";
      rows.push_back(std::move(row));
    }
    auto parsed = ParseCsv(WriteCsv(rows));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Values(3u, 14u, 15u, 92u));

TEST(ClusteredCsvTest, GroupsRowsByKeyInFirstAppearanceOrder) {
  auto clustered = ReadClusteredCsv(
      "name,cluster,city\n"
      "ann,K2,boston\n"
      "bob,K1,nyc\n"
      "anne,K2,boston\n",
      "cluster");
  ASSERT_TRUE(clustered.ok()) << clustered.status().ToString();
  EXPECT_EQ(clustered->table.column_names(),
            (std::vector<std::string>{"name", "city"}));
  ASSERT_EQ(clustered->table.num_clusters(), 2u);
  EXPECT_EQ(clustered->cluster_keys, (std::vector<std::string>{"K2", "K1"}));
  EXPECT_EQ(clustered->table.cluster(0).size(), 2u);
  EXPECT_EQ(clustered->table.cluster(0)[1],
            (std::vector<std::string>{"anne", "boston"}));
  EXPECT_EQ(clustered->table.cluster(1)[0],
            (std::vector<std::string>{"bob", "nyc"}));
}

TEST(ClusteredCsvTest, RoundTripsThroughWrite) {
  ClusteredCsv clustered;
  clustered.cluster_column = "id";
  clustered.table = Table({"value"});
  size_t c = clustered.table.AddCluster();
  clustered.cluster_keys.push_back("k,1");  // key needing quoting
  clustered.table.AddRecord(c, {"9th St"});
  clustered.table.AddRecord(c, {"9 Street"});

  auto back = ReadClusteredCsv(WriteClusteredCsv(clustered), "id");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cluster_keys, clustered.cluster_keys);
  ASSERT_EQ(back->table.num_clusters(), 1u);
  EXPECT_EQ(back->table.cluster(0), clustered.table.cluster(0));
}

TEST(ClusteredCsvTest, MissingKeyColumnIsAnError) {
  EXPECT_FALSE(ReadClusteredCsv("a,b\n1,2\n", "cluster").ok());
}

TEST(ClusteredCsvTest, RaggedRowIsAnError) {
  EXPECT_FALSE(
      ReadClusteredCsv("cluster,a\nk1,1\nk2\n", "cluster").ok());
}

TEST(ClusteredCsvTest, HeaderOnlyYieldsEmptyTable) {
  auto clustered = ReadClusteredCsv("cluster,a\n", "cluster");
  ASSERT_TRUE(clustered.ok());
  EXPECT_EQ(clustered->table.num_clusters(), 0u);
}

TEST(FileIoTest, WriteThenReadBack) {
  const std::string path = ::testing::TempDir() + "/ustl_io_test.csv";
  ASSERT_TRUE(WriteStringToFile(path, "a,b\n1,2\n").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "a,b\n1,2\n");
}

TEST(FileIoTest, MissingFileIsNotFound) {
  auto content = ReadFileToString("/nonexistent/ustl/nope.csv");
  EXPECT_FALSE(content.ok());
}

}  // namespace
}  // namespace ustl

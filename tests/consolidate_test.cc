// Tests for src/consolidate: the table model, the simulated oracle, the
// majority-consensus truth discovery (Section 8.3), and the Algorithm-1
// framework including the Single baseline.
#include <gtest/gtest.h>

#include "consolidate/cluster.h"
#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "consolidate/truth_discovery.h"

namespace ustl {
namespace {

TEST(TableTest, RoundTripColumns) {
  Table table({"Name", "Address"});
  size_t c0 = table.AddCluster();
  table.AddRecord(c0, {"Mary Lee", "9 St"});
  table.AddRecord(c0, {"M. Lee", "9th St"});
  size_t c1 = table.AddCluster();
  table.AddRecord(c1, {"J. Smith", "3 Ave"});
  EXPECT_EQ(table.num_clusters(), 2u);
  EXPECT_EQ(table.num_records(), 3u);

  Column names = table.ExtractColumn(0);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], (std::vector<std::string>{"Mary Lee", "M. Lee"}));
  names[0][1] = "Mary Lee";
  table.StoreColumn(0, names);
  EXPECT_EQ(table.cluster(0)[1][0], "Mary Lee");
  EXPECT_EQ(table.cluster(0)[1][1], "9th St");  // other column untouched
}

TEST(MajorityValueTest, PicksMostFrequent) {
  EXPECT_EQ(MajorityValue({"a", "b", "a"}), "a");
  EXPECT_EQ(MajorityValue({"x"}), "x");
}

TEST(MajorityValueTest, TieYieldsNothing) {
  // Section 8.3: "if there are two values with the same frequency, MC
  // could not produce a golden value".
  EXPECT_FALSE(MajorityValue({"a", "b"}).has_value());
  EXPECT_FALSE(MajorityValue({"a", "a", "b", "b"}).has_value());
  EXPECT_FALSE(MajorityValue({}).has_value());
}

TEST(MajorityConsensusTest, PerClusterPerColumn) {
  Table table({"Name"});
  size_t c0 = table.AddCluster();
  table.AddRecord(c0, {"Mary Lee"});
  table.AddRecord(c0, {"Mary Lee"});
  table.AddRecord(c0, {"M. Lee"});
  size_t c1 = table.AddCluster();
  table.AddRecord(c1, {"a"});
  table.AddRecord(c1, {"b"});
  auto golden = MajorityConsensus(table);
  ASSERT_EQ(golden.size(), 2u);
  EXPECT_EQ(golden[0][0], "Mary Lee");
  EXPECT_FALSE(golden[1][0].has_value());
}

TEST(SimulatedOracleTest, ApprovesGenuineGroups) {
  SimulatedOracle oracle(
      [](const StringPair& pair) { return pair.rhs.size() > pair.lhs.size(); },
      [](const StringPair&) { return 1; }, SimulatedOracle::Options{});
  Verdict verdict =
      oracle.Verify({{"St", "Street"}, {"Ave", "Avenue"}, {"Rd", "Road"}});
  EXPECT_TRUE(verdict.approved);
  EXPECT_EQ(verdict.direction, ReplaceDirection::kLhsToRhs);
  EXPECT_EQ(oracle.questions_asked(), 1u);
}

TEST(SimulatedOracleTest, RejectsMixedGroups) {
  // Below the 80% threshold: 1 genuine of 3.
  SimulatedOracle oracle(
      [](const StringPair& pair) { return pair.lhs == "good"; },
      nullptr, SimulatedOracle::Options{});
  Verdict verdict =
      oracle.Verify({{"good", "x"}, {"bad", "y"}, {"bad", "z"}});
  EXPECT_FALSE(verdict.approved);
}

TEST(SimulatedOracleTest, DirectionFollowsVotes) {
  SimulatedOracle oracle(
      [](const StringPair&) { return true; },
      [](const StringPair&) { return -1; }, SimulatedOracle::Options{});
  Verdict verdict = oracle.Verify({{"a", "b"}, {"c", "d"}});
  EXPECT_TRUE(verdict.approved);
  EXPECT_EQ(verdict.direction, ReplaceDirection::kRhsToLhs);
}

TEST(SimulatedOracleTest, ErrorInjectionFlipsSomeVerdicts) {
  SimulatedOracle::Options options;
  options.error_rate = 1.0;  // always wrong
  SimulatedOracle oracle([](const StringPair&) { return true; }, nullptr,
                         options);
  Verdict verdict = oracle.Verify({{"a", "b"}});
  EXPECT_FALSE(verdict.approved);
}

TEST(SimulatedOracleTest, InspectsBoundedSample) {
  // A group with 1000 pairs, 90% genuine: with max_inspected = 10 the
  // verdict is computed on a sample, and stays deterministic per seed.
  std::vector<StringPair> pairs;
  for (int i = 0; i < 1000; ++i) {
    pairs.push_back({"good" + std::to_string(i), "x"});
  }
  SimulatedOracle::Options options;
  options.max_inspected = 10;
  SimulatedOracle a([](const StringPair&) { return true; }, nullptr, options);
  SimulatedOracle b([](const StringPair&) { return true; }, nullptr, options);
  EXPECT_EQ(a.Verify(pairs).approved, b.Verify(pairs).approved);
}

TEST(ApproveAllOracleTest, ApprovesEverything) {
  ApproveAllOracle oracle;
  EXPECT_TRUE(oracle.Verify({{"a", "b"}}).approved);
}

// --- Framework (Algorithm 1). ---

Column VariantColumn() {
  return {{"9 Street", "9 St"},
          {"3 Street", "3 St"},
          {"7 Street", "7 St"},
          {"Oak Street", "Oak St"}};
}

TEST(FrameworkTest, StandardizeColumnConvergesVariants) {
  Column column = VariantColumn();
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 20;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_GT(result.groups_presented, 0u);
  EXPECT_GT(result.edits, 0u);
  // The St <-> Street family must have converged in every cluster.
  for (const auto& cluster : column) {
    EXPECT_EQ(cluster[0], cluster[1]) << cluster[0] << " vs " << cluster[1];
  }
}

TEST(FrameworkTest, BudgetLimitsPresentedGroups) {
  Column column = VariantColumn();
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 1;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_EQ(result.groups_presented, 1u);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_GE(result.trace[0].size, 1u);
}

TEST(FrameworkTest, RejectionAppliesNothing) {
  Column column = VariantColumn();
  Column before = column;
  SimulatedOracle oracle([](const StringPair&) { return false; }, nullptr,
                         SimulatedOracle::Options{});
  FrameworkOptions options;
  options.budget_per_column = 10;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_EQ(result.groups_approved, 0u);
  EXPECT_EQ(result.edits, 0u);
  EXPECT_EQ(column, before);
}

TEST(FrameworkTest, ProgressCallbackFiresPerGroup) {
  Column column = VariantColumn();
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 5;
  size_t calls = 0;
  options.progress_callback = [&](size_t presented, const Column& current) {
    ++calls;
    EXPECT_EQ(presented, calls);
    EXPECT_EQ(current.size(), 4u);
  };
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_EQ(calls, result.groups_presented);
}

TEST(FrameworkTest, SingleBaselinePresentsOnePairAtATime) {
  Column column = VariantColumn();
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 3;
  options.skip_dead_groups = false;  // pin the strict budget semantics
  ColumnRunResult result = StandardizeColumnSingle(&column, &oracle, options);
  EXPECT_EQ(result.groups_presented, 3u);
  for (const GroupTrace& trace : result.trace) {
    EXPECT_EQ(trace.size, 1u);
  }
}

TEST(FrameworkTest, SingleSkipsDeadPairs) {
  // With dead-group skipping (Section 7.1), applying a replacement kills
  // its mirror and the column can converge in fewer questions than the
  // budget allows.
  Column column = VariantColumn();
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 50;
  ColumnRunResult result = StandardizeColumnSingle(&column, &oracle, options);
  EXPECT_LT(result.groups_presented, 50u);
  for (const auto& cluster : column) {
    EXPECT_EQ(cluster[0], cluster[1]);
  }
}

TEST(FrameworkTest, GroupBeatsSingleAtEqualBudget) {
  // The motivating claim: batched verification standardizes more data per
  // question (Figure 7). With full-value candidates only (so Single cannot
  // piggyback on shared token replacements) and 3 questions for 6
  // clusters, Group converges everything, Single at most 3 clusters.
  Column column;
  for (int i = 1; i <= 6; ++i) {
    std::string n = std::to_string(i);
    column.push_back({n + " Street", n + " St"});
  }
  FrameworkOptions options;
  options.budget_per_column = 3;
  options.candidates.token_level = false;
  ApproveAllOracle group_oracle, single_oracle;
  Column grouped = column;
  StandardizeColumn(&grouped, &group_oracle, options);
  Column single = column;
  StandardizeColumnSingle(&single, &single_oracle, options);
  auto converged = [](const Column& c) {
    size_t count = 0;
    for (const auto& cluster : c) count += cluster[0] == cluster[1];
    return count;
  };
  EXPECT_EQ(converged(grouped), 6u);
  EXPECT_LE(converged(single), 3u);
}

TEST(FrameworkTest, GoldenRecordCreationEndToEnd) {
  Table table({"Address"});
  size_t c0 = table.AddCluster();
  table.AddRecord(c0, {"9 Street"});
  table.AddRecord(c0, {"9 St"});
  table.AddRecord(c0, {"9 St"});
  size_t c1 = table.AddCluster();
  table.AddRecord(c1, {"3 Street"});
  table.AddRecord(c1, {"3 St"});
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 10;
  GoldenRecordRun run = GoldenRecordCreation(&table, &oracle, options);
  ASSERT_EQ(run.per_column.size(), 1u);
  ASSERT_EQ(run.golden_records.size(), 2u);
  // After standardization both clusters are unanimous, so MC resolves
  // both (the c1 tie resolves because the variants converged).
  EXPECT_TRUE(run.golden_records[0][0].has_value());
  EXPECT_TRUE(run.golden_records[1][0].has_value());
}

}  // namespace
}  // namespace ustl

// Tests for the extensions layered on the paper's pseudocode: target
// splitting / constant coverage of programs, the pure-constant and
// constant-coverage group annotations, the framework's budget-preserving
// filters, and a configuration sweep of the graph builder.
#include <gtest/gtest.h>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "dsl/program.h"
#include "graph/graph_builder.h"
#include "grouping/grouping.h"

namespace ustl {
namespace {

// --- Program::SplitTarget / ConstantCoverage. ---

TEST(SplitTargetTest, RecoversPieces) {
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  Program rho({StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                                PosFn::MatchPos(tc, -1, Dir::kEnd)),
               StringFn::ConstantStr(". "),
               StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                PosFn::MatchPos(tl, 1, Dir::kEnd))});
  auto pieces = rho.SplitTarget("Lee, Mary", "M. Lee");
  ASSERT_TRUE(pieces.has_value());
  EXPECT_EQ(*pieces, (std::vector<std::string>{"M", ". ", "Lee"}));
}

TEST(SplitTargetTest, InconsistentYieldsNullopt) {
  Program rho({StringFn::ConstantStr("xyz")});
  EXPECT_FALSE(rho.SplitTarget("a", "abc").has_value());
  EXPECT_FALSE(Program().SplitTarget("a", "b").has_value());
}

TEST(ConstantCoverageTest, Extremes) {
  Program all_constant({StringFn::ConstantStr("M. Lee")});
  EXPECT_DOUBLE_EQ(all_constant.ConstantCoverage("Lee, Mary", "M. Lee"), 1.0);

  Term tl = Term::Regex(CharClass::kLower);
  Term tc = Term::Regex(CharClass::kUpper);
  Program no_constant({StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                        PosFn::MatchPos(tc, 1, Dir::kEnd)),
                       StringFn::Prefix(tl, 1)});
  EXPECT_DOUBLE_EQ(no_constant.ConstantCoverage("Street", "St"), 0.0);
  // Inconsistent program covers nothing.
  EXPECT_DOUBLE_EQ(all_constant.ConstantCoverage("x", "nope"), 0.0);
}

TEST(ConstantCoverageTest, MixedProgram) {
  // "9" -> "9th": SubStr("9") + Constant("th") covers 2 of 3 chars.
  Term td = Term::Regex(CharClass::kDigit);
  Program rho({StringFn::SubStr(PosFn::MatchPos(td, 1, Dir::kBegin),
                                PosFn::MatchPos(td, 1, Dir::kEnd)),
               StringFn::ConstantStr("th")});
  EXPECT_NEAR(rho.ConstantCoverage("9", "9th"), 2.0 / 3.0, 1e-12);
}

// --- Group annotations from the drivers. ---

TEST(GroupAnnotationTest, PureConstantAndCoverage) {
  // "alpha" -> "omega1" and "beta" -> "omega1" share only the full
  // constant path: pure constant group with coverage 1. Street/Avenue
  // share the affix program: coverage 0.
  std::vector<StringPair> pairs = {
      {"alpha", "omega1"}, {"betaa", "omega1"},
      {"Street", "St"},    {"Avenue", "Ave"},
  };
  GroupingEngine engine(pairs, GroupingOptions{});
  bool saw_constant = false, saw_affix = false;
  while (auto group = engine.Next()) {
    if (group->size() == 2 && group->pure_constant) {
      saw_constant = true;
      EXPECT_DOUBLE_EQ(group->constant_coverage, 1.0);
    }
    if (group->size() == 2 && !group->pure_constant) {
      saw_affix = true;
      EXPECT_LT(group->constant_coverage, 0.5);
    }
  }
  EXPECT_TRUE(saw_constant);
  EXPECT_TRUE(saw_affix);
}

TEST(GroupAnnotationTest, UpfrontDriverAgrees) {
  std::vector<StringPair> pairs = {
      {"alpha", "omega1"}, {"betaa", "omega1"}, {"Street", "St"},
      {"Avenue", "Ave"}};
  auto groups = GroupAllUpfront(pairs, GroupingOptions{}, true, nullptr);
  for (const Group& group : groups) {
    if (group.pure_constant) {
      EXPECT_DOUBLE_EQ(group.constant_coverage, 1.0);
    }
  }
}

// --- Framework filters. ---

TEST(FrameworkFilterTest, ConstantPivotGroupsAreSkipped) {
  // A cluster with two distinct values and one shared target generates a
  // pure-constant group; with the filter on it never reaches the oracle.
  Column column = {{"alpha", "betaa", "omega1"}};
  FrameworkOptions options;
  options.budget_per_column = 50;
  options.candidates.token_level = false;
  class CountingOracle : public VerificationOracle {
   public:
    Verdict Verify(const std::vector<StringPair>& pairs) override {
      for (const StringPair& pair : pairs) {
        EXPECT_NE(pair.rhs, "omega1") << "constant group reached the oracle";
      }
      ++count;
      return Verdict{};
    }
    int count = 0;
  } oracle;
  StandardizeColumn(&column, &oracle, options);
}

TEST(FrameworkFilterTest, DeadMirrorGroupsDoNotBurnBudget) {
  // Six clusters of the Street/St family: after the first group is
  // applied, its mirror is dead and must be skipped without consuming
  // budget, so the total presented count stays small.
  Column column;
  for (int i = 1; i <= 6; ++i) {
    std::string n = std::to_string(i);
    column.push_back({n + " Street", n + " St"});
  }
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 100;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_LT(result.groups_presented, 20u);
  for (const auto& cluster : column) {
    EXPECT_EQ(cluster[0], cluster[1]);
  }
}

TEST(FrameworkFilterTest, CoverageFilterCanBeDisabled) {
  Column column = {{"alpha", "betaa", "omega1"}};
  FrameworkOptions options;
  options.budget_per_column = 50;
  options.candidates.token_level = false;
  options.skip_constant_pivot_groups = false;
  options.max_constant_coverage = 1.0;
  ApproveAllOracle oracle;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  // Without the filters the constant groups are presented.
  EXPECT_GT(result.groups_presented, 0u);
}

// --- Graph builder configuration sweep (property-style). ---

struct BuilderConfig {
  bool affix;
  bool static_order;
  bool aligned;
};

class BuilderConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(BuilderConfigTest, PathsStayConsistentUnderAnyConfig) {
  int mask = GetParam();
  GraphBuilderOptions options;
  options.enable_affix = mask & 1;
  options.position_static_order = mask & 2;
  options.token_aligned_labels = mask & 4;
  LabelInterner interner;
  GraphBuilder builder(options, &interner);
  for (auto [s, t] : std::vector<std::pair<const char*, const char*>>{
           {"Lee, Mary", "M. Lee"},
           {"Street", "St"},
           {"9", "9th"},
           {"3 E Avenue, 33990 CA", "3rd E Ave, 33990 California"}}) {
    auto graph = builder.Build(s, t);
    ASSERT_TRUE(graph.ok());
    auto paths = graph->EnumeratePaths(100);
    ASSERT_FALSE(paths.empty());
    for (const LabelPath& path : paths) {
      EXPECT_TRUE(Program::FromPath(path, interner).ConsistentWith(s, t))
          << "config " << mask << ": " << s << " -> " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BuilderConfigTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace ustl

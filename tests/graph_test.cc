// Tests for src/graph: transformation graphs (Definition 2, Example 4.1),
// the builder (Appendix C), the affix labels (Appendix D, Example D.1),
// static orders (Appendix E) and the term scorer.
#include <gtest/gtest.h>

#include "dsl/program.h"
#include "graph/graph_builder.h"
#include "graph/term_scorer.h"
#include "graph/transformation_graph.h"

namespace ustl {
namespace {

TEST(TransformationGraphTest, NodeCountIsTargetPlusOne) {
  TransformationGraph g("abc", "xy");
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.last_node(), 3);
}

TEST(TransformationGraphTest, AddLabelKeepsSortedUnique) {
  TransformationGraph g("abc", "xy");
  g.AddLabel(1, 3, 5);
  g.AddLabel(1, 2, 7);
  g.AddLabel(1, 3, 5);
  g.AddLabel(1, 3, 2);
  const auto& edges = g.edges_from(1);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].to, 2);
  EXPECT_EQ(edges[1].to, 3);
  EXPECT_EQ(edges[1].labels, (std::vector<LabelId>{2, 5}));
  EXPECT_EQ(g.TotalLabelCount(), 3u);
  EXPECT_EQ(g.EdgeCount(), 2u);
}

TEST(TransformationGraphTest, ContainsPathFollowsAdjacency) {
  TransformationGraph g("s", "xy");
  g.AddLabel(1, 2, 0);
  g.AddLabel(2, 3, 1);
  g.AddLabel(1, 3, 2);
  EXPECT_TRUE(g.ContainsPath({0, 1}));
  EXPECT_TRUE(g.ContainsPath({2}));
  EXPECT_FALSE(g.ContainsPath({1, 0}));
  EXPECT_FALSE(g.ContainsPath({0}));  // stops before the last node
  EXPECT_FALSE(g.ContainsPath({}));
}

class GraphBuilderTest : public ::testing::Test {
 protected:
  LabelInterner interner_;
};

TEST_F(GraphBuilderTest, RejectsDegenerateInput) {
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  EXPECT_FALSE(builder.Build("abc", "").ok());
  EXPECT_FALSE(builder.Build("abc", "abc").ok());
}

TEST_F(GraphBuilderTest, FullConstantPathAlwaysPresent) {
  // Definition 2 line 15 guarantees ConstantStr(t) on the full edge, so
  // every replacement has at least one transformation path.
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  auto g = builder.Build("Lee, Mary", "M. Lee");
  ASSERT_TRUE(g.ok());
  LabelId full;
  ASSERT_TRUE(interner_.Lookup(StringFn::ConstantStr("M. Lee"), &full));
  EXPECT_TRUE(g->ContainsPath({full}));
}

TEST_F(GraphBuilderTest, Example41EdgeLabels) {
  // Example 4.1: e4,7 of "Lee, Mary" -> "M. Lee" carries f1 =
  // SubStr(MatchPos(TC,1,B), MatchPos(Tl,1,E)), and e1,2 carries f2.
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  auto g = builder.Build("Lee, Mary", "M. Lee");
  ASSERT_TRUE(g.ok());
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  StringFn f1 = StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                 PosFn::MatchPos(tl, 1, Dir::kEnd));
  LabelId f1_id;
  ASSERT_TRUE(interner_.Lookup(f1, &f1_id));
  bool found_on_e47 = false;
  for (const GraphEdge& edge : g->edges_from(4)) {
    if (edge.to == 7) {
      found_on_e47 = std::binary_search(edge.labels.begin(),
                                        edge.labels.end(), f1_id);
    }
  }
  EXPECT_TRUE(found_on_e47);
}

TEST_F(GraphBuilderTest, PaperProgramIsAPath) {
  // The Figure 3 program f2 (+) f3 (+) f1 must be a transformation path of
  // the "Lee, Mary" -> "M. Lee" graph (Theorem 4.2 direction: consistent
  // program => path).
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  auto g = builder.Build("Lee, Mary", "M. Lee");
  ASSERT_TRUE(g.ok());
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  StringFn f2 = StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                                 PosFn::MatchPos(tc, -1, Dir::kEnd));
  StringFn f3 = StringFn::ConstantStr(". ");
  StringFn f1 = StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                 PosFn::MatchPos(tl, 1, Dir::kEnd));
  LabelId i1, i2, i3;
  ASSERT_TRUE(interner_.Lookup(f2, &i2));
  ASSERT_TRUE(interner_.Lookup(f3, &i3));
  ASSERT_TRUE(interner_.Lookup(f1, &i1));
  EXPECT_TRUE(g->ContainsPath({i2, i3, i1}));
}

TEST_F(GraphBuilderTest, AllPathsAreConsistentPrograms) {
  // Theorem 4.2, the other direction: every root-to-sink path is a program
  // consistent with the replacement.
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  for (auto [s, t] : std::vector<std::pair<const char*, const char*>>{
           {"Lee, Mary", "M. Lee"},
           {"Street", "St"},
           {"9", "9th"},
           {"Wisconsin", "WI"},
           {"a1 b2", "b2 a1"}}) {
    auto g = builder.Build(s, t);
    ASSERT_TRUE(g.ok()) << s;
    auto paths = g->EnumeratePaths(500);
    ASSERT_FALSE(paths.empty()) << s;
    for (const LabelPath& path : paths) {
      Program program = Program::FromPath(path, interner_);
      EXPECT_TRUE(program.ConsistentWith(s, t))
          << "inconsistent path for " << s << " -> " << t << ": "
          << program.ToString();
    }
  }
}

TEST_F(GraphBuilderTest, ExampleD1AffixLabels) {
  // Example D.1: e2,3 of Street -> St has Prefix(Tl, 1); e2,4 of
  // Avenue -> Ave has it too.
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  auto street = builder.Build("Street", "St");
  auto avenue = builder.Build("Avenue", "Ave");
  ASSERT_TRUE(street.ok());
  ASSERT_TRUE(avenue.ok());
  LabelId prefix_id;
  ASSERT_TRUE(interner_.Lookup(
      StringFn::Prefix(Term::Regex(CharClass::kLower), 1), &prefix_id));
  auto has_label = [&](const TransformationGraph& g, int from, int to) {
    for (const GraphEdge& edge : g.edges_from(from)) {
      if (edge.to == to) {
        return std::binary_search(edge.labels.begin(), edge.labels.end(),
                                  prefix_id);
      }
    }
    return false;
  };
  EXPECT_TRUE(has_label(*street, 2, 3));
  EXPECT_TRUE(has_label(*avenue, 2, 4));
}

TEST_F(GraphBuilderTest, AffixOnlyOnLongestPrefix) {
  // Appendix E: with t = "Str" from s = "Street", Prefix(Tl, 1) goes on
  // the longest prefix edge (2,4) for "tr", not on (2,3) for "t".
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  auto g = builder.Build("Street", "Str");
  ASSERT_TRUE(g.ok());
  LabelId prefix_id;
  ASSERT_TRUE(interner_.Lookup(
      StringFn::Prefix(Term::Regex(CharClass::kLower), 1), &prefix_id));
  auto labels_on = [&](int from, int to) {
    for (const GraphEdge& edge : g->edges_from(from)) {
      if (edge.to == to) {
        return std::binary_search(edge.labels.begin(), edge.labels.end(),
                                  prefix_id);
      }
    }
    return false;
  };
  EXPECT_TRUE(labels_on(2, 4));
  EXPECT_FALSE(labels_on(2, 3));
}

TEST_F(GraphBuilderTest, NoAffixWhenDisabled) {
  GraphBuilderOptions options;
  options.enable_affix = false;
  GraphBuilder builder(options, &interner_);
  auto g = builder.Build("Street", "St");
  ASSERT_TRUE(g.ok());
  for (int node = 1; node <= g->num_nodes(); ++node) {
    for (const GraphEdge& edge : g->edges_from(node)) {
      for (LabelId label : edge.labels) {
        StringFn fn = interner_.Get(label);
        EXPECT_NE(fn.kind(), StringFn::Kind::kPrefix);
        EXPECT_NE(fn.kind(), StringFn::Kind::kSuffix);
      }
    }
  }
}

TEST_F(GraphBuilderTest, OversizedValuesGetTrivialGraph) {
  GraphBuilderOptions options;
  options.max_output_len = 4;
  GraphBuilder builder(options, &interner_);
  auto g = builder.Build("abcdef", "abcde");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->TotalLabelCount(), 1u);
  auto paths = g->EnumeratePaths(10);
  ASSERT_EQ(paths.size(), 1u);
  Program program = Program::FromPath(paths[0], interner_);
  EXPECT_TRUE(program.ConsistentWith("abcdef", "abcde"));
}

TEST_F(GraphBuilderTest, TokenAlignedLabelsRestrictConstEdges) {
  // With alignment on (default), "9th" has token boundary between "9" and
  // "th"; the unaligned edge inside "th" carries no ConstantStr label.
  GraphBuilder builder(GraphBuilderOptions{}, &interner_);
  auto g = builder.Build("9", "9th");
  ASSERT_TRUE(g.ok());
  // Edge (2,3) = "t" starts at a token boundary (token "th" begins at 2)
  // but ends mid-token; only non-Const/SubStr labels may appear.
  for (const GraphEdge& edge : g->edges_from(2)) {
    if (edge.to != 3) continue;
    for (LabelId label : edge.labels) {
      StringFn fn = interner_.Get(label);
      EXPECT_NE(fn.kind(), StringFn::Kind::kConstantStr);
    }
  }
}

TEST_F(GraphBuilderTest, EdgeCountQuadraticWithoutAlignment) {
  GraphBuilderOptions options;
  options.token_aligned_labels = false;
  GraphBuilder builder(options, &interner_);
  auto g = builder.Build("ab", "xyz");
  ASSERT_TRUE(g.ok());
  // All 6 edges of a 4-node DAG carry at least the ConstantStr label.
  EXPECT_EQ(g->EdgeCount(), 6u);
}

// --- Term scorer (Appendix E). ---

TEST(TermScorerTest, GroupFrequentTokensScoreHigh) {
  // Class tokens are maximal single-class runs, so lowercase words.
  CorpusFrequency global;
  for (int i = 0; i < 100; ++i) global.Add("mr lee");
  for (int i = 0; i < 900; ++i) global.Add("something else entirely");
  FrequencyTermScorer scorer(&global);
  for (int i = 0; i < 100; ++i) scorer.AddStructureString("mr lee");
  // "mr" appears in all structure strings and 100 times globally:
  // 100/sqrt(100) = 10.
  EXPECT_DOUBLE_EQ(scorer.Score("mr"), 10.0);
  // Unknown tokens score zero.
  EXPECT_DOUBLE_EQ(scorer.Score("nothere"), 0.0);
  // Tokens outside the structure group score zero even if global.
  EXPECT_DOUBLE_EQ(scorer.Score("entirely"), 0.0);
}

TEST(TermScorerTest, GloballyCommonTokensAreDamped) {
  CorpusFrequency global;
  for (int i = 0; i < 10000; ++i) global.Add("a");
  for (int i = 0; i < 100; ++i) global.Add("rare");
  FrequencyTermScorer scorer(&global);
  for (int i = 0; i < 100; ++i) {
    scorer.AddStructureString("a");
    scorer.AddStructureString("rare");
  }
  // Same structure frequency, but "a" is globally ubiquitous:
  // 100/sqrt(10100) < 100/sqrt(200).
  EXPECT_LT(scorer.Score("a"), scorer.Score("rare"));
}

TEST(CorpusFrequencyTest, CountsClassTokens) {
  CorpusFrequency corpus;
  corpus.Add("9th St");
  EXPECT_EQ(corpus.Get("9"), 1);
  EXPECT_EQ(corpus.Get("th"), 1);
  EXPECT_EQ(corpus.Get("St"), 0);  // "S" and "t" are separate class tokens
  EXPECT_EQ(corpus.Get("S"), 1);
  EXPECT_EQ(corpus.Get("t"), 1);
}

}  // namespace
}  // namespace ustl

// Tests for src/eval: the Table 7 confusion protocol, metric formulas
// (precision, recall, MCC per Section 8), pair sampling, and reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "eval/report.h"

namespace ustl {
namespace {

TEST(MetricsTest, PrecisionRecallBasics) {
  Confusion c{/*tp=*/8, /*fp=*/2, /*fn=*/4, /*tn=*/86};
  EXPECT_DOUBLE_EQ(Precision(c), 0.8);
  EXPECT_DOUBLE_EQ(Recall(c), 8.0 / 12.0);
}

TEST(MetricsTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Precision(Confusion{0, 0, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(Recall(Confusion{0, 5, 0, 5}), 0.0);
  EXPECT_DOUBLE_EQ(Mcc(Confusion{0, 0, 0, 0}), 0.0);
}

TEST(MetricsTest, MccPerfectAndInverse) {
  EXPECT_DOUBLE_EQ(Mcc(Confusion{10, 0, 0, 10}), 1.0);
  EXPECT_DOUBLE_EQ(Mcc(Confusion{0, 10, 10, 0}), -1.0);
}

TEST(MetricsTest, MccBalancedFormula) {
  // Hand-computed: tp=6, fp=1, fn=2, tn=11.
  Confusion c{6, 1, 2, 11};
  double expected = (6.0 * 11 - 1.0 * 2) /
                    std::sqrt((6.0 + 1) * (6.0 + 2) * (11.0 + 1) * (11.0 + 2));
  EXPECT_NEAR(Mcc(c), expected, 1e-12);
}

TEST(MetricsTest, MccIsClassBalanceRobust) {
  // The paper's reason for MCC: with a huge negative class, precision and
  // recall alone can look fine while MCC exposes weak correlation.
  Confusion weak{1, 0, 99, 900};
  EXPECT_DOUBLE_EQ(Precision(weak), 1.0);
  EXPECT_LT(Mcc(weak), 0.15);
}

TEST(SampleLabeledPairsTest, OnlyNonIdenticalInClusterPairs) {
  Column column = {{"a", "a", "b"}, {"c", "d"}};
  auto judge = [](size_t, size_t, size_t) { return true; };
  auto samples = SampleLabeledPairs(column, judge, 100, 1);
  // (a,b) twice in cluster 0 (rows 0-2 and 1-2), (c,d) once in cluster 1.
  EXPECT_EQ(samples.size(), 3u);
  for (const SampledPair& s : samples) {
    EXPECT_NE(column[s.cluster][s.row_a], column[s.cluster][s.row_b]);
  }
}

TEST(SampleLabeledPairsTest, RespectsCountAndSeed) {
  Column column(10, std::vector<std::string>{"a", "b", "c", "d"});
  auto judge = [](size_t, size_t, size_t) { return false; };
  auto s1 = SampleLabeledPairs(column, judge, 5, 42);
  auto s2 = SampleLabeledPairs(column, judge, 5, 42);
  auto s3 = SampleLabeledPairs(column, judge, 5, 43);
  EXPECT_EQ(s1.size(), 5u);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].cluster, s2[i].cluster);
    EXPECT_EQ(s1[i].row_a, s2[i].row_a);
  }
  bool different = s3.size() != s1.size();
  for (size_t i = 0; !different && i < s1.size(); ++i) {
    different = s1[i].cluster != s3[i].cluster || s1[i].row_a != s3[i].row_a ||
                s1[i].row_b != s3[i].row_b;
  }
  EXPECT_TRUE(different);
}

TEST(EvaluateIdentityTest, Table7Protocol) {
  Column column = {{"x", "x"},   // variant pair, became identical -> TP
                   {"x", "y"},   // variant pair, still different  -> FN
                   {"z", "z"},   // conflict pair, became identical -> FP
                   {"u", "v"}};  // conflict pair, still different -> TN
  std::vector<SampledPair> samples = {
      {0, 0, 1, true}, {1, 0, 1, true}, {2, 0, 1, false}, {3, 0, 1, false}};
  Confusion c = EvaluateIdentity(column, samples);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
}

TEST(TextTableTest, RendersAligned) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Rows are padded to the same prefix width.
  size_t header_value = out.find("value");
  size_t row_one = out.find("1");
  EXPECT_NE(header_value, std::string::npos);
  EXPECT_NE(row_one, std::string::npos);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"x"});
  std::string out = table.Render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(FmtTest, FixedDigits) {
  EXPECT_EQ(Fmt(0.5), "0.500");
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(100, 0), "100");
}

TEST(RenderSeriesTest, GnuplotShape) {
  std::string out = RenderSeries("fig", {"x", "m1", "m2"},
                                 {{0, 0.5, 0.25}, {10, 0.75, 0.5}});
  EXPECT_NE(out.find("# fig"), std::string::npos);
  EXPECT_NE(out.find("# x m1 m2"), std::string::npos);
  EXPECT_NE(out.find("10 0.7500 0.5000"), std::string::npos);
}

}  // namespace
}  // namespace ustl

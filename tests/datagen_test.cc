// Tests for src/datagen: vocabularies, the segment judges, and the three
// dataset generators (determinism, ground truth consistency, Table 6
// shape).
#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "datagen/judges.h"
#include "datagen/vocab.h"

namespace ustl {
namespace {

TEST(VocabTest, DictionariesAreBidirectional) {
  EXPECT_EQ(StreetSuffixes().Abbreviate("Street"), "St");
  EXPECT_EQ(StreetSuffixes().Expand("St"), "Street");
  EXPECT_TRUE(StreetSuffixes().ArePaired("Avenue", "Ave"));
  EXPECT_TRUE(StreetSuffixes().ArePaired("Ave", "Avenue"));
  EXPECT_FALSE(StreetSuffixes().ArePaired("Street", "Ave"));
  EXPECT_FALSE(StreetSuffixes().Abbreviate("Nonsense").has_value());
}

TEST(VocabTest, StatesAndDirections) {
  EXPECT_EQ(States().Abbreviate("Wisconsin"), "WI");
  EXPECT_EQ(States().Expand("CA"), "California");
  EXPECT_EQ(Directions().Abbreviate("East"), "E");
}

TEST(VocabTest, OrdinalRules) {
  EXPECT_EQ(OrdinalOf(1), "1st");
  EXPECT_EQ(OrdinalOf(2), "2nd");
  EXPECT_EQ(OrdinalOf(3), "3rd");
  EXPECT_EQ(OrdinalOf(4), "4th");
  EXPECT_EQ(OrdinalOf(11), "11th");
  EXPECT_EQ(OrdinalOf(12), "12th");
  EXPECT_EQ(OrdinalOf(13), "13th");
  EXPECT_EQ(OrdinalOf(21), "21st");
  EXPECT_EQ(OrdinalOf(22), "22nd");
  EXPECT_EQ(OrdinalOf(63), "63rd");
  EXPECT_EQ(OrdinalOf(101), "101st");
}

TEST(VocabTest, StripOrdinal) {
  EXPECT_EQ(StripOrdinal("9th"), "9");
  EXPECT_EQ(StripOrdinal("22nd"), "22");
  EXPECT_FALSE(StripOrdinal("9").has_value());
  EXPECT_FALSE(StripOrdinal("9xx").has_value());
  EXPECT_FALSE(StripOrdinal("th").has_value());
  EXPECT_FALSE(StripOrdinal("2th").has_value());  // wrong suffix for 2
}

TEST(VocabTest, OrdinalPair) {
  EXPECT_TRUE(OrdinalPair("9", "9th"));
  EXPECT_TRUE(OrdinalPair("22nd", "22"));
  EXPECT_FALSE(OrdinalPair("9", "3rd"));
}

TEST(VocabTest, InitialPair) {
  EXPECT_TRUE(InitialPair("m.", "mary"));
  EXPECT_TRUE(InitialPair("mary", "m."));
  EXPECT_TRUE(InitialPair("M.", "mary"));  // case-insensitive initial
  EXPECT_FALSE(InitialPair("m.", "nancy"));
  EXPECT_FALSE(InitialPair("m", "mary"));   // needs the dot
  EXPECT_FALSE(InitialPair("m.", "m."));
}

TEST(JudgesTest, TrimPunct) {
  EXPECT_EQ(TrimPunct(",abc,", ","), "abc");
  EXPECT_EQ(TrimPunct("(edt)", "()"), "edt");
  EXPECT_EQ(TrimPunct(",,", ","), "");
}

TEST(JudgesTest, SegmentsEquivalentWithCanon) {
  TokenCanon lower_canon = [](std::string_view token) {
    std::string out;
    for (char c : TrimPunct(token, ",")) {
      out.push_back(static_cast<char>(std::tolower(
          static_cast<unsigned char>(c))));
    }
    return out;
  };
  EXPECT_TRUE(SegmentsEquivalent("Mary Lee", "mary lee", lower_canon, false));
  EXPECT_TRUE(SegmentsEquivalent("Lee, Mary", "Mary Lee", lower_canon, true));
  EXPECT_FALSE(SegmentsEquivalent("Lee, Mary", "Mary Lee", lower_canon,
                                  false));
  EXPECT_FALSE(SegmentsEquivalent("Mary Lee", "Nancy Lee", lower_canon, true));
  EXPECT_TRUE(SegmentsEquivalent("m. lee", "mary lee", lower_canon, false))
      << "dotted initials match their full form";
}

// --- Generators. ---

TEST(GeneratorTest, DeterministicInSeed) {
  AddressGenOptions options;
  options.scale = 0.05;
  GeneratedDataset a = GenerateAddressDataset(options);
  GeneratedDataset b = GenerateAddressDataset(options);
  EXPECT_EQ(a.column, b.column);
  options.seed = 999;
  GeneratedDataset c = GenerateAddressDataset(options);
  EXPECT_NE(a.column, c.column);
}

TEST(GeneratorTest, GroundTruthShapesMatch) {
  AddressGenOptions options;
  options.scale = 0.05;
  GeneratedDataset data = GenerateAddressDataset(options);
  ASSERT_EQ(data.column.size(), data.cell_truth.size());
  ASSERT_EQ(data.column.size(), data.cluster_true_id.size());
  for (size_t c = 0; c < data.column.size(); ++c) {
    ASSERT_EQ(data.column[c].size(), data.cell_truth[c].size());
    ASSERT_FALSE(data.column[c].empty());
    // The first record renders the true value canonically.
    EXPECT_EQ(data.cell_truth[c][0], data.cluster_true_id[c]);
    // Every cell string is registered for its id.
    for (size_t r = 0; r < data.column[c].size(); ++r) {
      auto it = data.string_ids.find(data.column[c][r]);
      ASSERT_NE(it, data.string_ids.end());
      EXPECT_TRUE(it->second.count(data.cell_truth[c][r]) > 0);
    }
  }
}

TEST(GeneratorTest, VariantCellPairsAreJudgedVariant) {
  // Cells with the same truth id but different strings must be accepted by
  // the string-level judge (the oracle must be able to approve genuine
  // groups).
  for (int which = 0; which < 3; ++which) {
    GeneratedDataset data;
    if (which == 0) {
      AddressGenOptions options;
      options.scale = 0.05;
      data = GenerateAddressDataset(options);
    } else if (which == 1) {
      AuthorListGenOptions options;
      options.scale = 0.1;
      data = GenerateAuthorListDataset(options);
    } else {
      JournalTitleGenOptions options;
      options.scale = 0.05;
      data = GenerateJournalTitleDataset(options);
    }
    size_t checked = 0, agreed = 0;
    for (size_t c = 0; c < data.column.size(); ++c) {
      for (size_t a = 0; a < data.column[c].size(); ++a) {
        for (size_t b = a + 1; b < data.column[c].size(); ++b) {
          if (data.column[c][a] == data.column[c][b]) continue;
          if (!data.IsVariantCellPair(c, a, b)) continue;
          ++checked;
          agreed += data.IsTrueVariantPair(
              StringPair{data.column[c][a], data.column[c][b]});
        }
      }
    }
    ASSERT_GT(checked, 0u) << "dataset " << which;
    // string_ids covers all full-value pairs exactly.
    EXPECT_EQ(agreed, checked) << "dataset " << which;
  }
}

TEST(GeneratorTest, ConflictCellPairsAreJudgedConflict) {
  AddressGenOptions options;
  options.scale = 0.05;
  GeneratedDataset data = GenerateAddressDataset(options);
  size_t checked = 0, false_accepts = 0;
  for (size_t c = 0; c < data.column.size(); ++c) {
    for (size_t a = 0; a < data.column[c].size(); ++a) {
      for (size_t b = a + 1; b < data.column[c].size(); ++b) {
        if (data.column[c][a] == data.column[c][b]) continue;
        if (data.IsVariantCellPair(c, a, b)) continue;
        ++checked;
        false_accepts += data.IsTrueVariantPair(
            StringPair{data.column[c][a], data.column[c][b]});
      }
    }
  }
  ASSERT_GT(checked, 0u);
  // Different addresses should essentially never be judged variants.
  EXPECT_LT(static_cast<double>(false_accepts) / checked, 0.01);
}

TEST(GeneratorTest, SegmentJudgesAcceptDictionaryFamilies) {
  AddressGenOptions options;
  options.scale = 0.02;
  GeneratedDataset address = GenerateAddressDataset(options);
  EXPECT_TRUE(address.IsTrueVariantPair({"Street", "St"}));
  EXPECT_TRUE(address.IsTrueVariantPair({"WI", "Wisconsin"}));
  EXPECT_TRUE(address.IsTrueVariantPair({"9", "9th"}));
  EXPECT_TRUE(address.IsTrueVariantPair({"9 Street", "9th St"}));
  EXPECT_FALSE(address.IsTrueVariantPair({"Street", "Ave"}));
  EXPECT_FALSE(address.IsTrueVariantPair({"9", "8th"}));

  AuthorListGenOptions author_options;
  author_options.scale = 0.05;
  GeneratedDataset authors = GenerateAuthorListDataset(author_options);
  EXPECT_TRUE(authors.IsTrueVariantPair({"lee, mary", "mary lee"}));
  EXPECT_TRUE(authors.IsTrueVariantPair({"m. lee", "mary lee"}));
  EXPECT_TRUE(authors.IsTrueVariantPair({"bob smith", "robert smith"}));
  EXPECT_TRUE(authors.IsTrueVariantPair(
      {"smith, james (edt)", "james smith"}));
  EXPECT_FALSE(authors.IsTrueVariantPair({"mary lee", "nancy lee"}));

  JournalTitleGenOptions journal_options;
  journal_options.scale = 0.02;
  GeneratedDataset journals = GenerateJournalTitleDataset(journal_options);
  EXPECT_TRUE(journals.IsTrueVariantPair(
      {"J. of Biology", "Journal of Biology"}));
  EXPECT_TRUE(journals.IsTrueVariantPair(
      {"Physics & Chemistry", "Physics and Chemistry"}));
  EXPECT_TRUE(journals.IsTrueVariantPair(
      {"journal of biology", "Journal of Biology"}));
  EXPECT_FALSE(journals.IsTrueVariantPair(
      {"Journal of Biology", "Journal of Physics"}));
}

TEST(GeneratorTest, StatsRoughlyMatchTable6Shape) {
  AllDatasets all = GenerateAllDatasets(0.3, 7);
  DatasetStats authors = ComputeStats(all.author_list);
  DatasetStats address = ComputeStats(all.address);
  DatasetStats journals = ComputeStats(all.journal_title);

  // Table 6 shape: JournalTitle is variant-heavy (74%), Address is
  // conflict-heavy (18% variant), AuthorList in between (26.5%).
  EXPECT_GT(journals.variant_pair_fraction, 0.5);
  EXPECT_LT(address.variant_pair_fraction, 0.45);
  EXPECT_GT(authors.variant_pair_fraction, 0.1);
  EXPECT_LT(authors.variant_pair_fraction, 0.6);
  // Cluster-size ordering: AuthorList > Address > JournalTitle.
  EXPECT_GT(authors.avg_cluster_size, address.avg_cluster_size);
  EXPECT_GT(address.avg_cluster_size, journals.avg_cluster_size);
  // Fractions sum to one.
  EXPECT_NEAR(address.variant_pair_fraction + address.conflict_pair_fraction,
              1.0, 1e-9);
}

TEST(GeneratorTest, ScaleMultipliesClusterCount) {
  AddressGenOptions small;
  small.scale = 0.1;
  AddressGenOptions large;
  large.scale = 0.2;
  EXPECT_EQ(GenerateAddressDataset(small).num_clusters() * 2,
            GenerateAddressDataset(large).num_clusters());
}

}  // namespace
}  // namespace ustl

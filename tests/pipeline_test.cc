// Tests for src/pipeline: OracleBroker cache/dedup/batching semantics, the
// deterministic replay log (round-trip through consolidate/replay.h), the
// column-parallel bit-identity contract of the ColumnScheduler, and the
// serialized progress-callback guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "consolidate/replay.h"
#include "pipeline/oracle_broker.h"
#include "pipeline/pipeline.h"

namespace ustl {
namespace {

// A backend that counts calls and answers everything the same way.
class CountingOracle : public VerificationOracle {
 public:
  explicit CountingOracle(bool approve = true) { verdict_.approved = approve; }

  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    (void)group_pairs;
    ++calls_;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return verdict_;
  }

  void set_delay(std::chrono::milliseconds delay) { delay_ = delay; }
  size_t calls() const { return calls_; }

 private:
  Verdict verdict_;
  std::atomic<size_t> calls_{0};
  std::chrono::milliseconds delay_{0};
};

std::vector<StringPair> Question(const std::string& tag) {
  return {{tag + " Street", tag + " St"}, {tag + " Avenue", tag + " Ave"}};
}

TEST(OracleBrokerTest, CachesRepeatedQuestions) {
  CountingOracle backend;
  OracleBroker broker(&backend);
  QuestionContext context;
  context.column = "addr";
  context.program = "ConstantStr(\"x\")";
  Verdict first = broker.VerifyWithContext(Question("9"), context);
  Verdict again = broker.VerifyWithContext(Question("9"), context);
  Verdict third = broker.VerifyWithContext(Question("9"), context);
  EXPECT_TRUE(first.approved);
  EXPECT_EQ(first.approved, again.approved);
  EXPECT_EQ(first.approved, third.approved);
  EXPECT_EQ(backend.calls(), 1u);
  OracleBrokerStats stats = broker.stats();
  EXPECT_EQ(stats.questions, 3u);
  EXPECT_EQ(stats.backend_calls, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(OracleBrokerTest, DistinctQuestionContentMissesTheCache) {
  CountingOracle backend;
  OracleBroker broker(&backend);
  QuestionContext context;
  broker.VerifyWithContext(Question("9"), context);
  // Different pairs => different question.
  broker.VerifyWithContext(Question("3"), context);
  // Same pairs, different pivot program => different question too (the
  // cache key is program + pairs).
  QuestionContext other;
  other.program = "ConstantStr(\"y\")";
  broker.VerifyWithContext(Question("9"), other);
  EXPECT_EQ(backend.calls(), 3u);
  EXPECT_EQ(broker.stats().cache_hits, 0u);
}

TEST(OracleBrokerTest, CacheOffForwardsEveryQuestion) {
  CountingOracle backend;
  OracleBroker::Options options;
  options.cache_verdicts = false;
  OracleBroker broker(&backend, options);
  for (int i = 0; i < 3; ++i) broker.Verify(Question("9"));
  EXPECT_EQ(backend.calls(), 3u);
  OracleBrokerStats stats = broker.stats();
  EXPECT_EQ(stats.questions, 3u);
  EXPECT_EQ(stats.backend_calls, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.batches, 3u);  // serial: every question its own batch
  EXPECT_EQ(stats.max_batch, 1u);
}

TEST(OracleBrokerTest, ConcurrentDuplicateAsksReachTheBackendOnce) {
  // Whether a thread hits the cache at entry or queues behind the combiner
  // and is answered from a same-key twin, the backend answers exactly once
  // and everyone sees that verdict.
  CountingOracle backend;
  backend.set_delay(std::chrono::milliseconds(20));
  OracleBroker broker(&backend);
  constexpr int kThreads = 8;
  std::vector<Verdict> verdicts(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { verdicts[t] = broker.Verify(Question("9")); });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(backend.calls(), 1u);
  for (const Verdict& verdict : verdicts) EXPECT_TRUE(verdict.approved);
  OracleBrokerStats stats = broker.stats();
  EXPECT_EQ(stats.questions, static_cast<size_t>(kThreads));
  EXPECT_EQ(stats.backend_calls, 1u);
  EXPECT_EQ(stats.cache_hits, static_cast<size_t>(kThreads) - 1);
}

TEST(OracleBrokerTest, LruBoundEvictsLeastRecentlyUsedVerdicts) {
  CountingOracle backend;
  OracleBroker::Options options;
  options.max_cache_entries = 2;
  OracleBroker broker(&backend, options);
  broker.Verify(Question("1"));  // cache: {1}
  broker.Verify(Question("2"));  // cache: {1, 2}
  broker.Verify(Question("1"));  // hit; 1 is now most recent
  broker.Verify(Question("3"));  // evicts 2 (LRU), cache: {1, 3}
  EXPECT_EQ(backend.calls(), 3u);
  EXPECT_EQ(broker.stats().evictions, 1u);
  broker.Verify(Question("1"));  // still cached
  EXPECT_EQ(backend.calls(), 3u);
  // 2 was evicted: re-asking reaches the backend again (and evicts 3).
  broker.Verify(Question("2"));
  EXPECT_EQ(backend.calls(), 4u);
  OracleBrokerStats stats = broker.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.questions, 6u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(OracleBrokerTest, UnboundedCacheNeverEvicts) {
  CountingOracle backend;
  OracleBroker broker(&backend);  // max_cache_entries = 0
  for (int i = 0; i < 50; ++i) broker.Verify(Question(std::to_string(i)));
  for (int i = 0; i < 50; ++i) broker.Verify(Question(std::to_string(i)));
  EXPECT_EQ(backend.calls(), 50u);
  EXPECT_EQ(broker.stats().evictions, 0u);
  EXPECT_EQ(broker.stats().cache_hits, 50u);
}

// Throws on the first call, approves afterwards.
class FlakyOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    (void)group_pairs;
    if (fail_next_.exchange(false)) throw std::runtime_error("oracle down");
    Verdict verdict;
    verdict.approved = true;
    return verdict;
  }

 private:
  std::atomic<bool> fail_next_{true};
};

TEST(OracleBrokerTest, BackendExceptionPropagatesAndBrokerRecovers) {
  FlakyOracle backend;
  OracleBroker broker(&backend);
  // The failure surfaces in the asking thread (not a hang or a silent
  // rejection)...
  EXPECT_THROW(broker.Verify(Question("9")), std::runtime_error);
  // ...and the broker hands back the combiner role: the next question
  // goes through normally and gets cached.
  EXPECT_TRUE(broker.Verify(Question("9")).approved);
  EXPECT_TRUE(broker.Verify(Question("9")).approved);
  OracleBrokerStats stats = broker.stats();
  EXPECT_EQ(stats.questions, 3u);
  EXPECT_EQ(stats.backend_calls, 1u);  // the throwing call isn't counted
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(OracleBrokerTest, ThrowingCombinerLeavesCacheAndLogConsistent) {
  // Satellite pin (PR "robustness"): a backend throw mid-combine must not
  // leave partial entries behind — no verdict cached, nothing appended to
  // the approved log — and both must work normally for the question
  // afterwards.
  FlakyOracle backend;  // throws on the first call, approves afterwards
  OracleBroker broker(&backend);
  QuestionContext context;
  context.column = "addr";
  context.program = "ConstantStr(\"x\")";
  context.presented = 1;
  EXPECT_THROW(broker.VerifyWithContext(Question("9"), context),
               std::runtime_error);
  // Consistent failure state: no cache entry (a re-ask must reach the
  // backend, not replay a phantom verdict) and no log entry (the replay
  // log only ever records delivered approvals).
  EXPECT_EQ(broker.stats().cache_hits, 0u);
  EXPECT_TRUE(broker.ApprovedLog().empty());
  // The re-ask is served, cached and logged exactly once.
  EXPECT_TRUE(broker.VerifyWithContext(Question("9"), context).approved);
  EXPECT_TRUE(broker.VerifyWithContext(Question("9"), context).approved);
  OracleBrokerStats stats = broker.stats();
  EXPECT_EQ(stats.backend_calls, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(broker.ApprovedLog().size(), 1u);
}

TEST(OracleBrokerTest, ThrowingCombinerFailsOnlyTheAskingRequest) {
  // Concurrent askers during a backend failure: only the question whose
  // backend call threw fails; every other queued question is still served
  // (possibly by the same combiner pass) and the broker stays usable.
  class PoisonOracle : public VerificationOracle {
   public:
    Verdict Verify(const std::vector<StringPair>& group_pairs) override {
      if (group_pairs[0].lhs.find("poison") != std::string::npos) {
        throw std::runtime_error("backend refused");
      }
      if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
      Verdict verdict;
      verdict.approved = true;
      return verdict;
    }
    std::chrono::milliseconds delay_{0};
  };
  PoisonOracle backend;
  backend.delay_ = std::chrono::milliseconds(5);  // lets a batch form
  OracleBroker broker(&backend);
  std::atomic<size_t> served{0};
  std::atomic<size_t> failed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      const std::string tag =
          i == 0 ? std::string("poison") : "clean" + std::to_string(i);
      try {
        if (broker.Verify(Question(tag)).approved) ++served;
      } catch (const std::runtime_error&) {
        ++failed;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failed.load(), 1u);
  EXPECT_EQ(served.load(), 5u);
}

TEST(OracleBrokerTest, ApprovedLogIsSortedDedupedAndParseable) {
  CountingOracle backend;
  OracleBroker broker(&backend);
  QuestionContext b;
  b.column = "beta";
  b.program = "ConstantStr(\"b\")";
  QuestionContext a;
  a.column = "alpha";
  a.program = "ConstantStr(\"a\")";
  QuestionContext bad;
  bad.column = "alpha";
  bad.program = "not a program";
  // Recorded in non-canonical order, with a repeat and an unparseable one.
  broker.VerifyWithContext(Question("9"), b);
  broker.VerifyWithContext(Question("3"), a);
  broker.VerifyWithContext(Question("9"), b);  // cache hit, still logged
  broker.VerifyWithContext(Question("7"), bad);
  std::vector<ApprovedTransformation> log = broker.ApprovedLog();
  ASSERT_EQ(log.size(), 2u);  // deduped, unparseable dropped
  EXPECT_EQ(log[0].column, "alpha");
  EXPECT_EQ(log[1].column, "beta");
  // And the serialized form round-trips through replay.h.
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(broker.SerializeApprovedLog());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].column, "alpha");
  EXPECT_EQ((*parsed)[0].program.functions(), log[0].program.functions());
  EXPECT_EQ((*parsed)[1].column, "beta");
}

TEST(OracleBrokerTest, FrameworkQuestionsProduceAReplayableLog) {
  // Drive the real framework through a broker and replay its log on a
  // fresh copy of the data: the replayed table must match the verified
  // one, with zero additional questions.
  Column column = {{"9 Street", "9 St"},
                   {"3 Street", "3 St"},
                   {"7 Street", "7 St"},
                   {"Oak Street", "Oak St"}};
  Column replayed = column;

  ApproveAllOracle approve_all;
  OracleBroker broker(&approve_all);
  FrameworkOptions options;
  options.budget_per_column = 20;
  options.column_name = "addr";
  ColumnRunResult result = StandardizeColumn(&column, &broker, options);
  ASSERT_GT(result.groups_approved, 0u);

  std::vector<ApprovedTransformation> log = broker.ApprovedLog();
  ASSERT_FALSE(log.empty());
  for (const ApprovedTransformation& transformation : log) {
    EXPECT_EQ(transformation.column, "addr");
  }
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(SerializeTransformationLog(log));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (const ApprovedTransformation& transformation : *parsed) {
    ApplyTransformation(&replayed, transformation);
  }
  EXPECT_EQ(replayed, column);
}

// ---------------------------------------------------------------------
// ColumnScheduler determinism.

// Two identical columns (cross-column cache hits) plus a distinct third.
Table MakeMultiColumnTable() {
  Table table({"alpha", "beta", "gamma"});
  for (int i = 1; i <= 6; ++i) {
    std::string n = std::to_string(i);
    size_t c = table.AddCluster();
    table.AddRecord(c, {n + " Street", n + " Street", n + " Road"});
    table.AddRecord(c, {n + " St", n + " St", n + " Rd"});
    table.AddRecord(c, {n + " St", n + " St", n + " Road"});
  }
  return table;
}

// A ground-truth-ish simulated expert with a nonzero error rate: the error
// draws exercise the per-question hash seeding — any order dependence in
// the oracle would break the bit-identity assertions below.
SimulatedOracle MakeNoisyOracle() {
  SimulatedOracle::Options options;
  options.error_rate = 0.25;
  options.seed = 7;
  return SimulatedOracle(
      [](const StringPair& pair) {
        return pair.lhs.size() != pair.rhs.size();
      },
      [](const StringPair& pair) {
        return pair.rhs.size() > pair.lhs.size() ? 1 : -1;
      },
      options);
}

struct PipelineFingerprint {
  std::string bytes;
  OracleBrokerStats stats;
  std::vector<size_t> presented;
};

PipelineFingerprint RunPipelineConfig(int threads, bool column_parallel,
                                      bool cache) {
  Table table = MakeMultiColumnTable();
  SimulatedOracle oracle = MakeNoisyOracle();
  PipelineOptions options;
  options.framework.budget_per_column = 15;
  options.column_parallel = column_parallel;
  options.num_threads = threads;
  options.broker.cache_verdicts = cache;
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  PipelineFingerprint fingerprint;
  fingerprint.bytes = FingerprintConsolidation(table, run.golden_records);
  fingerprint.stats = run.oracle_stats;
  for (const ColumnRunResult& result : run.per_column) {
    fingerprint.presented.push_back(result.groups_presented);
  }
  return fingerprint;
}

TEST(ColumnSchedulerTest, ByteIdenticalAcrossThreadsAndModes) {
  // The acceptance matrix: --threads {1,4} x column-parallel {on,off},
  // plus cache on/off — six configurations, one output.
  PipelineFingerprint base = RunPipelineConfig(1, false, true);
  ASSERT_FALSE(base.bytes.empty());
  EXPECT_EQ(base.bytes, RunPipelineConfig(4, false, true).bytes);
  EXPECT_EQ(base.bytes, RunPipelineConfig(1, true, true).bytes);
  EXPECT_EQ(base.bytes, RunPipelineConfig(4, true, true).bytes);
  EXPECT_EQ(base.bytes, RunPipelineConfig(1, false, false).bytes);
  EXPECT_EQ(base.bytes, RunPipelineConfig(4, true, false).bytes);
  // Presented-group counts are part of the contract too.
  EXPECT_EQ(base.presented, RunPipelineConfig(4, true, true).presented);
}

TEST(ColumnSchedulerTest, DuplicateColumnsHitTheCache) {
  PipelineFingerprint cached = RunPipelineConfig(4, true, true);
  EXPECT_GT(cached.stats.cache_hits, 0u);
  EXPECT_LT(cached.stats.backend_calls, cached.stats.questions);
  // Cache off: every question reaches the oracle — strictly more calls.
  PipelineFingerprint uncached = RunPipelineConfig(4, true, false);
  EXPECT_EQ(uncached.stats.cache_hits, 0u);
  EXPECT_EQ(uncached.stats.backend_calls, uncached.stats.questions);
  EXPECT_GT(uncached.stats.backend_calls, cached.stats.backend_calls);
}

TEST(ColumnSchedulerTest, ProgressCallbackIsSerializedUnderParallelism) {
  Table table = MakeMultiColumnTable();
  ApproveAllOracle oracle;
  std::atomic<int> inflight{0};
  std::atomic<bool> overlapped{false};
  size_t calls = 0;  // unsynchronized on purpose: serialization guarantee
  PipelineOptions options;
  options.framework.budget_per_column = 15;
  options.framework.progress_callback = [&](size_t presented,
                                            const Column& column) {
    if (inflight.fetch_add(1) != 0) overlapped = true;
    EXPECT_GE(presented, 1u);
    EXPECT_EQ(column.size(), 6u);
    ++calls;
    inflight.fetch_sub(1);
  };
  options.column_parallel = true;
  options.num_threads = 4;
  PipelineRun run = RunConsolidationPipeline(&table, &oracle, options);
  EXPECT_FALSE(overlapped.load());
  size_t presented_total = 0;
  for (const ColumnRunResult& result : run.per_column) {
    presented_total += result.groups_presented;
  }
  EXPECT_EQ(calls, presented_total);
}

TEST(ColumnSchedulerTest, ReplayLogReproducesTheSessionTable) {
  // The broker log keeps each column's presentation order (largest group
  // first), so replaying it on a fresh copy of the input re-applies the
  // same transformations with the same tie-breaks: same table, zero
  // questions — even when the session ran column-parallel.
  Table session = MakeMultiColumnTable();
  Table replayed = MakeMultiColumnTable();
  ApproveAllOracle oracle;
  PipelineOptions options;
  options.framework.budget_per_column = 15;
  options.column_parallel = true;
  options.num_threads = 4;
  PipelineRun run = RunConsolidationPipeline(&session, &oracle, options);
  ASSERT_FALSE(run.approved_log.empty());
  Result<std::vector<ApprovedTransformation>> parsed =
      ParseTransformationLog(SerializeTransformationLog(run.approved_log));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ReplayTransformations(&replayed, *parsed);
  EXPECT_EQ(FingerprintConsolidation(replayed, {}), FingerprintConsolidation(session, {}));
}

TEST(ColumnSchedulerTest, GoldenRecordCreationMatchesThePipeline) {
  // The legacy entry point is the serial cache-off pipeline configuration.
  Table via_legacy = MakeMultiColumnTable();
  Table via_pipeline = MakeMultiColumnTable();
  SimulatedOracle legacy_oracle = MakeNoisyOracle();
  SimulatedOracle pipeline_oracle = MakeNoisyOracle();
  FrameworkOptions framework;
  framework.budget_per_column = 15;
  GoldenRecordRun legacy =
      GoldenRecordCreation(&via_legacy, &legacy_oracle, framework);
  PipelineOptions options;
  options.framework = framework;
  options.broker.cache_verdicts = false;
  PipelineRun pipeline =
      RunConsolidationPipeline(&via_pipeline, &pipeline_oracle, options);
  EXPECT_EQ(FingerprintConsolidation(via_legacy, legacy.golden_records),
            FingerprintConsolidation(via_pipeline, pipeline.golden_records));
  EXPECT_EQ(legacy_oracle.questions_asked(),
            pipeline_oracle.questions_asked());
}

}  // namespace
}  // namespace ustl

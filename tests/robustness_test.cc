// Tests for the fault-tolerance layer (PR "robustness"): cooperative
// cancellation primitives (common/cancel.h), the seeded fault injector
// (pipeline/fault_oracle.h) and the retry / backoff / circuit-breaker
// decorator (pipeline/retrying_oracle.h). The serving-level matrix —
// threads x fault plans x cancel points with byte-identity on survivors —
// lives in serve_test.cc; this file pins the building blocks.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "consolidate/oracle.h"
#include "pipeline/fault_oracle.h"
#include "pipeline/retrying_oracle.h"

namespace ustl {
namespace {

std::vector<StringPair> Question(const std::string& tag) {
  return {{tag + " Street", tag + " St"}};
}

// Counts calls; approves everything.
class CountingOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    (void)group_pairs;
    ++calls_;
    Verdict verdict;
    verdict.approved = true;
    return verdict;
  }
  size_t calls() const { return calls_; }

 private:
  size_t calls_ = 0;
};

TEST(CancelStateTest, FirstTripWinsAndSticks) {
  CancelState state;
  CancelToken token(&state);
  EXPECT_EQ(token.Poll(), RequestStatus::kOk);
  EXPECT_NO_THROW(token.Check());
  state.Cancel(RequestStatus::kCancelled);
  state.Cancel(RequestStatus::kDeadlineExceeded);  // loses: first wins
  EXPECT_EQ(token.Poll(), RequestStatus::kCancelled);
  try {
    token.Check();
    FAIL() << "Check() must throw once tripped";
  } catch (const CancelledError& error) {
    EXPECT_EQ(error.status(), RequestStatus::kCancelled);
  }
}

TEST(CancelStateTest, DeadlineLatchesOnPoll) {
  CancelState state;
  state.SetDeadlineMs(1);
  CancelToken token(&state);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(token.Poll(), RequestStatus::kDeadlineExceeded);
  // Latched: a later explicit Cancel cannot repaint the cause.
  state.Cancel(RequestStatus::kCancelled);
  EXPECT_EQ(token.Poll(), RequestStatus::kDeadlineExceeded);
}

TEST(CancelTokenTest, DefaultTokenIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_EQ(token.Poll(), RequestStatus::kOk);
  EXPECT_NO_THROW(token.Check());
}

TEST(FaultPlanTest, SpecRoundTripsAndRejectsGarbage) {
  FaultPlan plan;
  plan.fault_rate = 0.25;
  plan.failures_per_question = 3;
  plan.slow_rate = 0.5;
  plan.slow_ms = 7;
  plan.seed = 99;
  Result<FaultPlan> parsed = FaultPlan::FromSpec(plan.ToSpec());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->fault_rate, 0.25);
  EXPECT_EQ(parsed->failures_per_question, 3);
  EXPECT_FALSE(parsed->persistent);
  EXPECT_DOUBLE_EQ(parsed->slow_rate, 0.5);
  EXPECT_EQ(parsed->slow_ms, 7);
  EXPECT_EQ(parsed->seed, 99u);

  FaultPlan persistent;
  persistent.fault_rate = 1.0;
  persistent.persistent = true;
  Result<FaultPlan> parsed_persistent =
      FaultPlan::FromSpec(persistent.ToSpec());
  ASSERT_TRUE(parsed_persistent.ok());
  EXPECT_TRUE(parsed_persistent->persistent);

  EXPECT_FALSE(FaultPlan::FromSpec("rate=1.5").ok());
  EXPECT_FALSE(FaultPlan::FromSpec("rate=abc").ok());
  EXPECT_FALSE(FaultPlan::FromSpec("bogus=1").ok());
  EXPECT_FALSE(FaultPlan::FromSpec("rate").ok());
}

TEST(FaultInjectingOracleTest, FaultScheduleIsPureFunctionOfPlanAndHash) {
  FaultPlan plan;
  plan.fault_rate = 0.5;
  plan.failures_per_question = 1;
  plan.seed = 7;
  // The set of questions that fault is identical across independent
  // instances (no wall-clock, no call-order dependence).
  auto faulted = [&](FaultInjectingOracle* oracle) {
    std::vector<bool> out;
    for (int i = 0; i < 20; ++i) {
      try {
        oracle->Verify(Question(std::to_string(i)));
        out.push_back(false);
      } catch (const InjectedOracleError&) {
        out.push_back(true);
      }
    }
    return out;
  };
  CountingOracle backend_a, backend_b;
  FaultInjectingOracle oracle_a(&backend_a, plan);
  FaultInjectingOracle oracle_b(&backend_b, plan);
  const std::vector<bool> first = faulted(&oracle_a);
  EXPECT_EQ(first, faulted(&oracle_b));
  EXPECT_GT(oracle_a.faults_injected(), 0u);
  // Transient: each faulty question succeeds after failures_per_question
  // throws.
  const std::vector<bool> second = faulted(&oracle_a);
  EXPECT_EQ(second, std::vector<bool>(20, false));
}

TEST(FaultInjectingOracleTest, PersistentPlanNeverRecovers) {
  FaultPlan plan;
  plan.fault_rate = 1.0;
  plan.persistent = true;
  CountingOracle backend;
  FaultInjectingOracle oracle(&backend, plan);
  for (int attempt = 0; attempt < 4; ++attempt) {
    EXPECT_THROW(oracle.Verify(Question("x")), InjectedOracleError);
  }
  EXPECT_EQ(backend.calls(), 0u);
}

TEST(RetryingOracleTest, RecoversTransientFaultsWithIdenticalVerdicts) {
  FaultPlan plan;
  plan.fault_rate = 0.5;
  plan.failures_per_question = 2;
  plan.seed = 11;
  CountingOracle clean_backend;
  CountingOracle faulty_backend;
  FaultInjectingOracle faulty(&faulty_backend, plan);
  RetryingOracle::Options options;
  options.max_attempts = 3;  // > failures_per_question: always recovers
  RetryingOracle retrying(&faulty, options);
  for (int i = 0; i < 20; ++i) {
    const Verdict clean = clean_backend.Verify(Question(std::to_string(i)));
    const Verdict healed = retrying.Verify(Question(std::to_string(i)));
    EXPECT_EQ(healed.approved, clean.approved);
    EXPECT_EQ(healed.direction, clean.direction);
  }
  RetryingOracleStats stats = retrying.stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.recovered, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_EQ(stats.breaker_opens, 0u);
}

TEST(RetryingOracleTest, BackoffIsDeterministicAndBounded) {
  FaultPlan plan;
  plan.fault_rate = 1.0;
  plan.failures_per_question = 3;
  plan.seed = 5;
  auto delays_for_run = [&] {
    CountingOracle backend;
    FaultInjectingOracle faulty(&backend, plan);
    RetryingOracle::Options options;
    options.max_attempts = 4;
    options.backoff_base_ms = 8;
    options.backoff_cap_ms = 20;
    std::vector<int> delays;
    options.sleep_ms = [&delays](int ms) { delays.push_back(ms); };
    RetryingOracle retrying(&faulty, options);
    retrying.Verify(Question("q"));
    return delays;
  };
  const std::vector<int> first = delays_for_run();
  ASSERT_EQ(first.size(), 3u);  // attempts 2..4 back off
  for (int delay : first) {
    EXPECT_GE(delay, 8);
    EXPECT_LE(delay, 20);  // capped
  }
  // Same seed, same question, same plan: byte-identical backoff schedule.
  EXPECT_EQ(first, delays_for_run());
}

TEST(RetryingOracleTest, BreakerOpensDegradesAndProbesClosed) {
  FaultPlan plan;
  plan.fault_rate = 1.0;
  plan.persistent = true;
  CountingOracle backend;
  FaultInjectingOracle faulty(&backend, plan);
  RetryingOracle::Options options;
  options.max_attempts = 2;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_calls = 3;
  std::vector<bool> breaker_events;
  options.on_breaker = [&breaker_events](uint64_t, bool open) {
    breaker_events.push_back(open);
  };
  RetryingOracle retrying(&faulty, options);

  // Two exhausted questions open the breaker.
  EXPECT_THROW(retrying.Verify(Question("a")), InjectedOracleError);
  EXPECT_THROW(retrying.Verify(Question("b")), InjectedOracleError);
  EXPECT_TRUE(retrying.breaker_open());
  ASSERT_EQ(breaker_events, std::vector<bool>{true});

  // While open the backend is never called: typed error, short-circuit.
  const size_t faults_before = faulty.faults_injected();
  EXPECT_THROW(retrying.Verify(Question("c")), BreakerOpenError);
  EXPECT_THROW(retrying.Verify(Question("d")), BreakerOpenError);
  EXPECT_EQ(faulty.faults_injected(), faults_before);
  RetryingOracleStats stats = retrying.stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.short_circuits, 2u);

  // Third call while open is the half-open probe; it reaches the (still
  // failing) backend and flips straight back to open.
  EXPECT_THROW(retrying.Verify(Question("e")), InjectedOracleError);
  EXPECT_TRUE(retrying.breaker_open());
  EXPECT_GT(faulty.faults_injected(), faults_before);
}

TEST(RetryingOracleTest, ServesReplayedVerdictsWhileOpen) {
  // Backend: answers "warm" cleanly, then turns persistently faulty.
  class TurncoatOracle : public VerificationOracle {
   public:
    Verdict Verify(const std::vector<StringPair>& group_pairs) override {
      if (failing_ && group_pairs[0].lhs.find("warm") == std::string::npos) {
        throw std::runtime_error("backend down");
      }
      Verdict verdict;
      verdict.approved = true;
      return verdict;
    }
    bool failing_ = false;
  };
  TurncoatOracle backend;
  RetryingOracle::Options options;
  options.max_attempts = 1;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_calls = 100;
  RetryingOracle retrying(&backend, options);

  EXPECT_TRUE(retrying.Verify(Question("warm")).approved);
  backend.failing_ = true;
  EXPECT_THROW(retrying.Verify(Question("cold")), std::runtime_error);
  EXPECT_TRUE(retrying.breaker_open());
  // Degraded mode: the previously answered question replays from cache,
  // an unseen one fails with the typed breaker error.
  EXPECT_TRUE(retrying.Verify(Question("warm")).approved);
  EXPECT_THROW(retrying.Verify(Question("new")), BreakerOpenError);
  RetryingOracleStats stats = retrying.stats();
  EXPECT_EQ(stats.replayed_verdicts, 1u);
  EXPECT_GE(stats.short_circuits, 2u);
}

TEST(RetryingOracleTest, CancellationIsNeverRetried) {
  class CancelCheckingOracle : public VerificationOracle {
   public:
    explicit CancelCheckingOracle(CancelState* state) : state_(state) {}
    Verdict Verify(const std::vector<StringPair>& group_pairs) override {
      return VerifyWithContext(group_pairs, QuestionContext{});
    }
    Verdict VerifyWithContext(const std::vector<StringPair>&,
                              const QuestionContext&) override {
      ++calls_;
      CancelToken(state_).Check();
      Verdict verdict;
      verdict.approved = true;
      return verdict;
    }
    size_t calls_ = 0;

   private:
    CancelState* state_;
  };
  CancelState state;
  state.Cancel(RequestStatus::kCancelled);
  CancelCheckingOracle backend(&state);
  RetryingOracle::Options options;
  options.max_attempts = 5;
  RetryingOracle retrying(&backend, options);
  QuestionContext context;
  CancelToken token(&state);
  context.cancel = token;
  EXPECT_THROW(retrying.VerifyWithContext(Question("q"), context),
               CancelledError);
  // The pre-attempt checkpoint fired; the backend was never even called,
  // let alone retried.
  EXPECT_EQ(backend.calls_, 0u);
  EXPECT_EQ(retrying.stats().retries, 0u);
}

}  // namespace
}  // namespace ustl

// Property-based suites (parameterized sweeps): invariants of graph
// construction (Theorem 4.2), pivot search, and grouping over randomized
// replacement pairs drawn from the dataset vocabularies.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/vocab.h"
#include "dsl/program.h"
#include "dsl/program.h"
#include "grouping/grouping.h"
#include "grouping/oneshot.h"
#include "grouping/pivot_search.h"

namespace ustl {
namespace {

// Draws a random plausible replacement pair from the shared vocabularies
// (dictionary swaps, ordinals, transposition, plus random-noise conflict
// pairs), so the sweeps exercise realistic shapes.
StringPair RandomPair(Rng* rng) {
  switch (rng->Uniform(0, 5)) {
    case 0: {
      const auto& entry = StreetSuffixes().entries()[static_cast<size_t>(
          rng->Uniform(0,
                       static_cast<int64_t>(
                           StreetSuffixes().entries().size()) - 1))];
      return {entry.first, entry.second};
    }
    case 1: {
      int n = static_cast<int>(rng->Uniform(1, 99));
      return {std::to_string(n), OrdinalOf(n)};
    }
    case 2: {
      std::string first = rng->Choice(FirstNames());
      std::string last = rng->Choice(LastNames());
      return {last + ", " + first, first + " " + last};
    }
    case 3: {
      std::string first = rng->Choice(FirstNames());
      std::string last = rng->Choice(LastNames());
      return {first + " " + last,
              std::string(1, first[0]) + ". " + last};
    }
    case 4: {
      const auto& entry = States().entries()[static_cast<size_t>(rng->Uniform(
          0, static_cast<int64_t>(States().entries().size()) - 1))];
      return {entry.first, entry.second};
    }
    default: {
      // Unrelated strings (conflict-style pair).
      std::string a = rng->Choice(StreetNames());
      std::string b = rng->Choice(Fields());
      if (a == b) b += "x";
      return {a + " " + std::to_string(rng->Uniform(0, 999)), b};
    }
  }
}

class GraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphPropertyTest, AllEnumeratedPathsAreConsistent) {
  Rng rng(GetParam());
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  for (int i = 0; i < 12; ++i) {
    StringPair pair = RandomPair(&rng);
    if (pair.lhs == pair.rhs) continue;
    auto graph = builder.Build(pair.lhs, pair.rhs);
    ASSERT_TRUE(graph.ok());
    auto paths = graph->EnumeratePaths(200);
    ASSERT_FALSE(paths.empty());
    for (const LabelPath& path : paths) {
      Program program = Program::FromPath(path, interner);
      EXPECT_TRUE(program.ConsistentWith(pair.lhs, pair.rhs))
          << pair.lhs << " -> " << pair.rhs << " via " << program.ToString();
      EXPECT_TRUE(graph->ContainsPath(path));
    }
  }
}

TEST_P(GraphPropertyTest, GraphIsAcyclicForwardOnly) {
  Rng rng(GetParam() + 1000);
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  StringPair pair = RandomPair(&rng);
  if (pair.lhs == pair.rhs) return;
  auto graph = builder.Build(pair.lhs, pair.rhs);
  ASSERT_TRUE(graph.ok());
  for (int node = 1; node <= graph->num_nodes(); ++node) {
    for (const GraphEdge& edge : graph->edges_from(node)) {
      EXPECT_GT(edge.to, node);
      EXPECT_LE(edge.to, graph->num_nodes());
      EXPECT_FALSE(edge.labels.empty());
      EXPECT_TRUE(std::is_sorted(edge.labels.begin(), edge.labels.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class GroupingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingPropertyTest, GroupsPartitionAndShareTheirPivot) {
  Rng rng(GetParam());
  std::vector<StringPair> pairs;
  std::set<StringPair> seen;
  for (int i = 0; i < 24; ++i) {
    StringPair pair = RandomPair(&rng);
    if (pair.lhs != pair.rhs && seen.insert(pair).second) {
      pairs.push_back(pair);
    }
  }
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  GraphSet set = std::move(GraphSet::Build(pairs, builder)).value();
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);

  std::set<GraphId> covered;
  for (const ReplacementGroup& group : groups) {
    EXPECT_FALSE(group.pivot.empty());
    for (GraphId g : group.members) {
      EXPECT_TRUE(covered.insert(g).second);
      // Every member graph contains the pivot and the pivot program maps
      // the member's source to its target.
      EXPECT_TRUE(set.graph(g).ContainsPath(group.pivot));
      Program program = Program::FromPath(group.pivot, interner);
      EXPECT_TRUE(program.ConsistentWith(pairs[g].lhs, pairs[g].rhs));
    }
  }
  EXPECT_EQ(covered.size(), pairs.size());
}

TEST_P(GroupingPropertyTest, IncrementalSizesAreNonIncreasing) {
  Rng rng(GetParam() + 77);
  std::vector<StringPair> pairs;
  std::set<StringPair> seen;
  for (int i = 0; i < 24; ++i) {
    StringPair pair = RandomPair(&rng);
    if (pair.lhs != pair.rhs && seen.insert(pair).second) {
      pairs.push_back(pair);
    }
  }
  GroupingEngine engine(pairs, GroupingOptions{});
  size_t total = 0;
  size_t previous = SIZE_MAX;
  while (auto group = engine.Next()) {
    EXPECT_LE(group->size(), previous);
    previous = group->size();
    total += group->size();
  }
  EXPECT_EQ(total, pairs.size());
}

TEST_P(GroupingPropertyTest, FirstIncrementalGroupIsLargestUpfrontGroup) {
  Rng rng(GetParam() + 555);
  std::vector<StringPair> pairs;
  std::set<StringPair> seen;
  for (int i = 0; i < 20; ++i) {
    StringPair pair = RandomPair(&rng);
    if (pair.lhs != pair.rhs && seen.insert(pair).second) {
      pairs.push_back(pair);
    }
  }
  auto upfront = GroupAllUpfront(pairs, GroupingOptions{}, true, nullptr);
  GroupingEngine engine(pairs, GroupingOptions{});
  auto first = engine.Next();
  ASSERT_TRUE(first.has_value());
  ASSERT_FALSE(upfront.empty());
  EXPECT_EQ(first->size(), upfront[0].size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class PivotSearchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PivotSearchPropertyTest, PivotMembersAllContainThePath) {
  Rng rng(GetParam());
  std::vector<StringPair> pairs;
  std::set<StringPair> seen;
  for (int i = 0; i < 16; ++i) {
    StringPair pair = RandomPair(&rng);
    if (pair.lhs != pair.rhs && seen.insert(pair).second) {
      pairs.push_back(pair);
    }
  }
  LabelInterner interner;
  GraphBuilder builder(GraphBuilderOptions{}, &interner);
  GraphSet set = std::move(GraphSet::Build(pairs, builder)).value();
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  std::vector<int> lower_bounds(set.size(), 1);
  for (GraphId g = 0; g < set.size(); ++g) {
    auto result = searcher.Search(g, 0, &lower_bounds);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.count, static_cast<int>(result.members.size()));
    EXPECT_GE(result.count, 1);
    // The searched graph itself is always a member.
    EXPECT_TRUE(std::find(result.members.begin(), result.members.end(), g) !=
                result.members.end());
    for (GraphId member : result.members) {
      EXPECT_TRUE(set.graph(member).ContainsPath(result.path));
    }
    // Lower bounds never exceed the member count they were set from.
    EXPECT_LE(lower_bounds[g], static_cast<int>(set.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PivotSearchPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace ustl

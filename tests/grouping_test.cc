// Tests for src/grouping: pivot search (Algorithm 3, Table 5 trace,
// Example 5.2/5.3), one-shot grouping (Algorithm 2) with and without early
// termination (Algorithm 4), the incremental engine (Algorithms 5-7,
// Theorem 6.4), the structure-aware driver, and the exact optimal
// partition (Definition 3).
#include <gtest/gtest.h>

#include <set>

#include "dsl/program.h"
#include "grouping/grouping.h"
#include "grouping/incremental.h"
#include "grouping/oneshot.h"
#include "grouping/optimal.h"
#include "grouping/pivot_search.h"

namespace ustl {
namespace {

// The Example 5.1 replacement set.
std::vector<StringPair> Example51Pairs() {
  return {{"Lee, Mary", "M. Lee"},
          {"Smith, James", "J. Smith"},
          {"Lee, Mary", "Mary Lee"}};
}

GraphSet BuildSet(const std::vector<StringPair>& pairs,
                  LabelInterner* interner,
                  GraphBuilderOptions options = GraphBuilderOptions{}) {
  GraphBuilder builder(options, interner);
  Result<GraphSet> set = GraphSet::Build(pairs, builder);
  EXPECT_TRUE(set.ok());
  return std::move(set).value();
}

TEST(GraphSetTest, BuildAndKill) {
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.AliveCount(), 3u);
  set.Kill(1);
  EXPECT_EQ(set.AliveCount(), 2u);
  EXPECT_FALSE(set.alive(1));
  EXPECT_TRUE(set.alive(0));
}

TEST(GraphSetTest, KillEpochCountsAliveToDeadTransitions) {
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  EXPECT_EQ(set.kill_epoch(), 0u);
  set.Kill(1);
  EXPECT_EQ(set.kill_epoch(), 1u);
  set.Kill(1);  // already dead: cached results over the alive set stay valid
  EXPECT_EQ(set.kill_epoch(), 1u);
  set.Kill(0);
  EXPECT_EQ(set.kill_epoch(), 2u);
}

TEST(PivotSearchTest, Example52PivotSharedByTwoGraphs) {
  // The pivot path of G1 ("Lee, Mary" -> "M. Lee") is shared by G1 and G2
  // (Example 5.2 finds f2 (+) f3 (+) f1 with |l| = 2).
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  std::vector<int> lower_bounds(set.size(), 1);
  auto result = searcher.Search(0, 0, &lower_bounds);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.count, 2);
  EXPECT_EQ(result.members, (std::vector<GraphId>{0, 1}));
  // The found program is consistent with both replacements.
  Program program = Program::FromPath(result.path, interner);
  EXPECT_TRUE(program.ConsistentWith("Lee, Mary", "M. Lee"));
  EXPECT_TRUE(program.ConsistentWith("Smith, James", "J. Smith"));
}

TEST(PivotSearchTest, GlobalLowerBoundsAreUpdated) {
  // Example 5.3: after the pivot of G1 is found, the global threshold of
  // G2 has been raised to 2.
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  std::vector<int> lower_bounds(set.size(), 1);
  searcher.Search(0, 0, &lower_bounds);
  EXPECT_EQ(lower_bounds[1], 2);
  EXPECT_EQ(lower_bounds[0], 2);
}

TEST(PivotSearchTest, ThresholdSuppressesSmallPivots) {
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  std::vector<int> lower_bounds(set.size(), 1);
  // G1's pivot is shared by 2 graphs; a threshold of 2 demands > 2.
  auto result = searcher.Search(0, 2, &lower_bounds);
  EXPECT_FALSE(result.found);
}

TEST(PivotSearchTest, VanillaAndEarlyTermAgree) {
  // Algorithm 4 is a pure optimization: same pivot, same members.
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Lee, Mary", "M. Lee"},
       {"Smith, James", "J. Smith"}, {"9", "9th"}, {"3", "3rd"}},
      &interner);
  PivotSearcher::Options vanilla;
  vanilla.local_early_term = false;
  vanilla.global_early_term = false;
  PivotSearcher::Options fast;
  PivotSearcher slow_searcher(&set, vanilla);
  PivotSearcher fast_searcher(&set, fast);
  for (GraphId g = 0; g < set.size(); ++g) {
    std::vector<int> lb(set.size(), 1);
    auto slow = slow_searcher.Search(g, 0, nullptr);
    auto fast_result = fast_searcher.Search(g, 0, &lb);
    ASSERT_TRUE(slow.found);
    ASSERT_TRUE(fast_result.found);
    EXPECT_EQ(slow.path, fast_result.path) << "graph " << g;
    EXPECT_EQ(slow.members, fast_result.members);
    // Early termination can only reduce work.
    EXPECT_LE(fast_result.expansions, slow.expansions);
  }
}

TEST(PivotSearchTest, MaxPathLengthRestrictsSearch) {
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  PivotSearcher::Options options;
  options.max_path_len = 1;
  PivotSearcher searcher(&set, options);
  std::vector<int> lb(set.size(), 1);
  auto result = searcher.Search(0, 0, &lb);
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.path.size(), 1u);
}

TEST(PivotSearchTest, ExpansionCapTruncates) {
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  PivotSearcher::Options options;
  options.local_early_term = false;
  options.global_early_term = false;
  options.max_expansions = 3;
  PivotSearcher searcher(&set, options);
  auto result = searcher.Search(0, 0, nullptr);
  EXPECT_TRUE(result.truncated);
}

TEST(PivotSearchTest, DeadGraphsDoNotCount) {
  LabelInterner interner;
  GraphSet set = BuildSet(Example51Pairs(), &interner);
  set.Kill(1);  // remove "Smith, James" -> "J. Smith"
  PivotSearcher searcher(&set, PivotSearcher::Options{});
  std::vector<int> lb(set.size(), 1);
  auto result = searcher.Search(0, 0, &lb);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.count, 1);
  EXPECT_EQ(result.members, (std::vector<GraphId>{0}));
}

// --- One-shot grouping (Algorithm 2). ---

TEST(OneShotTest, GroupsPartitionTheInput) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Wisconsin", "WI"},
       {"Lee, Mary", "M. Lee"}, {"Smith, James", "J. Smith"}},
      &interner);
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);
  std::set<GraphId> seen;
  for (const auto& group : groups) {
    EXPECT_FALSE(group.members.empty());
    for (GraphId g : group.members) {
      EXPECT_TRUE(seen.insert(g).second) << "graph in two groups";
    }
    // Every member's graph contains the pivot path.
    for (GraphId g : group.members) {
      EXPECT_TRUE(set.graph(g).ContainsPath(group.pivot));
    }
  }
  EXPECT_EQ(seen.size(), set.size());
}

TEST(OneShotTest, SortedBySizeDescending) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Wisconsin", "WI"},
       {"Lee, Mary", "M. Lee"}, {"Smith, James", "J. Smith"}},
      &interner);
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].members.size(), groups[i].members.size());
  }
}

TEST(OneShotTest, EarlyTerminationProducesIdenticalGroups) {
  LabelInterner interner;
  std::vector<StringPair> pairs = {
      {"Street", "St"},       {"Avenue", "Ave"},    {"Boulevard", "Blvd"},
      {"Lee, Mary", "M. Lee"}, {"Smith, James", "J. Smith"},
      {"9", "9th"},           {"3", "3rd"},         {"Wisconsin", "WI"},
  };
  GraphSet set1 = BuildSet(pairs, &interner);
  OneShotOptions vanilla;
  vanilla.early_termination = false;
  OneShotStats slow_stats, fast_stats;
  auto slow = UnsupervisedGrouping(set1, vanilla, &slow_stats);
  auto fast = UnsupervisedGrouping(set1, OneShotOptions{}, &fast_stats);
  ASSERT_EQ(slow.size(), fast.size());
  for (size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].pivot, fast[i].pivot);
    EXPECT_EQ(slow[i].members, fast[i].members);
  }
  EXPECT_LE(fast_stats.expansions, slow_stats.expansions);
}

TEST(OneShotTest, StreetAvenueGroupTogether) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Wisconsin", "WI"}},
      &interner);
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);
  // Street->St and Avenue->Ave share the affix program; Wisconsin->WI has
  // no lowercase prefix of "isconsin" equal to "I", so it stands alone.
  ASSERT_GE(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[0].members, (std::vector<GraphId>{0, 1}));
}

// --- Incremental engine (Algorithms 5-7). ---

TEST(IncrementalTest, ProducesGroupsLargestFirst) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Boulevard", "Blvd"},
       {"Lee, Mary", "M. Lee"}, {"Smith, James", "J. Smith"},
       {"Wisconsin", "WI"}},
      &interner);
  IncrementalEngine engine(std::move(set), IncrementalOptions{});
  std::vector<size_t> sizes;
  while (auto group = engine.Next()) sizes.push_back(group->members.size());
  ASSERT_FALSE(sizes.empty());
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i - 1], sizes[i]);
  }
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, 6u);
}

TEST(IncrementalTest, MatchesOneShotGroups) {
  // Theorem 6.4: the incremental algorithm returns the one-shot groups in
  // decreasing size order.
  std::vector<StringPair> pairs = {
      {"Street", "St"},        {"Avenue", "Ave"},
      {"Lee, Mary", "M. Lee"}, {"Smith, James", "J. Smith"},
      {"9", "9th"},            {"3", "3rd"},
  };
  LabelInterner oneshot_interner;
  GraphSet oneshot_set = BuildSet(pairs, &oneshot_interner);
  auto upfront = UnsupervisedGrouping(oneshot_set, OneShotOptions{}, nullptr);

  LabelInterner inc_interner;
  GraphSet inc_set = BuildSet(pairs, &inc_interner);
  IncrementalEngine engine(std::move(inc_set), IncrementalOptions{});
  std::vector<ReplacementGroup> incremental;
  while (auto group = engine.Next()) incremental.push_back(std::move(*group));

  ASSERT_EQ(upfront.size(), incremental.size());
  for (size_t i = 0; i < upfront.size(); ++i) {
    EXPECT_EQ(upfront[i].members, incremental[i].members) << "group " << i;
  }
}

TEST(IncrementalTest, PeekIsIdempotentUntilConsumed) {
  LabelInterner interner;
  GraphSet set = BuildSet({{"Street", "St"}, {"Avenue", "Ave"}}, &interner);
  IncrementalEngine engine(std::move(set), IncrementalOptions{});
  const auto& first = engine.Peek();
  ASSERT_TRUE(first.has_value());
  size_t size = first->members.size();
  EXPECT_TRUE(engine.HasPeeked());
  const auto& again = engine.Peek();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->members.size(), size);
  engine.ConsumePeeked();
  EXPECT_FALSE(engine.HasPeeked());
  EXPECT_EQ(engine.AliveCount(), 2u - size);
}

TEST(IncrementalTest, UpperHintBoundsNextGroup) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Wisconsin", "WI"}},
      &interner);
  IncrementalEngine engine(std::move(set), IncrementalOptions{});
  while (true) {
    int hint = engine.UpperHint();
    auto group = engine.Next();
    if (!group.has_value()) break;
    EXPECT_LE(static_cast<int>(group->members.size()), hint);
  }
}

TEST(IncrementalTest, SearchCacheReusesAcrossRoundsWithIdenticalGroups) {
  // Round 1's wave speculatively searches the name family alongside the
  // winning ordinal family; its result (members untouched by the consume)
  // stays exact, so round 2 resolves it from the cache — with the same
  // group sequence the serial cache-off engine produces.
  std::vector<StringPair> pairs = {
      {"Lee, Mary", "M. Lee"}, {"Smith, James", "J. Smith"},
      {"9th", "9"},            {"3rd", "3"},
      {"22nd", "22"}};
  auto drain = [&](ThreadPool* pool, bool reuse, IncrementalStats* stats) {
    LabelInterner interner;
    GraphSet set = BuildSet(pairs, &interner);
    IncrementalOptions options;
    options.reuse_search_results = reuse;
    IncrementalEngine engine(std::move(set), options, pool);
    std::vector<ReplacementGroup> groups;
    while (auto group = engine.Next()) groups.push_back(std::move(*group));
    if (stats != nullptr) *stats = engine.stats();
    return groups;
  };
  IncrementalStats cached_stats;
  ThreadPool pool(4);
  std::vector<ReplacementGroup> cached = drain(&pool, true, &cached_stats);
  std::vector<ReplacementGroup> plain = drain(nullptr, false, nullptr);
  ASSERT_EQ(cached.size(), plain.size());
  ASSERT_GT(cached.size(), 1u);
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].pivot, plain[i].pivot) << i;
    EXPECT_EQ(cached[i].members, plain[i].members) << i;
  }
  // The wave ran past the serial stop point at least once, and what it
  // speculated came back as avoided searches in a later round.
  EXPECT_GT(cached_stats.speculative_searches, 0u);
  EXPECT_GT(cached_stats.cache_hits, 0u);
}

TEST(IncrementalTest, CacheEntriesWithKilledMembersAreInvalidated) {
  // Example 5.1: G0 and G2 both replace "Lee, Mary"; G0's pivot groups it
  // with G1, G2's round-1 search counts paths shared with G0. After round
  // 1 kills {G0, G1}, any cached result of G2 whose members include G0 is
  // stale and must be recomputed — the round-2 group may only contain
  // alive graphs, and its pivot must still be consistent with them.
  auto drain = [&](bool reuse) {
    LabelInterner interner;
    GraphSet set = BuildSet(Example51Pairs(), &interner);
    IncrementalOptions options;
    options.reuse_search_results = reuse;
    IncrementalEngine engine(std::move(set), options);
    std::vector<ReplacementGroup> groups;
    while (auto group = engine.Next()) groups.push_back(std::move(*group));
    return groups;
  };
  std::vector<ReplacementGroup> cached = drain(true);
  std::vector<ReplacementGroup> plain = drain(false);
  ASSERT_EQ(cached.size(), plain.size());
  std::set<GraphId> seen;
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].pivot, plain[i].pivot) << i;
    EXPECT_EQ(cached[i].members, plain[i].members) << i;
    for (GraphId g : cached[i].members) {
      EXPECT_TRUE(seen.insert(g).second) << "graph in two groups";
    }
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(IncrementalTest, UpperHintIsStableBetweenMutations) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Wisconsin", "WI"},
       {"9th", "9"}, {"3rd", "3"}},
      &interner);
  IncrementalEngine engine(std::move(set), IncrementalOptions{});
  while (engine.AliveCount() > 0) {
    // The memoized scan must be idempotent...
    const int hint = engine.UpperHint();
    EXPECT_EQ(engine.UpperHint(), hint);
    auto& peek = engine.Peek();
    if (!peek.has_value()) break;
    // ...and sound against the group it precedes.
    EXPECT_LE(static_cast<int>(peek->members.size()), hint);
    engine.ConsumePeeked();
    // Consuming invalidates the memo: the hint may shrink, never grow.
    EXPECT_LE(engine.UpperHint(), hint);
  }
  EXPECT_EQ(engine.UpperHint(), 0);
}

TEST(IncrementalTest, ExhaustionReturnsNullopt) {
  LabelInterner interner;
  GraphSet set = BuildSet({{"a", "b"}}, &interner);
  IncrementalEngine engine(std::move(set), IncrementalOptions{});
  EXPECT_TRUE(engine.Next().has_value());
  EXPECT_FALSE(engine.Next().has_value());
  EXPECT_FALSE(engine.Next().has_value());
}

// --- Structure-aware driver. ---

TEST(PartitionByStructureTest, GroupsByReplacementStructure) {
  std::vector<StringPair> pairs = {
      {"9", "9th"}, {"3", "3rd"}, {"Street", "St"}, {"12", "12th"}};
  auto partition = PartitionByStructure(pairs, true);
  // d=>dl {0,1,3} and ul=>ul {2}.
  ASSERT_EQ(partition.size(), 2u);
  std::map<std::string, std::vector<size_t>> by_key(partition.begin(),
                                                    partition.end());
  EXPECT_EQ(by_key["d=>dl"], (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(by_key["ul=>ul"], (std::vector<size_t>{2}));
  // Refinement off: single partition.
  auto single = PartitionByStructure(pairs, false);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].second.size(), 4u);
}

TEST(GroupingEngineTest, Figure2Groups) {
  // The running example: the 12 candidate replacements of Figure 2 form 6
  // two-element groups (plus state abbreviations that stand alone here
  // because only structure differs -- Wisconsin/CA pairs in the figure are
  // singletons in our DSL without a shared affix).
  std::vector<StringPair> pairs = {
      {"Lee, Mary", "M. Lee"},     {"Smith, James", "J. Smith"},
      {"Lee, Mary", "Mary Lee"},   {"Smith, James", "James Smith"},
      {"Mary Lee", "M. Lee"},      {"James Smith", "J. Smith"},
      {"Street", "St"},            {"Avenue", "Ave"},
      {"9th", "9"},                {"3rd", "3"},
  };
  GroupingEngine engine(pairs, GroupingOptions{});
  std::vector<Group> groups;
  while (auto group = engine.Next()) groups.push_back(std::move(*group));
  ASSERT_EQ(groups.size(), 5u);
  for (const Group& group : groups) {
    EXPECT_EQ(group.size(), 2u) << group.program;
  }
  // All pairs grouped exactly once.
  std::set<size_t> seen;
  for (const Group& group : groups) {
    for (size_t i : group.member_pair_indices) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), pairs.size());
}

TEST(GroupingEngineTest, MatchesUpfrontDriver) {
  std::vector<StringPair> pairs = {
      {"Lee, Mary", "M. Lee"},   {"Smith, James", "J. Smith"},
      {"Street", "St"},          {"Avenue", "Ave"},
      {"9th", "9"},              {"3rd", "3"},
      {"Wisconsin", "WI"},       {"California", "CA"},
  };
  UpfrontStats stats;
  auto upfront = GroupAllUpfront(pairs, GroupingOptions{}, true, &stats);
  GroupingEngine engine(pairs, GroupingOptions{});
  std::vector<Group> incremental;
  while (auto group = engine.Next()) incremental.push_back(std::move(*group));
  ASSERT_EQ(upfront.size(), incremental.size());
  for (size_t i = 0; i < upfront.size(); ++i) {
    std::set<size_t> a(upfront[i].member_pair_indices.begin(),
                       upfront[i].member_pair_indices.end());
    std::set<size_t> b(incremental[i].member_pair_indices.begin(),
                       incremental[i].member_pair_indices.end());
    EXPECT_EQ(a, b) << "group " << i;
  }
  EXPECT_EQ(stats.num_groups, upfront.size());
  EXPECT_GT(stats.expansions, 0u);
}

TEST(GroupingEngineTest, RemainingCountDecreases) {
  std::vector<StringPair> pairs = {
      {"Street", "St"}, {"Avenue", "Ave"}, {"9th", "9"}, {"3rd", "3"}};
  GroupingEngine engine(pairs, GroupingOptions{});
  EXPECT_EQ(engine.RemainingCount(), 4u);
  auto group = engine.Next();
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(engine.RemainingCount(), 4u - group->size());
}

// --- Exact optimal partition (Definition 3). ---

TEST(OptimalPartitionTest, MatchesGreedyOnEasyInstances) {
  // Families with disjoint obvious programs: greedy achieves the optimum.
  // (Note the abbreviation direction: 9th -> 9 and 3rd -> 3 share a
  // program; the expansion direction would need different constants.)
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"9th", "9"}, {"3rd", "3"}},
      &interner);
  auto optimal = OptimalPartitionSize(set, OptimalPartitionOptions{});
  ASSERT_TRUE(optimal.ok());
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);
  EXPECT_EQ(*optimal, groups.size());
  EXPECT_EQ(*optimal, 2u);
}

TEST(OptimalPartitionTest, ExpansionDirectionCannotShareConstants) {
  // 9 -> 9th and 3 -> 3rd need ConstantStr("th") vs ConstantStr("rd"):
  // no shared program exists, so both greedy and the optimum use 2 groups
  // for them.
  LabelInterner interner;
  GraphSet set = BuildSet({{"9", "9th"}, {"3", "3rd"}}, &interner);
  auto optimal = OptimalPartitionSize(set, OptimalPartitionOptions{});
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(*optimal, 2u);
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(OptimalPartitionTest, GreedyNeverBeatsOptimal) {
  LabelInterner interner;
  GraphSet set = BuildSet(
      {{"Street", "St"}, {"Avenue", "Ave"}, {"Wisconsin", "WI"},
       {"9th", "9"}, {"3rd", "3"}, {"22nd", "22"}},
      &interner);
  OptimalPartitionOptions options;
  options.max_paths_per_graph = 100000;
  auto optimal = OptimalPartitionSize(set, options);
  ASSERT_TRUE(optimal.ok());
  auto groups = UnsupervisedGrouping(set, OneShotOptions{}, nullptr);
  EXPECT_GE(groups.size(), *optimal);
}

TEST(OptimalPartitionTest, LimitsAreEnforced) {
  LabelInterner interner;
  GraphSet set = BuildSet({{"Street", "St"}, {"Avenue", "Ave"}}, &interner);
  OptimalPartitionOptions options;
  options.max_graphs = 1;
  EXPECT_FALSE(OptimalPartitionSize(set, options).ok());
}

TEST(OptimalPartitionTest, EmptySetIsZero) {
  LabelInterner interner;
  GraphSet set = BuildSet({{"a", "b"}}, &interner);
  set.Kill(0);
  auto optimal = OptimalPartitionSize(set, OptimalPartitionOptions{});
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(*optimal, 0u);
}

// --- Appendix-E sampling acceleration. ---

std::vector<StringPair> OrdinalAbbrevPairs() {
  // One structure group (dl => d), all sharing the "keep the digits"
  // program.
  return {{"9th", "9"},     {"3rd", "3"},   {"22nd", "22"},
          {"101st", "101"}, {"47th", "47"}, {"8th", "8"}};
}

TEST(SamplingTest, LargeSampleMatchesExactEngine) {
  LabelInterner exact_interner;
  GraphSet exact_set = BuildSet(OrdinalAbbrevPairs(), &exact_interner);
  IncrementalEngine exact(std::move(exact_set), IncrementalOptions{});

  LabelInterner sampled_interner;
  GraphSet sampled_set = BuildSet(OrdinalAbbrevPairs(), &sampled_interner);
  IncrementalOptions sampled_options;
  sampled_options.sample_size = 100;  // bigger than the input: exact mode
  IncrementalEngine sampled(std::move(sampled_set), sampled_options);

  while (true) {
    auto a = exact.Next();
    auto b = sampled.Next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    std::set<GraphId> ma(a->members.begin(), a->members.end());
    std::set<GraphId> mb(b->members.begin(), b->members.end());
    EXPECT_EQ(ma, mb);
  }
}

TEST(SamplingTest, SmallSampleStillRecoversTheFullGroup) {
  // Pivot counting over 2 sampled graphs must still rehydrate the winning
  // path against all 6, so the family comes back as one complete group.
  LabelInterner interner;
  GraphSet set = BuildSet(OrdinalAbbrevPairs(), &interner);
  IncrementalOptions options;
  options.sample_size = 2;
  IncrementalEngine engine(std::move(set), options);
  auto group = engine.Next();
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->members.size(), 6u);
}

TEST(SamplingTest, GroupsPartitionTheInputAndStayConsistent) {
  std::vector<StringPair> pairs = {
      {"Lee, Mary", "M. Lee"},   {"Smith, James", "J. Smith"},
      {"Lee, Mary", "Mary Lee"}, {"Smith, James", "James Smith"},
      {"Street", "St"},          {"Avenue", "Ave"},
      {"9th", "9"},              {"3rd", "3"},
      {"Wisconsin", "WI"},       {"California", "CA"},
  };
  GroupingOptions options;
  options.pivot_sample_size = 3;
  GroupingEngine engine(pairs, options);
  std::set<size_t> seen;
  while (auto group = engine.Next()) {
    EXPECT_FALSE(group->member_pair_indices.empty());
    for (size_t i : group->member_pair_indices) {
      EXPECT_TRUE(seen.insert(i).second) << "pair grouped twice: " << i;
    }
  }
  EXPECT_EQ(seen.size(), pairs.size());
}

TEST(SamplingTest, SampledGroupMembersShareThePivotProgram) {
  LabelInterner interner;
  GraphSet set = BuildSet(OrdinalAbbrevPairs(), &interner);
  IncrementalOptions options;
  options.sample_size = 3;
  IncrementalEngine engine(std::move(set), options);
  std::vector<StringPair> pairs = OrdinalAbbrevPairs();
  while (auto group = engine.Next()) {
    Program program = Program::FromPath(group->pivot, interner);
    for (GraphId g : group->members) {
      EXPECT_TRUE(program.ConsistentWith(pairs[g].lhs, pairs[g].rhs))
          << "member " << g << " inconsistent with pivot";
    }
  }
}

TEST(SamplingTest, DeterministicUnderFixedSeed) {
  auto run = [](uint64_t seed) {
    std::vector<std::vector<GraphId>> groups;
    LabelInterner interner;
    GraphSet set = BuildSet(OrdinalAbbrevPairs(), &interner);
    IncrementalOptions options;
    options.sample_size = 2;
    options.sample_seed = seed;
    IncrementalEngine engine(std::move(set), options);
    while (auto group = engine.Next()) groups.push_back(group->members);
    return groups;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(13), run(13));
}

}  // namespace
}  // namespace ustl

// Tests for consolidate/fusion (weighted vote, TruthFinder, ACCU) and the
// datagen source model. The iterative methods must (1) agree with the
// majority when all sources are equal, (2) recover source reliability from
// agreement structure alone, and (3) beat the majority when a reliable
// minority faces an unreliable majority.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "consolidate/framework.h"
#include "consolidate/fusion.h"
#include "consolidate/truth_discovery.h"
#include "datagen/generators.h"
#include "datagen/sources.h"

namespace ustl {
namespace {

// A synthetic claim world: `num_clusters` entities, each with one true
// value "t<i>"; source s reports the truth with probability rel[s], and a
// source-specific wrong value "w<i>-<s>" otherwise. Every source reports
// on every entity.
struct ClaimWorld {
  Column column;
  SourceMatrix sources;
  std::vector<std::string> truth;
};

ClaimWorld MakeWorld(const std::vector<double>& rel, size_t num_clusters,
                     uint64_t seed) {
  Rng rng(seed);
  ClaimWorld world;
  world.column.resize(num_clusters);
  world.sources.resize(num_clusters);
  world.truth.resize(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    world.truth[c] = "t" + std::to_string(c);
    for (size_t s = 0; s < rel.size(); ++s) {
      const bool correct = rng.Bernoulli(rel[s]);
      world.column[c].push_back(
          correct ? world.truth[c]
                  : "w" + std::to_string(c) + "-" + std::to_string(s));
      world.sources[c].push_back(static_cast<int>(s));
    }
  }
  return world;
}

double Accuracy(const ClaimWorld& world,
                const std::vector<std::optional<std::string>>& golden) {
  size_t correct = 0;
  for (size_t c = 0; c < world.truth.size(); ++c) {
    correct += golden[c].has_value() && *golden[c] == world.truth[c];
  }
  return static_cast<double>(correct) / world.truth.size();
}

TEST(WeightedVoteTest, UnitWeightsMatchMajoritySemantics) {
  Column column = {{"a", "a", "b"}, {"x", "y"}};
  SourceMatrix sources = {{0, 1, 2}, {0, 1}};
  FusionResult result = WeightedVote(column, sources, {1.0, 1.0, 1.0});
  ASSERT_EQ(result.golden.size(), 2u);
  EXPECT_EQ(result.golden[0], "a");
  EXPECT_FALSE(result.golden[1].has_value()) << "tie must yield no value";
}

TEST(WeightedVoteTest, WeightsBreakTies) {
  Column column = {{"x", "y"}};
  SourceMatrix sources = {{0, 1}};
  FusionResult result = WeightedVote(column, sources, {2.0, 1.0});
  ASSERT_TRUE(result.golden[0].has_value());
  EXPECT_EQ(*result.golden[0], "x");
}

TEST(WeightedVoteTest, EmptyClusterYieldsNothing) {
  Column column = {{}};
  SourceMatrix sources = {{}};
  FusionResult result = WeightedVote(column, sources, {1.0});
  EXPECT_FALSE(result.golden[0].has_value());
}

TEST(TruthFinderTest, RecoversSourceTrustOrdering) {
  // Reliabilities 0.95 / 0.7 / 0.5: learned trust must be monotone in the
  // true reliability.
  ClaimWorld world = MakeWorld({0.95, 0.7, 0.5}, 400, 1);
  FusionResult result = TruthFinder(world.column, world.sources, 3);
  EXPECT_GT(result.source_trust[0], result.source_trust[1]);
  EXPECT_GT(result.source_trust[1], result.source_trust[2]);
  EXPECT_GT(result.iterations, 1);
}

TEST(TruthFinderTest, BreaksMajorityTiesTowardReliableSources) {
  // One excellent source vs four coin-flippers with independent wrong
  // answers: MC ties (and abstains) whenever only the reliable source and
  // one flipper agree; TruthFinder resolves those ties with learned trust.
  ClaimWorld world = MakeWorld({0.98, 0.5, 0.5, 0.5, 0.5}, 400, 2);
  FusionResult tf = TruthFinder(world.column, world.sources, 5);
  std::vector<std::optional<std::string>> mc;
  for (const auto& cluster : world.column) {
    mc.push_back(MajorityValue(cluster));
  }
  EXPECT_GT(Accuracy(world, tf.golden), Accuracy(world, mc) + 0.02);
  EXPECT_GT(Accuracy(world, tf.golden), 0.9);
}

TEST(TruthFinderTest, DeterministicAndConvergent) {
  ClaimWorld world = MakeWorld({0.9, 0.6}, 100, 3);
  FusionResult a = TruthFinder(world.column, world.sources, 2);
  FusionResult b = TruthFinder(world.column, world.sources, 2);
  EXPECT_EQ(a.golden, b.golden);
  EXPECT_EQ(a.source_trust, b.source_trust);
  TruthFinderOptions tight;
  tight.max_iterations = 200;
  FusionResult c = TruthFinder(world.column, world.sources, 2, tight);
  EXPECT_LT(c.iterations, 200) << "should converge well before the cap";
}

TEST(AccuFusionTest, RecoversSourceAccuracyOrdering) {
  ClaimWorld world = MakeWorld({0.95, 0.7, 0.5}, 400, 4);
  FusionResult result = AccuFusion(world.column, world.sources, 3);
  EXPECT_GT(result.source_trust[0], result.source_trust[1]);
  EXPECT_GT(result.source_trust[1], result.source_trust[2]);
}

TEST(AccuFusionTest, LearnedAccuracyTracksTrueReliability) {
  // Two sources cannot be separated (disagreement carries no signal — a
  // symmetric fixed point), so calibration needs three. The top source
  // saturates high; the mid and low ones land near their true rates.
  ClaimWorld world = MakeWorld({0.9, 0.7, 0.5}, 600, 5);
  FusionResult result = AccuFusion(world.column, world.sources, 3);
  EXPECT_GT(result.source_trust[0], 0.85);
  EXPECT_NEAR(result.source_trust[1], 0.7, 0.15);
  EXPECT_NEAR(result.source_trust[2], 0.5, 0.15);
}

TEST(AccuFusionTest, TwoSourceWorldStaysSymmetric) {
  // Documents the identifiability limit: with exactly two sources and
  // distinct wrong values, no evidence distinguishes them, so learned
  // accuracies must coincide.
  ClaimWorld world = MakeWorld({0.9, 0.6}, 600, 5);
  FusionResult result = AccuFusion(world.column, world.sources, 2);
  EXPECT_NEAR(result.source_trust[0], result.source_trust[1], 1e-3);
}

TEST(AccuFusionTest, BreaksMajorityTiesTowardReliableSources) {
  ClaimWorld world = MakeWorld({0.98, 0.5, 0.5, 0.5, 0.5}, 400, 6);
  FusionResult accu = AccuFusion(world.column, world.sources, 5);
  std::vector<std::optional<std::string>> mc;
  for (const auto& cluster : world.column) {
    mc.push_back(MajorityValue(cluster));
  }
  EXPECT_GT(Accuracy(world, accu.golden), Accuracy(world, mc) + 0.02);
}

TEST(AccuFusionTest, SingleSourceIsItsOwnTruth) {
  Column column = {{"a"}, {"b"}};
  SourceMatrix sources = {{0}, {0}};
  FusionResult result = AccuFusion(column, sources, 1);
  EXPECT_EQ(result.golden[0], "a");
  EXPECT_EQ(result.golden[1], "b");
}

TEST(FuseTableTest, DispatchesEveryMethod) {
  Table table({"name", "city"});
  size_t c0 = table.AddCluster();
  table.AddRecord(c0, {"ann", "boston"});
  table.AddRecord(c0, {"ann", "boston"});
  table.AddRecord(c0, {"anne", "cambridge"});
  SourceMatrix sources = {{0, 1, 2}};
  for (FusionMethod method :
       {FusionMethod::kMajority, FusionMethod::kWeightedVote,
        FusionMethod::kTruthFinder, FusionMethod::kAccu}) {
    auto records =
        FuseTable(table, sources, 3, method, {1.0, 1.0, 1.0});
    ASSERT_EQ(records.size(), 1u);
    ASSERT_EQ(records[0].size(), 2u);
    ASSERT_TRUE(records[0][0].has_value()) << FusionMethodName(method);
    EXPECT_EQ(*records[0][0], "ann") << FusionMethodName(method);
    ASSERT_TRUE(records[0][1].has_value()) << FusionMethodName(method);
    EXPECT_EQ(*records[0][1], "boston") << FusionMethodName(method);
  }
}

// --- Source model (datagen/sources). ---

TEST(SourceModelTest, ReliabilitiesSpanTheConfiguredRange) {
  GeneratedDataset data = GenerateAddressDataset(AddressGenOptions{});
  SourceModelOptions options;
  options.num_sources = 5;
  SourceAssignment assignment = AssignSources(data, options);
  ASSERT_EQ(assignment.reliability.size(), 5u);
  EXPECT_DOUBLE_EQ(assignment.reliability.front(), 0.55);
  EXPECT_DOUBLE_EQ(assignment.reliability.back(), 0.95);
  EXPECT_TRUE(std::is_sorted(assignment.reliability.begin(),
                             assignment.reliability.end()));
}

TEST(SourceModelTest, AssignmentShapeMatchesColumn) {
  GeneratedDataset data = GenerateAddressDataset(AddressGenOptions{});
  SourceAssignment assignment = AssignSources(data, SourceModelOptions{});
  ASSERT_EQ(assignment.source_of.size(), data.column.size());
  for (size_t c = 0; c < data.column.size(); ++c) {
    EXPECT_EQ(assignment.source_of[c].size(), data.column[c].size());
  }
}

TEST(SourceModelTest, EmpiricalReliabilityTracksConfigured) {
  AddressGenOptions gen;
  gen.scale = 1.0;
  GeneratedDataset data = GenerateAddressDataset(gen);
  SourceModelOptions options;
  options.num_sources = 4;
  SourceAssignment assignment = AssignSources(data, options);
  std::vector<double> empirical = assignment.EmpiricalReliability(data);
  // The assignment skews correct records toward reliable sources; the
  // induced ordering must match even if absolute levels depend on the
  // dataset's base correctness rate.
  EXPECT_TRUE(std::is_sorted(empirical.begin(), empirical.end()))
      << empirical[0] << " " << empirical[1] << " " << empirical[2] << " "
      << empirical[3];
  EXPECT_GT(empirical.back() - empirical.front(), 0.1);
}

TEST(SourceModelTest, DeterministicInSeed) {
  GeneratedDataset data = GenerateAddressDataset(AddressGenOptions{});
  SourceAssignment a = AssignSources(data, SourceModelOptions{});
  SourceAssignment b = AssignSources(data, SourceModelOptions{});
  EXPECT_EQ(a.source_of, b.source_of);
  SourceModelOptions other;
  other.seed = 99;
  SourceAssignment c = AssignSources(data, other);
  EXPECT_NE(a.source_of, c.source_of);
}

TEST(SourceModelTest, StandardizationUnlocksSourceTrustRecovery) {
  // The paper's thesis, at the fusion layer: before standardization,
  // variant spellings break the textual agreement signal and neither
  // method can rank the sources; after running the pipeline, both recover
  // the ground-truth reliability ordering.
  AddressGenOptions gen;
  gen.scale = 0.3;
  GeneratedDataset data = GenerateAddressDataset(gen);
  SourceModelOptions options;
  options.num_sources = 4;
  options.min_reliability = 0.5;
  options.max_reliability = 0.95;
  SourceAssignment assignment = AssignSources(data, options);

  FusionResult tf_before =
      TruthFinder(data.column, assignment.source_of, 4);
  FusionResult accu_before =
      AccuFusion(data.column, assignment.source_of, 4);

  SimulatedOracle oracle(
      [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, SimulatedOracle::Options{});
  FrameworkOptions framework;
  framework.budget_per_column = 80;
  Column column = data.column;
  StandardizeColumn(&column, &oracle, framework);

  FusionResult tf_after = TruthFinder(column, assignment.source_of, 4);
  FusionResult accu_after = AccuFusion(column, assignment.source_of, 4);

  auto spread = [](const std::vector<double>& trust) {
    return trust.back() - trust.front();
  };
  EXPECT_GT(spread(tf_after.source_trust), 0.05);
  EXPECT_GT(spread(accu_after.source_trust), 0.1);
  EXPECT_GT(spread(tf_after.source_trust),
            spread(tf_before.source_trust));
  EXPECT_GT(spread(accu_after.source_trust),
            spread(accu_before.source_trust));
  EXPECT_TRUE(std::is_sorted(accu_after.source_trust.begin(),
                             accu_after.source_trust.end()));
}

}  // namespace
}  // namespace ustl

// Tests for src/dsl: position functions (Appendix B, Example B.1), string
// functions (Example B.2, affix extension of Appendix D), programs
// (Example B.3 / Figures 3-4), and the label interner.
#include <gtest/gtest.h>

#include "dsl/interner.h"
#include "dsl/position.h"
#include "dsl/program.h"
#include "dsl/string_function.h"

namespace ustl {
namespace {

constexpr const char* kLeeMary = "Lee, Mary";  // |s| = 9

// --- Example B.1. ---

TEST(PosFnTest, ConstPosForward) {
  EXPECT_EQ(PosFn::ConstPos(2).Eval(kLeeMary), 2);
  EXPECT_EQ(PosFn::ConstPos(1).Eval(kLeeMary), 1);
  EXPECT_EQ(PosFn::ConstPos(10).Eval(kLeeMary), 10);  // |s|+1 is valid
  EXPECT_FALSE(PosFn::ConstPos(11).Eval(kLeeMary).has_value());
}

TEST(PosFnTest, ConstPosBackward) {
  // ConstPos(-5) = |s| + 2 + k = 9 + 2 - 5 = 6 (Example B.1).
  EXPECT_EQ(PosFn::ConstPos(-5).Eval(kLeeMary), 6);
  EXPECT_EQ(PosFn::ConstPos(-1).Eval(kLeeMary), 10);
  EXPECT_EQ(PosFn::ConstPos(-10).Eval(kLeeMary), 1);
  EXPECT_FALSE(PosFn::ConstPos(-11).Eval(kLeeMary).has_value());
}

TEST(PosFnTest, MatchPosSecondCapital) {
  // MatchPos(TC, 2, B) = 6 and MatchPos(TC, 2, E) = 7 (Example B.1).
  Term tc = Term::Regex(CharClass::kUpper);
  EXPECT_EQ(PosFn::MatchPos(tc, 2, Dir::kBegin).Eval(kLeeMary), 6);
  EXPECT_EQ(PosFn::MatchPos(tc, 2, Dir::kEnd).Eval(kLeeMary), 7);
}

TEST(PosFnTest, MatchPosBackwardIndex) {
  // The -1st match is the last one: for TC in "Lee, Mary" that is "M".
  Term tc = Term::Regex(CharClass::kUpper);
  EXPECT_EQ(PosFn::MatchPos(tc, -1, Dir::kBegin).Eval(kLeeMary), 6);
  EXPECT_EQ(PosFn::MatchPos(tc, -2, Dir::kBegin).Eval(kLeeMary), 1);
  EXPECT_FALSE(PosFn::MatchPos(tc, -3, Dir::kBegin).Eval(kLeeMary).has_value());
}

TEST(PosFnTest, MatchPosTooFewMatches) {
  Term td = Term::Regex(CharClass::kDigit);
  EXPECT_FALSE(PosFn::MatchPos(td, 1, Dir::kBegin).Eval(kLeeMary).has_value());
}

TEST(PosFnTest, FigureThreePositions) {
  // Figure 4: PA = 1, PB = 4, PC = 6, PD = 7 on "Lee, Mary".
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  EXPECT_EQ(PosFn::MatchPos(tc, 1, Dir::kBegin).Eval(kLeeMary), 1);   // PA
  EXPECT_EQ(PosFn::MatchPos(tl, 1, Dir::kEnd).Eval(kLeeMary), 4);    // PB
  EXPECT_EQ(PosFn::MatchPos(tb, 1, Dir::kEnd).Eval(kLeeMary), 6);    // PC
  EXPECT_EQ(PosFn::MatchPos(tc, -1, Dir::kEnd).Eval(kLeeMary), 7);   // PD
}

TEST(PosFnTest, KeyInjective) {
  Term tc = Term::Regex(CharClass::kUpper);
  std::vector<PosFn> fns = {
      PosFn::ConstPos(1),
      PosFn::ConstPos(-1),
      PosFn::MatchPos(tc, 1, Dir::kBegin),
      PosFn::MatchPos(tc, 1, Dir::kEnd),
      PosFn::MatchPos(tc, -1, Dir::kBegin),
      PosFn::MatchPos(Term::Constant("x"), 1, Dir::kBegin),
  };
  for (size_t i = 0; i < fns.size(); ++i) {
    for (size_t j = 0; j < fns.size(); ++j) {
      EXPECT_EQ(fns[i].Key() == fns[j].Key(), i == j);
    }
  }
}

// --- String functions (Example B.2, Appendix D). ---

TEST(StringFnTest, ConstantStr) {
  StringFn f = StringFn::ConstantStr("MIT");
  EXPECT_EQ(f.Eval(kLeeMary), std::vector<std::string>{"MIT"});
  EXPECT_TRUE(f.CanProduce("anything", "MIT"));
  EXPECT_FALSE(f.CanProduce("anything", "MI"));
}

TEST(StringFnTest, SubStrExampleB2) {
  // SubStr(MatchPos(TC,1,B), MatchPos(Tl,1,E)) = "Lee" on "Lee, Mary".
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  StringFn f = StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                PosFn::MatchPos(tl, 1, Dir::kEnd));
  EXPECT_EQ(f.Eval(kLeeMary), std::vector<std::string>{"Lee"});
  EXPECT_TRUE(f.CanProduce(kLeeMary, "Lee"));
}

TEST(StringFnTest, SubStrFailsWhenPositionsInvalid) {
  Term td = Term::Regex(CharClass::kDigit);
  StringFn f = StringFn::SubStr(PosFn::MatchPos(td, 1, Dir::kBegin),
                                PosFn::MatchPos(td, 1, Dir::kEnd));
  EXPECT_TRUE(f.Eval(kLeeMary).empty());
  // l >= r also fails.
  StringFn g = StringFn::SubStr(PosFn::ConstPos(5), PosFn::ConstPos(2));
  EXPECT_TRUE(g.Eval(kLeeMary).empty());
}

TEST(StringFnTest, PrefixEnumeratesAllPrefixes) {
  // Prefix(Tl, 1) on "Street": the 1st lowercase match is "treet"; outputs
  // are t, tr, tre, tree, treet (Appendix D).
  StringFn f = StringFn::Prefix(Term::Regex(CharClass::kLower), 1);
  EXPECT_EQ(f.Eval("Street"),
            (std::vector<std::string>{"t", "tr", "tre", "tree", "treet"}));
  EXPECT_TRUE(f.CanProduce("Street", "t"));
  EXPECT_TRUE(f.CanProduce("Avenue", "ve"));  // prefix of "venue"
  EXPECT_FALSE(f.CanProduce("Street", "re"));
}

TEST(StringFnTest, SuffixEnumeratesAllSuffixes) {
  StringFn f = StringFn::Suffix(Term::Regex(CharClass::kLower), 1);
  EXPECT_EQ(f.Eval("abc"), (std::vector<std::string>{"c", "bc", "abc"}));
  EXPECT_TRUE(f.CanProduce("abc", "bc"));
  EXPECT_FALSE(f.CanProduce("abc", "ab"));
}

TEST(StringFnTest, AffixNegativeK) {
  // Negative k counts matches from the end, mirroring MatchPos.
  StringFn f = StringFn::Prefix(Term::Regex(CharClass::kLower), -1);
  EXPECT_TRUE(f.CanProduce("Lee, Mary", "ar"));   // prefix of "ary"
  EXPECT_FALSE(f.CanProduce("Lee, Mary", "ee"));  // that's match 1, not -1
}

TEST(StringFnTest, KeyInjectiveAcrossKinds) {
  Term tl = Term::Regex(CharClass::kLower);
  std::vector<StringFn> fns = {
      StringFn::ConstantStr("a"),
      StringFn::SubStr(PosFn::ConstPos(1), PosFn::ConstPos(2)),
      StringFn::Prefix(tl, 1),
      StringFn::Suffix(tl, 1),
      StringFn::Prefix(tl, 2),
  };
  for (size_t i = 0; i < fns.size(); ++i) {
    for (size_t j = 0; j < fns.size(); ++j) {
      EXPECT_EQ(fns[i] == fns[j], i == j);
      EXPECT_EQ(fns[i].Key() == fns[j].Key(), i == j);
    }
  }
}

// --- Programs (Example B.3 / Figures 3-4). ---

Program MLeeProgram() {
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  StringFn f1 = StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                 PosFn::MatchPos(tl, 1, Dir::kEnd));
  StringFn f2 = StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                                 PosFn::MatchPos(tc, -1, Dir::kEnd));
  StringFn f3 = StringFn::ConstantStr(". ");
  return Program({f2, f3, f1});
}

TEST(ProgramTest, ExampleB3ProducesMLee) {
  Program rho = MLeeProgram();
  Result<std::string> out = rho.EvaluateDeterministic(kLeeMary);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "M. Lee");
  EXPECT_TRUE(rho.ConsistentWith(kLeeMary, "M. Lee"));
  EXPECT_FALSE(rho.ConsistentWith(kLeeMary, "M. Lee "));
}

TEST(ProgramTest, SameProgramGeneralizesToSmithJames) {
  // The whole point of pivot paths: the Example B.3 program also maps
  // "Smith, James" to "J. Smith".
  Program rho = MLeeProgram();
  Result<std::string> out = rho.EvaluateDeterministic("Smith, James");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "J. Smith");
}

TEST(ProgramTest, AffixProgramStreetSt) {
  // Appendix D: SubStr(TC-begin, TC-end) (+) Prefix(Tl, 1) is consistent
  // with both Street -> St and Avenue -> Ave.
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Program rho({StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                                PosFn::MatchPos(tc, 1, Dir::kEnd)),
               StringFn::Prefix(tl, 1)});
  EXPECT_TRUE(rho.ConsistentWith("Street", "St"));
  EXPECT_TRUE(rho.ConsistentWith("Avenue", "Ave"));
  EXPECT_FALSE(rho.ConsistentWith("Street", "Sx"));
}

TEST(ProgramTest, EvaluateEnumeratesAffixChoices) {
  Program rho({StringFn::Prefix(Term::Regex(CharClass::kLower), 1)});
  Result<std::vector<std::string>> outs = rho.Evaluate("abc");
  ASSERT_TRUE(outs.ok());
  EXPECT_EQ(*outs, (std::vector<std::string>{"a", "ab", "abc"}));
}

TEST(ProgramTest, EvaluateRespectsOutputCap) {
  // Two affix functions over a long run explode combinatorially; the cap
  // turns that into ResourceExhausted instead of an OOM.
  Term tl = Term::Regex(CharClass::kLower);
  Program rho({StringFn::Prefix(tl, 1), StringFn::Prefix(tl, 1)});
  std::string s(200, 'a');
  Result<std::vector<std::string>> outs = rho.Evaluate(s, 100);
  EXPECT_FALSE(outs.ok());
  EXPECT_EQ(outs.status().code(), StatusCode::kResourceExhausted);
}

TEST(ProgramTest, EvaluateDeterministicRejectsMultiValued) {
  Program rho({StringFn::Prefix(Term::Regex(CharClass::kLower), 1)});
  EXPECT_FALSE(rho.EvaluateDeterministic("abc").ok());
}

TEST(ProgramTest, EmptyProgramInconsistent) {
  Program rho;
  EXPECT_FALSE(rho.ConsistentWith("a", "a"));
}

TEST(ProgramTest, FunctionFailureYieldsNoOutputs) {
  Term td = Term::Regex(CharClass::kDigit);
  Program rho({StringFn::SubStr(PosFn::MatchPos(td, 1, Dir::kBegin),
                                PosFn::MatchPos(td, 1, Dir::kEnd))});
  Result<std::vector<std::string>> outs = rho.Evaluate("letters only");
  ASSERT_TRUE(outs.ok());
  EXPECT_TRUE(outs->empty());
  EXPECT_FALSE(rho.ConsistentWith("letters only", "x"));
}

// --- Interner. ---

TEST(InternerTest, RoundTrip) {
  LabelInterner interner;
  StringFn f = StringFn::ConstantStr("abc");
  LabelId id = interner.Intern(f);
  EXPECT_EQ(interner.Get(id), f);
  EXPECT_EQ(interner.Intern(f), id);  // idempotent
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, DistinctFunctionsGetDistinctIds) {
  LabelInterner interner;
  LabelId a = interner.Intern(StringFn::ConstantStr("a"));
  LabelId b = interner.Intern(StringFn::ConstantStr("b"));
  LabelId c = interner.Intern(
      StringFn::Prefix(Term::Regex(CharClass::kLower), 1));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, LookupWithoutInterning) {
  LabelInterner interner;
  LabelId id;
  EXPECT_FALSE(interner.Lookup(StringFn::ConstantStr("a"), &id));
  LabelId interned = interner.Intern(StringFn::ConstantStr("a"));
  ASSERT_TRUE(interner.Lookup(StringFn::ConstantStr("a"), &id));
  EXPECT_EQ(id, interned);
}

TEST(InternerTest, PathToString) {
  LabelInterner interner;
  LabelPath path = {interner.Intern(StringFn::ConstantStr("x")),
                    interner.Intern(StringFn::ConstantStr("y"))};
  EXPECT_EQ(PathToString(path, interner),
            "ConstantStr(\"x\") (+) ConstantStr(\"y\")");
}

}  // namespace
}  // namespace ustl

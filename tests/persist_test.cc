// Tests for src/persist: the checksummed WAL, atomic snapshots, the
// durable-record codec and the DurableState recovery path (ISSUE 9).
// The core invariant under test is durable-prefix semantics: whatever a
// crash, truncation or bit flip leaves on disk, recovery yields a
// byte-exact prefix of what was appended (WAL) or a typed error
// (snapshot) — never a crash, a hang, or a silently different record.
// The serving-level kill tests (SIGKILL at armed crash points through
// ustl-serve) live in tools/check.sh; this file pins the layers below.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "consolidate/oracle.h"
#include "persist/crash_point.h"
#include "persist/durable_state.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "pipeline/oracle_broker.h"

namespace ustl {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("ustl_persist_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

// Payloads with embedded NULs, high bytes and a size spread around the
// frame-header boundary.
std::vector<std::string> FuzzishPayloads() {
  std::vector<std::string> payloads;
  payloads.push_back("");
  payloads.push_back(std::string(1, '\0'));
  payloads.push_back("plain ascii record");
  payloads.push_back(std::string("\x00\xFF\x7F\x80 embedded", 17));
  payloads.push_back(std::string(300, 'x'));
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  payloads.push_back(binary);
  return payloads;
}

TEST(Crc32cTest, MatchesReferenceVector) {
  // RFC 3720 test vector for CRC32C.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Any single-bit difference must change the checksum.
  EXPECT_NE(Crc32c("123456789"), Crc32c("123456788"));
  EXPECT_NE(Crc32c(std::string(1, '\0')), Crc32c(""));
}

TEST(FsyncPolicyTest, ParsesNamesAndRejectsGarbage) {
  EXPECT_EQ(ParseFsyncPolicy("none").value(), FsyncPolicy::kNone);
  EXPECT_EQ(ParseFsyncPolicy("batch").value(), FsyncPolicy::kBatch);
  EXPECT_EQ(ParseFsyncPolicy("always").value(), FsyncPolicy::kAlways);
  EXPECT_FALSE(ParseFsyncPolicy("").ok());
  EXPECT_FALSE(ParseFsyncPolicy("Batch").ok());
  EXPECT_FALSE(ParseFsyncPolicy("fsync").ok());
  for (FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    EXPECT_EQ(ParseFsyncPolicy(FsyncPolicyName(policy)).value(), policy);
  }
}

TEST(WalTest, RoundTripAcrossReopen) {
  ScratchDir dir("wal_roundtrip");
  const std::vector<std::string> payloads = FuzzishPayloads();
  for (FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    const std::string path = dir.file(std::string("wal_") +
                                      FsyncPolicyName(policy));
    WalOptions options;
    options.fsync = policy;
    options.batch_appends = 2;
    {
      Wal wal;
      WalOpenResult result;
      ASSERT_TRUE(wal.Open(path, options, &result).ok());
      EXPECT_TRUE(result.records.empty());
      for (const std::string& payload : payloads) {
        ASSERT_TRUE(wal.Append(payload).ok());
      }
      EXPECT_EQ(wal.appends(), payloads.size());
      ASSERT_TRUE(wal.Close().ok());
    }
    Wal wal;
    WalOpenResult result;
    ASSERT_TRUE(wal.Open(path, options, &result).ok());
    EXPECT_EQ(result.records, payloads);
    EXPECT_EQ(result.truncated_tail_bytes, 0u);
    // The reopened log appends at the tail, not over it.
    ASSERT_TRUE(wal.Append("after reopen").ok());
    ASSERT_TRUE(wal.Close().ok());
    WalOpenResult again;
    Wal wal2;
    ASSERT_TRUE(wal2.Open(path, options, &again).ok());
    ASSERT_EQ(again.records.size(), payloads.size() + 1);
    EXPECT_EQ(again.records.back(), "after reopen");
  }
}

TEST(WalTest, ResetEmptiesTheLog) {
  ScratchDir dir("wal_reset");
  Wal wal;
  WalOpenResult result;
  ASSERT_TRUE(wal.Open(dir.file("wal.log"), WalOptions(), &result).ok());
  ASSERT_TRUE(wal.Append("doomed").ok());
  EXPECT_GT(wal.bytes(), 0u);
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.bytes(), 0u);
  ASSERT_TRUE(wal.Append("survivor").ok());
  ASSERT_TRUE(wal.Close().ok());
  Wal reopened;
  WalOpenResult after;
  ASSERT_TRUE(reopened.Open(dir.file("wal.log"), WalOptions(), &after).ok());
  EXPECT_EQ(after.records, std::vector<std::string>{"survivor"});
}

// The kill-test invariant at byte granularity: truncate a clean log at
// EVERY possible length and recovery must yield exactly the records whose
// frames fit, report the torn remainder, and leave the file appendable.
TEST(WalTest, TruncationSweepRecoversDurablePrefix) {
  ScratchDir dir("wal_trunc");
  const std::vector<std::string> payloads = FuzzishPayloads();
  const std::string clean_path = dir.file("clean.log");
  std::vector<uint64_t> frame_ends;  // cumulative byte offset per record
  {
    Wal wal;
    WalOpenResult result;
    ASSERT_TRUE(wal.Open(clean_path, WalOptions(), &result).ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(wal.Append(payload).ok());
      frame_ends.push_back(wal.bytes());
    }
    ASSERT_TRUE(wal.Close().ok());
  }
  const std::string clean = ReadFile(clean_path);
  ASSERT_EQ(clean.size(), frame_ends.back());

  for (size_t cut = 0; cut <= clean.size(); ++cut) {
    const std::string path = dir.file("cut.log");
    WriteFile(path, clean.substr(0, cut));
    Wal wal;
    WalOpenResult result;
    ASSERT_TRUE(wal.Open(path, WalOptions(), &result).ok()) << "cut=" << cut;
    // Durable prefix: every record whose frame ends at or before the cut.
    size_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= cut) ++expect;
    ASSERT_EQ(result.records.size(), expect) << "cut=" << cut;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(result.records[i], payloads[i]) << "cut=" << cut;
    }
    const uint64_t durable = expect == 0 ? 0 : frame_ends[expect - 1];
    EXPECT_EQ(result.truncated_tail_bytes, cut - durable) << "cut=" << cut;
    // The torn tail is gone from disk and the log accepts new records.
    ASSERT_TRUE(wal.Append("appended after tear").ok());
    ASSERT_TRUE(wal.Close().ok());
    Wal reopened;
    WalOpenResult after;
    ASSERT_TRUE(reopened.Open(path, WalOptions(), &after).ok());
    ASSERT_EQ(after.records.size(), expect + 1);
    EXPECT_EQ(after.records.back(), "appended after tear");
  }
}

// Seeded bit-flip fuzz: whatever single bit rots, recovery returns some
// byte-exact prefix of the original records — never a mutated record,
// never a crash. (A flip inside a payload is caught by that frame's CRC;
// a flip inside a header derails framing; both truncate from there.)
TEST(WalTest, BitFlipFuzzNeverYieldsACorruptRecord) {
  ScratchDir dir("wal_flip");
  const std::vector<std::string> payloads = FuzzishPayloads();
  const std::string clean_path = dir.file("clean.log");
  {
    Wal wal;
    WalOpenResult result;
    ASSERT_TRUE(wal.Open(clean_path, WalOptions(), &result).ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(wal.Append(payload).ok());
    }
    ASSERT_TRUE(wal.Close().ok());
  }
  const std::string clean = ReadFile(clean_path);
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<size_t> pick_byte(0, clean.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = clean;
    const size_t byte = pick_byte(rng);
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << pick_bit(rng)));
    const std::string path = dir.file("flip.log");
    WriteFile(path, mutated);
    Wal wal;
    WalOpenResult result;
    Status status = wal.Open(path, WalOptions(), &result);
    ASSERT_TRUE(status.ok()) << "trial " << trial << " byte " << byte;
    ASSERT_LE(result.records.size(), payloads.size());
    for (size_t i = 0; i < result.records.size(); ++i) {
      // Prefix records must be byte-exact — a flip can shorten the
      // recovery, never silently alter it. (A flip at or past the cut
      // cannot touch earlier frames.)
      EXPECT_EQ(result.records[i], payloads[i])
          << "trial " << trial << " byte " << byte << " record " << i;
    }
    (void)wal.Close();
  }
}

TEST(SnapshotTest, RoundTripAndMissingFileIsNotFound) {
  ScratchDir dir("snap_roundtrip");
  std::vector<std::string> records;
  Status missing = ReadSnapshotFile(dir.file("absent.bin"), &records);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  const std::vector<std::string> payloads = FuzzishPayloads();
  const std::string path = dir.file("snap.bin");
  ASSERT_TRUE(WriteSnapshotFile(path, payloads).ok());
  ASSERT_TRUE(ReadSnapshotFile(path, &records).ok());
  EXPECT_EQ(records, payloads);
  // No stray temp file left behind after the atomic publish.
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Overwrite with different content: readers see old xor new, and here
  // (no crash) strictly the new.
  ASSERT_TRUE(WriteSnapshotFile(path, {"only record"}).ok());
  ASSERT_TRUE(ReadSnapshotFile(path, &records).ok());
  EXPECT_EQ(records, std::vector<std::string>{"only record"});

  ASSERT_TRUE(WriteSnapshotFile(path, {}).ok());
  ASSERT_TRUE(ReadSnapshotFile(path, &records).ok());
  EXPECT_TRUE(records.empty());
}

// Every single-bit flip anywhere in a snapshot is covered by the trailing
// CRC (or breaks framing first): the reader must return a typed error and
// an empty result, never a crash and never partial records.
TEST(SnapshotTest, BitFlipFuzzAlwaysYieldsTypedError) {
  ScratchDir dir("snap_flip");
  const std::string path = dir.file("snap.bin");
  ASSERT_TRUE(WriteSnapshotFile(path, FuzzishPayloads()).ok());
  const std::string clean = ReadFile(path);
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<size_t> pick_byte(0, clean.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  const std::string mutated_path = dir.file("mutated.bin");
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = clean;
    const size_t byte = pick_byte(rng);
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << pick_bit(rng)));
    WriteFile(mutated_path, mutated);
    std::vector<std::string> records = {"stale sentinel"};
    Status status = ReadSnapshotFile(mutated_path, &records);
    EXPECT_FALSE(status.ok()) << "trial " << trial << " byte " << byte;
    EXPECT_TRUE(records.empty()) << "trial " << trial << " byte " << byte;
  }
}

TEST(SnapshotTest, TruncationSweepAlwaysYieldsTypedError) {
  ScratchDir dir("snap_trunc");
  const std::string path = dir.file("snap.bin");
  ASSERT_TRUE(WriteSnapshotFile(path, FuzzishPayloads()).ok());
  const std::string clean = ReadFile(path);
  const std::string cut_path = dir.file("cut.bin");
  for (size_t cut = 0; cut < clean.size(); ++cut) {
    WriteFile(cut_path, clean.substr(0, cut));
    std::vector<std::string> records;
    Status status = ReadSnapshotFile(cut_path, &records);
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
    EXPECT_TRUE(records.empty()) << "cut=" << cut;
  }
  // Trailing garbage after a valid snapshot is corruption too.
  WriteFile(cut_path, clean + "garbage");
  std::vector<std::string> records;
  EXPECT_FALSE(ReadSnapshotFile(cut_path, &records).ok());
}

TEST(SnapshotTest, WriteFileAtomicPublishesExactBytes) {
  ScratchDir dir("atomic_write");
  const std::string path = dir.file("out.txt");
  const std::string contents("line one\nbinary \x00\xFF tail", 24);
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  EXPECT_EQ(ReadFile(path), contents);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  ASSERT_TRUE(WriteFileAtomic(path, "replaced").ok());
  EXPECT_EQ(ReadFile(path), "replaced");
}

DurableVerdict SampleVerdict(uint64_t seed, bool approved) {
  DurableVerdict verdict;
  verdict.key.lo = seed * 0x9E3779B97F4A7C15ull;
  verdict.key.hi = ~seed;
  verdict.verdict.approved = approved;
  verdict.verdict.direction =
      approved ? ReplaceDirection::kRhsToLhs : ReplaceDirection::kLhsToRhs;
  return verdict;
}

DurableApproved SampleApproved() {
  DurableApproved approved;
  approved.column = "street \xC3\xA9";  // non-ASCII column name
  approved.program = std::string("sub(\"St\x00\", \"Street\")", 21);
  approved.direction = ReplaceDirection::kRhsToLhs;
  approved.rank = 3;
  approved.pairs = {{"Oak Street", "Oak St"}, {"", "empty lhs ok"}};
  return approved;
}

TEST(DurableRecordCodecTest, VerdictRoundTrip) {
  for (bool approved : {true, false}) {
    const DurableVerdict original = SampleVerdict(7, approved);
    OracleDurableState state;
    ASSERT_TRUE(DecodeDurableRecord(EncodeVerdictRecord(original), &state).ok());
    ASSERT_EQ(state.verdicts.size(), 1u);
    ASSERT_TRUE(state.approved.empty());
    EXPECT_EQ(state.verdicts[0].key.lo, original.key.lo);
    EXPECT_EQ(state.verdicts[0].key.hi, original.key.hi);
    EXPECT_EQ(state.verdicts[0].verdict.approved, original.verdict.approved);
    EXPECT_EQ(state.verdicts[0].verdict.direction,
              original.verdict.direction);
  }
}

TEST(DurableRecordCodecTest, ApprovedRoundTrip) {
  const DurableApproved original = SampleApproved();
  OracleDurableState state;
  ASSERT_TRUE(DecodeDurableRecord(EncodeApprovedRecord(original), &state).ok());
  ASSERT_EQ(state.approved.size(), 1u);
  const DurableApproved& decoded = state.approved[0];
  EXPECT_EQ(decoded.column, original.column);
  EXPECT_EQ(decoded.program, original.program);
  EXPECT_EQ(decoded.direction, original.direction);
  EXPECT_EQ(decoded.rank, original.rank);
  EXPECT_EQ(decoded.pairs, original.pairs);
}

TEST(DurableRecordCodecTest, RejectsMalformedRecords) {
  OracleDurableState state;
  EXPECT_FALSE(DecodeDurableRecord("", &state).ok());
  EXPECT_FALSE(DecodeDurableRecord("\x03junk tag", &state).ok());
  // Verdict with trailing bytes.
  std::string verdict = EncodeVerdictRecord(SampleVerdict(1, true));
  EXPECT_FALSE(DecodeDurableRecord(verdict + "x", &state).ok());
  // Verdict truncated anywhere.
  for (size_t cut = 0; cut < verdict.size(); ++cut) {
    EXPECT_FALSE(
        DecodeDurableRecord(std::string_view(verdict).substr(0, cut), &state)
            .ok())
        << "cut=" << cut;
  }
  // Approved truncated anywhere.
  std::string approved = EncodeApprovedRecord(SampleApproved());
  for (size_t cut = 0; cut < approved.size(); ++cut) {
    EXPECT_FALSE(
        DecodeDurableRecord(std::string_view(approved).substr(0, cut), &state)
            .ok())
        << "cut=" << cut;
  }
  EXPECT_TRUE(state.verdicts.empty());
  EXPECT_TRUE(state.approved.empty());
}

// Random bytes and randomly mutated valid records: the decoder must
// always return (a typed Status), never crash, hang or over-read. This is
// the "frames and checksums but does not decode" layer — the WAL CRC
// guards integrity, the codec guards structure.
TEST(DurableRecordCodecTest, DecodeFuzzNeverCrashes) {
  std::mt19937 rng(424242);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const std::string approved = EncodeApprovedRecord(SampleApproved());
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes;
    if (trial % 2 == 0) {
      std::uniform_int_distribution<size_t> len_dist(0, 64);
      const size_t len = len_dist(rng);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<char>(byte_dist(rng)));
      }
    } else {
      bytes = approved;
      std::uniform_int_distribution<size_t> pos_dist(0, bytes.size() - 1);
      bytes[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    }
    OracleDurableState state;
    (void)DecodeDurableRecord(bytes, &state);  // must simply return
  }
}

TEST(CrashPointTest, ArmFromSpecParsesAndCountsDown) {
  EXPECT_TRUE(CrashPoint::ArmFromSpec("").ok());  // empty disarms
  EXPECT_FALSE(CrashPoint::ArmFromSpec("wal_append").ok());
  EXPECT_FALSE(CrashPoint::ArmFromSpec("wal_append:0").ok());
  EXPECT_FALSE(CrashPoint::ArmFromSpec("wal_append:x").ok());
  EXPECT_FALSE(CrashPoint::ArmFromSpec("unknown_kind:3").ok());

  ASSERT_TRUE(CrashPoint::ArmFromSpec("wal_append:3").ok());
  // Other kinds never trip a wal_append arming.
  EXPECT_FALSE(CrashPoint::Reached(CrashPointKind::kSnapshotTemp));
  EXPECT_FALSE(CrashPoint::Reached(CrashPointKind::kWalAppend));  // hit 1
  EXPECT_FALSE(CrashPoint::Reached(CrashPointKind::kWalAppend));  // hit 2
  EXPECT_TRUE(CrashPoint::Reached(CrashPointKind::kWalAppend));   // hit 3
  CrashPoint::Disarm();
  EXPECT_FALSE(CrashPoint::Reached(CrashPointKind::kWalAppend));
}

// Counts backend calls; approves everything (the broker serializes, so a
// plain counter is enough).
class CountingOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    (void)group_pairs;
    ++calls_;
    Verdict verdict;
    verdict.approved = true;
    verdict.direction = ReplaceDirection::kLhsToRhs;
    return verdict;
  }
  size_t calls() const { return calls_; }

 private:
  size_t calls_ = 0;
};

std::vector<StringPair> Question(int i) {
  const std::string n = "Oak" + std::to_string(i);
  return {{n + " Street", n + " St"}};
}

// One program per question index (the approved log is keyed by program,
// so shared programs would collapse into one entry); the referenced
// string must outlive the string_view in the context.
const std::string& Program(int i) {
  static std::vector<std::string>* programs = new std::vector<std::string>();
  while (static_cast<int>(programs->size()) <= i) {
    programs->push_back("replace(\"Street" + std::to_string(programs->size()) +
                        "\", \"St\")");
  }
  return (*programs)[i];
}

QuestionContext Context(int i) {
  QuestionContext context;
  context.column = "street";
  context.program = Program(i);
  context.presented = 1;
  return context;
}

// End-to-end durability: a broker's verdicts + approved log written
// through the listener survive a DurableState reopen, seed a fresh
// broker, and make the warm broker answer the same questions with ZERO
// backend calls and an identical exported state.
TEST(DurableStateTest, WarmBrokerRecoversStateAndSkipsBackend) {
  ScratchDir dir("durable_e2e");
  constexpr int kQuestions = 8;
  OracleDurableState cold_exported;
  {
    auto opened = DurableState::Open(dir.path(), DurableState::Options());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<DurableState> persist = std::move(opened).value();
    EXPECT_EQ(persist->stats().recovered_records, 0u);
    CountingOracle backend;
    OracleBroker broker(&backend);
    persist->RecoverInto(&broker);
    for (int i = 0; i < kQuestions; ++i) {
      Verdict verdict = broker.VerifyWithContext(Question(i), Context(i));
      EXPECT_TRUE(verdict.approved);
    }
    EXPECT_EQ(backend.calls(), static_cast<size_t>(kQuestions));
    EXPECT_EQ(persist->stats().wal_appends,
              static_cast<uint64_t>(2 * kQuestions));  // verdict + approved
    ASSERT_TRUE(persist->Flush().ok());
    cold_exported = broker.ExportDurableState();
    broker.SetDurabilityListener(nullptr);
  }

  auto reopened = DurableState::Open(dir.path(), DurableState::Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<DurableState> persist = std::move(reopened).value();
  EXPECT_EQ(persist->stats().recovered_records,
            static_cast<uint64_t>(2 * kQuestions));
  EXPECT_EQ(persist->stats().truncated_tail_bytes, 0u);
  CountingOracle backend;
  OracleBroker broker(&backend);
  persist->RecoverInto(&broker);
  for (int i = 0; i < kQuestions; ++i) {
    Verdict verdict = broker.VerifyWithContext(Question(i), Context(i));
    EXPECT_TRUE(verdict.approved);
  }
  // Warm: every verdict served from the recovered cache.
  EXPECT_EQ(backend.calls(), 0u);
  EXPECT_EQ(broker.stats().cache_hits, static_cast<size_t>(kQuestions));
  // Replaying the recovered state reproduced the cold session exactly.
  const OracleDurableState warm_exported = broker.ExportDurableState();
  ASSERT_EQ(warm_exported.verdicts.size(), cold_exported.verdicts.size());
  ASSERT_EQ(warm_exported.approved.size(), cold_exported.approved.size());
  for (size_t i = 0; i < cold_exported.verdicts.size(); ++i) {
    EXPECT_EQ(EncodeVerdictRecord(warm_exported.verdicts[i]),
              EncodeVerdictRecord(cold_exported.verdicts[i]));
  }
  for (size_t i = 0; i < cold_exported.approved.size(); ++i) {
    EXPECT_EQ(EncodeApprovedRecord(warm_exported.approved[i]),
              EncodeApprovedRecord(cold_exported.approved[i]));
  }
  // Recovery itself must not have re-logged the recovered records.
  EXPECT_EQ(persist->stats().wal_appends, 0u);
  broker.SetDurabilityListener(nullptr);
}

// Compaction: snapshot the exported state, reset the WAL, reopen — the
// snapshot alone carries the state, and a stale-WAL replay on top (the
// crash-between-rename-and-reset window) is an idempotent no-op.
TEST(DurableStateTest, CompactionSnapshotsAndReopens) {
  ScratchDir dir("durable_compact");
  DurableState::Options options;
  options.compact_wal_bytes = 64;  // tiny: compact almost immediately
  {
    auto opened = DurableState::Open(dir.path(), options);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<DurableState> persist = std::move(opened).value();
    CountingOracle backend;
    OracleBroker broker(&backend);
    persist->RecoverInto(&broker);
    for (int i = 0; i < 6; ++i) {
      (void)broker.VerifyWithContext(Question(i), Context(i));
    }
    EXPECT_TRUE(persist->ShouldCompact());
    ASSERT_TRUE(persist->WriteSnapshot(broker.ExportDurableState()).ok());
    EXPECT_FALSE(persist->ShouldCompact());  // WAL was reset
    EXPECT_EQ(persist->stats().snapshot_writes, 1u);
    broker.SetDurabilityListener(nullptr);
  }
  ASSERT_TRUE(fs::exists(dir.file("snapshot.bin")));

  auto reopened = DurableState::Open(dir.path(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<DurableState> persist = std::move(reopened).value();
  EXPECT_EQ(persist->stats().recovered_records, 12u);  // 6 verdicts + 6 log
  CountingOracle backend;
  OracleBroker broker(&backend);
  persist->RecoverInto(&broker);
  for (int i = 0; i < 6; ++i) {
    (void)broker.VerifyWithContext(Question(i), Context(i));
  }
  EXPECT_EQ(backend.calls(), 0u);
  broker.SetDurabilityListener(nullptr);
}

// A WAL record that frames and checksums correctly but does not decode is
// format skew, not a torn tail: Open must fail typed, not truncate.
TEST(DurableStateTest, UndecodableWalRecordFailsTyped) {
  ScratchDir dir("durable_skew");
  {
    Wal wal;
    WalOpenResult result;
    ASSERT_TRUE(wal.Open(dir.file("wal.log"), WalOptions(), &result).ok());
    ASSERT_TRUE(wal.Append("\x09not a durable record").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  auto opened = DurableState::Open(dir.path(), DurableState::Options());
  EXPECT_FALSE(opened.ok());
}

TEST(DurableStateTest, CorruptSnapshotFailsTyped) {
  ScratchDir dir("durable_badsnap");
  WriteFile(dir.file("snapshot.bin"), "USTLSNP1 but then nonsense");
  auto opened = DurableState::Open(dir.path(), DurableState::Options());
  EXPECT_FALSE(opened.ok());
}

}  // namespace
}  // namespace ustl

// Tests for dsl/parser: serialize/parse round trips (including hostile
// literals), compatibility with the ToString surface form, and error
// reporting. The fuzz case generates random programs and checks the
// round trip is the identity.
#include <gtest/gtest.h>

#include <random>

#include "dsl/parser.h"
#include "dsl/program.h"

namespace ustl {
namespace {

Program PaperProgram() {
  // rho = f2 (+) f3 (+) f1 from Figure 3.
  Term tc = Term::Regex(CharClass::kUpper);
  Term tl = Term::Regex(CharClass::kLower);
  Term tb = Term::Regex(CharClass::kSpace);
  return Program({
      StringFn::SubStr(PosFn::MatchPos(tb, 1, Dir::kEnd),
                       PosFn::MatchPos(tc, -1, Dir::kEnd)),
      StringFn::ConstantStr(". "),
      StringFn::SubStr(PosFn::MatchPos(tc, 1, Dir::kBegin),
                       PosFn::MatchPos(tl, 1, Dir::kEnd)),
  });
}

void ExpectRoundTrip(const Program& program) {
  std::string text = SerializeProgram(program);
  Result<Program> parsed = ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  EXPECT_EQ(parsed->functions(), program.functions()) << text;
}

TEST(ParserTest, PaperProgramRoundTrips) {
  Program program = PaperProgram();
  ExpectRoundTrip(program);
  // And the parsed program still transforms the running example.
  Program parsed = std::move(ParseProgram(SerializeProgram(program))).value();
  EXPECT_TRUE(parsed.ConsistentWith("Lee, Mary", "M. Lee"));
}

TEST(ParserTest, SerializeMatchesToStringForTameLiterals) {
  Program program = PaperProgram();
  EXPECT_EQ(SerializeProgram(program), program.ToString());
  // ToString output parses.
  EXPECT_TRUE(ParseProgram(program.ToString()).ok());
}

TEST(ParserTest, HostileConstantsRoundTrip) {
  for (const std::string& constant :
       {std::string("quote\" and \\ backslash"), std::string("new\nline"),
        std::string("tab\tand\rcr"), std::string("\x01\x02\x7f"),
        std::string("(+) , ) ("), std::string("ConstantStr(\"x\")"),
        std::string(" ")}) {
    ExpectRoundTrip(Program({StringFn::ConstantStr(constant)}));
  }
}

TEST(ParserTest, ConstantTermsRoundTrip) {
  ExpectRoundTrip(Program({StringFn::SubStr(
      PosFn::MatchPos(Term::Constant("Mr. \"X\""), 2, Dir::kBegin),
      PosFn::ConstPos(-1))}));
}

TEST(ParserTest, AffixFunctionsRoundTrip) {
  ExpectRoundTrip(Program({
      StringFn::Prefix(Term::Regex(CharClass::kLower), 1),
      StringFn::Suffix(Term::Regex(CharClass::kDigit), -2),
  }));
}

TEST(ParserTest, WhitespaceInsensitive) {
  Result<Program> parsed = ParseProgram(
      "  ConstantStr( \"a\" )   (+)\n\tSubStr(ConstPos( 1 ),ConstPos(2))  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
}

struct ErrorCase {
  const char* text;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, Rejects) {
  Result<Program> parsed = ParseProgram(GetParam().text);
  EXPECT_FALSE(parsed.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"", "empty input"},
        ErrorCase{"Bogus(\"x\")", "unknown function"},
        ErrorCase{"ConstantStr(\"x\"", "missing close paren"},
        ErrorCase{"ConstantStr(\"x) ", "unterminated literal"},
        ErrorCase{"ConstantStr(\"\")", "empty constant"},
        ErrorCase{"ConstantStr(\"x\\q\")", "unknown escape"},
        ErrorCase{"ConstantStr(\"x\\x9\")", "truncated hex escape"},
        ErrorCase{"ConstPos(1)", "position function is not a program"},
        ErrorCase{"SubStr(ConstPos(0), ConstPos(1))", "k = 0"},
        ErrorCase{"SubStr(ConstPos(1) ConstPos(2))", "missing comma"},
        ErrorCase{"Prefix(T\"x\", 1)", "affix needs a regex term"},
        ErrorCase{"Prefix(Tl, 0)", "affix k = 0"},
        ErrorCase{"SubStr(MatchPos(Tq, 1, B), ConstPos(1))", "bad term"},
        ErrorCase{"SubStr(MatchPos(Tl, 1, X), ConstPos(1))",
                  "bad direction"},
        ErrorCase{"ConstantStr(\"a\") ConstantStr(\"b\")",
                  "missing (+) separator"},
        ErrorCase{"ConstantStr(\"a\") (+)", "dangling separator"}));

// Random program fuzzing: build arbitrary valid programs out of the whole
// function space and require the round trip to be the identity.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomProgramsRoundTrip) {
  std::mt19937_64 rng(GetParam());
  auto random_string = [&]() {
    static const char alphabet[] =
        "abcXYZ019 \t\n\"\\().,+-_\x01\x7f";
    std::string s;
    const size_t len = 1 + rng() % 8;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    return s;
  };
  auto random_term = [&](bool regex_only) {
    if (!regex_only && rng() % 3 == 0) return Term::Constant(random_string());
    static const CharClass classes[] = {CharClass::kDigit, CharClass::kLower,
                                        CharClass::kUpper, CharClass::kSpace};
    return Term::Regex(classes[rng() % 4]);
  };
  auto random_k = [&]() {
    int k = 1 + static_cast<int>(rng() % 5);
    return rng() % 2 == 0 ? k : -k;
  };
  auto random_pos = [&]() {
    if (rng() % 2 == 0) return PosFn::ConstPos(random_k());
    return PosFn::MatchPos(random_term(false), random_k(),
                           rng() % 2 == 0 ? Dir::kBegin : Dir::kEnd);
  };
  auto random_fn = [&]() {
    switch (rng() % 4) {
      case 0: return StringFn::ConstantStr(random_string());
      case 1: return StringFn::SubStr(random_pos(), random_pos());
      case 2: return StringFn::Prefix(random_term(true), random_k());
      default: return StringFn::Suffix(random_term(true), random_k());
    }
  };
  for (int round = 0; round < 100; ++round) {
    std::vector<StringFn> fns;
    const size_t len = 1 + rng() % 5;
    for (size_t i = 0; i < len; ++i) fns.push_back(random_fn());
    ExpectRoundTrip(Program(std::move(fns)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace ustl

// Integration tests: the full Algorithm-1 pipeline on small instances of
// all three generated datasets, the affix ablation (Appendix F), and the
// oracle-error robustness claim of Section 3.
#include <gtest/gtest.h>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "datagen/generators.h"
#include "eval/metrics.h"
#include "wrangler/scripts.h"

namespace ustl {
namespace {

struct PipelineOutcome {
  double precision = 0.0;
  double recall = 0.0;
  double mcc = 0.0;
  size_t groups_approved = 0;
};

PipelineOutcome RunPipeline(const GeneratedDataset& data, size_t budget,
                            bool affix = true, double oracle_error = 0.0) {
  auto samples = SampleLabeledPairs(
      data.column,
      [&](size_t c, size_t a, size_t b) {
        return data.IsVariantCellPair(c, a, b);
      },
      1000, 7);
  SimulatedOracle::Options oracle_options;
  oracle_options.error_rate = oracle_error;
  SimulatedOracle oracle(
      [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, oracle_options);
  FrameworkOptions options;
  options.budget_per_column = budget;
  options.grouping.graph.enable_affix = affix;
  Column column = data.column;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  Confusion confusion = EvaluateIdentity(column, samples);
  return PipelineOutcome{Precision(confusion), Recall(confusion),
                         Mcc(confusion), result.groups_approved};
}

TEST(IntegrationTest, AddressPipelineIsPreciseAndRecalls) {
  AddressGenOptions options;
  options.scale = 0.12;
  PipelineOutcome outcome = RunPipeline(GenerateAddressDataset(options), 60);
  EXPECT_GE(outcome.precision, 0.97);
  EXPECT_GE(outcome.recall, 0.25);
  EXPECT_GT(outcome.mcc, 0.3);
  EXPECT_GT(outcome.groups_approved, 0u);
}

TEST(IntegrationTest, AuthorListPipeline) {
  AuthorListGenOptions options;
  options.scale = 0.25;
  PipelineOutcome outcome =
      RunPipeline(GenerateAuthorListDataset(options), 60);
  EXPECT_GE(outcome.precision, 0.97);
  EXPECT_GE(outcome.recall, 0.2);
}

TEST(IntegrationTest, JournalTitlePipeline) {
  JournalTitleGenOptions options;
  options.scale = 0.15;
  PipelineOutcome outcome =
      RunPipeline(GenerateJournalTitleDataset(options), 60);
  EXPECT_GE(outcome.precision, 0.97);
  EXPECT_GE(outcome.recall, 0.2);
}

TEST(IntegrationTest, AffixImprovesRecall) {
  // Appendix F / Figure 10: without Prefix/Suffix the Street->St family
  // cannot be grouped, so recall drops (or at best ties).
  AddressGenOptions options;
  options.scale = 0.12;
  GeneratedDataset data = GenerateAddressDataset(options);
  PipelineOutcome with_affix = RunPipeline(data, 60, /*affix=*/true);
  PipelineOutcome without_affix = RunPipeline(data, 60, /*affix=*/false);
  EXPECT_GE(with_affix.recall, without_affix.recall);
}

TEST(IntegrationTest, RobustToOracleErrors) {
  // Section 3: "our method is robust to small numbers of errors". A 5%
  // verdict flip rate must not collapse the metrics.
  AddressGenOptions options;
  options.scale = 0.12;
  GeneratedDataset data = GenerateAddressDataset(options);
  PipelineOutcome clean = RunPipeline(data, 60, true, 0.0);
  PipelineOutcome noisy = RunPipeline(data, 60, true, 0.05);
  EXPECT_GE(noisy.recall, clean.recall * 0.5);
  EXPECT_GE(noisy.precision, 0.85);
}

TEST(IntegrationTest, GroupBeatsWranglerOnRecall) {
  // The headline comparison (Figures 6-8): with a reasonable budget the
  // grouped pipeline reaches at least the wrangler's recall.
  AddressGenOptions options;
  options.scale = 0.12;
  GeneratedDataset data = GenerateAddressDataset(options);
  auto samples = SampleLabeledPairs(
      data.column,
      [&](size_t c, size_t a, size_t b) {
        return data.IsVariantCellPair(c, a, b);
      },
      1000, 7);

  Column wrangled = data.column;
  AddressWranglerScript().ApplyToColumn(&wrangled);
  Confusion wrangler = EvaluateIdentity(wrangled, samples);

  PipelineOutcome group = RunPipeline(data, 100);
  EXPECT_GE(group.recall, Recall(wrangler) * 0.9);
  EXPECT_GE(group.precision, 0.97);
}

TEST(IntegrationTest, TruthDiscoveryImprovesAfterStandardization) {
  // Table 8's mechanism: majority consensus resolves more clusters
  // correctly once variants are consolidated. Measured by supporter truth
  // ids (see DESIGN.md).
  AddressGenOptions options;
  options.scale = 0.12;
  GeneratedDataset data = GenerateAddressDataset(options);

  auto mc_correct = [&](const Column& column) {
    size_t correct = 0, produced = 0;
    for (size_t c = 0; c < column.size(); ++c) {
      auto golden = MajorityValue(column[c]);
      if (!golden.has_value()) continue;
      ++produced;
      // Majority truth id among supporters of the winning string.
      std::map<int, int> votes;
      for (size_t r = 0; r < column[c].size(); ++r) {
        if (column[c][r] == *golden) ++votes[data.cell_truth[c][r]];
      }
      int best_id = -1, best_votes = -1;
      for (auto [id, count] : votes) {
        if (count > best_votes) {
          best_votes = count;
          best_id = id;
        }
      }
      correct += best_id == data.cluster_true_id[c];
    }
    return produced == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(produced);
  };

  double before = mc_correct(data.column);

  SimulatedOracle oracle(
      [&](const StringPair& pair) { return data.IsTrueVariantPair(pair); },
      data.direction_judge, SimulatedOracle::Options{});
  FrameworkOptions fw;
  fw.budget_per_column = 80;
  Column column = data.column;
  StandardizeColumn(&column, &oracle, fw);
  double after = mc_correct(column);

  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace ustl

// Cross-module invariants checked against independent reference
// implementations ("differential" style): DSL position semantics vs a
// hand-rolled Appendix-B evaluator, CanProduce vs materialized Eval,
// per-edge label soundness of the transformation graph, incremental
// upper-bound soundness, structure invariance of groups, and framework
// edge cases (empty/degenerate inputs, multi-column tables, budget 0).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "consolidate/framework.h"
#include "consolidate/oracle.h"
#include "graph/graph_builder.h"
#include "grouping/grouping.h"
#include "text/structure.h"

namespace ustl {
namespace {

// --- Reference semantics for position functions (Appendix B). ----------

// Independent run scanner (not FindMatches): collects maximal runs of the
// wanted class by a single pass.
std::vector<std::pair<int, int>> ReferenceRuns(std::string_view s,
                                               CharClass want) {
  std::vector<std::pair<int, int>> runs;
  size_t i = 0;
  while (i < s.size()) {
    if (ClassOf(s[i]) != want) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < s.size() && ClassOf(s[j]) == want) ++j;
    runs.emplace_back(static_cast<int>(i) + 1, static_cast<int>(j) + 1);
    i = j;
  }
  return runs;
}

std::optional<int> ReferenceEval(const PosFn& pos, std::string_view s) {
  const int n = static_cast<int>(s.size());
  if (pos.is_const_pos()) {
    const int k = pos.k();
    if (k > 0) return k <= n + 1 ? std::optional<int>(k) : std::nullopt;
    if (k >= -(n + 1)) return n + 2 + k;
    return std::nullopt;
  }
  std::vector<std::pair<int, int>> runs;
  if (pos.term().is_regex()) {
    runs = ReferenceRuns(s, pos.term().char_class());
  } else {
    // Non-overlapping leftmost occurrences of the literal.
    const std::string& lit = pos.term().literal();
    size_t from = 0;
    while (true) {
      size_t at = s.find(lit, from);
      if (at == std::string_view::npos) break;
      runs.emplace_back(static_cast<int>(at) + 1,
                        static_cast<int>(at + lit.size()) + 1);
      from = at + lit.size();
    }
  }
  const int m = static_cast<int>(runs.size());
  int k = pos.k();
  if (k < 0) k = m + 1 + k;
  if (k < 1 || k > m) return std::nullopt;
  return pos.dir() == Dir::kBegin ? runs[k - 1].first : runs[k - 1].second;
}

class PosFnDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PosFnDifferentialTest, EvalMatchesReferenceSemantics) {
  std::mt19937_64 rng(GetParam());
  static const char alphabet[] = "aB9 ,.xY0-";
  auto random_string = [&]() {
    std::string s;
    const size_t len = rng() % 12;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    return s;
  };
  static const CharClass classes[] = {CharClass::kDigit, CharClass::kLower,
                                      CharClass::kUpper, CharClass::kSpace};
  for (int round = 0; round < 300; ++round) {
    const std::string s = random_string();
    int k = 1 + static_cast<int>(rng() % (s.size() + 3));
    if (rng() % 2 == 0) k = -k;
    PosFn pos = PosFn::ConstPos(k);
    if (rng() % 2 == 0) {
      Term term = rng() % 4 == 0 && !s.empty()
                      ? Term::Constant(s.substr(rng() % s.size(),
                                                1 + rng() % 3))
                      : Term::Regex(classes[rng() % 4]);
      pos = PosFn::MatchPos(term, k, rng() % 2 == 0 ? Dir::kBegin
                                                    : Dir::kEnd);
    }
    EXPECT_EQ(pos.Eval(s), ReferenceEval(pos, s))
        << pos.ToString() << " on \"" << s << "\"";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PosFnDifferentialTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// --- CanProduce vs materialized Eval. -----------------------------------

class CanProduceDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanProduceDifferentialTest, AgreesWithEvalMembership) {
  std::mt19937_64 rng(GetParam());
  static const char alphabet[] = "ab A9.";
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = rng() % (max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng() % (sizeof(alphabet) - 1)]);
    }
    return s;
  };
  static const CharClass classes[] = {CharClass::kDigit, CharClass::kLower,
                                      CharClass::kUpper, CharClass::kSpace};
  for (int round = 0; round < 200; ++round) {
    const std::string s = random_string(10);
    std::string constant = random_string(4);
    if (constant.empty()) constant = "k";
    StringFn fn = StringFn::ConstantStr(std::move(constant));
    switch (rng() % 4) {
      case 0:
        break;  // constant
      case 1:
        fn = StringFn::SubStr(
            PosFn::ConstPos(1 + static_cast<int>(rng() % 5)),
            PosFn::ConstPos(-1 - static_cast<int>(rng() % 5)));
        break;
      case 2:
        fn = StringFn::Prefix(Term::Regex(classes[rng() % 4]),
                              1 + static_cast<int>(rng() % 2));
        break;
      default:
        fn = StringFn::Suffix(Term::Regex(classes[rng() % 4]),
                              -1 - static_cast<int>(rng() % 2));
    }
    std::vector<std::string> outputs = fn.Eval(s);
    std::set<std::string> output_set(outputs.begin(), outputs.end());
    // Every claimed output is produced, and a handful of probes agree.
    for (const std::string& out : outputs) {
      EXPECT_TRUE(fn.CanProduce(s, out))
          << fn.ToString() << " on \"" << s << "\" output \"" << out << "\"";
    }
    for (int probe = 0; probe < 5; ++probe) {
      const std::string candidate = random_string(4);
      EXPECT_EQ(fn.CanProduce(s, candidate),
                output_set.count(candidate) > 0)
          << fn.ToString() << " on \"" << s << "\" probe \"" << candidate
          << "\"";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanProduceDifferentialTest,
                         ::testing::Values(7u, 17u, 27u));

// --- Per-edge label soundness of the transformation graph. --------------

class GraphLabelSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphLabelSoundnessTest, EveryEdgeLabelProducesItsSubstring) {
  std::mt19937_64 rng(GetParam());
  static const char* samples[] = {
      "Lee, Mary", "M. Lee", "9th St, 02141 WI", "9 Street",
      "Avenue",    "Ave",    "fox, dan",        "dan fox",
  };
  for (int round = 0; round < 20; ++round) {
    const std::string s = samples[rng() % 8];
    const std::string t = samples[rng() % 8];
    if (s == t) continue;
    LabelInterner interner;
    GraphBuilder builder(GraphBuilderOptions{}, &interner);
    Result<TransformationGraph> graph = builder.Build(s, t);
    ASSERT_TRUE(graph.ok());
    for (int from = 1; from <= graph->num_nodes(); ++from) {
      for (const GraphEdge& edge : graph->edges_from(from)) {
        const std::string piece = t.substr(from - 1, edge.to - from);
        for (LabelId label : edge.labels) {
          EXPECT_TRUE(interner.Get(label).CanProduce(s, piece))
              << interner.Get(label).ToString() << " on \"" << s
              << "\" must produce \"" << piece << "\"";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphLabelSoundnessTest,
                         ::testing::Values(1u, 2u, 3u));

// --- Incremental upper bounds stay sound step by step. -------------------

TEST(IncrementalBoundsTest, GroupSizesBoundedAndNonIncreasing) {
  std::vector<StringPair> pairs = {
      {"9th", "9"},   {"3rd", "3"},     {"22nd", "22"}, {"101st", "101"},
      {"47th", "47"}, {"Street", "St"}, {"Avenue", "Ave"},
      {"Lee, Mary", "M. Lee"},          {"Smith, James", "J. Smith"},
  };
  GroupingEngine engine(pairs, GroupingOptions{});
  size_t previous = pairs.size();
  while (true) {
    const size_t remaining_before = engine.RemainingCount();
    auto group = engine.Next();
    if (!group.has_value()) break;
    // No group can exceed what was left, and sizes never increase
    // (Theorem 6.4's "largest first").
    EXPECT_LE(group->size(), remaining_before);
    EXPECT_LE(group->size(), previous);
    EXPECT_EQ(engine.RemainingCount(), remaining_before - group->size());
    previous = group->size();
  }
  EXPECT_EQ(engine.RemainingCount(), 0u);
}

// --- Groups never mix structures. ----------------------------------------

TEST(StructureInvarianceTest, AllGroupMembersShareTheStructureKey) {
  std::vector<StringPair> pairs = {
      {"9th", "9"},    {"3rd", "3"},    {"Street", "St"},
      {"Avenue", "Ave"}, {"Lee, Mary", "M. Lee"},
      {"Smith, James", "J. Smith"},     {"Wisconsin", "WI"},
  };
  GroupingEngine engine(pairs, GroupingOptions{});
  while (auto group = engine.Next()) {
    std::set<std::string> structures;
    for (size_t i : group->member_pair_indices) {
      structures.insert(
          ReplacementStructure(pairs[i].lhs, pairs[i].rhs));
    }
    EXPECT_EQ(structures.size(), 1u) << group->program;
    EXPECT_EQ(*structures.begin(), group->structure);
  }
}

// --- Framework edge cases. ------------------------------------------------

TEST(FrameworkEdgeTest, EmptyColumnIsANoOp) {
  Column column;
  ApproveAllOracle oracle;
  ColumnRunResult result =
      StandardizeColumn(&column, &oracle, FrameworkOptions{});
  EXPECT_EQ(result.groups_presented, 0u);
  EXPECT_EQ(result.edits, 0u);
}

TEST(FrameworkEdgeTest, SingletonClustersProduceNoCandidates) {
  Column column = {{"a"}, {"b"}, {"c"}};
  ApproveAllOracle oracle;
  ColumnRunResult result =
      StandardizeColumn(&column, &oracle, FrameworkOptions{});
  EXPECT_EQ(result.groups_presented, 0u);
  EXPECT_EQ(column, (Column{{"a"}, {"b"}, {"c"}}));
}

TEST(FrameworkEdgeTest, IdenticalValuesProduceNoCandidates) {
  Column column = {{"same", "same", "same"}};
  ApproveAllOracle oracle;
  ColumnRunResult result =
      StandardizeColumn(&column, &oracle, FrameworkOptions{});
  EXPECT_EQ(result.groups_presented, 0u);
}

TEST(FrameworkEdgeTest, ZeroBudgetPresentsNothing) {
  Column column = {{"9th", "9"}, {"3rd", "3"}};
  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 0;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_EQ(result.groups_presented, 0u);
  EXPECT_EQ(column, (Column{{"9th", "9"}, {"3rd", "3"}}));
}

TEST(FrameworkEdgeTest, ByteHeavyValuesSurvive) {
  // Non-ASCII bytes and control characters must not break candidate
  // generation, structure keys, graph building, or application.
  Column column = {
      {"caf\xc3\xa9 9th", "caf\xc3\xa9 9"},
      {"x\x01y 3rd", "x\x01y 3"},
  };
  ApproveAllOracle oracle;
  FrameworkOptions options;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  EXPECT_GT(result.edits, 0u);
  EXPECT_EQ(column[0][0], column[0][1]);
}

TEST(FrameworkEdgeTest, MultiColumnTableStandardizesEachColumn) {
  Table table({"ordinal", "suffix"});
  size_t c0 = table.AddCluster();
  table.AddRecord(c0, {"9th", "Street"});
  table.AddRecord(c0, {"9", "St"});
  size_t c1 = table.AddCluster();
  table.AddRecord(c1, {"3rd", "Avenue"});
  table.AddRecord(c1, {"3", "Ave"});

  ApproveAllOracle oracle;
  FrameworkOptions options;
  options.budget_per_column = 10;
  GoldenRecordRun run = GoldenRecordCreation(&table, &oracle, options);
  ASSERT_EQ(run.per_column.size(), 2u);
  EXPECT_GT(run.per_column[0].edits, 0u);
  EXPECT_GT(run.per_column[1].edits, 0u);
  // Within each cluster both columns converged, so MC resolves both.
  ASSERT_EQ(run.golden_records.size(), 2u);
  for (const GoldenRecord& record : run.golden_records) {
    EXPECT_TRUE(record[0].has_value());
    EXPECT_TRUE(record[1].has_value());
  }
}

TEST(FrameworkEdgeTest, LongValuesAreSkippedNotCrashed) {
  const std::string huge(10000, 'x');
  Column column = {{huge, huge + "y"}, {"9th", "9"}};
  ApproveAllOracle oracle;
  FrameworkOptions options;
  ColumnRunResult result = StandardizeColumn(&column, &oracle, options);
  // The huge cluster is skipped by max_value_len; the small one works.
  EXPECT_EQ(column[1][0], column[1][1]);
  EXPECT_EQ(column[0][0], huge);
}

}  // namespace
}  // namespace ustl

// CSV reading and writing (RFC 4180 dialect: comma-separated, double-quote
// quoting with doubled embedded quotes, CR/LF tolerant, newlines allowed
// inside quoted fields). This is the ingestion substrate for the CLI tool:
// entity-resolution output usually arrives as a CSV with a cluster-id
// column, and the standardized table goes back out the same way.
#ifndef USTL_IO_CSV_H_
#define USTL_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "consolidate/cluster.h"

namespace ustl {

using CsvRow = std::vector<std::string>;

/// Parses a whole CSV document. Rows may have differing field counts
/// (callers validate shape); an unterminated quoted field is an error.
/// A trailing newline does not produce an empty row.
Result<std::vector<CsvRow>> ParseCsv(std::string_view content);

/// Quotes a single field if it contains a comma, quote, CR or LF.
std::string CsvEscapeField(std::string_view field);

/// Renders one row (no trailing newline).
std::string WriteCsvRow(const CsvRow& row);

/// Renders a whole document with '\n' line endings.
std::string WriteCsv(const std::vector<CsvRow>& rows);

/// Reads an entire file; NotFound/Internal on failure.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncates) a file.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// A clustered table round-tripped through CSV: the CSV must have a header
/// row; `cluster_column` names the column holding the cluster key (the
/// entity-resolution output). Records sharing a key form one cluster, in
/// first-appearance order; the key column itself is not part of the Table.
struct ClusteredCsv {
  Table table = Table({});
  /// The cluster key of each Table cluster, parallel to cluster indices.
  std::vector<std::string> cluster_keys;
  /// Name of the key column, preserved for writing back.
  std::string cluster_column;
};

/// Parses a clustered CSV document (header required).
Result<ClusteredCsv> ReadClusteredCsv(std::string_view content,
                                      const std::string& cluster_column);

/// Renders a clustered table back to CSV, cluster key first. A non-null
/// `pool` escapes and joins each cluster's rows on worker threads; chunks
/// are concatenated in cluster order, so the output is byte-identical for
/// any thread count.
std::string WriteClusteredCsv(const ClusteredCsv& clustered,
                              ThreadPool* pool = nullptr);

/// Renders golden records (one per cluster, truth-discovery output) as a
/// CSV with the cluster key first and undecided values empty — the format
/// the consolidation CLIs write with --golden. `golden` must be parallel
/// to the clustered table's cluster indices.
std::string WriteGoldenCsv(const ClusteredCsv& clustered,
                           const std::vector<GoldenRecord>& golden);

}  // namespace ustl

#endif  // USTL_IO_CSV_H_

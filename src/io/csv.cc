#include "io/csv.h"

#include <cstdio>
#include <map>

namespace ustl {

Result<std::vector<CsvRow>> ParseCsv(std::string_view content) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one (possibly empty) field
  size_t i = 0;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < content.size()) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "CSV parse error at byte " + std::to_string(i) +
              ": quote inside an unquoted field");
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        field_started = true;  // a field follows the comma, even if empty
        ++i;
        break;
      case '\r':
        // Swallow; the following '\n' (or the next char) ends the row.
        ++i;
        if (i >= content.size() || content[i] != '\n') {
          end_row();
        }
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field.push_back(c);
        field_started = true;
        ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV parse error: unterminated quote");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

std::string CsvEscapeField(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsvRow(const CsvRow& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += CsvEscapeField(row[i]);
  }
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    out += WriteCsvRow(row);
    out.push_back('\n');
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::Internal("read error on " + path);
  return content;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool failed = std::fclose(file) != 0 || written != content.size();
  if (failed) return Status::Internal("write error on " + path);
  return Status::OK();
}

Result<ClusteredCsv> ReadClusteredCsv(std::string_view content,
                                      const std::string& cluster_column) {
  Result<std::vector<CsvRow>> rows = ParseCsv(content);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) {
    return Status::InvalidArgument("clustered CSV needs a header row");
  }
  const CsvRow& header = (*rows)[0];
  size_t key_index = header.size();
  std::vector<std::string> column_names;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == cluster_column) {
      key_index = i;
    } else {
      column_names.push_back(header[i]);
    }
  }
  if (key_index == header.size()) {
    return Status::InvalidArgument("no column named '" + cluster_column +
                                   "' in the header");
  }

  ClusteredCsv out;
  out.table = Table(column_names);
  out.cluster_column = cluster_column;
  std::map<std::string, size_t> cluster_of_key;
  for (size_t r = 1; r < rows->size(); ++r) {
    const CsvRow& row = (*rows)[r];
    if (row.size() != header.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(r + 1) + " has " +
          std::to_string(row.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    const std::string& key = row[key_index];
    auto [it, inserted] = cluster_of_key.emplace(key, 0);
    if (inserted) {
      it->second = out.table.AddCluster();
      out.cluster_keys.push_back(key);
    }
    std::vector<std::string> values;
    values.reserve(row.size() - 1);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != key_index) values.push_back(row[i]);
    }
    out.table.AddRecord(it->second, std::move(values));
  }
  return out;
}

std::string WriteClusteredCsv(const ClusteredCsv& clustered,
                              ThreadPool* pool) {
  CsvRow header = {clustered.cluster_column};
  for (const std::string& name : clustered.table.column_names()) {
    header.push_back(name);
  }
  std::vector<std::string> chunks = ParallelMap<std::string>(
      pool, clustered.table.num_clusters(), [&](size_t c) {
        std::string chunk;
        for (const std::vector<std::string>& record :
             clustered.table.cluster(c)) {
          CsvRow row = {clustered.cluster_keys[c]};
          for (const std::string& value : record) row.push_back(value);
          chunk += WriteCsvRow(row);
          chunk.push_back('\n');
        }
        return chunk;
      });
  std::string out = WriteCsvRow(header);
  out.push_back('\n');
  for (const std::string& chunk : chunks) out += chunk;
  return out;
}

std::string WriteGoldenCsv(const ClusteredCsv& clustered,
                           const std::vector<GoldenRecord>& golden) {
  std::vector<CsvRow> rows;
  rows.reserve(golden.size() + 1);
  CsvRow header = {clustered.cluster_column};
  for (const std::string& name : clustered.table.column_names()) {
    header.push_back(name);
  }
  rows.push_back(std::move(header));
  for (size_t c = 0; c < golden.size(); ++c) {
    CsvRow row = {clustered.cluster_keys[c]};
    for (const auto& value : golden[c]) {
      row.push_back(value.value_or(""));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

}  // namespace ustl

// The one steady-clock seam. Every monotonic time read in the codebase —
// the bench Timer, the observability span clock, the service's
// service-relative timestamps — goes through these helpers so there is a
// single definition of "now" and of the duration conversions, instead of
// per-file chrono boilerplate. Wall-clock time deliberately has no helper
// here: nothing in the library may depend on it (determinism contract).
#ifndef USTL_COMMON_CLOCK_H_
#define USTL_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace ustl {

using SteadyClock = std::chrono::steady_clock;

inline SteadyClock::time_point SteadyNow() { return SteadyClock::now(); }

/// Microseconds from `from` to `to` (negative if `to` precedes `from`).
inline int64_t DurationMicros(SteadyClock::time_point from,
                              SteadyClock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// Microseconds elapsed since `from`.
inline int64_t MicrosSince(SteadyClock::time_point from) {
  return DurationMicros(from, SteadyNow());
}

inline double MicrosToSeconds(int64_t micros) {
  return static_cast<double>(micros) / 1e6;
}

}  // namespace ustl

#endif  // USTL_COMMON_CLOCK_H_

// The one steady-clock seam. Every monotonic time read in the codebase —
// the bench Timer, the observability span clock, the service's
// service-relative timestamps — goes through these helpers so there is a
// single definition of "now" and of the duration conversions, instead of
// per-file chrono boilerplate. Wall-clock time deliberately has no helper
// here: nothing in the library may depend on it (determinism contract).
#ifndef USTL_COMMON_CLOCK_H_
#define USTL_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

#if defined(__linux__)
#include <time.h>
#endif

namespace ustl {

using SteadyClock = std::chrono::steady_clock;

inline SteadyClock::time_point SteadyNow() { return SteadyClock::now(); }

/// Microseconds from `from` to `to` (negative if `to` precedes `from`).
inline int64_t DurationMicros(SteadyClock::time_point from,
                              SteadyClock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// Microseconds elapsed since `from`.
inline int64_t MicrosSince(SteadyClock::time_point from) {
  return DurationMicros(from, SteadyNow());
}

inline double MicrosToSeconds(int64_t micros) {
  return static_cast<double>(micros) / 1e6;
}

/// CPU time consumed by the *calling thread*, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID). Used by the observability layer to
/// attribute wall-vs-CPU divergence per span: a span whose cpu_us is far
/// below its wall interval sat in a queue or on I/O rather than running
/// hot. Deltas are only meaningful within one thread — ScopedSpan reads
/// it at open and close on the same thread and never ships the raw
/// value across threads. Returns 0 where the clock is unavailable, so
/// callers need no platform branches (cpu_us then reads as "unknown").
inline int64_t ThreadCpuMicros() {
#if defined(__linux__)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000;
#else
  return 0;
#endif
}

}  // namespace ustl

#endif  // USTL_COMMON_CLOCK_H_

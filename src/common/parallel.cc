#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <memory>

namespace ustl {

namespace {

// The pool the current thread works for, when it is a pool worker.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

int ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Shared control block of one ParallelFor call. Kept alive by shared_ptr:
// worker tasks may outlive the caller's wait loop by a few instructions.
struct ForState {
  size_t n = 0;
  size_t chunks = 0;
  std::atomic<size_t> next_chunk{0};
  const std::function<void(size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable all_done;
  size_t chunks_done = 0;

  // Failure of the lowest-indexed chunk, matching serial-first semantics.
  size_t failed_chunk = 0;
  std::exception_ptr error;

  // Drains chunks until the counter runs out. Returns when there is no
  // more work to claim; completed chunk counts are published under the
  // mutex so the caller can wait for stragglers.
  void Drain() {
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      std::exception_ptr eptr;
      const size_t begin = c * n / chunks;
      const size_t end = (c + 1) * n / chunks;
      try {
        for (size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        eptr = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (eptr != nullptr && (error == nullptr || c < failed_chunk)) {
        failed_chunk = c;
        error = eptr;
      }
      if (++chunks_done == chunks) all_done.notify_all();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  const bool serial =
      pool == nullptr || pool->num_threads() <= 1 || n < 2 ||
      pool->InWorkerThread();
  if (serial) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  // More chunks than threads smooths imbalance between indices (graph
  // sizes vary a lot); chunk boundaries depend only on n and this factor,
  // never on the thread count, so work partitioning is reproducible.
  const size_t max_chunks = static_cast<size_t>(pool->num_threads()) * 4;
  state->chunks = n < max_chunks ? n : max_chunks;
  state->fn = &fn;

  const int helpers = pool->num_threads() - 1;
  for (int i = 0; i < helpers; ++i) {
    pool->Submit([state] { state->Drain(); });
  }
  state->Drain();  // the calling thread is one of the num_threads lanes

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock,
                       [&] { return state->chunks_done == state->chunks; });
  if (state->error == nullptr) return;
  lock.unlock();
  // Helper closures may still hold their state reference for a few
  // instructions after publishing the last chunk (the pool destroys a
  // submitted task only after it returns). On the error path, wait them
  // out so this thread — the one about to rethrow and read the exception
  // — is also the one that releases its last reference: a worker freeing
  // the exception object while a handler here still reads it is exactly
  // the ordering libstdc++'s EH refcounting hides from TSan.
  while (state.use_count() > 1) std::this_thread::yield();
  std::rethrow_exception(state->error);
}

}  // namespace ustl

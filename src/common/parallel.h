// Deterministic data parallelism for the USTL pipeline. A fixed-size
// ThreadPool (no work stealing, no task dependencies) plus ParallelFor /
// ParallelMap helpers with chunked scheduling.
//
// Design constraint: every parallel construct here is *scheduling-only*
// parallelism. Which thread runs which index never influences results —
// each index writes its own output slot, and any cross-index merging is
// done by the caller in index order. That is what lets the grouping
// pipeline promise bit-identical output for num_threads ∈ {1, N}.
//
// Nested use: a ParallelFor issued from inside a pool worker runs inline
// on the calling thread (no new tasks are enqueued), so callees can
// themselves call ParallelFor without deadlocking a fixed-size pool.
#ifndef USTL_COMMON_PARALLEL_H_
#define USTL_COMMON_PARALLEL_H_

#include <cstddef>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ustl {

/// Resolves a user-facing thread-count knob: values <= 0 mean "hardware
/// concurrency", positive values are taken as-is.
int ResolveThreadCount(int num_threads);

/// A fixed-size pool of `num_threads - 1` worker threads (the caller of
/// ParallelFor is the remaining thread). num_threads == 1 spawns no
/// workers and makes every ParallelFor a plain serial loop.
///
/// The pool only runs fire-and-forget void() tasks; completion tracking
/// is the job of ParallelFor. Thread-safe.
class ThreadPool {
 public:
  /// `num_threads` is a resolved count (>= 1); pass through
  /// ResolveThreadCount first for user-facing knobs.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The resolved concurrency (workers + calling thread).
  int num_threads() const { return num_threads_; }

  /// Enqueues a task. Must not be called after destruction began.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers. Used to
  /// run nested ParallelFor calls inline.
  bool InWorkerThread() const;

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool shutdown_ = false;
};

/// Runs fn(i) for every i in [0, n), distributing deterministic contiguous
/// chunks over the pool's workers plus the calling thread. Returns after
/// every index completed. Runs serially (plain loop, no synchronization)
/// when `pool` is null, has one thread, n < 2, or the caller is already a
/// pool worker.
///
/// Exceptions thrown by fn are caught per index; the exception of the
/// lowest-indexed failing chunk is rethrown in the caller after all chunks
/// finished, matching what a serial loop would have surfaced first.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Maps [0, n) through fn into a vector, in parallel. Output order is
/// index order regardless of scheduling. T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool* pool, size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace ustl

#endif  // USTL_COMMON_PARALLEL_H_

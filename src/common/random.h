// Deterministic pseudo-random number generation for data generators,
// sampling and tests. All randomness in the library flows through Rng so
// that every experiment is reproducible from a single seed.
#ifndef USTL_COMMON_RANDOM_H_
#define USTL_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/status.h"

namespace ustl {

/// A seeded Mersenne-Twister wrapper with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    USTL_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric-ish cluster size draw in [1, max]: heavy mass at small
  /// sizes with a long tail, mimicking the skewed cluster sizes in Table 6.
  int64_t SkewedSize(double mean, int64_t max) {
    USTL_CHECK(mean > 1.0);
    std::geometric_distribution<int64_t> dist(1.0 / mean);
    int64_t v = 1 + dist(engine_);
    return v > max ? max : v;
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights) {
    USTL_CHECK(!weights.empty());
    std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    USTL_CHECK(!v.empty());
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ustl

#endif  // USTL_COMMON_RANDOM_H_

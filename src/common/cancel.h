// Cooperative cancellation and deadlines for the serving stack. A
// CancelState is owned by whoever controls a request's lifetime (the
// ConsolidationService owns one per admitted request); a CancelToken is a
// cheap nullable view threaded down through the pipeline, framework and
// grouping layers, which poll it at their loop heads. Cancellation is
// *cooperative*: nothing is interrupted mid-operation — work unwinds at
// the next checkpoint via a typed CancelledError, so shared caches only
// ever observe completed, content-pure entries and other in-flight
// requests never notice.
//
// Determinism: cancellation affects only *whether* a request finishes,
// never the bytes a finishing request produces. A deadline trips based on
// wall-clock time, so which checkpoint observes it is timing-dependent —
// but every checkpoint sits before a side effect is committed, and a
// request that trips anywhere unwinds without output.
#ifndef USTL_COMMON_CANCEL_H_
#define USTL_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ustl {

/// Terminal disposition of a served request.
enum class RequestStatus : uint8_t {
  kOk = 0,
  /// Cancel() was called before the request finished.
  kCancelled,
  /// The request's deadline passed before it finished.
  kDeadlineExceeded,
  /// The backend (oracle) failed the request; Wait() rethrows the cause.
  kError,
  /// The completed-but-unwaited handle was garbage-collected before
  /// Wait() arrived (ServiceOptions::max_retained_results).
  kReaped,
  /// The service had begun draining (Shutdown) when Submit arrived; the
  /// request was never admitted. In-flight requests are unaffected.
  kShuttingDown,
};

inline const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestStatus::kError:
      return "error";
    case RequestStatus::kReaped:
      return "reaped";
    case RequestStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

/// Thrown at a cancellation checkpoint to unwind a cancelled or expired
/// request. The serving layer catches it and turns it into a typed
/// RequestResult status; it never escapes to other requests.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(RequestStatus status)
      : std::runtime_error(std::string("request ") +
                           RequestStatusName(status)),
        status_(status) {}
  RequestStatus status() const { return status_; }

 private:
  RequestStatus status_;
};

/// Sticky cancellation flag plus optional deadline. Thread-safe: any
/// thread may Cancel(); any number of worker threads may Poll(). Once
/// tripped, the status never changes back (first cause wins), so every
/// checkpoint of a request reports the same status.
class CancelState {
 public:
  CancelState() = default;

  /// Arms a deadline `ms` milliseconds from now. 0 = no deadline.
  void SetDeadlineMs(int64_t ms) {
    if (ms <= 0) return;
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Trips the flag with kCancelled (or a caller-chosen status). The
  /// first trip wins; later calls are no-ops.
  void Cancel(RequestStatus status = RequestStatus::kCancelled) {
    uint8_t expected = static_cast<uint8_t>(RequestStatus::kOk);
    status_.compare_exchange_strong(expected, static_cast<uint8_t>(status),
                                    std::memory_order_acq_rel);
  }

  /// Current status; checks the deadline (and latches kDeadlineExceeded)
  /// on the way. kOk = keep working.
  RequestStatus Poll() {
    RequestStatus status =
        static_cast<RequestStatus>(status_.load(std::memory_order_acquire));
    if (status != RequestStatus::kOk) return status;
    if (has_deadline_.load(std::memory_order_acquire) &&
        Clock::now() >= deadline_) {
      Cancel(RequestStatus::kDeadlineExceeded);
      return static_cast<RequestStatus>(
          status_.load(std::memory_order_acquire));
    }
    return RequestStatus::kOk;
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::atomic<uint8_t> status_{static_cast<uint8_t>(RequestStatus::kOk)};
  std::atomic<bool> has_deadline_{false};
  /// Written once (before workers see the state) by SetDeadlineMs.
  Clock::time_point deadline_{};
};

/// Nullable view of a CancelState. Default-constructed tokens are inert
/// (Poll() always kOk, Check() never throws), so every layer can take one
/// unconditionally and batch entry points simply pass none.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(CancelState* state) : state_(state) {}

  bool cancellable() const { return state_ != nullptr; }

  RequestStatus Poll() const {
    return state_ == nullptr ? RequestStatus::kOk : state_->Poll();
  }

  /// Checkpoint: throws CancelledError when tripped. Call at loop heads
  /// *before* committing the iteration's side effects.
  void Check() const {
    RequestStatus status = Poll();
    if (status != RequestStatus::kOk) throw CancelledError(status);
  }

 private:
  CancelState* state_ = nullptr;
};

}  // namespace ustl

#endif  // USTL_COMMON_CANCEL_H_

// Lightweight Status / Result<T> error-handling primitives in the
// Arrow/RocksDB idiom. Library code never throws across the public API;
// fallible operations return Status or Result<T>.
#ifndef USTL_COMMON_STATUS_H_
#define USTL_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace ustl {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kUnimplemented = 7,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); carries a message on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error. Holds T on success, a non-OK Status on failure.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() called on error: " << status_ << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define USTL_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::ustl::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Aborts with a message when `cond` is false. Used for internal invariants
/// that indicate programmer error, never for user input.
#define USTL_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "USTL_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << "\n";                                    \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Debug-only USTL_CHECK: compiled out under NDEBUG (the default Release
/// config). Use it for invariant checks on hot paths — per-element bounds
/// checks and whole-container scans (is_sorted and friends) — whose cost
/// would otherwise ship in release builds. The condition is not evaluated
/// when compiled out, so it must be side-effect free.
#ifdef NDEBUG
#define USTL_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define USTL_DCHECK(cond) USTL_CHECK(cond)
#endif

}  // namespace ustl

#endif  // USTL_COMMON_STATUS_H_

#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace ustl {

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == sep) ++i;
    size_t j = i;
    while (j < s.size() && s[j] != sep) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    if (i + from.size() <= s.size() && s.substr(i, from.size()) == from) {
      out.append(to);
      i += from.size();
    } else {
      out.push_back(s[i]);
      ++i;
    }
  }
  return out;
}

std::string NormalizeWhitespace(std::string_view s) {
  std::string out;
  bool in_space = true;  // leading spaces are dropped
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string EscapeForDisplay(std::string_view s) {
  std::string out;
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc < 0x20 || uc == 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", uc);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace ustl

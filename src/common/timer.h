// Wall-clock timing for the benchmark harnesses (Figure 9 and the
// ablations). Monotonic clock, microsecond resolution; the clock itself
// is the shared steady-clock seam in common/clock.h, which the
// observability span clock (obs/trace.h) reads too — one definition of
// now() and of the duration conversions.
#ifndef USTL_COMMON_TIMER_H_
#define USTL_COMMON_TIMER_H_

#include <cstdint>

#include "common/clock.h"

namespace ustl {

/// Starts at construction; ElapsedSeconds()/ElapsedMicros() read the
/// monotonic clock without stopping the timer.
class Timer {
 public:
  Timer() : start_(SteadyNow()) {}

  void Reset() { start_ = SteadyNow(); }

  int64_t ElapsedMicros() const { return MicrosSince(start_); }

  double ElapsedSeconds() const { return MicrosToSeconds(ElapsedMicros()); }

 private:
  SteadyClock::time_point start_;
};

}  // namespace ustl

#endif  // USTL_COMMON_TIMER_H_

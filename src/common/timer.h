// Wall-clock timing for the benchmark harnesses (Figure 9 and the
// ablations). Monotonic clock, microsecond resolution.
#ifndef USTL_COMMON_TIMER_H_
#define USTL_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ustl {

/// Starts at construction; ElapsedSeconds()/ElapsedMicros() read the
/// monotonic clock without stopping the timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ustl

#endif  // USTL_COMMON_TIMER_H_

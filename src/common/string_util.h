// Small string helpers shared across modules. ASCII-only by design: the
// paper's DSL character classes (digits, lower, upper, whitespace) are ASCII
// classes, so the whole pipeline treats strings as byte sequences.
#ifndef USTL_COMMON_STRING_UTIL_H_
#define USTL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ustl {

/// Splits `s` on any run of the single character `sep`; empty pieces are
/// dropped. Split("a  b", ' ') == {"a", "b"}.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Splits `s` on each occurrence of `sep`, keeping empty pieces.
/// Split("a,,b", ',') == {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Collapses runs of whitespace to single spaces and trims the ends.
std::string NormalizeWhitespace(std::string_view s);

/// Escapes a string for display in reports: control chars become \xNN.
std::string EscapeForDisplay(std::string_view s);

}  // namespace ustl

#endif  // USTL_COMMON_STRING_UTIL_H_

#include "pipeline/pipeline.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/parallel.h"
#include "consolidate/truth_discovery.h"

namespace ustl {

ColumnScheduler::ColumnScheduler(PipelineOptions options)
    : options_(std::move(options)) {}

PipelineRun ColumnScheduler::Run(Table* table,
                                 VerificationOracle* backend) const {
  const size_t num_columns = table->num_columns();
  const int budget = ResolveThreadCount(options_.num_threads);
  const int scheduler_threads =
      options_.column_parallel && num_columns > 1
          ? static_cast<int>(std::min<size_t>(
                static_cast<size_t>(budget), num_columns))
          : 1;
  // Budget split with the remainder spread over the lowest column
  // indices: any scheduler_threads jobs running concurrently include at
  // most (budget % scheduler_threads) boosted ones, so the concurrent
  // grouping threads never exceed the budget — and none of it idles.
  const int per_column_base = std::max(1, budget / scheduler_threads);
  const size_t per_column_boosted =
      budget > scheduler_threads
          ? static_cast<size_t>(budget % scheduler_threads)
          : 0;

  OracleBroker broker(backend, options_.broker);

  // Serialize progress callbacks: column jobs fire them concurrently, but
  // the user-supplied callback only ever runs in one thread at a time.
  std::mutex progress_mutex;
  const bool wrap_progress =
      scheduler_threads > 1 && options_.framework.progress_callback != nullptr;

  std::vector<Column> columns(num_columns);
  std::vector<ColumnRunResult> results(num_columns);
  for (size_t col = 0; col < num_columns; ++col) {
    columns[col] = table->ExtractColumn(col);
  }

  auto job = [&](size_t col) {
    FrameworkOptions framework = options_.framework;
    framework.column_name = table->column_names()[col];
    framework.grouping.num_threads =
        per_column_base + (col < per_column_boosted ? 1 : 0);
    if (wrap_progress) {
      auto callback = options_.framework.progress_callback;
      framework.progress_callback = [&progress_mutex, callback](
                                        size_t presented,
                                        const Column& column) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        callback(presented, column);
      };
    }
    results[col] = StandardizeColumn(&columns[col], &broker, framework);
  };

  if (scheduler_threads > 1) {
    ThreadPool pool(scheduler_threads);
    ParallelFor(&pool, num_columns, job);
  } else {
    for (size_t col = 0; col < num_columns; ++col) job(col);
  }

  // Commit in column index order — the only table mutation point.
  for (size_t col = 0; col < num_columns; ++col) {
    table->StoreColumn(col, columns[col]);
  }

  PipelineRun run;
  run.per_column = std::move(results);
  run.golden_records = MajorityConsensus(*table);
  run.oracle_stats = broker.stats();
  run.approved_log = broker.ApprovedLog();
  return run;
}

PipelineRun RunConsolidationPipeline(Table* table,
                                     VerificationOracle* backend,
                                     const PipelineOptions& options) {
  return ColumnScheduler(options).Run(table, backend);
}

std::string FingerprintConsolidation(const Table& table,
                                     const std::vector<GoldenRecord>& golden) {
  // Length-free field/record separators are fine here: the fingerprint
  // only ever compares equal-shaped outputs of the same input table.
  std::string out;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    for (const auto& record : table.cluster(c)) {
      for (const std::string& value : record) {
        out += value;
        out += '\x1f';
      }
      out += '\x1e';
    }
    out += '\n';
  }
  for (const GoldenRecord& record : golden) {
    for (const auto& value : record) {
      out += value.value_or("<none>");
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

// Declared in consolidate/framework.h; defined here so the consolidate
// layer never includes pipeline headers (the dependency stays
// pipeline -> consolidate only).
GoldenRecordRun GoldenRecordCreation(Table* table, VerificationOracle* oracle,
                                     const FrameworkOptions& options) {
  // Serial, cache-off pipeline configuration: the backend sees exactly the
  // question sequence the historical per-column loop produced, for any
  // oracle — including stateful ones that predate the order-independence
  // contract.
  PipelineOptions pipeline;
  pipeline.framework = options;
  pipeline.column_parallel = false;
  pipeline.num_threads = options.grouping.num_threads;
  pipeline.broker.cache_verdicts = false;
  PipelineRun run = RunConsolidationPipeline(table, oracle, pipeline);
  GoldenRecordRun out;
  out.per_column = std::move(run.per_column);
  out.golden_records = std::move(run.golden_records);
  return out;
}

}  // namespace ustl

#include "pipeline/pipeline.h"

#include <algorithm>
#include <climits>

#include "serve/service.h"

namespace ustl {

ColumnScheduler::ColumnScheduler(PipelineOptions options)
    : options_(std::move(options)) {}

PipelineRun ColumnScheduler::Run(Table* table,
                                 VerificationOracle* backend) const {
  // One-shot delegation to the serving layer: a fresh service scoped to
  // this call (cold broker and search cache, per the historical per-Run
  // lifetime), one request, drained synchronously. The service reproduces
  // the scheduler's budgeting — max_concurrent_jobs = 1 is the serial
  // column loop with the whole budget handed to each engine; otherwise
  // jobs split the budget — and its commit/fingerprint discipline is the
  // one this layer pioneered, so output is unchanged byte for byte.
  ServiceOptions service_options;
  service_options.framework = options_.framework;
  service_options.num_threads = options_.num_threads;
  // Unlike the open-ended service, this facade knows the whole workload
  // is one table: capping concurrent jobs at the column count makes the
  // per-job split budget / min(budget, columns), so a wide budget over a
  // narrow table still reaches the grouping engines instead of idling.
  service_options.max_concurrent_jobs =
      options_.column_parallel
          ? static_cast<int>(std::min<size_t>(
                table->num_columns(), static_cast<size_t>(INT_MAX)))
          : 1;
  service_options.broker = options_.broker;
  service_options.share_search_cache = options_.warm_search_cache;
  ConsolidationService service(backend, service_options);
  RequestOptions request_options;
  request_options.trace_sink = options_.trace_sink;
  const uint64_t handle = service.Submit(table, std::move(request_options));
  RequestResult result = service.Wait(handle);

  PipelineRun run;
  run.per_column = std::move(result.per_column);
  run.golden_records = std::move(result.golden_records);
  run.oracle_stats = service.stats().oracle;
  run.approved_log = service.ApprovedLog();
  return run;
}

PipelineRun RunConsolidationPipeline(Table* table,
                                     VerificationOracle* backend,
                                     const PipelineOptions& options) {
  return ColumnScheduler(options).Run(table, backend);
}

std::string FingerprintConsolidation(const Table& table,
                                     const std::vector<GoldenRecord>& golden) {
  // Length-free field/record separators are fine here: the fingerprint
  // only ever compares equal-shaped outputs of the same input table.
  std::string out;
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    for (const auto& record : table.cluster(c)) {
      for (const std::string& value : record) {
        out += value;
        out += '\x1f';
      }
      out += '\x1e';
    }
    out += '\n';
  }
  for (const GoldenRecord& record : golden) {
    for (const auto& value : record) {
      out += value.value_or("<none>");
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

// Declared in consolidate/framework.h; defined here so the consolidate
// layer never includes pipeline headers (the dependency stays
// pipeline -> consolidate only).
GoldenRecordRun GoldenRecordCreation(Table* table, VerificationOracle* oracle,
                                     const FrameworkOptions& options) {
  // Serial, cache-off pipeline configuration: the backend sees exactly the
  // question sequence the historical per-column loop produced, for any
  // oracle — including stateful ones that predate the order-independence
  // contract. The cross-column search warm start stays off too: identical
  // output either way, but legacy callers comparing search statistics
  // should see the historical counts.
  PipelineOptions pipeline;
  pipeline.framework = options;
  pipeline.column_parallel = false;
  pipeline.num_threads = options.grouping.num_threads;
  pipeline.broker.cache_verdicts = false;
  pipeline.warm_search_cache = false;
  PipelineRun run = RunConsolidationPipeline(table, oracle, pipeline);
  GoldenRecordRun out;
  out.per_column = std::move(run.per_column);
  out.golden_records = std::move(run.golden_records);
  return out;
}

}  // namespace ustl

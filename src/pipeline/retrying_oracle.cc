#include "pipeline/retrying_oracle.h"

#include <chrono>
#include <thread>

#include "common/random.h"
#include "obs/trace.h"

namespace ustl {

namespace {

// Retry/backoff/breaker attribution on the asking request's trace.
// Observability only: emitted after the decision is already made, so the
// retry schedule and breaker state machine are identical traced or not.
void TraceRetryEvent(const QuestionContext& context, const char* name,
                     std::vector<std::pair<std::string, int64_t>> attrs) {
  if (context.trace == nullptr) return;
  context.trace->Event(context.trace_parent, name, std::string(),
                       std::move(attrs));
}

}  // namespace

Verdict RetryingOracle::VerifyWithContext(
    const std::vector<StringPair>& group_pairs,
    const QuestionContext& context) {
  const uint64_t hash = HashQuestion(group_pairs);

  bool probe = false;  // this call is the half-open probe
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (breaker_ == Breaker::kOpen) {
      ++open_calls_;
      if (open_calls_ >= options_.breaker_cooldown_calls) {
        breaker_ = Breaker::kHalfOpen;
        probe = true;
      } else {
        ++stats_.short_circuits;
        if (options_.serve_cached_while_open) {
          auto it = replay_.find(hash);
          if (it != replay_.end()) {
            ++stats_.replayed_verdicts;
            return it->second;
          }
        }
        throw BreakerOpenError();
      }
    } else if (breaker_ == Breaker::kHalfOpen) {
      // Another call already probes; fail fast like open (no replay
      // lookup is skipped — degraded service still replays).
      ++stats_.short_circuits;
      if (options_.serve_cached_while_open) {
        auto it = replay_.find(hash);
        if (it != replay_.end()) {
          ++stats_.replayed_verdicts;
          return it->second;
        }
      }
      throw BreakerOpenError();
    }
  }

  const int max_attempts = probe ? 1 : options_.max_attempts;
  std::exception_ptr last_error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    context.cancel.Check();
    if (attempt > 1) {
      // Deterministic exponential backoff: exponent from the attempt,
      // jitter a pure function of (seed, question, attempt).
      int64_t delay = options_.backoff_base_ms;
      for (int k = 2; k < attempt && delay < options_.backoff_cap_ms; ++k) {
        delay *= 2;
      }
      if (delay > options_.backoff_cap_ms) delay = options_.backoff_cap_ms;
      if (options_.backoff_base_ms > 0) {
        Rng jitter(options_.seed ^ hash ^
                   (static_cast<uint64_t>(attempt) * 0x9e3779b97f4a7c15ULL));
        delay += jitter.Uniform(0, options_.backoff_base_ms);
        if (delay > options_.backoff_cap_ms) delay = options_.backoff_cap_ms;
      }
      TraceRetryEvent(context, "oracle_backoff",
                      {{"attempt", attempt}, {"delay_ms", delay}});
      if (delay > 0) {
        if (options_.sleep_ms) {
          options_.sleep_ms(static_cast<int>(delay));
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
      }
      context.cancel.Check();
    }
    try {
      Verdict verdict = backend_->VerifyWithContext(group_pairs, context);
      bool closed_now = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (attempt > 1) ++stats_.recovered;
        consecutive_exhausted_ = 0;
        if (breaker_ != Breaker::kClosed) {
          breaker_ = Breaker::kClosed;
          open_calls_ = 0;
          closed_now = true;
        }
        replay_[hash] = verdict;
      }
      if (closed_now) {
        TraceRetryEvent(context, "breaker_state", {{"open", 0}});
        if (options_.on_breaker) {
          options_.on_breaker(context.request_id, /*open=*/false);
        }
      }
      return verdict;
    } catch (const CancelledError&) {
      throw;  // cancellation is not a backend failure; never retry it
    } catch (...) {
      last_error = std::current_exception();
      if (attempt < max_attempts) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.retries;
        }
        TraceRetryEvent(context, "oracle_retry", {{"attempt", attempt}});
        if (options_.on_retry) options_.on_retry(context.request_id, attempt);
      }
    }
  }

  // Every attempt failed: count it against the breaker, fail the asker.
  bool opened_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.exhausted;
    ++consecutive_exhausted_;
    if (probe) {
      // Failed probe: straight back to open for another cooldown.
      breaker_ = Breaker::kOpen;
      open_calls_ = 0;
    } else if (options_.breaker_failure_threshold > 0 &&
               breaker_ == Breaker::kClosed &&
               consecutive_exhausted_ >= options_.breaker_failure_threshold) {
      breaker_ = Breaker::kOpen;
      open_calls_ = 0;
      ++stats_.breaker_opens;
      opened_now = true;
    }
  }
  if (opened_now) {
    TraceRetryEvent(context, "breaker_state", {{"open", 1}});
    if (options_.on_breaker) {
      options_.on_breaker(context.request_id, /*open=*/true);
    }
  }
  std::rethrow_exception(last_error);
}

RetryingOracleStats RetryingOracle::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool RetryingOracle::breaker_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaker_ != Breaker::kClosed;
}

}  // namespace ustl

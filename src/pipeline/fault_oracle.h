// Deterministic fault injection for oracle backends. A FaultPlan is a
// seeded schedule of failures; FaultInjectingOracle wraps any backend and
// throws / stalls according to the plan. Like SimulatedOracle's error
// model, every fault decision is a pure function of (plan seed, question
// hash, attempt number) — never of wall-clock time or call order — so a
// failure observed once reproduces under any thread count, admission
// order or cache state, and a retry layer above sees exactly the same
// fault sequence run after run. That purity is what lets the fault-sweep
// CI legs byte-compare faulted-with-retries runs against clean ones.
#ifndef USTL_PIPELINE_FAULT_ORACLE_H_
#define USTL_PIPELINE_FAULT_ORACLE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "consolidate/oracle.h"

namespace ustl {

/// Thrown by FaultInjectingOracle for an injected failure.
class InjectedOracleError : public std::runtime_error {
 public:
  explicit InjectedOracleError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A seeded schedule of oracle failures.
struct FaultPlan {
  /// Fraction of distinct questions that fail (selected by question
  /// hash). 0 = no faults.
  double fault_rate = 0.0;
  /// How many consecutive attempts of a faulty question throw before it
  /// succeeds. A retry layer with max_attempts > failures_per_question
  /// recovers every verdict — the "eventually successful" plans the
  /// determinism contract covers.
  int failures_per_question = 1;
  /// When true, faulty questions fail on every attempt (failures_per_
  /// question is ignored) — the plan a circuit breaker is tested against.
  bool persistent = false;
  /// Fraction of distinct questions answered slowly (sleep of slow_ms
  /// before the backend call). Models a degraded-but-working oracle;
  /// exercises deadline trips without any throw.
  double slow_rate = 0.0;
  int slow_ms = 0;
  uint64_t seed = 0x0fau;

  bool active() const { return fault_rate > 0.0 || slow_rate > 0.0; }

  /// Compact "key=value,..." spec for CLI flags, e.g.
  /// "rate=0.3,fails=2,seed=7" or "rate=0.1,persistent=1,slow=0.2,
  /// slow_ms=5". Keys: rate, fails, persistent, slow, slow_ms, seed.
  std::string ToSpec() const;
  static Result<FaultPlan> FromSpec(std::string_view spec);
};

/// Wraps a backend with FaultPlan-scheduled failures. Thread-compatible
/// like every oracle (brokers serialize calls); the per-question attempt
/// counters are mutex-guarded anyway so tests may hit it directly from
/// several threads.
class FaultInjectingOracle : public VerificationOracle {
 public:
  FaultInjectingOracle(VerificationOracle* backend, FaultPlan plan)
      : backend_(backend), plan_(plan) {
    USTL_CHECK(backend_ != nullptr);
  }

  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    return VerifyWithContext(group_pairs, QuestionContext{});
  }
  Verdict VerifyWithContext(const std::vector<StringPair>& group_pairs,
                            const QuestionContext& context) override;

  /// Total injected throws so far.
  size_t faults_injected() const;
  /// Total injected slow calls so far.
  size_t slow_calls() const;

 private:
  VerificationOracle* backend_;
  FaultPlan plan_;
  mutable std::mutex mutex_;
  /// Attempts seen per faulty question hash (for failures_per_question).
  std::unordered_map<uint64_t, int> attempts_;
  size_t faults_injected_ = 0;
  size_t slow_calls_ = 0;
};

}  // namespace ustl

#endif  // USTL_PIPELINE_FAULT_ORACLE_H_

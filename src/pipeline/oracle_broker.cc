#include "pipeline/oracle_broker.h"

#include <algorithm>
#include <chrono>
#include <tuple>

#include "dsl/parser.h"
#include "obs/trace.h"

namespace ustl {

namespace {

// Cache-hit attribution on the asking request's trace (obs/trace.h).
// Pure observability: emitted after the verdict is already decided, so
// traced and untraced runs ask the backend the same questions.
void TraceCacheHit(const QuestionContext& context) {
  if (context.trace == nullptr) return;
  context.trace->Event(
      context.trace_parent, "oracle_cache_hit", std::string(context.column),
      {{"presented", static_cast<int64_t>(context.presented)}});
}

// Content key for the verdict cache: pivot program and the full pair
// list, each field length-prefixed so values with arbitrary bytes (quoted
// CSV fields) keep unambiguous boundaries, digested into the shared
// 128-bit dual-FNV SearchCacheKey in one batched pass. Two independent
// 64-bit streams make an accidental collision across distinct questions
// astronomically unlikely, and the cache never copies question bytes —
// a key is 16 bytes regardless of group size.
SearchCacheKey CacheKey(std::string_view program,
                        const std::vector<StringPair>& pairs) {
  SearchKeyHasher hasher;
  hasher.Str(program);
  hasher.Pairs(pairs);
  return hasher.Finish();
}

}  // namespace

OracleBroker::OracleBroker(VerificationOracle* backend)
    : OracleBroker(backend, Options()) {}

OracleBroker::OracleBroker(VerificationOracle* backend, Options options)
    : backend_(backend), options_(options) {
  USTL_CHECK(backend_ != nullptr);
}

Verdict OracleBroker::Verify(const std::vector<StringPair>& group_pairs) {
  return VerifyWithContext(group_pairs, QuestionContext{});
}

Verdict OracleBroker::VerifyWithContext(
    const std::vector<StringPair>& group_pairs,
    const QuestionContext& context) {
  Request request;
  if (options_.cache_verdicts) {
    request.key = CacheKey(context.program, group_pairs);
  }
  request.pairs = &group_pairs;
  // The context's string_views stay valid: the requesting thread blocks
  // until its request is served, keeping the viewed strings alive.
  request.context = context;

  std::unique_lock<std::mutex> lock(mutex_);
  // Pre-enqueue checkpoint: a cancelled request never joins the queue, so
  // it cannot occupy a combiner slot or stall behind a batch.
  context.cancel.Check();
  ++stats_.questions;
  if (options_.cache_verdicts) {
    if (const Verdict* verdict = CacheFind(request.key)) {
      ++stats_.cache_hits;
      TraceCacheHit(context);
      RecordVerdict(context, group_pairs, *verdict);
      return *verdict;
    }
  }
  queue_.push_back(&request);
  if (draining_) {
    // Another thread is combining; it will answer us (possibly from a
    // same-key twin it serves first). A cancelled waiter unwinds in
    // bounded time: while still queued it removes itself and throws; once
    // the combiner owns it (moved into a batch) it must wait out the
    // batch — the combiner skips the backend call for it.
    while (!request.done) {
      if (!context.cancel.cancellable()) {
        done_cv_.wait(lock, [&] { return request.done; });
        break;
      }
      done_cv_.wait_for(lock, std::chrono::milliseconds(10),
                        [&] { return request.done; });
      if (request.done) break;
      if (context.cancel.Poll() != RequestStatus::kOk) {
        auto it = std::find(queue_.begin(), queue_.end(), &request);
        if (it != queue_.end()) {
          queue_.erase(it);
          context.cancel.Check();  // throws; request is no longer reachable
        }
      }
    }
    if (request.error) std::rethrow_exception(request.error);
    return request.verdict;
  }

  // Become the combiner: drain everything that queues up — including
  // questions other columns enqueue while the backend is answering ours —
  // before handing the role back.
  draining_ = true;
  std::vector<Request*> batch;
  try {
    while (!queue_.empty()) {
      batch.clear();
      batch.swap(queue_);
      ++stats_.batches;
      stats_.max_batch = std::max(stats_.max_batch, batch.size());
      // One span per combined batch, attributed to the combiner's own
      // request (the batch may serve questions of several requests; each
      // backend call below gets its own span on the asking request).
      ScopedSpan batch_span(request.context.trace, request.context.trace_parent,
                            "oracle_batch");
      batch_span.AddAttr("size", static_cast<int64_t>(batch.size()));
      for (size_t next = 0; next < batch.size(); ++next) {
        Request* pending = batch[next];
        bool served = false;
        if (options_.cache_verdicts) {
          // A same-key twin may have been served first.
          if (const Verdict* verdict = CacheFind(pending->key)) {
            pending->verdict = *verdict;
            ++stats_.cache_hits;
            TraceCacheHit(pending->context);
            served = true;
          }
        }
        if (!served &&
            pending->context.cancel.Poll() != RequestStatus::kOk) {
          // The asking request was cancelled while queued: fail only it,
          // skip the backend call. No cache or log entry is written, so
          // nothing partial outlives the request.
          pending->error = std::make_exception_ptr(
              CancelledError(pending->context.cancel.Poll()));
          pending->done = true;
          done_cv_.notify_all();
          continue;
        }
        if (!served) {
          // Drop the lock while the backend thinks so that other columns
          // can keep enqueueing (that is what forms the next batch). The
          // backend itself is still only ever called from the combiner.
          // The call span lands on the ASKING request's trace even though
          // it runs on the combiner's thread — the asking thread is
          // blocked inside its still-open column span, so containment
          // holds; TraceContext is thread-safe by design.
          ScopedSpan call_span(pending->context.trace,
                               pending->context.trace_parent, "oracle_call",
                               std::string(pending->context.column));
          call_span.AddAttr(
              "presented", static_cast<int64_t>(pending->context.presented));
          lock.unlock();
          Verdict verdict;
          std::exception_ptr backend_error;
          try {
            verdict =
                backend_->VerifyWithContext(*pending->pairs, pending->context);
          } catch (...) {
            backend_error = std::current_exception();
          }
          lock.lock();
          call_span.End();
          if (backend_error != nullptr) {
            // A backend failure (retries exhausted, breaker open,
            // cancellation thrown mid-call) fails only the asking
            // request: no cache or log entry is written for it — the
            // verdict cache and approved log never hold partial state
            // from a failed question — and the combiner keeps draining,
            // so the other waiters and the service itself live on.
            pending->error = backend_error;
            pending->done = true;
            done_cv_.notify_all();
            continue;
          }
          ++stats_.backend_calls;
          if (options_.cache_verdicts) CacheInsert(pending->key, verdict);
          pending->verdict = verdict;
        }
        RecordVerdict(pending->context, *pending->pairs, pending->verdict);
        pending->done = true;
        // Wake waiters per answer, not per batch: a column whose question
        // was served first should not stall behind the batch tail.
        done_cv_.notify_all();
      }
    }
  } catch (...) {
    // Safety net for a non-backend failure while holding the drain role
    // (e.g. an allocation failure in CacheInsert): hand the exception to
    // every unserved request — currently waiting threads rethrow it, so
    // the failure surfaces instead of hanging them — and give the role
    // back.
    std::exception_ptr error = std::current_exception();
    for (Request* pending : batch) {
      if (pending->done) continue;
      pending->error = error;
      pending->done = true;
    }
    for (Request* pending : queue_) {
      pending->error = error;
      pending->done = true;
    }
    queue_.clear();
    draining_ = false;
    done_cv_.notify_all();
    throw;
  }
  draining_ = false;
  // The combiner's own request can be failed by its drain loop (a
  // deadline tripping between the entry checkpoint and the first batch).
  if (request.error) std::rethrow_exception(request.error);
  return request.verdict;
}

const Verdict* OracleBroker::CacheFind(const SearchCacheKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  // Refresh recency: splice moves the node without invalidating the
  // iterator stored in the entry.
  recency_.splice(recency_.begin(), recency_, it->second.recency);
  return &it->second.verdict;
}

void OracleBroker::CacheInsert(const SearchCacheKey& key,
                               const Verdict& verdict) {
  recency_.push_front(key);
  CacheEntry entry;
  entry.verdict = verdict;
  entry.recency = recency_.begin();
  cache_.emplace(key, std::move(entry));
  if (durability_ != nullptr) {
    durability_->OnVerdictCached(DurableVerdict{key, verdict});
  }
  if (options_.max_cache_entries == 0) return;
  while (cache_.size() > options_.max_cache_entries) {
    cache_.erase(recency_.back());
    recency_.pop_back();
    ++stats_.evictions;
  }
}

void OracleBroker::RecordVerdict(const QuestionContext& context,
                                 const std::vector<StringPair>& pairs,
                                 const Verdict& verdict) {
  if (!verdict.approved || context.program.empty()) return;
  LogKey key(std::string(context.column), std::string(context.program),
             verdict.direction);
  auto& ranks = log_[key];
  auto [it, inserted] = ranks.emplace(context.presented, pairs);
  bool updated = false;
  if (!inserted && pairs < it->second) {
    // Same-named columns can approve the same key at the same rank with
    // different member lists; a deterministic tie-break keeps the log
    // schedule-independent.
    it->second = pairs;
    updated = true;
  }
  if ((inserted || updated) && durability_ != nullptr) {
    // A tie-break update re-appends the record; restore applies the same
    // tie-break, so the duplicate converges to the same entry.
    DurableApproved record;
    record.column = std::get<0>(key);
    record.program = std::get<1>(key);
    record.direction = std::get<2>(key);
    record.rank = it->first;
    record.pairs = it->second;
    durability_->OnApprovedRecorded(record);
  }
}

void OracleBroker::SetDurabilityListener(OracleDurabilityListener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  durability_ = listener;
}

void OracleBroker::RestoreDurableState(const OracleDurableState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  OracleDurabilityListener* saved = durability_;
  durability_ = nullptr;  // restore never re-appends to its own log
  if (options_.cache_verdicts) {
    for (const DurableVerdict& verdict : state.verdicts) {
      // A duplicate key (a WAL not yet compacted after its snapshot
      // landed) restores once; the entry contents are identical by the
      // order-independence contract.
      if (cache_.find(verdict.key) != cache_.end()) continue;
      CacheInsert(verdict.key, verdict.verdict);
    }
  }
  for (const DurableApproved& approved : state.approved) {
    LogKey key(approved.column, approved.program, approved.direction);
    auto& ranks = log_[std::move(key)];
    auto [it, inserted] =
        ranks.emplace(static_cast<size_t>(approved.rank), approved.pairs);
    if (!inserted && approved.pairs < it->second) {
      it->second = approved.pairs;
    }
  }
  durability_ = saved;
}

OracleDurableState OracleBroker::ExportDurableState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  OracleDurableState state;
  state.verdicts.reserve(cache_.size());
  // Least-recently-used first: restore pushes each entry to the recency
  // front, so replaying this order rebuilds the exact LRU order.
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    auto found = cache_.find(*it);
    if (found == cache_.end()) continue;
    state.verdicts.push_back(DurableVerdict{*it, found->second.verdict});
  }
  for (const auto& [key, ranks] : log_) {
    for (const auto& [rank, pairs] : ranks) {
      DurableApproved record;
      record.column = std::get<0>(key);
      record.program = std::get<1>(key);
      record.direction = std::get<2>(key);
      record.rank = rank;
      record.pairs = pairs;
      state.approved.push_back(std::move(record));
    }
  }
  return state;
}

OracleBrokerStats OracleBroker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  OracleBrokerStats out = stats_;
  out.pending = queue_.size();
  return out;
}

std::vector<ApprovedTransformation> OracleBroker::ApprovedLog() const {
  struct Record {
    LogKey key;
    size_t rank;
    std::vector<StringPair> pairs;
  };
  std::vector<Record> records;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, ranks] : log_) {
      for (const auto& [rank, pairs] : ranks) {
        records.push_back(Record{key, rank, pairs});
      }
    }
  }
  // Per column, order entries by presentation rank: the session approved
  // big groups first, and a replay must re-apply them first to reproduce
  // the session's tie-breaks. Rank ties (possible only across same-named
  // columns) fall back to the key, so the log is deterministic either
  // way.
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              const std::string& a_column = std::get<0>(a.key);
              const std::string& b_column = std::get<0>(b.key);
              if (a_column != b_column) return a_column < b_column;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.key < b.key;
            });
  std::vector<ApprovedTransformation> out;
  out.reserve(records.size());
  for (Record& record : records) {
    Result<Program> program = ParseProgram(std::get<1>(record.key));
    if (!program.ok()) continue;  // display-only program; skip
    ApprovedTransformation transformation;
    transformation.column = std::get<0>(record.key);
    transformation.program = std::move(program).value();
    transformation.direction = std::get<2>(record.key);
    transformation.pairs = std::move(record.pairs);
    out.push_back(std::move(transformation));
  }
  return out;
}

std::string OracleBroker::SerializeApprovedLog() const {
  return SerializeTransformationLog(ApprovedLog());
}

}  // namespace ustl

#include "pipeline/oracle_broker.h"

#include <algorithm>
#include <tuple>

#include "dsl/parser.h"

namespace ustl {

namespace {

// Content key for the verdict cache: pivot program and the full pair
// list, each field length-prefixed so values with arbitrary bytes (quoted
// CSV fields) keep unambiguous boundaries, digested into the shared
// 128-bit dual-FNV SearchCacheKey in one batched pass. Two independent
// 64-bit streams make an accidental collision across distinct questions
// astronomically unlikely, and the cache never copies question bytes —
// a key is 16 bytes regardless of group size.
SearchCacheKey CacheKey(std::string_view program,
                        const std::vector<StringPair>& pairs) {
  SearchKeyHasher hasher;
  hasher.Str(program);
  hasher.Pairs(pairs);
  return hasher.Finish();
}

}  // namespace

OracleBroker::OracleBroker(VerificationOracle* backend)
    : OracleBroker(backend, Options()) {}

OracleBroker::OracleBroker(VerificationOracle* backend, Options options)
    : backend_(backend), options_(options) {
  USTL_CHECK(backend_ != nullptr);
}

Verdict OracleBroker::Verify(const std::vector<StringPair>& group_pairs) {
  return VerifyWithContext(group_pairs, QuestionContext{});
}

Verdict OracleBroker::VerifyWithContext(
    const std::vector<StringPair>& group_pairs,
    const QuestionContext& context) {
  Request request;
  if (options_.cache_verdicts) {
    request.key = CacheKey(context.program, group_pairs);
  }
  request.pairs = &group_pairs;
  // The context's string_views stay valid: the requesting thread blocks
  // until its request is served, keeping the viewed strings alive.
  request.context = context;

  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.questions;
  if (options_.cache_verdicts) {
    if (const Verdict* verdict = CacheFind(request.key)) {
      ++stats_.cache_hits;
      RecordVerdict(context, *verdict);
      return *verdict;
    }
  }
  queue_.push_back(&request);
  if (draining_) {
    // Another thread is combining; it will answer us (possibly from a
    // same-key twin it serves first).
    done_cv_.wait(lock, [&] { return request.done; });
    if (request.error) std::rethrow_exception(request.error);
    return request.verdict;
  }

  // Become the combiner: drain everything that queues up — including
  // questions other columns enqueue while the backend is answering ours —
  // before handing the role back.
  draining_ = true;
  std::vector<Request*> batch;
  try {
    while (!queue_.empty()) {
      batch.clear();
      batch.swap(queue_);
      ++stats_.batches;
      stats_.max_batch = std::max(stats_.max_batch, batch.size());
      for (size_t next = 0; next < batch.size(); ++next) {
        Request* pending = batch[next];
        bool served = false;
        if (options_.cache_verdicts) {
          // A same-key twin may have been served first.
          if (const Verdict* verdict = CacheFind(pending->key)) {
            pending->verdict = *verdict;
            ++stats_.cache_hits;
            served = true;
          }
        }
        if (!served) {
          // Drop the lock while the backend thinks so that other columns
          // can keep enqueueing (that is what forms the next batch). The
          // backend itself is still only ever called from the combiner.
          lock.unlock();
          Verdict verdict;
          try {
            verdict =
                backend_->VerifyWithContext(*pending->pairs, pending->context);
          } catch (...) {
            lock.lock();
            // Keep `pending` in the unserved set: erase the served prefix
            // so the catch below fails it along with the rest.
            batch.erase(batch.begin(),
                        batch.begin() + static_cast<ptrdiff_t>(next));
            throw;
          }
          lock.lock();
          ++stats_.backend_calls;
          if (options_.cache_verdicts) CacheInsert(pending->key, verdict);
          pending->verdict = verdict;
        }
        RecordVerdict(pending->context, pending->verdict);
        pending->done = true;
        // Wake waiters per answer, not per batch: a column whose question
        // was served first should not stall behind the batch tail.
        done_cv_.notify_all();
      }
    }
  } catch (...) {
    // Backend failure while holding the drain role (lock reacquired
    // above): hand the exception to every unserved request — currently
    // waiting threads rethrow it, so the failure surfaces in all blocked
    // column jobs instead of hanging them — and give the role back.
    std::exception_ptr error = std::current_exception();
    for (Request* pending : batch) {
      if (pending->done) continue;
      pending->error = error;
      pending->done = true;
    }
    for (Request* pending : queue_) {
      pending->error = error;
      pending->done = true;
    }
    queue_.clear();
    draining_ = false;
    done_cv_.notify_all();
    throw;
  }
  draining_ = false;
  return request.verdict;
}

const Verdict* OracleBroker::CacheFind(const SearchCacheKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  // Refresh recency: splice moves the node without invalidating the
  // iterator stored in the entry.
  recency_.splice(recency_.begin(), recency_, it->second.recency);
  return &it->second.verdict;
}

void OracleBroker::CacheInsert(const SearchCacheKey& key,
                               const Verdict& verdict) {
  recency_.push_front(key);
  CacheEntry entry;
  entry.verdict = verdict;
  entry.recency = recency_.begin();
  cache_.emplace(key, std::move(entry));
  if (options_.max_cache_entries == 0) return;
  while (cache_.size() > options_.max_cache_entries) {
    cache_.erase(recency_.back());
    recency_.pop_back();
    ++stats_.evictions;
  }
}

void OracleBroker::RecordVerdict(const QuestionContext& context,
                                 const Verdict& verdict) {
  if (!verdict.approved || context.program.empty()) return;
  LogKey key(std::string(context.column), std::string(context.program),
             verdict.direction);
  auto [it, inserted] = log_.emplace(std::move(key), context.presented);
  if (!inserted && context.presented < it->second) {
    it->second = context.presented;
  }
}

OracleBrokerStats OracleBroker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<ApprovedTransformation> OracleBroker::ApprovedLog() const {
  std::vector<std::pair<LogKey, size_t>> records;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records.assign(log_.begin(), log_.end());
  }
  // Per column, order entries by presentation rank: the session approved
  // big groups first, and a replay must re-apply them first to reproduce
  // the session's tie-breaks. Rank ties (possible only across same-named
  // columns) fall back to the key, so the log is deterministic either
  // way.
  std::sort(records.begin(), records.end(),
            [](const std::pair<LogKey, size_t>& a,
               const std::pair<LogKey, size_t>& b) {
              const std::string& a_column = std::get<0>(a.first);
              const std::string& b_column = std::get<0>(b.first);
              if (a_column != b_column) return a_column < b_column;
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  std::vector<ApprovedTransformation> out;
  out.reserve(records.size());
  for (const auto& [key, rank] : records) {
    (void)rank;
    Result<Program> program = ParseProgram(std::get<1>(key));
    if (!program.ok()) continue;  // display-only program; skip
    ApprovedTransformation transformation;
    transformation.column = std::get<0>(key);
    transformation.program = std::move(program).value();
    transformation.direction = std::get<2>(key);
    out.push_back(std::move(transformation));
  }
  return out;
}

std::string OracleBroker::SerializeApprovedLog() const {
  return SerializeTransformationLog(ApprovedLog());
}

}  // namespace ustl

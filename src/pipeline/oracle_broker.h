// A broker that sits between the consolidation framework and any
// VerificationOracle. Column jobs running concurrently on the scheduler
// (pipeline.h) all funnel their questions through one broker, which
//
//   * deduplicates: verdicts are cached by question content — the pivot
//     program plus the presented pair list, digested into the same
//     128-bit dual-FNV key the search cache uses (one batched pass over
//     the pair list; no per-question key string is materialized) — so a
//     group that shows up in several columns (or again after a replay)
//     costs one oracle call;
//   * batches: questions arriving while another thread is talking to the
//     oracle queue up and are drained by that thread in one combining
//     sweep (flat combining), so the backend sees bursts of cross-column
//     questions instead of interleaved single calls and is never invoked
//     concurrently;
//   * logs: every approved verdict with a parseable pivot program is
//     recorded as an ApprovedTransformation. The log is deduplicated and
//     grouped by column (keeping each column's presentation order), so it
//     is byte-identical no matter how the scheduler interleaved the
//     columns — deterministic replay through src/consolidate/replay.h.
//
// Correctness under reordering relies on the oracle order-independence
// contract (consolidate/oracle.h): a cached verdict equals the verdict a
// fresh call would return, so caching and batching change only *how many*
// questions the backend sees, never a single output byte.
#ifndef USTL_PIPELINE_ORACLE_BROKER_H_
#define USTL_PIPELINE_ORACLE_BROKER_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "consolidate/oracle.h"
#include "consolidate/replay.h"
#include "grouping/search_cache.h"

namespace ustl {

/// Counters for the bench harnesses and the CLI summary. `questions` is
/// what the framework asked, `backend_calls` what the human actually
/// answered; the gap is `cache_hits`. A batch is one combining sweep; in a
/// serial run every batch has size 1.
struct OracleBrokerStats {
  size_t questions = 0;
  size_t backend_calls = 0;
  size_t cache_hits = 0;
  size_t batches = 0;
  size_t max_batch = 0;
  /// Verdicts dropped by the LRU bound (Options::max_cache_entries). An
  /// evicted question re-asks the backend on its next appearance; the
  /// order-independence contract keeps the re-asked verdict identical.
  size_t evictions = 0;
  /// Questions parked in the combining queue at the stats() snapshot —
  /// an instantaneous depth, not a counter. Nonzero in a flight-recorder
  /// dump means requests were blocked on the oracle when it fired.
  size_t pending = 0;
};

/// One cached verdict in durable form: the 128-bit content key plus the
/// verdict itself. Re-seeding a broker with it skips the backend call a
/// fresh ask would have made — and, by the order-independence contract,
/// changes nothing else.
struct DurableVerdict {
  SearchCacheKey key;
  Verdict verdict;
};

/// One approved-log record in raw (pre-parse) form: exactly the broker's
/// internal (column, program, direction) -> (rank, member pairs) entry,
/// so restore rebuilds the log byte-identically without re-parsing
/// programs.
struct DurableApproved {
  std::string column;
  std::string program;
  ReplaceDirection direction = ReplaceDirection::kLhsToRhs;
  uint64_t rank = 0;
  std::vector<StringPair> pairs;
};

/// A broker's complete warm state in replayable form. Verdicts are
/// ordered least-recently-used first so that restoring them one by one
/// through the normal insert path reproduces the LRU order; approved
/// records are in the log's deterministic map order.
struct OracleDurableState {
  std::vector<DurableVerdict> verdicts;
  std::vector<DurableApproved> approved;
};

/// Durability hook: invoked under the broker mutex whenever NEW warm
/// state is created — a verdict inserted into the cache, an approved
/// record inserted (or tie-break-updated) in the log. Cache hits and
/// duplicate records do not fire. Implementations must not call back
/// into the broker (the mutex is held) and should be fast: an append to
/// a WAL, not a snapshot.
class OracleDurabilityListener {
 public:
  virtual ~OracleDurabilityListener() = default;
  virtual void OnVerdictCached(const DurableVerdict& verdict) = 0;
  virtual void OnApprovedRecorded(const DurableApproved& approved) = 0;
};

class OracleBroker : public VerificationOracle {
 public:
  struct Options {
    /// Cache verdicts by question content. Off = every question reaches
    /// the backend (the broker still batches and still builds the log).
    bool cache_verdicts = true;
    /// Upper bound on cached verdicts; least-recently-used entries are
    /// evicted past it (stats().evictions counts them). 0 = unbounded —
    /// fine for one-shot pipeline runs, but a long-lived service fronting
    /// endless requests should set a bound so the cache cannot grow
    /// without limit. Eviction only ever costs a repeat question, never a
    /// changed verdict (order-independence contract, consolidate/oracle.h).
    size_t max_cache_entries = 0;
  };

  /// `backend` must outlive the broker. The broker serializes all calls
  /// into it, so the backend need not be thread-safe.
  explicit OracleBroker(VerificationOracle* backend);
  OracleBroker(VerificationOracle* backend, Options options);

  /// Context-free entry (VerificationOracle interface): cache key is the
  /// pair list alone and nothing is logged (no program to persist).
  Verdict Verify(const std::vector<StringPair>& group_pairs) override;

  /// The framework's entry: context supplies the pivot program (cache key
  /// component + replay-log payload) and the column name (log scope).
  Verdict VerifyWithContext(const std::vector<StringPair>& group_pairs,
                            const QuestionContext& context) override;

  OracleBrokerStats stats() const;

  /// The approved transformations seen so far, grouped by column with
  /// each column's entries in its presentation order (largest group first
  /// — replaying in that order reproduces the live session's tie-breaks)
  /// and carrying the member pairs the session applied, so a same-data
  /// replay is byte-faithful; entries whose program does not parse
  /// (display-only programs, context-free questions) are dropped. Feed to
  /// SerializeTransformationLog / ReplayTransformations (replay.h).
  std::vector<ApprovedTransformation> ApprovedLog() const;

  /// ApprovedLog() in the replay.h text form.
  std::string SerializeApprovedLog() const;

  /// Attaches (or detaches, with nullptr) the durability listener. Attach
  /// AFTER RestoreDurableState so recovered records are not re-appended
  /// to their own log; detach before the listener is destroyed.
  void SetDurabilityListener(OracleDurabilityListener* listener);

  /// Re-seeds the cache and approved log from a previously exported (or
  /// WAL-replayed) state, through the normal insert paths: duplicates are
  /// skipped, log collisions take the deterministic tie-break, the LRU
  /// bound applies. Does not fire the durability listener and does not
  /// touch stats — recovered state is warmth, not traffic. Call before
  /// the first question.
  void RestoreDurableState(const OracleDurableState& state);

  /// The broker's current warm state in restorable form (see
  /// OracleDurableState ordering guarantees). Safe to call concurrently
  /// with traffic; the export is a consistent point-in-time copy.
  OracleDurableState ExportDurableState() const;

 private:
  struct Request {
    SearchCacheKey key;
    const std::vector<StringPair>* pairs = nullptr;
    QuestionContext context;
    Verdict verdict;
    bool done = false;
    /// Set when this request failed instead of being answered: its own
    /// backend call threw (only the asking request fails — the combiner
    /// keeps draining the rest), it was cancelled while batched, or a
    /// non-backend combiner failure poisoned the whole batch. The
    /// waiting thread rethrows it; no cache or log entry exists for it.
    std::exception_ptr error;
  };
  /// Log key: one entry per distinct approved (column, program,
  /// direction) — replay.h semantics, where the column *name* scopes a
  /// transformation.
  using LogKey = std::tuple<std::string, std::string, ReplaceDirection>;

  /// Requires mutex_. Records an approved verdict for the log, with the
  /// presented member pairs (the replay payload).
  void RecordVerdict(const QuestionContext& context,
                     const std::vector<StringPair>& pairs,
                     const Verdict& verdict);

  /// Requires mutex_. Cache lookup that refreshes the entry's LRU
  /// position; null on a miss.
  const Verdict* CacheFind(const SearchCacheKey& key);
  /// Requires mutex_. Inserts a fresh verdict and evicts the
  /// least-recently-used entries past the configured bound.
  void CacheInsert(const SearchCacheKey& key, const Verdict& verdict);

  /// One cached verdict plus its position in the recency list.
  struct CacheEntry {
    Verdict verdict;
    std::list<SearchCacheKey>::iterator recency;
  };

  VerificationOracle* backend_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::unordered_map<SearchCacheKey, CacheEntry, SearchCacheKeyHash> cache_;
  /// Cache keys, most recently used first; entries point into it.
  std::list<SearchCacheKey> recency_;
  std::vector<Request*> queue_;
  bool draining_ = false;
  OracleBrokerStats stats_;
  /// Durability hook (null = no persistence). Fired under mutex_ on new
  /// cache inserts and new/updated log records.
  OracleDurabilityListener* durability_ = nullptr;
  /// Approved records: per (column, program, direction), one entry per
  /// presentation rank it was approved at, carrying the member pairs the
  /// session applied. Keeping every rank (not just the best) is what lets
  /// replay re-apply a twice-approved group at both points, interleaved
  /// edits and all. Scheduling decides only *when* a record is inserted —
  /// the (key, rank) set is schedule-independent, and a same-rank
  /// collision across same-named columns keeps the lexicographically
  /// smaller pair list, which is what makes ApprovedLog deterministic.
  std::map<LogKey, std::map<size_t, std::vector<StringPair>>> log_;
};

}  // namespace ustl

#endif  // USTL_PIPELINE_ORACLE_BROKER_H_

// The column-parallel consolidation pipeline. Algorithm 1 standardizes a
// table's columns strictly one at a time; the columns are independent
// until truth discovery, so the ColumnScheduler runs one StandardizeColumn
// job per column on a shared ThreadPool instead — each job with its own
// GroupingEngine — and funnels every oracle interaction through one
// OracleBroker (cache + cross-column batching + replay log).
//
// Determinism contract: the pipeline's output is byte-identical for any
// thread count and for column_parallel on/off, *provided the backend
// oracle is order-independent* (consolidate/oracle.h). Each column job
// only touches its own column, results are committed in column index
// order, and verdicts are pure functions of question content, so the
// schedule cannot leak into the output. SimulatedOracle, ApproveAllOracle
// and the broker's cache all honor the contract.
//
// Thread budgeting: `num_threads` is the total budget. When columns run
// in parallel the serving layer this delegates to runs up to `budget`
// column jobs concurrently and hands each budget/workers threads for its
// GroupingEngine (GroupingOptions::num_threads), so nested parallelism
// never oversubscribes the machine; a serial run gives the whole budget
// to the single active engine.
#ifndef USTL_PIPELINE_PIPELINE_H_
#define USTL_PIPELINE_PIPELINE_H_

#include <vector>

#include "consolidate/framework.h"
#include "pipeline/oracle_broker.h"

namespace ustl {

class TraceSink;  // obs/trace.h

struct PipelineOptions {
  /// Per-column framework configuration. `framework.column_name` is
  /// overwritten per job with the table's column name;
  /// `framework.grouping.num_threads` is overwritten with this pipeline's
  /// per-column budget (set `num_threads` below instead). If
  /// `framework.progress_callback` is set, the pipeline serializes its
  /// invocations (never concurrent), but under column parallelism calls
  /// from different columns interleave in scheduling order — see
  /// FrameworkOptions::progress_callback.
  FrameworkOptions framework;
  /// Run one StandardizeColumn job per column on the thread pool. Off =
  /// columns run serially in index order (Algorithm 1's loop), still
  /// through the broker.
  bool column_parallel = false;
  /// Total thread budget (0 = hardware concurrency, 1 = fully serial),
  /// split between the column scheduler and the per-column grouping
  /// engines as described above.
  int num_threads = 1;
  OracleBroker::Options broker;
  /// Cross-column pivot-search warm start (grouping/search_cache.h): the
  /// run owns one SearchResultCache, so a column whose content repeats an
  /// earlier column's skips its round-one searches. Output is
  /// byte-identical on or off; off only repeats searches.
  bool warm_search_cache = true;
  /// Per-request trace sink (obs/trace.h; borrowed, null = untraced),
  /// forwarded to the underlying service request — the one-shot facade's
  /// run appears as a single traced request. Observability only; output
  /// is byte-identical traced or not.
  TraceSink* trace_sink = nullptr;
};

/// What a pipeline run produced, superset of GoldenRecordRun.
struct PipelineRun {
  std::vector<ColumnRunResult> per_column;
  std::vector<GoldenRecord> golden_records;
  OracleBrokerStats oracle_stats;
  /// The broker's deterministic replay log (replay.h), ready to serialize.
  std::vector<ApprovedTransformation> approved_log;
};

/// Drives GoldenRecordCreation through the scheduler + broker. Since the
/// serving layer landed, this is a thin one-shot facade over
/// serve/service.h: each Run constructs a single-request
/// ConsolidationService (fresh broker and search cache — Run-scoped
/// warmth), submits the table and waits. Long-lived deployments that
/// want caches persisting ACROSS tables use ConsolidationService
/// directly.
class ColumnScheduler {
 public:
  explicit ColumnScheduler(PipelineOptions options);

  /// Standardizes every column of `table` in place (in parallel when
  /// configured), runs majority-consensus truth discovery, and reports
  /// broker statistics. `backend` answers the questions; the scheduler
  /// serializes all calls into it.
  PipelineRun Run(Table* table, VerificationOracle* backend) const;

 private:
  PipelineOptions options_;
};

/// One-shot convenience wrapper around ColumnScheduler.
PipelineRun RunConsolidationPipeline(Table* table,
                                     VerificationOracle* backend,
                                     const PipelineOptions& options);

/// Canonical byte fingerprint of a consolidated table plus its golden
/// records (pass {} for a table alone). Two runs produced identical
/// output iff their fingerprints are equal — the currency of the
/// determinism contract's byte-identity checks (tests, benches, smoke).
std::string FingerprintConsolidation(const Table& table,
                                     const std::vector<GoldenRecord>& golden);

}  // namespace ustl

#endif  // USTL_PIPELINE_PIPELINE_H_

#include "pipeline/fault_oracle.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/random.h"

namespace ustl {

std::string FaultPlan::ToSpec() const {
  std::string out = "rate=" + std::to_string(fault_rate);
  out += ",fails=" + std::to_string(failures_per_question);
  if (persistent) out += ",persistent=1";
  if (slow_rate > 0.0) {
    out += ",slow=" + std::to_string(slow_rate);
    out += ",slow_ms=" + std::to_string(slow_ms);
  }
  out += ",seed=" + std::to_string(seed);
  return out;
}

Result<FaultPlan> FaultPlan::FromSpec(std::string_view spec) {
  FaultPlan plan;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view field = spec.substr(start, end - start);
    start = end + 1;
    if (field.empty()) continue;
    const size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault plan field '" +
                                     std::string(field) +
                                     "': expected key=value");
    }
    std::string key(field.substr(0, eq));
    std::string value(field.substr(eq + 1));
    char* parse_end = nullptr;
    if (key == "rate") {
      plan.fault_rate = std::strtod(value.c_str(), &parse_end);
    } else if (key == "fails") {
      plan.failures_per_question =
          static_cast<int>(std::strtol(value.c_str(), &parse_end, 10));
    } else if (key == "persistent") {
      plan.persistent = std::strtol(value.c_str(), &parse_end, 10) != 0;
    } else if (key == "slow") {
      plan.slow_rate = std::strtod(value.c_str(), &parse_end);
    } else if (key == "slow_ms") {
      plan.slow_ms =
          static_cast<int>(std::strtol(value.c_str(), &parse_end, 10));
    } else if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), &parse_end, 10);
    } else {
      return Status::InvalidArgument("fault plan: unknown key '" + key +
                                     "'");
    }
    if (parse_end == nullptr || *parse_end != '\0' || value.empty()) {
      return Status::InvalidArgument("fault plan: bad value for '" + key +
                                     "': '" + value + "'");
    }
  }
  if (plan.fault_rate < 0.0 || plan.fault_rate > 1.0 ||
      plan.slow_rate < 0.0 || plan.slow_rate > 1.0) {
    return Status::InvalidArgument("fault plan: rates must be in [0, 1]");
  }
  return plan;
}

Verdict FaultInjectingOracle::VerifyWithContext(
    const std::vector<StringPair>& group_pairs,
    const QuestionContext& context) {
  const uint64_t hash = HashQuestion(group_pairs);
  // Pure fault decision, SimulatedOracle-style: one RNG seeded from the
  // question and the plan, independent draws per failure mode.
  Rng rng(hash ^ (plan_.seed * 0x9e3779b97f4a7c15ULL));
  const bool faulty =
      plan_.fault_rate > 0.0 && rng.UniformReal() < plan_.fault_rate;
  const bool slow =
      plan_.slow_rate > 0.0 && rng.UniformReal() < plan_.slow_rate;

  if (faulty) {
    bool inject = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      int& attempt = attempts_[hash];
      ++attempt;
      inject = plan_.persistent || attempt <= plan_.failures_per_question;
      if (inject) ++faults_injected_;
    }
    if (inject) {
      throw InjectedOracleError("injected oracle fault (question " +
                                std::to_string(hash) + ")");
    }
  }
  if (slow && plan_.slow_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++slow_calls_;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.slow_ms));
  }
  return backend_->VerifyWithContext(group_pairs, context);
}

size_t FaultInjectingOracle::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

size_t FaultInjectingOracle::slow_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slow_calls_;
}

}  // namespace ustl

// A retry/backoff/circuit-breaker decorator for oracle backends. Sits
// between the OracleBroker and a flaky backend (human UI gateway, RPC,
// FaultInjectingOracle in tests) and turns transient failures into
// bounded, deterministic retries:
//
//   * bounded retries — a failing question is re-asked up to
//     max_attempts times; the verdict of an eventually-successful attempt
//     is byte-identical to a never-failing backend's (verdicts are pure
//     functions of question content), so retries never change output;
//   * deterministic backoff — the delay before attempt k is
//     min(cap, base << (k-1)) plus a jitter derived from (seed, question
//     hash, k), never from wall-clock or a shared RNG stream: the same
//     question backs off identically run after run;
//   * circuit breaker — too many consecutive exhausted questions flip
//     the breaker open, and while open the backend is not called at all:
//     a question whose verdict was answered before is replayed from the
//     decorator's content-keyed cache (degradation order: backend →
//     retries → replayed verdict), anything else fails with a typed
//     BreakerOpenError. Only the asking request fails — the broker hands
//     the error to that request's waiters and keeps serving; after
//     cooldown_calls short-circuited calls the breaker goes half-open
//     and probes the backend with one real call (success closes it).
//     Cooldown is counted in calls, not seconds, so breaker behavior is
//     reproducible in tests.
#ifndef USTL_PIPELINE_RETRYING_ORACLE_H_
#define USTL_PIPELINE_RETRYING_ORACLE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "common/status.h"
#include "consolidate/oracle.h"

namespace ustl {

/// Thrown when the breaker is open and no replayed verdict is available.
class BreakerOpenError : public std::runtime_error {
 public:
  BreakerOpenError() : std::runtime_error("oracle circuit breaker open") {}
};

struct RetryingOracleStats {
  /// Re-asks after a failed attempt (attempt 2..N of some question).
  size_t retries = 0;
  /// Questions whose verdict arrived only after >= 1 retry.
  size_t recovered = 0;
  /// Questions that exhausted every attempt and failed.
  size_t exhausted = 0;
  /// Closed -> open transitions.
  size_t breaker_opens = 0;
  /// Calls answered while open without touching the backend: replayed
  /// verdicts + BreakerOpenError failures.
  size_t short_circuits = 0;
  /// Short-circuited calls served from the replay cache.
  size_t replayed_verdicts = 0;
};

class RetryingOracle : public VerificationOracle {
 public:
  struct Options {
    /// Total attempts per question (1 = no retry).
    int max_attempts = 3;
    /// Exponential backoff before attempt k: min(cap, base << (k - 2)) +
    /// jitter(seed, question, k) ms, k >= 2. base 0 = no waiting (tests).
    int backoff_base_ms = 0;
    int backoff_cap_ms = 100;
    /// Jitter seed; jitter is uniform in [0, backoff_base_ms] and a pure
    /// function of (seed, question hash, attempt).
    uint64_t seed = 0x5eed;
    /// Consecutive exhausted questions that open the breaker. 0 disables
    /// the breaker entirely.
    size_t breaker_failure_threshold = 5;
    /// Short-circuited calls while open before a half-open probe.
    size_t breaker_cooldown_calls = 16;
    /// Serve previously answered questions from the replay cache while
    /// open (the graceful-degradation mode). Off = every call while open
    /// fails.
    bool serve_cached_while_open = true;
    /// Test hook replacing the real sleep; called with the computed
    /// backoff in ms. Null = std::this_thread::sleep_for.
    std::function<void(int)> sleep_ms;
    /// Observability: called (outside the decorator's lock) after a
    /// failed attempt schedules a retry, with the asking request id
    /// (QuestionContext::request_id; 0 = unattributed) and the attempt
    /// number just failed.
    std::function<void(uint64_t, int)> on_retry;
    /// Observability: called when the breaker opens (true) or closes
    /// after a successful half-open probe (false).
    std::function<void(uint64_t, bool)> on_breaker;
  };

  RetryingOracle(VerificationOracle* backend, Options options)
      : backend_(backend), options_(options) {
    USTL_CHECK(backend_ != nullptr);
    USTL_CHECK(options_.max_attempts >= 1);
  }

  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    return VerifyWithContext(group_pairs, QuestionContext{});
  }
  Verdict VerifyWithContext(const std::vector<StringPair>& group_pairs,
                            const QuestionContext& context) override;

  RetryingOracleStats stats() const;
  bool breaker_open() const;

 private:
  enum class Breaker { kClosed, kOpen, kHalfOpen };

  VerificationOracle* backend_;
  Options options_;
  mutable std::mutex mutex_;
  RetryingOracleStats stats_;
  Breaker breaker_ = Breaker::kClosed;
  size_t consecutive_exhausted_ = 0;
  size_t open_calls_ = 0;
  /// Replay cache: verdicts by question content hash (HashQuestion).
  /// Verdicts are pure functions of content, so replaying one while the
  /// breaker is open returns exactly what the backend would.
  std::unordered_map<uint64_t, Verdict> replay_;
};

}  // namespace ustl

#endif  // USTL_PIPELINE_RETRYING_ORACLE_H_

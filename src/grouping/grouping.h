// Top-level grouping drivers. They combine structure refinement
// (Section 7.2), the Appendix-E term scorer, graph construction, and either
// the upfront UnsupervisedGrouping (OneShot / EarlyTerm) or the incremental
// top-k engine (Section 6) into the interface the consolidation framework
// consumes: "give me replacement groups, largest first".
#ifndef USTL_GROUPING_GROUPING_H_
#define USTL_GROUPING_GROUPING_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "graph/graph_builder.h"
#include "graph/term_scorer.h"
#include "grouping/group.h"
#include "grouping/incremental.h"
#include "grouping/oneshot.h"
#include "grouping/search_cache.h"

namespace ustl {

class TraceContext;  // obs/trace.h

/// Configuration shared by all grouping drivers.
struct GroupingOptions {
  /// Graph construction knobs (affix on/off for Figure 10, length caps...).
  /// The `scorer` field is managed internally; leave it null.
  GraphBuilderOptions graph;
  /// Maximum pivot path length theta (Section 8.2).
  int max_path_len = 6;
  /// Partition by structure before grouping (Section 7.2).
  bool structure_refinement = true;
  /// Build a FrequencyTermScorer per structure group (Appendix E). Only
  /// effective when structure_refinement is on.
  bool use_term_scorer = true;
  /// Per-search DFS expansion budget (see IncrementalOptions). Unlimited
  /// by default; set a finite budget when grouping heterogeneous inputs
  /// without structure refinement, whose label space explodes.
  uint64_t max_expansions_per_search = std::numeric_limits<uint64_t>::max();
  /// Total DFS expansion budget across the whole engine (all structure
  /// groups). See IncrementalOptions::max_total_expansions.
  uint64_t max_total_expansions = std::numeric_limits<uint64_t>::max();
  /// Appendix-E sampling: pivot counts taken over a sample of this many
  /// graphs per structure group when the group is larger. 0 = exact.
  /// See IncrementalOptions::sample_size.
  size_t pivot_sample_size = 0;
  uint64_t pivot_sample_seed = 0x5eed;
  /// Cross-round pivot-search reuse inside the incremental engines (see
  /// IncrementalOptions::reuse_search_results): a search result stays
  /// exact across consumed groups until one of its members is killed, so
  /// later rounds re-search only the graphs the last consume dirtied.
  /// Groups are byte-identical with this on or off; off only repeats
  /// searches. Ignored under sampling or finite expansion budgets.
  bool reuse_search_results = true;
  /// Adaptive wave sizing for the incremental engines' exact-mode wave
  /// scan: wave widths are sized from the observed speculation hit rate
  /// instead of the raw pool width, so a box whose hardware cannot run
  /// the wave concurrently stops paying for speculation that never pays
  /// off. Groups are byte-identical either way (statistics move). See
  /// IncrementalOptions::adaptive_wave_sizing. The upfront driver is
  /// unaffected: it searches every graph exactly once, so none of its
  /// wave work is speculative.
  bool adaptive_wave_sizing = true;
  /// Cross-engine pivot-search warm start (grouping/search_cache.h):
  /// borrowed shared cache, must outlive every engine using it, may be
  /// shared across threads. When set (and reuse_search_results applies),
  /// each structure group's epoch-0 search results are published under a
  /// content key — the grouping options that shape graphs, the full
  /// ordered pair list, the structure — and an engine whose content
  /// matches an earlier engine's (a replicated column, a repeated
  /// request) seeds its cache instead of re-searching. Byte-identical
  /// warm or cold. The pipeline and the consolidation service own one
  /// cache per run / per service; null disables sharing.
  SearchResultCache* shared_search_cache = nullptr;
  /// Posting-list storage codec of every structure group's inverted
  /// index (index/inverted_index.h): kRaw keeps the flat packed arrays,
  /// kBlock re-encodes them into compressed, skippable blocks whose
  /// cursor also prunes joins against the early-termination thresholds.
  /// Groups are byte-identical for either codec (the byte-compare legs
  /// in check.sh/CI sweep both); the codec moves memory and skip/prune
  /// statistics only, which is why it stays OUT of the search-cache
  /// content key — raw and block runs share warm starts.
  IndexCodec index_codec = IndexCodec::kRaw;
  BlockPostingsOptions block_postings;
  /// Worker threads for graph construction, per-structure-group
  /// preprocessing AND the pivot searches inside one structure group
  /// (wave scan, see oneshot.h / incremental.h). 0 = hardware
  /// concurrency, 1 = fully serial (the default). Structure groups are
  /// disjoint (Section 7.2) and the in-group wave scans replay the serial
  /// update rules, so groups returned are bit-identical for any thread
  /// count. Search *statistics* can differ between num_threads == 1 and
  /// > 1 (and, for > 1, between runs): concurrent refinement and wave
  /// speculation spend expansions the lazy serial order avoids, and how
  /// many depends on scheduling. When max_total_expansions is finite the
  /// engine stays lazy and serial regardless of this knob — a shared
  /// budget makes preprocessing order-dependent.
  int num_threads = 1;
  /// Cooperative cancellation (common/cancel.h), forwarded into every
  /// structure-group engine's scan loops and checked between refinement
  /// rounds; inert by default. See IncrementalOptions::cancel.
  CancelToken cancel;
  /// Per-request trace (obs/trace.h; null = untraced): each structure
  /// group's preprocessing opens a graph_build span under `trace_parent`
  /// and forwards the context into its incremental engine (search_wave
  /// spans). Observability only — never read by any decision.
  TraceContext* trace = nullptr;
  uint64_t trace_parent = 0;
};

/// Statistics of an upfront grouping run, for Figure 9.
struct UpfrontStats {
  double seconds = 0.0;
  uint64_t expansions = 0;
  bool truncated = false;
  size_t num_groups = 0;
  /// Block-codec cursor counters (0 under the raw codec).
  uint64_t blocks_skipped = 0;
  uint64_t blocks_decoded = 0;
  uint64_t joins_pruned = 0;
};

/// Runs the upfront partitioner over all pairs: builds every graph, indexes
/// them per structure group, computes every pivot (with or without the
/// Algorithm-4 early terminations) and returns all groups sorted by size
/// descending. This is the paper's OneShot (early_termination = false) /
/// EarlyTerm (true).
std::vector<Group> GroupAllUpfront(const std::vector<StringPair>& pairs,
                                   const GroupingOptions& options,
                                   bool early_termination,
                                   UpfrontStats* stats,
                                   uint64_t max_expansions =
                                       std::numeric_limits<uint64_t>::max());

/// The incremental driver (Algorithm 5): structure groups are preprocessed
/// lazily, and each Next() returns the globally largest remaining group.
/// Structure groups are disjoint, so one cached candidate per group makes
/// Next() a lazy k-way merge.
class GroupingEngine {
 public:
  GroupingEngine(std::vector<StringPair> pairs, GroupingOptions options);

  /// Returns and consumes the next largest group; nullopt when exhausted.
  std::optional<Group> Next();

  /// Total replacements not yet grouped.
  size_t RemainingCount() const;

  /// Cumulative search statistics across all structure groups, aggregated
  /// on demand (so the final refinement work before an exhausted Next()
  /// is included too).
  IncrementalStats stats() const;

 private:
  struct SubGroup {
    std::string structure;
    std::vector<size_t> pair_indices;           // into pairs_
    std::unique_ptr<LabelInterner> interner;
    std::unique_ptr<FrequencyTermScorer> scorer;
    std::unique_ptr<IncrementalEngine> engine;  // null until preprocessed
    bool exhausted = false;
  };

  void Preprocess(SubGroup* sub);
  /// Preprocesses + peeks every candidate concurrently (they are disjoint;
  /// no budget sharing happens when the total budget is unlimited).
  void RefineBatch(const std::vector<SubGroup*>& candidates);
  int SubHint(const SubGroup& sub) const;

  std::vector<StringPair> pairs_;
  GroupingOptions options_;
  CorpusFrequency global_corpus_;
  std::unique_ptr<ThreadPool> pool_;  // null when running serially
  std::vector<SubGroup> subs_;
  /// Shared hash of everything except the structure key — the options
  /// that shape graph construction plus the full ordered pair list (the
  /// term scorer sees the whole column, so a structure group's graphs
  /// depend on all of it). Invalid when cross-engine sharing is off.
  SearchCacheKey search_context_;
};

/// Helper shared by the drivers and tests: partitions pair indices by the
/// replacement structure (one partition with empty key when refinement is
/// off).
std::vector<std::pair<std::string, std::vector<size_t>>>
PartitionByStructure(const std::vector<StringPair>& pairs,
                     bool structure_refinement);

}  // namespace ustl

#endif  // USTL_GROUPING_GROUPING_H_

// Incremental (top-k) grouping over one GraphSet (Algorithms 5-7). Each
// Next()/Peek() produces the largest remaining group without partitioning
// everything upfront: graphs carry lower bounds Glo (count of a known
// transformation path through them) and upper bounds Gup (Lemma 6.2, from
// inverted-list lengths of covering edges); graphs are visited in
// descending upper-bound order and the scan stops as soon as no unvisited
// graph can beat the best group found.
//
// Deviation from the paper (see DESIGN.md): Algorithm 7 initializes the
// pruning threshold to tau (the largest lower bound), which misses a
// largest group of size exactly tau; we use tau - 1.
#ifndef USTL_GROUPING_INCREMENTAL_H_
#define USTL_GROUPING_INCREMENTAL_H_

#include <cstdint>
#include <limits>
#include <optional>

#include "grouping/graph_set.h"
#include "grouping/pivot_search.h"

namespace ustl {

struct IncrementalOptions {
  int max_path_len = 6;
  /// Safety valve (Section 8.2 suggests bounding the search when grouping
  /// is too slow): each pivot search stops after this many DFS expansions
  /// and keeps the best path found so far. When a search truncates, the
  /// engine's results may no longer be the exact global maximum; the
  /// groups returned are still valid (every member shares the pivot).
  uint64_t max_expansions_per_search = std::numeric_limits<uint64_t>::max();
  /// Total DFS expansion budget for the whole engine lifetime. Once
  /// exhausted, Peek() stops scanning (keeping whatever best group it
  /// already found) and later calls drain to nullopt quickly. Groups
  /// returned after exhaustion are valid but not necessarily largest.
  uint64_t max_total_expansions = std::numeric_limits<uint64_t>::max();
  /// Appendix-E sampling: when more than this many graphs are alive, pivot
  /// counts are taken over a seeded sample of this size (plus the searched
  /// graph), and the winning path's group is re-resolved over the full
  /// set. 0 disables sampling (exact counting). With sampling on, groups
  /// are valid and complete but "largest first" holds only relative to
  /// the sample.
  size_t sample_size = 0;
  uint64_t sample_seed = 0x5eed;
};

struct IncrementalStats {
  uint64_t expansions = 0;
  uint64_t searches = 0;
  /// True once the engine gave up exactness: some search truncated or the
  /// total expansion budget ran out.
  bool truncated = false;
};

/// Owns its GraphSet; groups are consumed (members killed) as they are
/// taken.
class IncrementalEngine {
 public:
  IncrementalEngine(GraphSet set, IncrementalOptions options);

  // Non-copyable and non-movable: the searcher holds a pointer into the
  // owned GraphSet. Hold engines behind unique_ptr.
  IncrementalEngine(const IncrementalEngine&) = delete;
  IncrementalEngine& operator=(const IncrementalEngine&) = delete;

  /// Computes (if needed) and returns the next largest group without
  /// consuming it; nullopt when no alive graphs remain.
  const std::optional<ReplacementGroup>& Peek();

  /// Consumes the peeked group: kills its members and resets the stale
  /// lower bounds (removals invalidate Glo, not Gup).
  void ConsumePeeked();

  /// Peek + ConsumePeeked in one step (Algorithm 5's per-iteration call).
  std::optional<ReplacementGroup> Next();

  /// True when a Peek() result is cached and not yet consumed.
  bool HasPeeked() const { return peeked_; }

  /// Upper bound on the size of the next group: max alive Gup, capped by
  /// the alive count. Exact (== peeked size) once peeked.
  int UpperHint() const;

  size_t AliveCount() const { return set_.AliveCount(); }
  const GraphSet& set() const { return set_; }
  const IncrementalStats& stats() const { return stats_; }

 private:
  void InitUpperBounds();
  void FillPeek();
  /// Rebuilds the sampling mask from the first sample_size alive graphs of
  /// the fixed seeded permutation; returns false when sampling is off or
  /// unnecessary (alive count within sample_size).
  bool RefreshSampleMask();

  GraphSet set_;
  IncrementalOptions options_;
  PivotSearcher searcher_;
  std::vector<int> lower_bounds_;  // Glo per graph
  std::vector<int> upper_bounds_;  // Gup per graph
  std::vector<GraphId> sample_order_;  // fixed seeded permutation
  std::vector<char> sample_mask_;
  bool peeked_ = false;
  std::optional<ReplacementGroup> peek_;
  IncrementalStats stats_;
};

}  // namespace ustl

#endif  // USTL_GROUPING_INCREMENTAL_H_

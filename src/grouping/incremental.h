// Incremental (top-k) grouping over one GraphSet (Algorithms 5-7). Each
// Next()/Peek() produces the largest remaining group without partitioning
// everything upfront: graphs carry lower bounds Glo (count of a known
// transformation path through them) and upper bounds Gup (Lemma 6.2, from
// inverted-list lengths of covering edges); graphs are visited in
// descending upper-bound order and the scan stops as soon as no unvisited
// graph can beat the best group found.
//
// Parallel wave scan (exact mode): a pivot search's outcome — the
// canonical first-found maximal path, its count and members — does not
// depend on the threshold it was asked to beat or the Glo state it pruned
// under (valid bounds only skip subtrees that cannot contain a maximal
// path; see pivot_search.h). FillPeek exploits that: it resolves the
// descending-Gup order in waves on the thread pool, every wave searching
// against the wave-start threshold and a private Glo snapshot, then
// REPLAYS the results in scan order with the serial update rules — found
// iff the count beats the evolved running best, the same Gup/Glo writes,
// the same stop point. Results a serial scan would never have computed
// are discarded (their bound updates never land), so the engine's
// cross-round state is byte-identical for every wave size and thread
// count; the speculative searches cost only expansion statistics — and
// warm the result cache below.
//
// Cross-round search-result reuse: ConsumePeeked only ever KILLS graphs,
// and shrinking the alive set can only lower path counts. A cached pivot
// of g therefore stays the exact canonical pivot — same path, count and
// members — until one of its members is killed (its own count would drop;
// every enumeration-earlier path had a strictly smaller count and cannot
// catch up). Entries are revalidated lazily against GraphSet::kill_epoch,
// so later rounds re-search only the graphs the last consume dirtied.
// Reuse changes which searches run, never what they return: output is
// byte-identical with the cache on or off. The cache can additionally be
// warm-started across engines: epoch-0 results (computed against the
// untouched alive set) are published to / seeded from a shared
// SearchResultCache keyed by engine content, so an engine whose graphs
// repeat an earlier engine's never re-runs its round-one searches
// (IncrementalOptions::shared_cache, grouping/search_cache.h); wave
// widths are sized adaptively from the observed speculation hit rate
// (IncrementalOptions::adaptive_wave_sizing).
//
// Both accelerations apply in exact mode only. Sampling (Appendix E)
// re-counts against a fresh mask every round, and finite expansion
// budgets make results depend on how much the previous searches spent —
// those configurations keep the documented lazy serial scan.
//
// Deviation from the paper (see DESIGN.md): Algorithm 7 initializes the
// pruning threshold to tau (the largest lower bound), which misses a
// largest group of size exactly tau; we use tau - 1.
#ifndef USTL_GROUPING_INCREMENTAL_H_
#define USTL_GROUPING_INCREMENTAL_H_

#include <cstdint>
#include <limits>
#include <optional>

#include "common/cancel.h"
#include "common/parallel.h"
#include "grouping/graph_set.h"
#include "grouping/pivot_search.h"
#include "grouping/search_cache.h"

namespace ustl {

class TraceContext;  // obs/trace.h

struct IncrementalOptions {
  int max_path_len = 6;
  /// Safety valve (Section 8.2 suggests bounding the search when grouping
  /// is too slow): each pivot search stops after this many DFS expansions
  /// and keeps the best path found so far. When a search truncates, the
  /// engine's results may no longer be the exact global maximum; the
  /// groups returned are still valid (every member shares the pivot).
  uint64_t max_expansions_per_search = std::numeric_limits<uint64_t>::max();
  /// Total DFS expansion budget for the whole engine lifetime. Once
  /// exhausted, Peek() stops scanning (keeping whatever best group it
  /// already found) and later calls drain to nullopt quickly. Groups
  /// returned after exhaustion are valid but not necessarily largest.
  uint64_t max_total_expansions = std::numeric_limits<uint64_t>::max();
  /// Appendix-E sampling: when more than this many graphs are alive, pivot
  /// counts are taken over a seeded sample of this size (plus the searched
  /// graph), and the winning path's group is re-resolved over the full
  /// set. 0 disables sampling (exact counting). With sampling on, groups
  /// are valid and complete but "largest first" holds only relative to
  /// the sample.
  size_t sample_size = 0;
  uint64_t sample_seed = 0x5eed;
  /// Cross-round search-result reuse (see the file comment). Output is
  /// byte-identical either way; off only costs repeated searches. Ignored
  /// (always off) under sampling or finite expansion budgets.
  bool reuse_search_results = true;
  /// Adaptive wave sizing for the exact-mode wave scan. The wave width
  /// defaults to the pool width, which speculates past the serial stop
  /// point even on hardware that cannot run the wave concurrently (a
  /// 1-hardware-thread box pays DFS expansions for results nobody may
  /// ever consult). With this on, waves start at the pool width (trust
  /// speculation until measured) and are then re-sized each round to
  /// base + hit_rate * (pool - base), where base = min(pool width,
  /// hardware threads) is the genuinely concurrent width and hit_rate is
  /// the observed fraction of speculative searches whose results later
  /// became cache hits (those searches were free). Output is
  /// byte-identical for any wave size, so this knob moves statistics
  /// only. No effect when the pool width is 1 or in non-exact modes.
  bool adaptive_wave_sizing = true;
  /// Cross-engine warm start (see grouping/search_cache.h): a borrowed
  /// shared cache plus this engine's content key. When the key is valid
  /// and exact mode applies (reuse on, no sampling, unlimited budgets),
  /// the engine seeds its per-graph search cache from previously
  /// published epoch-0 results of an identical-content engine and
  /// publishes its own epoch-0 results back. Byte-identical warm or
  /// cold; the cache must outlive the engine.
  SearchResultCache* shared_cache = nullptr;
  SearchCacheKey shared_cache_key;
  /// Cooperative cancellation (common/cancel.h): the scan loops call
  /// Check() at their heads — on the driver thread and between waves, so
  /// a tripped token unwinds within one wave of searches. An unwound
  /// engine is abandoned by its request; nothing partial is published to
  /// the shared cache (only complete per-graph results ever are).
  CancelToken cancel;
  /// Per-request trace (obs/trace.h; null = untraced): the wave scan
  /// opens one search_wave span per wave under `trace_parent` carrying
  /// the wave's width/hit counters. Statistics only — wave sizing,
  /// replay and reuse never read the trace, so output is byte-identical
  /// traced or not.
  TraceContext* trace = nullptr;
  uint64_t trace_parent = 0;
};

struct IncrementalStats {
  uint64_t expansions = 0;
  uint64_t searches = 0;
  /// Searches avoided by cross-round result reuse: rounds that resolved a
  /// graph from a still-valid cached pivot instead of running its DFS.
  uint64_t cache_hits = 0;
  /// Wave searches the lazy serial scan would have skipped (they ran past
  /// the point the replay stopped at). Pure speculation cost — their
  /// results still land in the reuse cache.
  uint64_t speculative_searches = 0;
  /// Speculative searches whose stored result later served a cache hit:
  /// speculation that retroactively became free. Each speculative search
  /// is counted at most once (the entry's flag clears on its first hit),
  /// so the ratio to speculative_searches — which drives adaptive wave
  /// sizing — is a true fraction in [0, 1].
  uint64_t speculative_hits = 0;
  /// The subset of cache_hits served from a cross-engine warm-start entry
  /// (IncrementalOptions::shared_cache): DFS work another engine already
  /// paid for.
  uint64_t warm_hits = 0;
  /// Block-codec cursor counters, summed over every search this engine
  /// ran (0 on raw indexes; see pivot_search.h). Like expansions these
  /// are statistics, not state: skips and prunes never change a group.
  uint64_t blocks_skipped = 0;
  uint64_t blocks_decoded = 0;
  uint64_t joins_pruned = 0;
  /// True once the engine gave up exactness: some search truncated or the
  /// total expansion budget ran out.
  bool truncated = false;
};

/// Owns its GraphSet; groups are consumed (members killed) as they are
/// taken.
class IncrementalEngine {
 public:
  /// `pool` (borrowed, may be null) parallelizes the exact-mode FillPeek
  /// wave scan; output is byte-identical for any pool / thread count.
  /// Calls issued from one of the pool's own worker threads degrade to
  /// the serial scan (nested ParallelFor runs inline).
  IncrementalEngine(GraphSet set, IncrementalOptions options,
                    ThreadPool* pool = nullptr);

  // Non-copyable and non-movable: the searcher holds a pointer into the
  // owned GraphSet. Hold engines behind unique_ptr.
  IncrementalEngine(const IncrementalEngine&) = delete;
  IncrementalEngine& operator=(const IncrementalEngine&) = delete;

  /// Computes (if needed) and returns the next largest group without
  /// consuming it; nullopt when no alive graphs remain.
  const std::optional<ReplacementGroup>& Peek();

  /// Consumes the peeked group: kills its members and resets the stale
  /// lower bounds (removals invalidate Glo, not Gup).
  void ConsumePeeked();

  /// Peek + ConsumePeeked in one step (Algorithm 5's per-iteration call).
  std::optional<ReplacementGroup> Next();

  /// True when a Peek() result is cached and not yet consumed.
  bool HasPeeked() const { return peeked_; }

  /// Upper bound on the size of the next group: max alive Gup, capped by
  /// the alive count. Exact (== peeked size) once peeked. The scan result
  /// is cached until the next Peek/ConsumePeeked mutates bounds or
  /// liveness, so repeated hint polls (the k-way merge driver calls this
  /// per sub-group per round) cost O(1).
  int UpperHint() const;

  size_t AliveCount() const { return set_.AliveCount(); }
  const GraphSet& set() const { return set_; }
  const IncrementalStats& stats() const { return stats_; }

 private:
  /// One reusable pivot search outcome (exact mode): the canonical pivot
  /// of its graph over the alive set it was computed against, revalidated
  /// lazily via the kill epoch.
  struct CachedSearch {
    LabelPath path;
    std::vector<GraphId> members;
    int count = 0;
    uint64_t validated_epoch = 0;
    /// Seeded from the cross-engine shared cache (stats attribution).
    bool warm = false;
    /// Stored by wave speculation past the serial stop point; a later hit
    /// on it proves the speculation was free (adaptive wave sizing).
    bool speculative = false;
  };

  void InitUpperBounds();
  void FillPeek();
  /// The legacy strictly-serial threshold scan, used whenever exact mode
  /// is off (sampling or finite budgets).
  void SerialScan(const std::vector<GraphId>& order, bool sampling,
                  int best_count, PivotSearcher::SearchResult* best);
  /// Exact-mode scan: waves + serial replay + result reuse.
  void WaveScan(const std::vector<GraphId>& order, int best_count,
                PivotSearcher::SearchResult* best);
  /// Copies a still-valid cached pivot of `g` into `*out` (found = true)
  /// and reports where the entry came from via the optional flags.
  /// Returns false (and drops stale entries) otherwise.
  bool CacheLookup(GraphId g, PivotSearcher::SearchResult* out,
                   bool* warm = nullptr, bool* speculative = nullptr);
  /// `speculative` marks results the serial scan would not have computed
  /// this round. Epoch-0 results are also published to the shared
  /// cross-engine cache when one is configured.
  void CacheStore(GraphId g, const PivotSearcher::SearchResult& result,
                  bool speculative);
  /// Seeds search_cache_ from the shared cross-engine cache (constructor
  /// helper; no-op unless options enable it).
  void WarmStartFromSharedCache();
  /// Rebuilds the sampling mask from the first sample_size alive graphs of
  /// the fixed seeded permutation; returns false when sampling is off or
  /// unnecessary (alive count within sample_size).
  bool RefreshSampleMask();

  GraphSet set_;
  IncrementalOptions options_;
  ThreadPool* pool_ = nullptr;
  /// Resolved from options in the constructor: non-null only when exact
  /// mode applies and the key is valid, so every use site can test this
  /// single pointer.
  SearchResultCache* shared_cache_ = nullptr;
  PivotSearcher searcher_;
  std::vector<int> lower_bounds_;  // Glo per graph
  std::vector<int> upper_bounds_;  // Gup per graph
  std::vector<GraphId> sample_order_;  // fixed seeded permutation
  std::vector<char> sample_mask_;
  std::vector<std::optional<CachedSearch>> search_cache_;  // per graph
  mutable std::optional<int> upper_hint_;  // memoized UpperHint scan
  bool peeked_ = false;
  std::optional<ReplacementGroup> peek_;
  IncrementalStats stats_;
};

}  // namespace ustl

#endif  // USTL_GROUPING_INCREMENTAL_H_

// Cross-engine pivot-search result cache (ROADMAP "warm-start the search
// cache across engines"). The pipeline and the serving layer rebuild a
// GroupingEngine per column / per request, re-running round-one pivot
// searches that an earlier engine with *identical content* already
// resolved — replicated columns and repeated requests are the common case
// in multi-source feeds. This cache closes that gap the same way the
// OracleBroker closes it for verdicts: results are keyed by question
// content, never by identity.
//
// Soundness. A pivot search's outcome over the full (epoch-0) alive set
// is a pure function of the graphs, the interner ids and the inverted
// index — all of which are deterministic functions of (the grouping
// options that shape graph construction, the column's full ordered pair
// list, the structure key). Two engines whose key material matches build
// bit-identical GraphSets, so a cached {path, members, count} transfers
// verbatim: GraphIds and LabelIds mean the same thing on both sides. Only
// results computed against the untouched alive set (GraphSet::kill_epoch
// == 0) are published; seeded entries then age through the borrowing
// engine's normal kill-epoch revalidation. Reuse changes which searches
// run, never what they return — output is byte-identical warm or cold.
//
// The key hashes the *ordered* pair list (not just the multiset): interner
// ids — and therefore the canonical tie-break among equally large pivot
// paths — depend on first-sight order, so two orderings of the same
// multiset may legitimately disagree on the canonical pivot. Hashing the
// order keeps reuse exactly as strong as the determinism contract allows.
#ifndef USTL_GROUPING_SEARCH_CACHE_H_
#define USTL_GROUPING_SEARCH_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dsl/interner.h"
#include "graph/transformation_graph.h"
#include "grouping/group.h"

namespace ustl {

/// Content key of one GraphSet worth of searches: two independent FNV-1a
/// streams over the same material, so an accidental 64-bit collision
/// cannot silently cross-wire two different engines. {0, 0} is "no key".
struct SearchCacheKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool valid() const { return lo != 0 || hi != 0; }
  bool operator==(const SearchCacheKey& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

/// Hash functor for unordered containers keyed by SearchCacheKey. Shared
/// by the search-result cache below and the oracle broker's verdict cache
/// (pipeline/oracle_broker.h), which keys by the same 128-bit digest
/// instead of materializing each question's bytes into a string key.
struct SearchCacheKeyHash {
  size_t operator()(const SearchCacheKey& key) const {
    return static_cast<size_t>(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental builder for SearchCacheKey. Strings are length-prefixed so
/// field boundaries are unambiguous for arbitrary byte content (same
/// convention as the oracle broker's cache key).
class SearchKeyHasher {
 public:
  SearchKeyHasher();

  void Bytes(const void* data, size_t size);
  void Str(std::string_view s);
  void U64(uint64_t v);
  /// Batched equivalent of Str(pair.lhs); Str(pair.rhs) per pair: the
  /// same byte stream (so existing keys are stable), absorbed in one
  /// fused pass with the hash state in registers. Every per-engine and
  /// per-question content key is dominated by its pair list, which makes
  /// this the hot path of key construction.
  void Pairs(const std::vector<StringPair>& pairs);

  SearchCacheKey Finish() const;

 private:
  uint64_t lo_;
  uint64_t hi_;
};

/// One reusable epoch-0 pivot result: the canonical pivot path of a graph
/// over the full alive set, with its member ids and count.
struct CachedPivot {
  LabelPath path;
  std::vector<GraphId> members;
  int count = 0;
};

struct SearchCacheStats {
  /// WarmStart calls / the subset that found their key.
  size_t lookups = 0;
  size_t warm_starts = 0;
  /// Pivots copied out across all warm starts (each one a DFS the
  /// borrowing engine may now skip).
  size_t entries_served = 0;
  size_t publishes = 0;
  /// Currently held distinct keys / pivots.
  size_t keys = 0;
  size_t entries = 0;
  /// Whole keys dropped by the LRU bound (Options::max_keys). An evicted
  /// engine's content simply re-searches on its next appearance.
  size_t evictions = 0;
};

/// Thread-safe shared store. Owned by whatever outlives the engines that
/// share it — the ConsolidationService for cross-request warmth, a
/// pipeline run for cross-column warmth; engines borrow it through
/// GroupingOptions::shared_search_cache.
class SearchResultCache {
 public:
  struct Options {
    /// Upper bound on distinct content keys held; least-recently-used
    /// keys (an engine's whole pivot set) are evicted past it. 0 =
    /// unbounded — fine for one-shot pipeline runs, but a long-lived
    /// service fronting endless distinct tables should set a bound, the
    /// same argument as OracleBroker::Options::max_cache_entries (and
    /// these entries are much heavier than verdicts). Eviction only ever
    /// costs repeated searches, never a changed byte.
    size_t max_keys = 0;
  };

  SearchResultCache() = default;
  explicit SearchResultCache(Options options) : options_(options) {}

  /// All published pivots under `key` (empty when cold), as (graph id,
  /// pivot) pairs in unspecified order. Copies, so the caller owns the
  /// result outright. Refreshes the key's LRU position.
  std::vector<std::pair<GraphId, CachedPivot>> WarmStart(
      const SearchCacheKey& key) const;

  /// Publishes one epoch-0 result. Re-publishing an existing (key, graph)
  /// is a no-op: identical content implies an identical result.
  void Publish(const SearchCacheKey& key, GraphId g, CachedPivot pivot);

  SearchCacheStats stats() const;

 private:
  struct KeyedPivots {
    std::unordered_map<GraphId, CachedPivot> pivots;
    std::list<SearchCacheKey>::iterator recency;
  };

  /// Requires mutex_. Moves `key` to the recency front (inserting a list
  /// node for new keys) and evicts LRU keys past the bound.
  void Touch(const SearchCacheKey& key, KeyedPivots* entry, bool inserted);

  Options options_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<SearchCacheKey, KeyedPivots, SearchCacheKeyHash>
      entries_;
  /// Keys, most recently used first; entries point into it.
  mutable std::list<SearchCacheKey> recency_;
  mutable SearchCacheStats stats_;
};

}  // namespace ustl

#endif  // USTL_GROUPING_SEARCH_CACHE_H_

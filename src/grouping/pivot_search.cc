#include "grouping/pivot_search.h"

#include <algorithm>

namespace ustl {
namespace {

// One candidate DFS move: an outgoing (label, edge) pair annotated with
// the label's inverted-list length and constant-ness for ordering.
struct Move {
  size_t list_length;
  bool constant;
  LabelId label;
  int to;
};

}  // namespace

/// Scratch arena of the DFS. Level d owns every buffer Dfs needs at path
/// length d: the extension list the join writes into (and the d+1
/// recursion reads), the gathered moves, and the sibling-dedup store.
/// Levels are allocated once per Search (max_path_len + 1 of them) and
/// reused across all DFS moves at that depth, so after the first visit of
/// each depth the inner loop performs no heap allocation — extensions
/// overwrite the level's list in place, and dedup entries assign into
/// retained capacity.
struct PivotSearcher::DfsState {
  struct Level {
    PostingList extended;     // ExtendInto target for this depth
    PostingList decode_buf;   // block-decode arena for this depth's joins
    std::vector<Move> moves;  // outgoing moves of the current node
    // Sibling-dedup store for the current node: target node + content
    // hash as the cheap key, materialized list for the collision-proof
    // compare. seen_size is the logical length; entries past it are
    // retained capacity from nodes visited earlier at this depth.
    std::vector<int> seen_tos;
    std::vector<uint64_t> seen_hashes;
    std::vector<PostingList> seen_lists;
    size_t seen_size = 0;
  };
  struct PostingScratch {
    std::vector<Level> levels;  // indexed by depth; sized once in Search
  };

  LabelPath current;
  LabelPath best_path;
  std::vector<GraphId> best_members;
  std::vector<GraphId> leaf_members;  // CompleteMembers buffer, reused
  int best_count = 0;  // starts at the acceptance threshold
  uint64_t expansions = 0;
  bool truncated = false;
  uint64_t blocks_skipped = 0;
  uint64_t blocks_decoded = 0;
  uint64_t joins_pruned = 0;
  PostingScratch scratch;
};

namespace {

// Distinct alive graphs whose posting spans a full transformation path
// (start == 1 by construction, end == that graph's last node).
void CompleteMembers(const GraphSet& set, const PostingList& list,
                     std::vector<GraphId>* members) {
  members->clear();
  for (const Posting& p : list) {
    if (!set.alive(p.graph())) continue;
    if (p.end() != set.graph(p.graph()).last_node()) continue;
    if (!members->empty() && members->back() == p.graph()) continue;
    members->push_back(p.graph());
  }
}

}  // namespace

void PivotSearcher::Dfs(GraphId g, int node, const PostingList& list,
                        size_t list_distinct, size_t depth, DfsState* state,
                        std::vector<int>* lower_bounds,
                        uint64_t max_expansions) const {
  if (state->truncated) return;
  if (++state->expansions > max_expansions) {
    state->truncated = true;
    return;
  }
  const TransformationGraph& graph = set_->graph(g);
  if (node == graph.last_node()) {
    // rho is a transformation path of g (Algorithm 3 lines 2-5).
    CompleteMembers(*set_, list, &state->leaf_members);
    const int count = static_cast<int>(state->leaf_members.size());
    if (lower_bounds != nullptr && options_.global_early_term) {
      // Algorithm 4: raise Glo of every graph that contains this
      // transformation path.
      for (GraphId member : state->leaf_members) {
        int& lb = (*lower_bounds)[member];
        if (lb < count) lb = count;
      }
    }
    if (count > state->best_count) {
      state->best_count = count;
      state->best_path = state->current;
      state->best_members = state->leaf_members;
    }
    return;
  }
  if (static_cast<int>(state->current.size()) >= options_.max_path_len) {
    return;
  }

  // Every buffer below lives in this depth's scratch level; the recursion
  // only touches deeper levels, so the references stay valid across it.
  DfsState::Level& level = state->scratch.levels[depth];

  // Gather outgoing (label, edge, |I[label]|) moves. A label can sit on at
  // most one outgoing edge of a node (labels determine their output string,
  // and sibling edges have different target substrings). Moves are visited
  // in descending posting-list length (ties by ascending LabelId): big
  // lists raise best_count early, which makes the early terminations bite.
  // The order is a global total order on labels (list lengths are shared
  // run-wide), so the first-found maximum is still canonical across all
  // grouping variants.
  std::vector<Move>& moves = level.moves;
  moves.clear();
  for (const GraphEdge& edge : graph.edges_from(node)) {
    for (LabelId label : edge.labels) {
      const bool constant =
          set_->interner() != nullptr &&
          set_->interner()->Get(label).kind() ==
              StringFn::Kind::kConstantStr;
      moves.push_back(
          Move{set_->index().ListLength(label), constant, label, edge.to});
    }
  }
  // Ties between equally long lists break toward non-constant labels:
  // for singleton structure groups every path has count 1 and the
  // first-found path wins, so this bias is what keeps their pivots from
  // degenerating into pure "emit this literal" programs (which the
  // framework rightly filters out). The key is still a run-wide total
  // order on labels, so the canonical choice stays consistent across all
  // grouping variants.
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    if (a.list_length != b.list_length) return a.list_length > b.list_length;
    if (a.constant != b.constant) return !a.constant;
    return a.label < b.label;
  });

  // Sibling deduplication: labels on the same edge frequently extend to
  // identical posting lists (all P[x] x P[y] SubStr variants of one
  // occurrence, for instance). Exploring each would multiply the subtree
  // by the label multiplicity; one representative (the first in the global
  // move order) suffices for finding a maximal path, and taking the first
  // keeps the choice canonical across grouping variants. The dedup key is
  // the content hash ExtendInto computes during emission — nothing is
  // re-hashed here.
  level.seen_size = 0;

  for (const Move& move : moves) {
    // Cheap pre-check before the join: the extension's distinct-graph
    // count is at most min(|list| distinct, |I[label]|) — intersections
    // never grow (Section 5.2).
    const size_t upper = std::min(move.list_length, list_distinct);
    if (options_.local_early_term &&
        static_cast<int>(upper) <= state->best_count) {
      continue;
    }
    if (options_.global_early_term && lower_bounds != nullptr &&
        static_cast<int>(upper) < (*lower_bounds)[g]) {
      continue;
    }
    // Feed the acceptance thresholds down into the join: min_distinct is
    // the smallest distinct-graph count the post-join checks below would
    // let through, so the block cursor may abandon (and skip decoding
    // for) any join that provably cannot reach it — the full result
    // would land in one of those `continue`s anyway. Raw indexes take
    // the exact legacy merge; the control then reports nothing.
    ExtendControl control;
    control.decode_scratch = &level.decode_buf;
    control.current_distinct = list_distinct;
    if (options_.local_early_term) {
      control.min_distinct = state->best_count + 1;
    }
    if (options_.global_early_term && lower_bounds != nullptr) {
      control.min_distinct =
          std::max(control.min_distinct, (*lower_bounds)[g]);
    }
    const ExtendStats stats =
        InvertedIndex::ExtendInto(list, set_->index().Postings(move.label),
                                  &set_->alive_vector(), &level.extended,
                                  &control);
    state->blocks_skipped += control.blocks_skipped;
    state->blocks_decoded += control.blocks_decoded;
    if (control.pruned) {
      ++state->joins_pruned;
      continue;
    }
    if (level.extended.empty()) continue;
    if (options_.local_early_term &&
        static_cast<int>(stats.distinct_graphs) <= state->best_count) {
      continue;  // cannot strictly beat the best found so far
    }
    if (options_.global_early_term && lower_bounds != nullptr &&
        static_cast<int>(stats.distinct_graphs) < (*lower_bounds)[g]) {
      continue;  // cannot reach g's known lower bound
    }
    bool duplicate = false;
    for (size_t s = 0; s < level.seen_size; ++s) {
      if (level.seen_tos[s] == move.to && level.seen_hashes[s] == stats.hash &&
          level.seen_lists[s] == level.extended) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (level.seen_size == level.seen_lists.size()) {
      level.seen_tos.push_back(move.to);
      level.seen_hashes.push_back(stats.hash);
      level.seen_lists.push_back(level.extended);
    } else {
      level.seen_tos[level.seen_size] = move.to;
      level.seen_hashes[level.seen_size] = stats.hash;
      level.seen_lists[level.seen_size] = level.extended;
    }
    ++level.seen_size;
    state->current.push_back(move.label);
    Dfs(g, move.to, level.extended, stats.distinct_graphs, depth + 1, state,
        lower_bounds, max_expansions);
    state->current.pop_back();
    if (state->truncated) return;
  }
}

PivotSearcher::SearchResult PivotSearcher::Search(
    GraphId g, int threshold, std::vector<int>* lower_bounds,
    uint64_t expansion_budget, const std::vector<char>* count_mask) const {
  USTL_CHECK(g < set_->size());
  DfsState state;
  state.best_count = threshold;
  // Size the scratch arena once: depth can reach max_path_len, where Dfs
  // returns before touching its level, so max_path_len + 1 levels cover
  // every access and the vector never reallocates mid-recursion (levels
  // are referenced across recursive calls).
  state.scratch.levels.resize(
      static_cast<size_t>(std::max(options_.max_path_len, 0)) + 1);
  const uint64_t max_expansions =
      std::min(options_.max_expansions, expansion_budget);

  // The empty path matches every alive graph at the root (Algorithm 2
  // line 5 / Algorithm 7 line 8 initialize ell with all graphs). With a
  // count mask (Appendix-E sampling) only the sampled graphs enter, so
  // every downstream intersection works on short lists.
  PostingList root;
  root.reserve(set_->size());
  for (GraphId other = 0; other < set_->size(); ++other) {
    if (!set_->alive(other)) continue;
    if (count_mask != nullptr && (*count_mask)[other] == 0) continue;
    root.push_back(Posting(other, 1, 1));
  }

  // Global lower bounds are exact-count state; with sampled counting the
  // units would not match, so bounds are neither read nor written. The
  // root list holds one posting per graph, so its distinct count is its
  // size.
  Dfs(g, 1, root, root.size(), 0, &state,
      count_mask == nullptr ? lower_bounds : nullptr, max_expansions);

  SearchResult result;
  result.expansions = state.expansions;
  result.truncated = state.truncated;
  result.blocks_skipped = state.blocks_skipped;
  result.blocks_decoded = state.blocks_decoded;
  result.joins_pruned = state.joins_pruned;
  if (!state.best_path.empty()) {
    result.found = true;
    result.path = std::move(state.best_path);
    result.members = std::move(state.best_members);
    result.count = state.best_count;
    if (count_mask != nullptr) {
      // Rehydrate: resolve the winning path's members over all alive
      // graphs so the returned group is complete. Cold path (once per
      // sampled search), so the allocating Extend wrapper is fine.
      PostingList full;
      full.reserve(set_->size());
      for (GraphId other = 0; other < set_->size(); ++other) {
        if (set_->alive(other)) full.push_back(Posting(other, 1, 1));
      }
      for (LabelId label : result.path) {
        full = InvertedIndex::Extend(full, set_->index().Postings(label),
                                     &set_->alive_vector());
      }
      CompleteMembers(*set_, full, &result.members);
    }
  }
  return result;
}

}  // namespace ustl

#include "grouping/graph_set.h"

namespace ustl {

Result<GraphSet> GraphSet::Build(const std::vector<StringPair>& pairs,
                                 const GraphBuilder& builder,
                                 ThreadPool* pool,
                                 const IndexBuildOptions& index_options) {
  GraphSet set;
  std::vector<GraphBuilder::BuildRequest> requests;
  requests.reserve(pairs.size());
  for (const StringPair& pair : pairs) {
    requests.push_back({pair.lhs, pair.rhs});
  }
  Result<std::vector<TransformationGraph>> graphs =
      builder.BuildBatch(requests, pool);
  if (!graphs.ok()) return graphs.status();
  set.graphs_ = std::move(graphs).value();
  // The interner bounds every label id, so indexing skips its pre-sizing
  // scan; the pool builds the label-range shards concurrently (the index
  // is bit-identical to a serial build either way).
  set.index_ = InvertedIndex::Build(
      set.graphs_, pool, /*num_shards=*/0,
      builder.interner() != nullptr ? builder.interner()->size() : 0,
      index_options);
  set.alive_.assign(set.graphs_.size(), 1);
  set.interner_ = builder.interner();
  return set;
}

size_t GraphSet::AliveCount() const {
  size_t count = 0;
  for (char a : alive_) count += a != 0;
  return count;
}

}  // namespace ustl

#include "grouping/graph_set.h"

namespace ustl {

Result<GraphSet> GraphSet::Build(const std::vector<StringPair>& pairs,
                                 const GraphBuilder& builder) {
  GraphSet set;
  set.graphs_.reserve(pairs.size());
  for (const StringPair& pair : pairs) {
    Result<TransformationGraph> graph = builder.Build(pair.lhs, pair.rhs);
    if (!graph.ok()) return graph.status();
    set.graphs_.push_back(std::move(graph).value());
  }
  set.index_ = InvertedIndex::Build(set.graphs_);
  set.alive_.assign(set.graphs_.size(), 1);
  set.interner_ = builder.interner();
  return set;
}

size_t GraphSet::AliveCount() const {
  size_t count = 0;
  for (char a : alive_) count += a != 0;
  return count;
}

}  // namespace ustl

#include "grouping/optimal.h"

#include <algorithm>
#include <map>
#include <vector>

namespace ustl {

Result<size_t> OptimalPartitionSize(const GraphSet& set,
                                    const OptimalPartitionOptions& options) {
  std::vector<GraphId> alive;
  for (GraphId g = 0; g < set.size(); ++g) {
    if (set.alive(g)) alive.push_back(g);
  }
  const size_t n = alive.size();
  if (n == 0) return size_t{0};
  if (n > options.max_graphs) {
    return Status::ResourceExhausted("too many graphs for the exact solver");
  }

  // path -> bitmask of alive graphs containing it.
  std::map<LabelPath, uint32_t> containers;
  for (size_t idx = 0; idx < n; ++idx) {
    const TransformationGraph& graph = set.graph(alive[idx]);
    std::vector<LabelPath> paths =
        graph.EnumeratePaths(options.max_paths_per_graph + 1);
    if (paths.size() > options.max_paths_per_graph) {
      return Status::ResourceExhausted("too many paths for the exact solver");
    }
    for (LabelPath& path : paths) {
      containers[std::move(path)] |= (1u << idx);
    }
  }

  // Deduplicate masks and drop dominated ones (subsets of other masks).
  std::vector<uint32_t> masks;
  masks.reserve(containers.size());
  for (const auto& [path, mask] : containers) masks.push_back(mask);
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  std::vector<uint32_t> useful;
  for (uint32_t m : masks) {
    bool dominated = false;
    for (uint32_t other : masks) {
      if (other != m && (m & other) == m) {
        dominated = true;
        break;
      }
    }
    if (!dominated) useful.push_back(m);
  }

  // Subset DP for minimum cover: dp[u] = min sets to cover subset u.
  const uint32_t full = n == 32 ? 0xffffffffu : ((1u << n) - 1);
  const size_t kInf = n + 1;
  std::vector<size_t> dp(static_cast<size_t>(full) + 1, kInf);
  dp[0] = 0;
  for (uint32_t u = 0; u <= full; ++u) {
    if (dp[u] == kInf) continue;
    if (u == full) break;
    // Cover the lowest uncovered graph with every set that contains it.
    int bit = -1;
    for (size_t b = 0; b < n; ++b) {
      if (!(u & (1u << b))) {
        bit = static_cast<int>(b);
        break;
      }
    }
    USTL_CHECK(bit >= 0);
    for (uint32_t mask : useful) {
      if (!(mask & (1u << bit))) continue;
      uint32_t next = u | mask;
      if (dp[next] > dp[u] + 1) dp[next] = dp[u] + 1;
    }
  }
  if (dp[full] == kInf) {
    // Every graph contains at least its own full-constant path, so this
    // can only happen when a graph had zero enumerable paths.
    return Status::Internal("uncoverable graph (no transformation paths)");
  }
  return dp[full];
}

}  // namespace ustl

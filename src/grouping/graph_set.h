// A GraphSet bundles the transformation graphs of a collection of
// replacements with their shared label interner, inverted index, and
// liveness flags. One GraphSet corresponds to one structure group when
// structure refinement (Section 7.2) is on, or to the whole candidate set
// otherwise.
#ifndef USTL_GROUPING_GRAPH_SET_H_
#define USTL_GROUPING_GRAPH_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "graph/graph_builder.h"
#include "graph/transformation_graph.h"
#include "grouping/group.h"
#include "index/inverted_index.h"

namespace ustl {

/// Owns graphs + index + liveness for one grouping run.
class GraphSet {
 public:
  /// Builds graphs for all pairs with `builder` and indexes them.
  /// GraphId i corresponds to pairs[i]. A non-null `pool` constructs the
  /// graphs concurrently (GraphBuilder::BuildBatch) and builds the
  /// inverted index in label-range shards (InvertedIndex::Build); the
  /// result — graphs, interner ids and index — is bit-identical to the
  /// serial build. `index_options` selects the posting storage codec
  /// (raw packed arrays or block compression); groups are byte-identical
  /// either way.
  static Result<GraphSet> Build(const std::vector<StringPair>& pairs,
                                const GraphBuilder& builder,
                                ThreadPool* pool = nullptr,
                                const IndexBuildOptions& index_options = {});

  const std::vector<TransformationGraph>& graphs() const { return graphs_; }
  /// The interner the graphs were built against (borrowed; must outlive
  /// the set). Lets searchers consult label kinds for canonical ordering.
  const LabelInterner* interner() const { return interner_; }
  const TransformationGraph& graph(GraphId g) const { return graphs_[g]; }
  const InvertedIndex& index() const { return index_; }

  size_t size() const { return graphs_.size(); }

  bool alive(GraphId g) const { return alive_[g] != 0; }
  const std::vector<char>& alive_vector() const { return alive_; }
  void Kill(GraphId g) {
    if (alive_[g] == 0) return;
    alive_[g] = 0;
    ++kill_epoch_;
  }
  size_t AliveCount() const;

  /// Monotone counter bumped on every alive -> dead transition. Kills are
  /// permanent, so anything computed over the alive set (a cached pivot
  /// search, say) stays valid while the epoch is unchanged and needs
  /// revalidation only against graphs killed since — the incremental
  /// engine's cross-round search cache keys its invalidation on this.
  uint64_t kill_epoch() const { return kill_epoch_; }

 private:
  GraphSet() = default;

  std::vector<TransformationGraph> graphs_;
  InvertedIndex index_;
  std::vector<char> alive_;
  uint64_t kill_epoch_ = 0;
  const LabelInterner* interner_ = nullptr;
};

}  // namespace ustl

#endif  // USTL_GROUPING_GRAPH_SET_H_

#include "grouping/grouping.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/timer.h"
#include "dsl/parser.h"
#include "dsl/program.h"
#include "obs/trace.h"
#include "text/structure.h"

namespace ustl {

std::vector<std::pair<std::string, std::vector<size_t>>>
PartitionByStructure(const std::vector<StringPair>& pairs,
                     bool structure_refinement) {
  std::map<std::string, std::vector<size_t>> partition;
  for (size_t i = 0; i < pairs.size(); ++i) {
    std::string key = structure_refinement
                          ? ReplacementStructure(pairs[i].lhs, pairs[i].rhs)
                          : std::string();
    partition[key].push_back(i);
  }
  std::vector<std::pair<std::string, std::vector<size_t>>> out;
  out.reserve(partition.size());
  for (auto& [key, indices] : partition) {
    out.emplace_back(key, std::move(indices));
  }
  return out;
}

namespace {

// Builds the per-structure-group scorer (Appendix E) fed with the group's
// strings; `global` is the shared whole-input frequency table.
std::unique_ptr<FrequencyTermScorer> MakeScorer(
    const std::vector<StringPair>& pairs, const std::vector<size_t>& indices,
    const CorpusFrequency* global) {
  auto scorer = std::make_unique<FrequencyTermScorer>(global);
  for (size_t i : indices) {
    scorer->AddStructureString(pairs[i].lhs);
    scorer->AddStructureString(pairs[i].rhs);
  }
  return scorer;
}

std::vector<StringPair> SelectPairs(const std::vector<StringPair>& pairs,
                                    const std::vector<size_t>& indices) {
  std::vector<StringPair> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(pairs[i]);
  return out;
}

// Fills the pure_constant and constant_coverage annotations of a group
// whose members are already resolved; `first` is any member pair (the
// pivot program is consistent with every member, so one representative
// suffices).
void AnnotateGroup(const LabelInterner& interner, const StringPair& first,
                   Group* group) {
  group->pure_constant = !group->pivot.empty();
  for (LabelId label : group->pivot) {
    if (interner.Get(label).kind() != StringFn::Kind::kConstantStr) {
      group->pure_constant = false;
      break;
    }
  }
  group->constant_coverage = Program::FromPath(group->pivot, interner)
                                 .ConstantCoverage(first.lhs, first.rhs);
}

}  // namespace

std::vector<Group> GroupAllUpfront(const std::vector<StringPair>& pairs,
                                   const GroupingOptions& options,
                                   bool early_termination, UpfrontStats* stats,
                                   uint64_t max_expansions) {
  Timer timer;
  CorpusFrequency global_corpus;
  if (options.use_term_scorer) {
    for (const StringPair& pair : pairs) {
      global_corpus.Add(pair.lhs);
      global_corpus.Add(pair.rhs);
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (ResolveThreadCount(options.num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(ResolveThreadCount(options.num_threads));
  }

  // Structure groups are disjoint, so each partition is grouped
  // independently (its own interner, scorer and graphs) and results are
  // concatenated in partition order — the same order, stats and groups the
  // serial loop produces, whatever the thread count.
  auto partitions = PartitionByStructure(pairs, options.structure_refinement);
  struct PartitionOutput {
    std::vector<Group> groups;
    OneShotStats stats;
  };
  std::vector<PartitionOutput> outputs =
      ParallelMap<PartitionOutput>(pool.get(), partitions.size(), [&](size_t p) {
        auto& [structure, indices] = partitions[p];
        PartitionOutput out;
        LabelInterner interner;
        std::unique_ptr<FrequencyTermScorer> scorer;
        GraphBuilderOptions graph_options = options.graph;
        if (options.use_term_scorer && options.structure_refinement) {
          scorer = MakeScorer(pairs, indices, &global_corpus);
          graph_options.scorer = scorer.get();
        }
        GraphBuilder builder(graph_options, &interner);
        // The pool also accelerates graph construction and the sharded
        // index build inside a partition; nested use from a worker thread
        // runs inline (single-shard).
        IndexBuildOptions index_options;
        index_options.codec = options.index_codec;
        index_options.block = options.block_postings;
        Result<GraphSet> set = GraphSet::Build(SelectPairs(pairs, indices),
                                               builder, pool.get(),
                                               index_options);
        USTL_CHECK(set.ok());

        OneShotOptions oneshot;
        oneshot.early_termination = early_termination;
        oneshot.max_path_len = options.max_path_len;
        oneshot.max_expansions = max_expansions;
        // The pool also wave-parallelizes the pivot searches inside the
        // partition; when this task itself landed on a pool worker the
        // nested fan-out degrades to the serial scan, with identical
        // groups either way.
        std::vector<ReplacementGroup> local =
            UnsupervisedGrouping(*set, oneshot, &out.stats, pool.get());
        for (ReplacementGroup& rg : local) {
          Group group;
          group.pivot = std::move(rg.pivot);
          group.structure = structure;
          group.program =
              SerializeProgram(Program::FromPath(group.pivot, interner));
          group.member_pair_indices.reserve(rg.members.size());
          for (GraphId g : rg.members) {
            group.member_pair_indices.push_back(indices[g]);
          }
          if (!group.member_pair_indices.empty()) {
            AnnotateGroup(interner, pairs[group.member_pair_indices[0]],
                          &group);
          }
          out.groups.push_back(std::move(group));
        }
        return out;
      });

  std::vector<Group> groups;
  OneShotStats search_stats;
  for (PartitionOutput& out : outputs) {
    for (Group& group : out.groups) groups.push_back(std::move(group));
    search_stats.expansions += out.stats.expansions;
    search_stats.truncated = search_stats.truncated || out.stats.truncated;
    search_stats.blocks_skipped += out.stats.blocks_skipped;
    search_stats.blocks_decoded += out.stats.blocks_decoded;
    search_stats.joins_pruned += out.stats.joins_pruned;
  }

  std::stable_sort(groups.begin(), groups.end(),
                   [](const Group& a, const Group& b) {
                     return a.size() > b.size();
                   });
  if (stats != nullptr) {
    stats->seconds = timer.ElapsedSeconds();
    stats->expansions = search_stats.expansions;
    stats->truncated = search_stats.truncated;
    stats->num_groups = groups.size();
    stats->blocks_skipped = search_stats.blocks_skipped;
    stats->blocks_decoded = search_stats.blocks_decoded;
    stats->joins_pruned = search_stats.joins_pruned;
  }
  return groups;
}

namespace {

// Content hash of everything that shapes a GroupingEngine's graphs and
// searches except the structure key: the graph-construction options plus
// the column's full ordered pair list (the Appendix-E scorer is built
// from the whole column, so every structure group depends on all of it).
// Output-invariant knobs (thread counts, reuse/caching toggles, budgets —
// sharing is disabled under finite budgets anyway) stay out of the key so
// differently-configured but identically-grouping runs still share.
SearchCacheKey HashSearchContext(const GroupingOptions& options,
                                 const std::vector<StringPair>& pairs) {
  SearchKeyHasher hasher;
  const GraphBuilderOptions& graph = options.graph;
  hasher.U64(static_cast<uint64_t>(graph.enable_affix) |
             static_cast<uint64_t>(graph.enable_substr) << 1 |
             static_cast<uint64_t>(graph.enable_constants) << 2 |
             static_cast<uint64_t>(graph.position_static_order) << 3 |
             static_cast<uint64_t>(graph.token_aligned_labels) << 4 |
             static_cast<uint64_t>(options.use_term_scorer) << 5 |
             static_cast<uint64_t>(options.structure_refinement) << 6);
  hasher.U64(static_cast<uint64_t>(graph.max_input_len));
  hasher.U64(static_cast<uint64_t>(graph.max_output_len));
  hasher.U64(static_cast<uint64_t>(graph.max_substr_labels_per_edge));
  hasher.U64(static_cast<uint64_t>(options.max_path_len));
  hasher.U64(pairs.size());
  hasher.Pairs(pairs);
  return hasher.Finish();
}

constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();

}  // namespace

GroupingEngine::GroupingEngine(std::vector<StringPair> pairs,
                               GroupingOptions options)
    : pairs_(std::move(pairs)), options_(options) {
  if (ResolveThreadCount(options_.num_threads) > 1) {
    pool_ =
        std::make_unique<ThreadPool>(ResolveThreadCount(options_.num_threads));
  }
  if (options_.use_term_scorer) {
    for (const StringPair& pair : pairs_) {
      global_corpus_.Add(pair.lhs);
      global_corpus_.Add(pair.rhs);
    }
  }
  for (auto& [structure, indices] :
       PartitionByStructure(pairs_, options_.structure_refinement)) {
    SubGroup sub;
    sub.structure = structure;
    sub.pair_indices = std::move(indices);
    subs_.push_back(std::move(sub));
  }
  // Cross-engine sharing applies exactly where cross-round reuse does
  // (exact mode); hashing the column costs one pass, so skip it when the
  // configuration can never use the key.
  if (options_.shared_search_cache != nullptr &&
      options_.reuse_search_results && options_.pivot_sample_size == 0 &&
      options_.max_expansions_per_search == kNoLimit &&
      options_.max_total_expansions == kNoLimit) {
    search_context_ = HashSearchContext(options_, pairs_);
  }
}

void GroupingEngine::Preprocess(SubGroup* sub) {
  if (sub->engine != nullptr) return;
  // graph_build covers scorer + graph/index construction for this
  // structure group; spans from concurrent RefineBatch workers interleave
  // safely (TraceContext is thread-safe, spans close independently).
  ScopedSpan build_span(options_.trace, options_.trace_parent, "graph_build",
                        sub->structure);
  build_span.AddAttr("pairs", static_cast<int64_t>(sub->pair_indices.size()));
  sub->interner = std::make_unique<LabelInterner>();
  GraphBuilderOptions graph_options = options_.graph;
  if (options_.use_term_scorer && options_.structure_refinement) {
    sub->scorer = MakeScorer(pairs_, sub->pair_indices, &global_corpus_);
    graph_options.scorer = sub->scorer.get();
  }
  GraphBuilder builder(graph_options, sub->interner.get());
  // The pool parallelizes graph construction and index sharding within
  // the group; when this Preprocess itself runs on a pool worker
  // (RefineBatch), the nested calls degrade to the serial loop.
  IndexBuildOptions index_options;
  index_options.codec = options_.index_codec;
  index_options.block = options_.block_postings;
  Result<GraphSet> set =
      GraphSet::Build(SelectPairs(pairs_, sub->pair_indices), builder,
                      pool_.get(), index_options);
  USTL_CHECK(set.ok());
  IncrementalOptions inc_options;
  inc_options.max_path_len = options_.max_path_len;
  inc_options.max_expansions_per_search = options_.max_expansions_per_search;
  inc_options.sample_size = options_.pivot_sample_size;
  inc_options.sample_seed = options_.pivot_sample_seed;
  inc_options.reuse_search_results = options_.reuse_search_results;
  inc_options.adaptive_wave_sizing = options_.adaptive_wave_sizing;
  inc_options.cancel = options_.cancel;
  inc_options.trace = options_.trace;
  inc_options.trace_parent = options_.trace_parent;
  if (search_context_.valid()) {
    // Scope the shared context hash to this structure group; the engine
    // double-checks exact-mode eligibility itself.
    SearchKeyHasher hasher;
    hasher.U64(search_context_.lo);
    hasher.U64(search_context_.hi);
    hasher.Str(sub->structure);
    inc_options.shared_cache = options_.shared_search_cache;
    inc_options.shared_cache_key = hasher.Finish();
  }
  // The expansion budget is shared across structure groups: hand each
  // newly preprocessed engine whatever is left.
  if (options_.max_total_expansions !=
      std::numeric_limits<uint64_t>::max()) {
    uint64_t spent = 0;
    for (const SubGroup& other : subs_) {
      if (other.engine != nullptr) spent += other.engine->stats().expansions;
    }
    inc_options.max_total_expansions =
        options_.max_total_expansions > spent
            ? options_.max_total_expansions - spent
            : 0;
  }
  // The engine borrows the pool for its exact-mode wave scan; when its
  // Peek runs on a pool worker (RefineBatch fanning several sub-groups
  // out) the waves degrade to the serial scan instead of nesting.
  sub->engine = std::make_unique<IncrementalEngine>(std::move(set).value(),
                                                    inc_options, pool_.get());
}

void GroupingEngine::RefineBatch(const std::vector<SubGroup*>& candidates) {
  // Disjoint structure groups: each task touches only its own SubGroup and
  // shared const state (pairs_, options_, global_corpus_). Peek() is pulled
  // into the task so the pivot searches — the expensive part — overlap too.
  ParallelFor(pool_.get(), candidates.size(), [&](size_t i) {
    SubGroup* sub = candidates[i];
    Preprocess(sub);
    sub->engine->Peek();
  });
  for (SubGroup* sub : candidates) {
    if (!sub->engine->Peek().has_value()) sub->exhausted = true;
  }
}

int GroupingEngine::SubHint(const SubGroup& sub) const {
  if (sub.exhausted) return 0;
  if (sub.engine == nullptr) {
    // Section 7.2: before preprocessing, the structure-group size is the
    // upper bound for every replacement in it.
    return static_cast<int>(sub.pair_indices.size());
  }
  return sub.engine->UpperHint();
}

std::optional<Group> GroupingEngine::Next() {
  // Lazy k-way merge over the disjoint structure groups: keep at most one
  // candidate group cached per sub-group, and refine (preprocess + peek)
  // sub-groups in descending-hint order until no unpeeked sub-group could
  // reach the best cached candidate.
  //
  // The winner rule — largest cached group, ties to the lowest sub index,
  // with refinement required for every unpeeked sub whose hint *reaches*
  // (not exceeds) the best size — is path-independent: once no unpeeked
  // sub can tie the best, every sub that could win or steal the tie has
  // been peeked, so the returned group is the global (max size, min index)
  // over alive sub-groups no matter which subs earlier calls happened to
  // refine. That is what makes the group sequence bit-identical for any
  // thread count and wave size.
  while (true) {
    options_.cancel.Check();
    // Best cached candidate across sub-groups. Ties prefer the larger
    // structure group (the sub the lazy hint order would have refined and
    // returned first), then the lower sub index; both keys are static, so
    // the choice never depends on which subs happen to be peeked.
    SubGroup* best_sub = nullptr;
    int best_size = 0;
    for (SubGroup& sub : subs_) {
      if (sub.exhausted || sub.engine == nullptr || !sub.engine->HasPeeked()) {
        continue;
      }
      const std::optional<ReplacementGroup>& peek = sub.engine->Peek();
      if (!peek.has_value()) {
        sub.exhausted = true;
        continue;
      }
      int size = static_cast<int>(peek->members.size());
      if (best_sub == nullptr || size > best_size ||
          (size == best_size &&
           sub.pair_indices.size() > best_sub->pair_indices.size())) {
        best_sub = &sub;
        best_size = size;
      }
    }
    // Sub-groups without a cached candidate that could still change the
    // winner and therefore need refinement: a higher hint could beat the
    // best outright, and a hint equal to the best matters only when the
    // sub's static tie-break key (larger structure group, then lower
    // index) outranks the current best's.
    std::vector<SubGroup*> candidates;
    for (SubGroup& sub : subs_) {
      if (sub.exhausted) continue;
      if (sub.engine != nullptr && sub.engine->HasPeeked()) continue;
      const int hint = SubHint(sub);
      if (hint < 1 || hint < best_size) continue;
      if (best_sub != nullptr && hint == best_size) {
        if (sub.pair_indices.size() < best_sub->pair_indices.size()) continue;
        if (sub.pair_indices.size() == best_sub->pair_indices.size() &&
            &sub > best_sub) {
          continue;
        }
      }
      candidates.push_back(&sub);
    }
    if (!candidates.empty()) {
      // Highest hints first (stable: ties keep sub order). Refining in
      // waves keeps the engine lazy — the first wave usually raises
      // best_size enough to disqualify the remaining candidates.
      std::stable_sort(candidates.begin(), candidates.end(),
                       [this](SubGroup* a, SubGroup* b) {
                         return SubHint(*a) > SubHint(*b);
                       });
      // A finite shared expansion budget makes preprocessing
      // order-dependent (each engine receives what the previous ones
      // left), so budgeted runs refine strictly one at a time, whatever
      // the thread count.
      const bool budgeted = options_.max_total_expansions !=
                            std::numeric_limits<uint64_t>::max();
      size_t wave = budgeted || pool_ == nullptr
                        ? 1
                        : static_cast<size_t>(pool_->num_threads());
      if (wave > candidates.size()) wave = candidates.size();
      candidates.resize(wave);
      RefineBatch(candidates);
      continue;
    }
    if (best_sub == nullptr) return std::nullopt;

    const std::optional<ReplacementGroup>& peek = best_sub->engine->Peek();
    USTL_CHECK(peek.has_value());
    Group group;
    group.pivot = peek->pivot;
    group.structure = best_sub->structure;
    group.program = SerializeProgram(
        Program::FromPath(group.pivot, *best_sub->interner));
    for (GraphId g : peek->members) {
      group.member_pair_indices.push_back(best_sub->pair_indices[g]);
    }
    if (!group.member_pair_indices.empty()) {
      AnnotateGroup(*best_sub->interner,
                    pairs_[group.member_pair_indices[0]], &group);
    }
    best_sub->engine->ConsumePeeked();
    return group;
  }
}

IncrementalStats GroupingEngine::stats() const {
  IncrementalStats out;
  for (const SubGroup& sub : subs_) {
    if (sub.engine == nullptr) continue;
    const IncrementalStats& stats = sub.engine->stats();
    out.expansions += stats.expansions;
    out.searches += stats.searches;
    out.cache_hits += stats.cache_hits;
    out.speculative_searches += stats.speculative_searches;
    out.speculative_hits += stats.speculative_hits;
    out.warm_hits += stats.warm_hits;
    out.blocks_skipped += stats.blocks_skipped;
    out.blocks_decoded += stats.blocks_decoded;
    out.joins_pruned += stats.joins_pruned;
    out.truncated |= stats.truncated;
  }
  return out;
}

size_t GroupingEngine::RemainingCount() const {
  size_t count = 0;
  for (const SubGroup& sub : subs_) {
    if (sub.exhausted) continue;
    count += sub.engine == nullptr ? sub.pair_indices.size()
                                   : sub.engine->AliveCount();
  }
  return count;
}

}  // namespace ustl

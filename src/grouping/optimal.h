// Exact optimal partition (Definition 3) for small inputs. The paper
// proves the problem NP-complete by reduction from set cover; this solver
// runs the reduction forward: enumerate every transformation path of every
// graph, view each distinct path as the set of graphs containing it, and
// find a minimum cover by subset dynamic programming. A minimum cover
// induces a minimum partition (assign each graph to one covering path), so
// the optimum sizes coincide. Exponential; use in tests and ablations only.
#ifndef USTL_GROUPING_OPTIMAL_H_
#define USTL_GROUPING_OPTIMAL_H_

#include <cstddef>

#include "common/status.h"
#include "grouping/graph_set.h"

namespace ustl {

struct OptimalPartitionOptions {
  /// Give up when a graph has more root-to-sink paths than this.
  size_t max_paths_per_graph = 20000;
  /// Give up beyond this many graphs (the subset DP is O(2^n * n)).
  size_t max_graphs = 20;
};

/// The minimum number of groups over the alive graphs of `set`, or an
/// error if the instance exceeds the limits.
Result<size_t> OptimalPartitionSize(const GraphSet& set,
                                    const OptimalPartitionOptions& options);

}  // namespace ustl

#endif  // USTL_GROUPING_OPTIMAL_H_

// Group types shared by the grouping algorithms.
#ifndef USTL_GROUPING_GROUP_H_
#define USTL_GROUPING_GROUP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dsl/interner.h"
#include "graph/transformation_graph.h"

namespace ustl {

/// An input replacement for grouping: an ordered pair of different strings.
struct StringPair {
  std::string lhs;
  std::string rhs;

  bool operator==(const StringPair& o) const {
    return lhs == o.lhs && rhs == o.rhs;
  }
  bool operator<(const StringPair& o) const {
    if (lhs != o.lhs) return lhs < o.lhs;
    return rhs < o.rhs;
  }
};

/// A group local to one GraphSet: the shared pivot path and the member
/// graph ids.
struct ReplacementGroup {
  LabelPath pivot;
  std::vector<GraphId> members;

  size_t size() const { return members.size(); }
};

/// A group at the driver level: members refer to indices into the original
/// pair list; `structure` is the structure-group key the group came from
/// (empty when structure refinement is off).
struct Group {
  LabelPath pivot;
  std::string structure;
  std::string program;  // human-readable pivot program for reports
  std::vector<size_t> member_pair_indices;
  /// True when the pivot is a single full-width ConstantStr label, i.e.
  /// "replace anything by this exact string". Such groups arise from
  /// several different values pairing with one identical value (typically
  /// repeated conflicts) and never describe a format transformation; the
  /// framework can skip them (see FrameworkOptions).
  bool pure_constant = false;
  /// Fraction of the first member's target produced by ConstantStr
  /// functions along the pivot program (Program::ConstantCoverage).
  /// Constant-heavy pivots are "mostly replace by this literal" programs —
  /// repeated-conflict artifacts rather than format transformations.
  /// pure_constant groups have coverage 1.0.
  double constant_coverage = 0.0;

  size_t size() const { return member_pair_indices.size(); }
};

}  // namespace ustl

#endif  // USTL_GROUPING_GROUP_H_

// UnsupervisedGrouping (Algorithm 2): compute every graph's pivot path
// upfront and group graphs by pivot. The `early_termination` switch turns
// Algorithm 4's optimizations on (the paper's EarlyTerm method) or off
// (the paper's OneShot method); both produce identical groups, only the
// upfront cost differs (Figure 9).
//
// With a thread pool the per-graph searches run in deterministic waves:
// a pivot is the searched graph's canonical first-found maximal path,
// which does not depend on the global thresholds Glo (valid lower bounds
// only prune subtrees that cannot contain a maximal path — see
// pivot_search.h), so every wave can search against the Glo snapshot its
// wave started with and the groups stay byte-identical to the serial
// scan. Glo is max-merged between waves, which is what keeps Algorithm
// 4's global early termination firing; only the pruning power — the
// expansion statistics — depends on the wave size.
#ifndef USTL_GROUPING_ONESHOT_H_
#define USTL_GROUPING_ONESHOT_H_

#include <vector>

#include "common/parallel.h"
#include "grouping/graph_set.h"
#include "grouping/pivot_search.h"

namespace ustl {

struct OneShotOptions {
  bool early_termination = true;
  int max_path_len = 6;
  /// Safety valve for the vanilla search on large inputs; see
  /// PivotSearcher::Options::max_expansions.
  uint64_t max_expansions = std::numeric_limits<uint64_t>::max();
};

struct OneShotStats {
  uint64_t expansions = 0;
  bool truncated = false;
  /// Block-codec cursor counters (0 on raw indexes; pivot_search.h).
  uint64_t blocks_skipped = 0;
  uint64_t blocks_decoded = 0;
  uint64_t joins_pruned = 0;
};

/// Partitions the alive graphs of `set` into pivot-path groups, largest
/// first (ties broken by lexicographic pivot path). Does not modify `set`.
/// A non-null `pool` fans the per-graph pivot searches out in waves as
/// described above; groups are byte-identical for any thread count. When
/// `max_expansions` is finite the scan stays serial regardless of the
/// pool — a truncated search's result depends on the Glo state it ran
/// under, and the documented truncation behavior is the serial one.
std::vector<ReplacementGroup> UnsupervisedGrouping(const GraphSet& set,
                                                   const OneShotOptions& options,
                                                   OneShotStats* stats,
                                                   ThreadPool* pool = nullptr);

}  // namespace ustl

#endif  // USTL_GROUPING_ONESHOT_H_

// UnsupervisedGrouping (Algorithm 2): compute every graph's pivot path
// upfront and group graphs by pivot. The `early_termination` switch turns
// Algorithm 4's optimizations on (the paper's EarlyTerm method) or off
// (the paper's OneShot method); both produce identical groups, only the
// upfront cost differs (Figure 9).
#ifndef USTL_GROUPING_ONESHOT_H_
#define USTL_GROUPING_ONESHOT_H_

#include <vector>

#include "grouping/graph_set.h"
#include "grouping/pivot_search.h"

namespace ustl {

struct OneShotOptions {
  bool early_termination = true;
  int max_path_len = 6;
  /// Safety valve for the vanilla search on large inputs; see
  /// PivotSearcher::Options::max_expansions.
  uint64_t max_expansions = std::numeric_limits<uint64_t>::max();
};

struct OneShotStats {
  uint64_t expansions = 0;
  bool truncated = false;
};

/// Partitions the alive graphs of `set` into pivot-path groups, largest
/// first (ties broken by lexicographic pivot path). Does not modify `set`.
std::vector<ReplacementGroup> UnsupervisedGrouping(const GraphSet& set,
                                                   const OneShotOptions& options,
                                                   OneShotStats* stats);

}  // namespace ustl

#endif  // USTL_GROUPING_ONESHOT_H_

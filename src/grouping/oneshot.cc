#include "grouping/oneshot.h"

#include <algorithm>
#include <map>

namespace ustl {

std::vector<ReplacementGroup> UnsupervisedGrouping(
    const GraphSet& set, const OneShotOptions& options, OneShotStats* stats) {
  PivotSearcher::Options searcher_options;
  searcher_options.local_early_term = options.early_termination;
  searcher_options.global_early_term = options.early_termination;
  searcher_options.max_path_len = options.max_path_len;
  searcher_options.max_expansions = options.max_expansions;
  PivotSearcher searcher(&set, searcher_options);

  std::vector<int> lower_bounds(set.size(), 1);  // Algorithm 4 line 2

  std::map<LabelPath, ReplacementGroup> by_pivot;
  for (GraphId g = 0; g < set.size(); ++g) {
    if (!set.alive(g)) continue;
    PivotSearcher::SearchResult result = searcher.Search(
        g, /*threshold=*/0,
        options.early_termination ? &lower_bounds : nullptr);
    if (stats != nullptr) {
      stats->expansions += result.expansions;
      stats->truncated = stats->truncated || result.truncated;
    }
    // Every graph contains at least its full-width ConstantStr path, so a
    // pivot is always found at threshold 0 (unless truncated mid-search,
    // in which case the best found so far still serves).
    USTL_CHECK(result.found);
    ReplacementGroup& group = by_pivot[result.path];
    group.pivot = result.path;
    group.members.push_back(g);
  }

  std::vector<ReplacementGroup> groups;
  groups.reserve(by_pivot.size());
  for (auto& [path, group] : by_pivot) groups.push_back(std::move(group));
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ReplacementGroup& a, const ReplacementGroup& b) {
                     if (a.members.size() != b.members.size()) {
                       return a.members.size() > b.members.size();
                     }
                     return a.pivot < b.pivot;
                   });
  return groups;
}

}  // namespace ustl

#include "grouping/oneshot.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ustl {

std::vector<ReplacementGroup> UnsupervisedGrouping(
    const GraphSet& set, const OneShotOptions& options, OneShotStats* stats,
    ThreadPool* pool) {
  PivotSearcher::Options searcher_options;
  searcher_options.local_early_term = options.early_termination;
  searcher_options.global_early_term = options.early_termination;
  searcher_options.max_path_len = options.max_path_len;
  searcher_options.max_expansions = options.max_expansions;
  PivotSearcher searcher(&set, searcher_options);

  std::vector<int> lower_bounds(set.size(), 1);  // Algorithm 4 line 2

  std::vector<GraphId> order;
  order.reserve(set.size());
  for (GraphId g = 0; g < set.size(); ++g) {
    if (set.alive(g)) order.push_back(g);
  }

  // Only what grouping needs outlives a search: the pivot path and the
  // stats. Member lists are rebuilt from the per-graph pivots below, so
  // holding every SearchResult (members included) across the whole scan
  // would waste memory for nothing.
  struct Pivot {
    LabelPath path;
    uint64_t expansions = 0;
    bool truncated = false;
    bool found = false;
    uint64_t blocks_skipped = 0;
    uint64_t blocks_decoded = 0;
    uint64_t joins_pruned = 0;
  };
  std::vector<Pivot> pivots(order.size());
  const auto keep = [](PivotSearcher::SearchResult result, Pivot* out) {
    out->path = std::move(result.path);
    out->expansions = result.expansions;
    out->truncated = result.truncated;
    out->found = result.found;
    out->blocks_skipped = result.blocks_skipped;
    out->blocks_decoded = result.blocks_decoded;
    out->joins_pruned = result.joins_pruned;
  };

  const bool unbounded =
      options.max_expansions == std::numeric_limits<uint64_t>::max();
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        !pool->InWorkerThread() && unbounded &&
                        order.size() > 1;
  if (!parallel) {
    for (size_t i = 0; i < order.size(); ++i) {
      keep(searcher.Search(order[i], /*threshold=*/0,
                           options.early_termination ? &lower_bounds
                                                     : nullptr),
           &pivots[i]);
    }
  } else {
    // Deterministic waves over the shared pool. Every search in a wave
    // reads the Glo state its wave started with (a private copy each, so
    // the concurrent DFS updates never race); between waves the copies
    // are max-merged back — Glo entries only ever rise, so the merged
    // state is exactly the strongest bound any search established, and
    // later waves prune against it like the serial scan does against its
    // running state.
    const size_t wave = static_cast<size_t>(pool->num_threads());
    std::vector<std::vector<int>> wave_bounds(std::min(wave, order.size()));
    for (size_t pos = 0; pos < order.size(); pos += wave) {
      const size_t count = std::min(wave, order.size() - pos);
      ParallelFor(pool, count, [&](size_t i) {
        std::vector<int>* bounds = nullptr;
        if (options.early_termination) {
          wave_bounds[i] = lower_bounds;
          bounds = &wave_bounds[i];
        }
        keep(searcher.Search(order[pos + i], /*threshold=*/0, bounds),
             &pivots[pos + i]);
      });
      if (options.early_termination) {
        for (size_t i = 0; i < count; ++i) {
          for (size_t k = 0; k < lower_bounds.size(); ++k) {
            lower_bounds[k] = std::max(lower_bounds[k], wave_bounds[i][k]);
          }
        }
      }
    }
  }

  std::map<LabelPath, ReplacementGroup> by_pivot;
  for (size_t i = 0; i < order.size(); ++i) {
    const Pivot& pivot = pivots[i];
    if (stats != nullptr) {
      stats->expansions += pivot.expansions;
      stats->truncated = stats->truncated || pivot.truncated;
      stats->blocks_skipped += pivot.blocks_skipped;
      stats->blocks_decoded += pivot.blocks_decoded;
      stats->joins_pruned += pivot.joins_pruned;
    }
    // Every graph contains at least its full-width ConstantStr path, so a
    // pivot is always found at threshold 0 (unless truncated mid-search,
    // in which case the best found so far still serves).
    USTL_CHECK(pivot.found);
    ReplacementGroup& group = by_pivot[pivot.path];
    group.pivot = pivot.path;
    group.members.push_back(order[i]);
  }

  std::vector<ReplacementGroup> groups;
  groups.reserve(by_pivot.size());
  for (auto& [path, group] : by_pivot) groups.push_back(std::move(group));
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ReplacementGroup& a, const ReplacementGroup& b) {
                     if (a.members.size() != b.members.size()) {
                       return a.members.size() > b.members.size();
                     }
                     return a.pivot < b.pivot;
                   });
  return groups;
}

}  // namespace ustl

// SearchPivot (Algorithm 3) with the local and global threshold-based
// early terminations of Algorithm 4. The DFS maintains the current path
// rho, the posting list of spans where rho matches, and the node reached
// in the searched graph; outgoing (label, edge) pairs are visited in
// ascending LabelId order, so paths are enumerated lexicographically and
// the first-found maximum is the lexicographically smallest pivot path —
// this canonical choice makes all grouping variants agree under count
// ties (see DESIGN.md).
#ifndef USTL_GROUPING_PIVOT_SEARCH_H_
#define USTL_GROUPING_PIVOT_SEARCH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "grouping/graph_set.h"

namespace ustl {

/// One pivot-path search over the alive graphs of a GraphSet.
class PivotSearcher {
 public:
  struct Options {
    /// Local threshold-based early termination (Section 5.2): prune
    /// prefixes whose graph count cannot strictly beat the best found.
    bool local_early_term = true;
    /// Global threshold-based early termination (Section 5.2): prune
    /// prefixes whose graph count is below the searched graph's known
    /// lower bound.
    bool global_early_term = true;
    /// Maximum path length theta (Section 8.2 uses 6).
    int max_path_len = 6;
    /// Safety valve for the vanilla search: stop after this many DFS
    /// expansions and return the best found so far. Unlimited by default.
    uint64_t max_expansions = std::numeric_limits<uint64_t>::max();
  };

  struct SearchResult {
    bool found = false;
    LabelPath path;                 // the pivot path when found
    std::vector<GraphId> members;   // alive graphs containing `path` as a
                                    // transformation path (complete spans)
    int count = 0;                  // members.size()
    uint64_t expansions = 0;        // DFS nodes visited (for Figure 9)
    bool truncated = false;         // hit max_expansions
    // Block-codec cursor statistics (always 0 on raw indexes). Skips and
    // prunes never change the search outcome — skipped blocks provably
    // contribute nothing and pruned joins are results the threshold
    // checks would discard — so these move with the codec while every
    // field above stays byte-identical.
    uint64_t blocks_skipped = 0;    // blocks rejected on graph bounds
    uint64_t blocks_decoded = 0;    // blocks actually decoded
    uint64_t joins_pruned = 0;      // joins abandoned below the threshold
  };

  PivotSearcher(const GraphSet* set, Options options)
      : set_(set), options_(options) {}

  /// Finds the pivot path of graph `g`: the transformation path of `g`
  /// shared by the largest number of alive graphs, provided that number is
  /// strictly greater than `threshold`. `lower_bounds` (one entry per
  /// graph, may be null) carries the global thresholds Glo across calls:
  /// it is read for pruning and updated whenever a complete path is found.
  /// `expansion_budget` caps this call's DFS expansions on top of the
  /// constructed max_expansions (the smaller of the two applies).
  ///
  /// `count_mask` (indexed by GraphId, may be null) activates the
  /// Appendix-E sampling acceleration: path containment is counted over
  /// the masked alive graphs only, which keeps every posting list short.
  /// The returned members are then re-resolved over ALL alive graphs
  /// (one extra walk of the winning path), so groups stay complete; only
  /// the "largest" choice becomes approximate, relative to the sample.
  /// result.count stays in sample units (it is what thresholds compare
  /// against); result.members.size() is the full-set group size.
  SearchResult Search(GraphId g, int threshold,
                      std::vector<int>* lower_bounds,
                      uint64_t expansion_budget =
                          std::numeric_limits<uint64_t>::max(),
                      const std::vector<char>* count_mask = nullptr) const;

 private:
  struct DfsState;
  /// One DFS expansion. `list` is the posting list of the current path
  /// rho (living in the caller's scratch level), `list_distinct` its
  /// distinct-graph count (fused out of the join that produced it, so it
  /// is never recomputed), and `depth` == |rho| indexes the scratch
  /// arena level this call's extensions are written into.
  void Dfs(GraphId g, int node, const PostingList& list, size_t list_distinct,
           size_t depth, DfsState* state, std::vector<int>* lower_bounds,
           uint64_t max_expansions) const;

  const GraphSet* set_;
  Options options_;
};

}  // namespace ustl

#endif  // USTL_GROUPING_PIVOT_SEARCH_H_

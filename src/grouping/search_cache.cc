#include "grouping/search_cache.h"

namespace ustl {

namespace {

// Standard FNV-1a constants, plus a second offset basis (the first basis
// with one decimal digit changed, a common trick for keyed variants) so
// the two streams disagree on every input.
constexpr uint64_t kFnvPrime = 1099511628211ull;
constexpr uint64_t kOffsetLo = 14695981039346656037ull;
constexpr uint64_t kOffsetHi = 14695981039346656137ull;

}  // namespace

SearchKeyHasher::SearchKeyHasher() : lo_(kOffsetLo), hi_(kOffsetHi) {}

void SearchKeyHasher::Bytes(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    lo_ = (lo_ ^ bytes[i]) * kFnvPrime;
    hi_ = (hi_ ^ bytes[i]) * kFnvPrime;
  }
}

void SearchKeyHasher::Str(std::string_view s) {
  U64(s.size());
  Bytes(s.data(), s.size());
}

void SearchKeyHasher::U64(uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  Bytes(bytes, sizeof(bytes));
}

void SearchKeyHasher::Pairs(const std::vector<StringPair>& pairs) {
  // Must absorb exactly the byte stream of Str(lhs); Str(rhs) per pair —
  // existing shared-cache keys depend on it — but keeps the two hash
  // accumulators in locals across the whole batch instead of re-loading
  // and re-storing the members once per field.
  uint64_t lo = lo_;
  uint64_t hi = hi_;
  const auto mix = [&lo, &hi](const unsigned char* bytes, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      lo = (lo ^ bytes[i]) * kFnvPrime;
      hi = (hi ^ bytes[i]) * kFnvPrime;
    }
  };
  const auto field = [&mix](const std::string& s) {
    unsigned char len[8];
    const uint64_t size = s.size();
    for (int i = 0; i < 8; ++i) {
      len[i] = static_cast<unsigned char>(size >> (8 * i));
    }
    mix(len, sizeof(len));
    mix(reinterpret_cast<const unsigned char*>(s.data()), s.size());
  };
  for (const StringPair& pair : pairs) {
    field(pair.lhs);
    field(pair.rhs);
  }
  lo_ = lo;
  hi_ = hi;
}

SearchCacheKey SearchKeyHasher::Finish() const {
  SearchCacheKey key;
  key.lo = lo_;
  key.hi = hi_;
  // {0, 0} is reserved for "no key"; nudge the astronomically unlikely
  // all-zero digest off the sentinel instead of letting it disable a key.
  if (!key.valid()) key.lo = 1;
  return key;
}

void SearchResultCache::Touch(const SearchCacheKey& key, KeyedPivots* entry,
                              bool inserted) {
  if (inserted) {
    recency_.push_front(key);
    entry->recency = recency_.begin();
  } else {
    recency_.splice(recency_.begin(), recency_, entry->recency);
  }
  if (options_.max_keys == 0) return;
  while (entries_.size() > options_.max_keys) {
    auto victim = entries_.find(recency_.back());
    stats_.entries -= victim->second.pivots.size();
    entries_.erase(victim);
    recency_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<std::pair<GraphId, CachedPivot>> SearchResultCache::WarmStart(
    const SearchCacheKey& key) const {
  std::vector<std::pair<GraphId, CachedPivot>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) return out;
  ++stats_.warm_starts;
  recency_.splice(recency_.begin(), recency_, it->second.recency);
  out.reserve(it->second.pivots.size());
  for (const auto& [g, pivot] : it->second.pivots) out.emplace_back(g, pivot);
  stats_.entries_served += out.size();
  return out;
}

void SearchResultCache::Publish(const SearchCacheKey& key, GraphId g,
                                CachedPivot pivot) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.publishes;
  auto [it, inserted] = entries_.try_emplace(key);
  if (it->second.pivots.emplace(g, std::move(pivot)).second) {
    ++stats_.entries;
  }
  Touch(key, &it->second, inserted);
}

SearchCacheStats SearchResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SearchCacheStats out = stats_;
  out.keys = entries_.size();
  return out;
}

}  // namespace ustl

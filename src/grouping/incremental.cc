#include "grouping/incremental.h"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "common/random.h"
#include "obs/trace.h"

namespace ustl {
namespace {

PivotSearcher::Options SearcherOptions(const IncrementalOptions& options) {
  PivotSearcher::Options out;
  out.local_early_term = true;
  out.global_early_term = true;
  out.max_path_len = options.max_path_len;
  out.max_expansions = options.max_expansions_per_search;
  return out;
}

constexpr uint64_t kUnlimited = std::numeric_limits<uint64_t>::max();

// Speculative searches observed before the adaptive wave sizer trusts the
// measured hit rate; below this it stays at the optimistic pool width.
constexpr uint64_t kAdaptiveWaveMinSamples = 16;

bool ExactModeConfigured(const IncrementalOptions& options) {
  return options.sample_size == 0 &&
         options.max_expansions_per_search == kUnlimited &&
         options.max_total_expansions == kUnlimited;
}

}  // namespace

IncrementalEngine::IncrementalEngine(GraphSet set, IncrementalOptions options,
                                     ThreadPool* pool)
    : set_(std::move(set)),
      options_(options),
      pool_(pool),
      searcher_(&set_, SearcherOptions(options)),
      lower_bounds_(set_.size(), 1),
      upper_bounds_(set_.size(), 0),
      search_cache_(set_.size()) {
  InitUpperBounds();
  if (options_.sample_size > 0) {
    sample_order_.resize(set_.size());
    std::iota(sample_order_.begin(), sample_order_.end(), GraphId{0});
    Rng rng(options_.sample_seed);
    rng.Shuffle(&sample_order_);
  }
  // Cross-engine warmth piggybacks on the reuse cache, so it is gated
  // exactly like reuse: exact mode only.
  if (options_.shared_cache != nullptr && options_.shared_cache_key.valid() &&
      options_.reuse_search_results && ExactModeConfigured(options_)) {
    shared_cache_ = options_.shared_cache;
    WarmStartFromSharedCache();
  }
}

void IncrementalEngine::WarmStartFromSharedCache() {
  for (auto& [g, pivot] :
       shared_cache_->WarmStart(options_.shared_cache_key)) {
    if (g >= set_.size()) continue;  // foreign entry; key collision guard
    CachedSearch entry;
    entry.path = std::move(pivot.path);
    entry.members = std::move(pivot.members);
    entry.count = pivot.count;
    // Published entries were computed against an identical-content,
    // untouched alive set — exactly this engine's state at its own kill
    // epoch 0 (the GraphSet starts with zero kills).
    entry.validated_epoch = set_.kill_epoch();
    entry.warm = true;
    search_cache_[g] = std::move(entry);
  }
}

bool IncrementalEngine::RefreshSampleMask() {
  if (options_.sample_size == 0) return false;
  if (set_.AliveCount() <= options_.sample_size) return false;
  sample_mask_.assign(set_.size(), 0);
  size_t taken = 0;
  for (GraphId g : sample_order_) {
    if (!set_.alive(g)) continue;
    sample_mask_[g] = 1;
    if (++taken == options_.sample_size) break;
  }
  return true;
}

void IncrementalEngine::InitUpperBounds() {
  // Lemma 6.2: every transformation path covers each position k of t, so
  // ub[k] = max inverted-list length among labels of edges covering k is an
  // upper bound, and Gup = min_k ub[k]. Computed in O(|t|^2) per graph via
  // per-start-node suffix maxima, in one flat row-major buffer reused
  // across graphs (a vector-of-vectors here would allocate |t| rows per
  // graph).
  std::vector<int64_t> suffix;  // (m + 2) x (m + 3), row-major
  for (GraphId g = 0; g < set_.size(); ++g) {
    const TransformationGraph& graph = set_.graph(g);
    const int m = graph.num_nodes() - 1;  // |t|
    const size_t stride = static_cast<size_t>(m) + 3;
    suffix.assign(static_cast<size_t>(m + 2) * stride, 0);
    const auto at = [&](int i, int j) -> int64_t& {
      return suffix[static_cast<size_t>(i) * stride + j];
    };
    for (int from = 1; from <= m; ++from) {
      for (const GraphEdge& edge : graph.edges_from(from)) {
        int64_t edge_max = 0;
        for (LabelId label : edge.labels) {
          edge_max = std::max(
              edge_max, static_cast<int64_t>(set_.index().ListLength(label)));
        }
        at(from, edge.to) = std::max(at(from, edge.to), edge_max);
      }
      for (int j = m; j >= from + 1; --j) {
        at(from, j) = std::max(at(from, j), at(from, j + 1));
      }
    }
    int64_t gup = std::numeric_limits<int64_t>::max();
    for (int k = 1; k <= m; ++k) {
      int64_t ubk = 0;
      for (int i = 1; i <= k; ++i) {
        ubk = std::max(ubk, at(i, k + 1));
      }
      gup = std::min(gup, ubk);
    }
    // A list length counts postings, not graphs, so it is a valid (possibly
    // loose) bound; cap by the number of graphs.
    gup = std::min(gup, static_cast<int64_t>(set_.size()));
    upper_bounds_[g] = static_cast<int>(gup);
  }
}

bool IncrementalEngine::CacheLookup(GraphId g,
                                    PivotSearcher::SearchResult* out,
                                    bool* warm, bool* speculative) {
  std::optional<CachedSearch>& entry = search_cache_[g];
  if (!entry.has_value()) return false;
  if (entry->validated_epoch != set_.kill_epoch()) {
    // Kills happened since the last validation: the pivot stays exact iff
    // every member survived (counts can only shrink, and only a member
    // kill shrinks THIS path's count below every earlier-enumerated
    // alternative's old ceiling — see the header).
    for (GraphId member : entry->members) {
      if (!set_.alive(member)) {
        entry.reset();
        return false;
      }
    }
    entry->validated_epoch = set_.kill_epoch();
  }
  out->found = true;
  out->path = entry->path;
  out->members = entry->members;
  out->count = entry->count;
  out->expansions = 0;
  out->truncated = false;
  out->blocks_skipped = 0;
  out->blocks_decoded = 0;
  out->joins_pruned = 0;
  if (warm != nullptr) *warm = entry->warm;
  if (speculative != nullptr) *speculative = entry->speculative;
  return true;
}

void IncrementalEngine::CacheStore(GraphId g,
                                   const PivotSearcher::SearchResult& result,
                                   bool speculative) {
  CachedSearch entry;
  entry.path = result.path;
  entry.members = result.members;
  entry.count = result.count;
  entry.validated_epoch = set_.kill_epoch();
  entry.speculative = speculative;
  search_cache_[g] = std::move(entry);
  // Epoch-0 results are the transferable ones: computed against the
  // untouched alive set, so an identical-content engine can start from
  // them (see search_cache.h). Later epochs saw kills and stay private.
  if (shared_cache_ != nullptr && set_.kill_epoch() == 0) {
    CachedPivot pivot;
    pivot.path = result.path;
    pivot.members = result.members;
    pivot.count = result.count;
    shared_cache_->Publish(options_.shared_cache_key, g, std::move(pivot));
  }
}

void IncrementalEngine::SerialScan(const std::vector<GraphId>& order,
                                   bool sampling, int best_count,
                                   PivotSearcher::SearchResult* best) {
  for (GraphId g : order) {
    options_.cancel.Check();
    // Sampled counts never exceed full counts, so the full-unit upper
    // bounds remain sound against a sample-unit best_count.
    if (upper_bounds_[g] <= best_count) break;  // Algorithm 7 line 5
    if (stats_.expansions >= options_.max_total_expansions) {
      stats_.truncated = true;
      break;
    }
    char restore_mask = 0;
    if (sampling) {
      restore_mask = sample_mask_[g];
      sample_mask_[g] = 1;  // the searched graph always counts itself
    }
    PivotSearcher::SearchResult result = searcher_.Search(
        g, best_count, &lower_bounds_,
        options_.max_total_expansions - stats_.expansions,
        sampling ? &sample_mask_ : nullptr);
    if (sampling) sample_mask_[g] = restore_mask;
    ++stats_.searches;
    stats_.expansions += result.expansions;
    stats_.truncated |= result.truncated;
    stats_.blocks_skipped += result.blocks_skipped;
    stats_.blocks_decoded += result.blocks_decoded;
    stats_.joins_pruned += result.joins_pruned;
    if (result.found) {
      // Under sampling these bounds are in sample units (under-estimates
      // of full counts); the ordering they induce is approximate, which
      // is the deal Appendix E's sampling makes.
      lower_bounds_[g] = std::max(lower_bounds_[g], result.count);
      upper_bounds_[g] = result.count;
      best_count = result.count;
      *best = std::move(result);
    } else {
      // The pivot of g cannot be shared by more than best_count graphs
      // (of the sample, when sampling).
      upper_bounds_[g] = best_count;
    }
  }
}

void IncrementalEngine::WaveScan(const std::vector<GraphId>& order,
                                 int best_count,
                                 PivotSearcher::SearchResult* best) {
  const bool reuse = options_.reuse_search_results;
  const size_t pool_wave = pool_ != nullptr && !pool_->InWorkerThread()
                               ? static_cast<size_t>(pool_->num_threads())
                               : 1;
  size_t max_wave = pool_wave;
  if (options_.adaptive_wave_sizing && pool_wave > 1) {
    // Waves wider than the hardware can actually run concurrently are
    // pure speculation; pay for that width only at the rate speculation
    // has been observed to pay off (a speculative result that later
    // served a cache hit was free). Optimistic full width until enough
    // samples accumulated. Any width yields byte-identical output — the
    // replay discipline guarantees it — so this trades statistics only.
    const unsigned hw = std::thread::hardware_concurrency();
    const size_t base =
        std::min(pool_wave, static_cast<size_t>(hw == 0 ? 1 : hw));
    if (base < pool_wave &&
        stats_.speculative_searches >= kAdaptiveWaveMinSamples) {
      const double rate = static_cast<double>(stats_.speculative_hits) /
                          static_cast<double>(stats_.speculative_searches);
      max_wave = base + static_cast<size_t>(
                            rate * static_cast<double>(pool_wave - base) +
                            0.5);
      if (max_wave < 1) max_wave = 1;
      if (max_wave > pool_wave) max_wave = pool_wave;
    }
  }

  struct Slot {
    GraphId g = 0;
    bool cached = false;
    bool warm = false;         // cached entry came from the shared cache
    bool speculative = false;  // cached entry was stored by speculation
    PivotSearcher::SearchResult result;
    std::vector<int> bounds;  // private Glo copy of a concurrent search
  };
  std::vector<Slot> slots;

  // Applies one resolved slot under the serial update rules: "found" is
  // re-decided against the evolved running best (every resolved count is
  // the graph's true, threshold-independent pivot count), the Gup/Glo
  // writes match the one-at-a-time scan's, and a false return is the
  // serial stop point — the order is descending in the Gups it was
  // sorted under, so no later graph can win once one fails the guard.
  // Nothing of a slot that failed the guard lands (no statistics, no
  // bound updates).
  const auto apply = [&](Slot* slot) {
    const GraphId g = slot->g;
    if (upper_bounds_[g] <= best_count) return false;
    if (slot->cached) {
      ++stats_.cache_hits;
      if (slot->warm) ++stats_.warm_hits;
      if (slot->speculative) {
        // Count each speculative search as "paid off" at most once —
        // the entry survives for further (plain) hits, but the adaptive
        // rate divides by speculative_searches, which counts each
        // search once, so the numerator must too.
        ++stats_.speculative_hits;
        if (search_cache_[g].has_value()) {
          search_cache_[g]->speculative = false;
        }
      }
    } else {
      ++stats_.searches;
      stats_.expansions += slot->result.expansions;
      stats_.blocks_skipped += slot->result.blocks_skipped;
      stats_.blocks_decoded += slot->result.blocks_decoded;
      stats_.joins_pruned += slot->result.joins_pruned;
      // Merge the private Glo raises back (entries only ever rise, so
      // an element-wise max reproduces the in-place writes).
      if (!slot->bounds.empty()) {
        for (size_t k = 0; k < lower_bounds_.size(); ++k) {
          lower_bounds_[k] = std::max(lower_bounds_[k], slot->bounds[k]);
        }
      }
      if (reuse && slot->result.found) {
        CacheStore(g, slot->result, /*speculative=*/false);
      }
    }
    if (slot->result.found && slot->result.count > best_count) {
      lower_bounds_[g] = std::max(lower_bounds_[g], slot->result.count);
      if (slot->cached) {
        // The DFS that produced this result raised the Glo of every
        // graph sharing the pivot; replay the raises that matter.
        for (GraphId member : slot->result.members) {
          lower_bounds_[member] =
              std::max(lower_bounds_[member], slot->result.count);
        }
      }
      upper_bounds_[g] = slot->result.count;
      best_count = slot->result.count;
      *best = std::move(slot->result);
    } else {
      // The pivot of g cannot be shared by more than best_count graphs.
      upper_bounds_[g] = best_count;
    }
    return true;
  };

  size_t pos = 0;
  while (pos < order.size() && upper_bounds_[order[pos]] > best_count) {
    // Cancellation checkpoint between waves: a tripped request unwinds
    // after at most one wave of searches (bounded by the pool width).
    options_.cancel.Check();
    // A cached result at the head of the remaining order applies
    // immediately: it costs no DFS, keeps the scan exactly as lazy as a
    // serial scan with the same cache (no search is dispatched that the
    // raised best would have skipped), and leaves the wave's search
    // slots for real work instead of starving the pool right after a
    // consume, when most entries are still valid.
    if (reuse) {
      Slot head;
      head.g = order[pos];
      if (CacheLookup(head.g, &head.result, &head.warm, &head.speculative)) {
        head.cached = true;
        apply(&head);  // guard holds: the outer condition just checked it
        ++pos;
        continue;
      }
    }

    // Form the next search wave: up to max_wave (the pool width) cache
    // misses; cached results interleaved past the first miss ride along
    // for free and replay in order. Membership only affects how much
    // gets speculated — the replay makes every wave composition land on
    // the same state.
    slots.clear();
    size_t wave_end = pos;
    size_t searches_needed = 0;
    while (wave_end < order.size() &&
           upper_bounds_[order[wave_end]] > best_count) {
      Slot slot;
      slot.g = order[wave_end];
      // The head slot was already looked up (a miss) above.
      if (reuse && wave_end != pos) {
        slot.cached =
            CacheLookup(slot.g, &slot.result, &slot.warm, &slot.speculative);
      }
      if (!slot.cached) {
        if (searches_needed == max_wave) break;
        ++searches_needed;
      }
      slots.push_back(std::move(slot));
      ++wave_end;
    }

    // One trace span per wave (inert on a null context). Width/search
    // counts are recorded, never read — wave composition stays a pure
    // function of the bounds and the cache.
    ScopedSpan wave_span(options_.trace, options_.trace_parent,
                         "search_wave");
    wave_span.AddAttr("slots", static_cast<int64_t>(slots.size()));
    wave_span.AddAttr("searches", static_cast<int64_t>(searches_needed));

    // Resolve the cache misses. Every search uses the wave-start
    // threshold and (concurrently) a private snapshot of the wave-start
    // Glo state; both choices leave the per-graph outcome unchanged (see
    // the header), so resolution order never matters.
    if (slots.size() == 1) {
      slots[0].result =
          searcher_.Search(slots[0].g, best_count, &lower_bounds_);
    } else {
      ParallelFor(pool_, slots.size(), [&, best_count](size_t i) {
        Slot& slot = slots[i];
        if (slot.cached) return;
        slot.bounds = lower_bounds_;
        slot.result = searcher_.Search(slot.g, best_count, &slot.bounds);
      });
    }

    // Replay the wave in scan order.
    size_t applied = slots.size();
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!apply(&slots[i])) {
        applied = i;
        break;
      }
    }
    wave_span.AddAttr("applied", static_cast<int64_t>(applied));
    if (applied < slots.size()) {
      // Everything past the serial stop point was speculative; none of
      // its bound updates land, but found results still warm the cache
      // for later rounds.
      for (size_t i = applied; i < slots.size(); ++i) {
        Slot& slot = slots[i];
        if (slot.cached) continue;
        ++stats_.searches;
        ++stats_.speculative_searches;
        stats_.expansions += slot.result.expansions;
        stats_.blocks_skipped += slot.result.blocks_skipped;
        stats_.blocks_decoded += slot.result.blocks_decoded;
        stats_.joins_pruned += slot.result.joins_pruned;
        if (reuse && slot.result.found) {
          CacheStore(slot.g, slot.result, /*speculative=*/true);
        }
      }
      break;
    }
    pos = wave_end;
  }
}

void IncrementalEngine::FillPeek() {
  if (peeked_) return;
  peeked_ = true;
  peek_.reset();
  upper_hint_.reset();  // the scan below rewrites upper bounds

  std::vector<GraphId> order;
  order.reserve(set_.size());
  int tau = 0;  // largest lower bound among alive graphs (Algorithm 7 line 2)
  for (GraphId g = 0; g < set_.size(); ++g) {
    if (!set_.alive(g)) continue;
    order.push_back(g);
    tau = std::max(tau, lower_bounds_[g]);
  }
  if (order.empty()) return;

  std::stable_sort(order.begin(), order.end(), [&](GraphId a, GraphId b) {
    if (upper_bounds_[a] != upper_bounds_[b]) {
      return upper_bounds_[a] > upper_bounds_[b];
    }
    return a < b;
  });

  // Accept only groups of size >= tau, i.e. strictly greater than tau - 1
  // (the off-by-one fix described in the header).
  const bool sampling = RefreshSampleMask();
  const bool exact = !sampling &&
                     options_.max_expansions_per_search == kUnlimited &&
                     options_.max_total_expansions == kUnlimited;
  const int best_count = tau - 1;
  PivotSearcher::SearchResult best;
  if (exact) {
    WaveScan(order, best_count, &best);
  } else {
    // Sampling re-counts against a fresh mask every round and budgets
    // make outcomes spend-dependent: both keep the documented lazy
    // serial scan (and no result reuse).
    SerialScan(order, sampling, best_count, &best);
  }
  if (best.found) {
    peek_ = ReplacementGroup{std::move(best.path), std::move(best.members)};
  }
}

const std::optional<ReplacementGroup>& IncrementalEngine::Peek() {
  FillPeek();
  return peek_;
}

void IncrementalEngine::ConsumePeeked() {
  USTL_CHECK(peeked_);
  if (peek_.has_value()) {
    for (GraphId member : peek_->members) {
      set_.Kill(member);
      // Dead graphs never re-enter the scan order, so their cached
      // results would otherwise sit unreachable until engine teardown.
      search_cache_[member].reset();
    }
    // Removals invalidate lower bounds (the counted containers may be
    // gone); upper bounds only ever over-estimate and stay valid. Cached
    // search results revalidate themselves against the kill epoch.
    std::fill(lower_bounds_.begin(), lower_bounds_.end(), 1);
    upper_hint_.reset();
  }
  peeked_ = false;
  peek_.reset();
}

std::optional<ReplacementGroup> IncrementalEngine::Next() {
  FillPeek();
  std::optional<ReplacementGroup> out = peek_;
  ConsumePeeked();
  return out;
}

int IncrementalEngine::UpperHint() const {
  if (peeked_) {
    return peek_.has_value() ? static_cast<int>(peek_->members.size()) : 0;
  }
  if (!upper_hint_.has_value()) {
    int alive = 0;
    int max_ub = 0;
    for (GraphId g = 0; g < set_.size(); ++g) {
      if (!set_.alive(g)) continue;
      ++alive;
      max_ub = std::max(max_ub, upper_bounds_[g]);
    }
    upper_hint_ = std::min(max_ub, alive);
  }
  return *upper_hint_;
}

}  // namespace ustl

#include "grouping/incremental.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace ustl {
namespace {

PivotSearcher::Options SearcherOptions(const IncrementalOptions& options) {
  PivotSearcher::Options out;
  out.local_early_term = true;
  out.global_early_term = true;
  out.max_path_len = options.max_path_len;
  out.max_expansions = options.max_expansions_per_search;
  return out;
}

}  // namespace

IncrementalEngine::IncrementalEngine(GraphSet set, IncrementalOptions options)
    : set_(std::move(set)),
      options_(options),
      searcher_(&set_, SearcherOptions(options)),
      lower_bounds_(set_.size(), 1),
      upper_bounds_(set_.size(), 0) {
  InitUpperBounds();
  if (options_.sample_size > 0) {
    sample_order_.resize(set_.size());
    std::iota(sample_order_.begin(), sample_order_.end(), GraphId{0});
    Rng rng(options_.sample_seed);
    rng.Shuffle(&sample_order_);
  }
}

bool IncrementalEngine::RefreshSampleMask() {
  if (options_.sample_size == 0) return false;
  if (set_.AliveCount() <= options_.sample_size) return false;
  sample_mask_.assign(set_.size(), 0);
  size_t taken = 0;
  for (GraphId g : sample_order_) {
    if (!set_.alive(g)) continue;
    sample_mask_[g] = 1;
    if (++taken == options_.sample_size) break;
  }
  return true;
}

void IncrementalEngine::InitUpperBounds() {
  // Lemma 6.2: every transformation path covers each position k of t, so
  // ub[k] = max inverted-list length among labels of edges covering k is an
  // upper bound, and Gup = min_k ub[k]. Computed in O(|t|^2) per graph via
  // per-start-node suffix maxima, in one flat row-major buffer reused
  // across graphs (a vector-of-vectors here would allocate |t| rows per
  // graph).
  std::vector<int64_t> suffix;  // (m + 2) x (m + 3), row-major
  for (GraphId g = 0; g < set_.size(); ++g) {
    const TransformationGraph& graph = set_.graph(g);
    const int m = graph.num_nodes() - 1;  // |t|
    const size_t stride = static_cast<size_t>(m) + 3;
    suffix.assign(static_cast<size_t>(m + 2) * stride, 0);
    const auto at = [&](int i, int j) -> int64_t& {
      return suffix[static_cast<size_t>(i) * stride + j];
    };
    for (int from = 1; from <= m; ++from) {
      for (const GraphEdge& edge : graph.edges_from(from)) {
        int64_t edge_max = 0;
        for (LabelId label : edge.labels) {
          edge_max = std::max(
              edge_max, static_cast<int64_t>(set_.index().ListLength(label)));
        }
        at(from, edge.to) = std::max(at(from, edge.to), edge_max);
      }
      for (int j = m; j >= from + 1; --j) {
        at(from, j) = std::max(at(from, j), at(from, j + 1));
      }
    }
    int64_t gup = std::numeric_limits<int64_t>::max();
    for (int k = 1; k <= m; ++k) {
      int64_t ubk = 0;
      for (int i = 1; i <= k; ++i) {
        ubk = std::max(ubk, at(i, k + 1));
      }
      gup = std::min(gup, ubk);
    }
    // A list length counts postings, not graphs, so it is a valid (possibly
    // loose) bound; cap by the number of graphs.
    gup = std::min(gup, static_cast<int64_t>(set_.size()));
    upper_bounds_[g] = static_cast<int>(gup);
  }
}

void IncrementalEngine::FillPeek() {
  if (peeked_) return;
  peeked_ = true;
  peek_.reset();

  std::vector<GraphId> order;
  order.reserve(set_.size());
  int tau = 0;  // largest lower bound among alive graphs (Algorithm 7 line 2)
  for (GraphId g = 0; g < set_.size(); ++g) {
    if (!set_.alive(g)) continue;
    order.push_back(g);
    tau = std::max(tau, lower_bounds_[g]);
  }
  if (order.empty()) return;

  std::stable_sort(order.begin(), order.end(), [&](GraphId a, GraphId b) {
    if (upper_bounds_[a] != upper_bounds_[b]) {
      return upper_bounds_[a] > upper_bounds_[b];
    }
    return a < b;
  });

  // Accept only groups of size >= tau, i.e. strictly greater than tau - 1
  // (the off-by-one fix described in the header).
  const bool sampling = RefreshSampleMask();
  int best_count = tau - 1;
  PivotSearcher::SearchResult best;
  for (GraphId g : order) {
    // Sampled counts never exceed full counts, so the full-unit upper
    // bounds remain sound against a sample-unit best_count.
    if (upper_bounds_[g] <= best_count) break;  // Algorithm 7 line 5
    if (stats_.expansions >= options_.max_total_expansions) {
      stats_.truncated = true;
      break;
    }
    char restore_mask = 0;
    if (sampling) {
      restore_mask = sample_mask_[g];
      sample_mask_[g] = 1;  // the searched graph always counts itself
    }
    PivotSearcher::SearchResult result = searcher_.Search(
        g, best_count, &lower_bounds_,
        options_.max_total_expansions - stats_.expansions,
        sampling ? &sample_mask_ : nullptr);
    if (sampling) sample_mask_[g] = restore_mask;
    ++stats_.searches;
    stats_.expansions += result.expansions;
    stats_.truncated |= result.truncated;
    if (result.found) {
      // Under sampling these bounds are in sample units (under-estimates
      // of full counts); the ordering they induce is approximate, which
      // is the deal Appendix E's sampling makes.
      lower_bounds_[g] = std::max(lower_bounds_[g], result.count);
      upper_bounds_[g] = result.count;
      best_count = result.count;
      best = std::move(result);
    } else {
      // The pivot of g cannot be shared by more than best_count graphs
      // (of the sample, when sampling).
      upper_bounds_[g] = best_count;
    }
  }
  if (best.found) {
    peek_ = ReplacementGroup{std::move(best.path), std::move(best.members)};
  }
}

const std::optional<ReplacementGroup>& IncrementalEngine::Peek() {
  FillPeek();
  return peek_;
}

void IncrementalEngine::ConsumePeeked() {
  USTL_CHECK(peeked_);
  if (peek_.has_value()) {
    for (GraphId member : peek_->members) set_.Kill(member);
    // Removals invalidate lower bounds (the counted containers may be
    // gone); upper bounds only ever over-estimate and stay valid.
    std::fill(lower_bounds_.begin(), lower_bounds_.end(), 1);
  }
  peeked_ = false;
  peek_.reset();
}

std::optional<ReplacementGroup> IncrementalEngine::Next() {
  FillPeek();
  std::optional<ReplacementGroup> out = peek_;
  ConsumePeeked();
  return out;
}

int IncrementalEngine::UpperHint() const {
  if (peeked_) {
    return peek_.has_value() ? static_cast<int>(peek_->members.size()) : 0;
  }
  int alive = 0;
  int max_ub = 0;
  for (GraphId g = 0; g < set_.size(); ++g) {
    if (!set_.alive(g)) continue;
    ++alive;
    max_ub = std::max(max_ub, upper_bounds_[g]);
  }
  return std::min(max_ub, alive);
}

}  // namespace ustl

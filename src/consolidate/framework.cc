#include "consolidate/framework.h"

#include <algorithm>

#include "obs/trace.h"

namespace ustl {

ColumnRunResult StandardizeColumn(Column* column, VerificationOracle* oracle,
                                  const FrameworkOptions& options) {
  ColumnRunResult result;
  ScopedSpan candidates_span(options.trace, options.trace_parent,
                             "candidates", options.column_name);
  ReplacementStore store(*column, options.candidates);
  candidates_span.AddAttr("pairs", static_cast<int64_t>(store.num_pairs()));
  candidates_span.End();

  // The engine groups a snapshot of Phi; store indices are stable, so the
  // group members map back even after edits (stale occurrences are checked
  // at apply time, Section 7.1).
  GroupingOptions grouping_options = options.grouping;
  if (!grouping_options.cancel.cancellable()) {
    grouping_options.cancel = options.cancel;
  }
  grouping_options.trace = options.trace;
  grouping_options.trace_parent = options.trace_parent;
  GroupingEngine engine(store.pairs(), grouping_options);

  while (result.groups_presented < options.budget_per_column) {
    options.cancel.Check();
    std::optional<Group> group = engine.Next();
    if (!group.has_value()) break;
    if (options.skip_singletons && group->size() <= 1) continue;
    if (options.skip_constant_pivot_groups && group->pure_constant) continue;
    if (group->constant_coverage > options.max_constant_coverage) continue;
    if (options.skip_dead_groups) {
      bool any_live = false;
      for (size_t pair_index : group->member_pair_indices) {
        if (!store.occurrences(pair_index).empty()) {
          any_live = true;
          break;
        }
      }
      if (!any_live) continue;  // Section 7.1: these replacements are gone
    }

    std::vector<StringPair> group_pairs;
    group_pairs.reserve(group->size());
    for (size_t pair_index : group->member_pair_indices) {
      group_pairs.push_back(store.pair(pair_index));
    }

    ++result.groups_presented;
    QuestionContext context;
    context.column = options.column_name;
    context.program = group->program;
    context.presented = result.groups_presented;
    context.cancel = options.cancel;
    context.request_id = options.request_id;
    context.trace = options.trace;
    context.trace_parent = options.trace_parent;
    Verdict verdict = oracle->VerifyWithContext(group_pairs, context);

    GroupTrace trace;
    trace.size = group->size();
    trace.approved = verdict.approved;
    trace.direction = verdict.direction;
    trace.structure = group->structure;
    trace.program = group->program;
    for (size_t i = 0; i < group_pairs.size() && i < 5; ++i) {
      trace.sample_pairs.push_back(group_pairs[i]);
    }

    if (verdict.approved) {
      ++result.groups_approved;
      ScopedSpan apply_span(options.trace, options.trace_parent, "apply",
                            group->program);
      size_t edits = 0;
      for (size_t pair_index : group->member_pair_indices) {
        edits += verdict.direction == ReplaceDirection::kLhsToRhs
                     ? store.Apply(pair_index)
                     : store.ApplyReverse(pair_index);
      }
      apply_span.AddAttr("edits", static_cast<int64_t>(edits));
      trace.edits = edits;
      result.edits += edits;
    }
    result.trace.push_back(std::move(trace));
    if (options.progress_callback) {
      options.progress_callback(result.groups_presented, store.column());
    }
  }

  result.grouping = engine.stats();
  *column = store.column();
  return result;
}

ColumnRunResult StandardizeColumnSingle(Column* column,
                                        VerificationOracle* oracle,
                                        const FrameworkOptions& options) {
  ColumnRunResult result;
  ReplacementStore store(*column, options.candidates);

  // All "groups" have one member, so size ranking is vacuous; the paper's
  // Single shows candidates in generation order. Optionally rank by
  // replacement-set size (a stronger variant).
  std::vector<size_t> order(store.num_pairs());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.single_rank_by_occurrences) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return store.occurrences(a).size() > store.occurrences(b).size();
    });
  }

  for (size_t index : order) {
    options.cancel.Check();
    if (result.groups_presented >= options.budget_per_column) break;
    if (options.skip_dead_groups && store.occurrences(index).empty()) {
      continue;
    }
    ++result.groups_presented;
    std::vector<StringPair> group_pairs = {store.pair(index)};
    // Single has no pivot program; the context only scopes the column.
    QuestionContext context;
    context.column = options.column_name;
    context.presented = result.groups_presented;
    context.cancel = options.cancel;
    context.request_id = options.request_id;
    context.trace = options.trace;
    context.trace_parent = options.trace_parent;
    Verdict verdict = oracle->VerifyWithContext(group_pairs, context);
    GroupTrace trace;
    trace.size = 1;
    trace.approved = verdict.approved;
    trace.direction = verdict.direction;
    trace.sample_pairs = group_pairs;
    if (verdict.approved) {
      ++result.groups_approved;
      size_t edits = verdict.direction == ReplaceDirection::kLhsToRhs
                         ? store.Apply(index)
                         : store.ApplyReverse(index);
      trace.edits = edits;
      result.edits += edits;
    }
    result.trace.push_back(std::move(trace));
    if (options.progress_callback) {
      options.progress_callback(result.groups_presented, store.column());
    }
  }

  *column = store.column();
  return result;
}

// GoldenRecordCreation is defined in pipeline/pipeline.cc: it routes
// through the column scheduler, and the pipeline layer sits above this
// one — defining it there keeps the dependency one-directional.

}  // namespace ustl

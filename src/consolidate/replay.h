// Replaying approved transformations on new data. A verification session
// produces groups the expert approved — each one a pivot program plus a
// replacement direction. Persisting those (dsl/parser.h syntax) and
// replaying them later standardizes fresh batches of the same feed with
// zero additional questions: for every in-cluster value pair (a, b) the
// program is consistent with, the source value is rewritten to the target.
// This is the cross-run reuse story FlashFill-style systems ship with,
// built on the paper's machinery.
#ifndef USTL_CONSOLIDATE_REPLAY_H_
#define USTL_CONSOLIDATE_REPLAY_H_

#include <string>
#include <string_view>
#include <vector>

#include "consolidate/cluster.h"
#include "consolidate/oracle.h"
#include "dsl/program.h"

namespace ustl {

/// One persisted, approved transformation.
struct ApprovedTransformation {
  /// Column it was approved on; empty = applies to every column.
  std::string column;
  /// The group's pivot program (maps the group's lhs to its rhs).
  Program program;
  /// kLhsToRhs replaces a by b whenever program(a) can produce b;
  /// kRhsToLhs replaces b by a.
  ReplaceDirection direction = ReplaceDirection::kLhsToRhs;
  /// The approved group's member pairs in the order the live session
  /// applied them. When non-empty, replay applies exactly these
  /// value-level replacements — byte-faithful to the session, because
  /// group membership (pivot path contained in the pair's graph) is
  /// strictly narrower than program consistency. Empty = legacy log or
  /// deliberate generalization: every consistent pair is rewritten.
  std::vector<StringPair> pairs;
};

/// Applies one transformation to a column in place. With recorded member
/// pairs, only candidate pairs matching those exact (lhs, rhs) values are
/// rewritten, in the recorded order — reproducing the live session's
/// edits byte for byte. Without them, every ordered pair of distinct
/// values (a, b) with b an output of program(a) triggers a rewrite of the
/// direction's source value to its target in all cells of that cluster
/// holding it, visited in candidate order. Returns cells edited.
size_t ApplyTransformation(Column* column,
                           const ApprovedTransformation& transformation);

/// Replays a log against a table: each transformation applies to its
/// named column (or all columns when unnamed). Returns cells edited.
size_t ReplayTransformations(
    Table* table,
    const std::vector<ApprovedTransformation>& transformations);

/// Text form, one block per transformation:
///
///   column: Address
///   direction: lhs->rhs
///   program: SubStr(...) (+) ConstantStr("...")
///   pair: "9 Street" -> "9 St"
///
/// `pair:` lines (zero or more, quoted with C-style escapes for
/// backslash, quote, newline, CR) record the group's members. Blocks are
/// blank-line separated; unknown "key: value" lines are ignored on parse
/// (the CLI adds informational ones).
std::string SerializeTransformationLog(
    const std::vector<ApprovedTransformation>& transformations);

Result<std::vector<ApprovedTransformation>> ParseTransformationLog(
    std::string_view text);

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_REPLAY_H_

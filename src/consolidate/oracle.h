// Human verification (Section 3 step 3). The human browses a group's value
// pairs and approves or rejects the group as a whole, picking a replacement
// direction on approval; they are "not required to exhaustively check all
// pairs" and may make occasional mistakes — the SimulatedOracle models both
// via a sampled approval threshold and an injected error rate.
#ifndef USTL_CONSOLIDATE_ORACLE_H_
#define USTL_CONSOLIDATE_ORACLE_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "grouping/group.h"

namespace ustl {

/// The direction the expert chooses for an approved group.
enum class ReplaceDirection { kLhsToRhs, kRhsToLhs };

struct Verdict {
  bool approved = false;
  ReplaceDirection direction = ReplaceDirection::kLhsToRhs;
};

/// Interface the framework consults once per presented group.
class VerificationOracle {
 public:
  virtual ~VerificationOracle() = default;
  virtual Verdict Verify(const std::vector<StringPair>& group_pairs) = 0;
};

/// A simulated expert backed by dataset ground truth.
class SimulatedOracle : public VerificationOracle {
 public:
  /// True iff the pair is a genuine variant pair (same logical value).
  using VariantJudge = std::function<bool(const StringPair&)>;
  /// Preference for the canonical side: > 0 replace lhs by rhs, < 0 the
  /// other way, 0 no preference. May be null (defaults to lhs -> rhs).
  using DirectionJudge = std::function<int(const StringPair&)>;

  struct Options {
    /// Approve when at least this fraction of inspected pairs are genuine.
    double approve_threshold = 0.8;
    /// The human inspects at most this many pairs per group (sampled
    /// deterministically from the seed), mirroring non-exhaustive checking.
    size_t max_inspected = 20;
    /// Probability of flipping a verdict (human mistakes; Section 3 claims
    /// robustness to small numbers of errors, exercised in tests).
    double error_rate = 0.0;
    uint64_t seed = 42;
  };

  SimulatedOracle(VariantJudge variant_judge, DirectionJudge direction_judge,
                  Options options);

  Verdict Verify(const std::vector<StringPair>& group_pairs) override;

  size_t questions_asked() const { return questions_asked_; }

 private:
  VariantJudge variant_judge_;
  DirectionJudge direction_judge_;
  Options options_;
  Rng rng_;
  size_t questions_asked_ = 0;
};

/// An oracle that approves everything lhs -> rhs; useful as a baseline
/// ("apply transformations blindly") and in tests.
class ApproveAllOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override;
};

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_ORACLE_H_

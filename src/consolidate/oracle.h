// Human verification (Section 3 step 3). The human browses a group's value
// pairs and approves or rejects the group as a whole, picking a replacement
// direction on approval; they are "not required to exhaustively check all
// pairs" and may make occasional mistakes — the SimulatedOracle models both
// via a sampled approval threshold and an injected error rate.
//
// Order-independence contract: a verdict must be a pure function of the
// question content (the pair list presented). The column-parallel pipeline
// (src/pipeline/) presents questions in a scheduling-dependent order and
// caches verdicts by content, so any oracle whose answer depends on *when*
// a question is asked would make results depend on thread timing.
// SimulatedOracle honors the contract by seeding its sampling and
// error-injection RNG from a hash of the question itself (plus the
// configured seed) instead of drawing from one sequential stream — asking
// the same question twice, or in any order, yields the same verdict.
#ifndef USTL_CONSOLIDATE_ORACLE_H_
#define USTL_CONSOLIDATE_ORACLE_H_

#include <functional>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "grouping/group.h"

namespace ustl {

class TraceContext;  // obs/trace.h

/// The direction the expert chooses for an approved group.
enum class ReplaceDirection { kLhsToRhs, kRhsToLhs };

struct Verdict {
  bool approved = false;
  ReplaceDirection direction = ReplaceDirection::kLhsToRhs;
};

/// Side information about a presented group. Not part of the question the
/// human answers (they only see the pairs) — it lets brokers and logs
/// attribute verdicts: the pivot program is what a replay log persists and
/// the column scopes it (see pipeline/oracle_broker.h). Both views may be
/// empty (e.g. the Single baseline has no pivot program).
struct QuestionContext {
  std::string_view column;
  std::string_view program;
  /// 1-based presentation index within the column (0 = unknown). Lets a
  /// broker order its replay log by presentation rank even when columns
  /// share a name, independent of scheduling.
  size_t presented = 0;
  /// Cancellation token of the asking request (common/cancel.h; inert by
  /// default). Brokers use it to unwind a cancelled waiter from their
  /// queue in bounded time; it never influences a verdict — verdicts stay
  /// pure functions of the pair list.
  CancelToken cancel;
  /// Serving-layer request id (0 = none): lets decorators attribute
  /// retry/breaker observability events to the asking request.
  uint64_t request_id = 0;
  /// Per-request trace (obs/trace.h; null = untraced). Observability
  /// only: brokers/decorators open oracle_call spans and retry events
  /// against it under `trace_parent` (the asking column span). Never
  /// part of the question content — verdicts stay pure functions of the
  /// pair list, so traced and untraced runs are byte-identical.
  TraceContext* trace = nullptr;
  uint64_t trace_parent = 0;
};

/// Interface the framework consults once per presented group. Callers
/// serialize invocations (the column-parallel pipeline funnels all
/// questions through one combiner thread at a time), so implementations
/// need not be thread-safe.
class VerificationOracle {
 public:
  virtual ~VerificationOracle() = default;
  virtual Verdict Verify(const std::vector<StringPair>& group_pairs) = 0;
  /// Verify with attribution context. Default ignores the context; brokers
  /// override it to key caches and build replay logs.
  virtual Verdict VerifyWithContext(const std::vector<StringPair>& group_pairs,
                                    const QuestionContext& context) {
    (void)context;
    return Verify(group_pairs);
  }
};

/// Hash of a question's content (the pair list), used to derive
/// SimulatedOracle's per-question RNG seeds (the broker's verdict cache
/// keys by full content instead — see pipeline/oracle_broker.cc).
/// FNV-1a over every lhs/rhs length-prefixed, so field boundaries are
/// unambiguous for arbitrary byte content.
uint64_t HashQuestion(const std::vector<StringPair>& group_pairs);

/// A simulated expert backed by dataset ground truth.
class SimulatedOracle : public VerificationOracle {
 public:
  /// True iff the pair is a genuine variant pair (same logical value).
  using VariantJudge = std::function<bool(const StringPair&)>;
  /// Preference for the canonical side: > 0 replace lhs by rhs, < 0 the
  /// other way, 0 no preference. May be null (defaults to lhs -> rhs).
  using DirectionJudge = std::function<int(const StringPair&)>;

  struct Options {
    /// Approve when at least this fraction of inspected pairs are genuine.
    double approve_threshold = 0.8;
    /// The human inspects at most this many pairs per group (sampled
    /// deterministically from the question hash), mirroring non-exhaustive
    /// checking.
    size_t max_inspected = 20;
    /// Probability of flipping a verdict (human mistakes; Section 3 claims
    /// robustness to small numbers of errors, exercised in tests). Error
    /// draws are a pure function of (seed, question), not a shared
    /// sequential stream: the same group gets the same flip regardless of
    /// how many questions preceded it — the order-independence contract
    /// the column-parallel pipeline relies on.
    double error_rate = 0.0;
    uint64_t seed = 42;
  };

  SimulatedOracle(VariantJudge variant_judge, DirectionJudge direction_judge,
                  Options options);

  Verdict Verify(const std::vector<StringPair>& group_pairs) override;

  size_t questions_asked() const { return questions_asked_; }

 private:
  VariantJudge variant_judge_;
  DirectionJudge direction_judge_;
  Options options_;
  size_t questions_asked_ = 0;
};

/// An oracle that approves everything lhs -> rhs; useful as a baseline
/// ("apply transformations blindly") and in tests.
class ApproveAllOracle : public VerificationOracle {
 public:
  Verdict Verify(const std::vector<StringPair>& group_pairs) override;
};

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_ORACLE_H_

// Truth discovery substrate (Section 8.3). The paper evaluates with
// majority consensus (MC): per cluster and column, pick the most frequent
// value; a tie produces no golden value. A frequency-weighted variant
// breaking ties by source order is provided as an extension point.
#ifndef USTL_CONSOLIDATE_TRUTH_DISCOVERY_H_
#define USTL_CONSOLIDATE_TRUTH_DISCOVERY_H_

#include <optional>
#include <string>
#include <vector>

#include "consolidate/cluster.h"

namespace ustl {

/// Majority value of one cluster's values; nullopt on a frequency tie
/// between two different values (MC "could not produce a golden value").
std::optional<std::string> MajorityValue(const std::vector<std::string>& values);

/// MC golden records for every cluster of the table (Algorithm 1 line 10).
std::vector<GoldenRecord> MajorityConsensus(const Table& table);

/// MC golden values for one column.
std::vector<std::optional<std::string>> MajorityConsensusColumn(
    const Column& column);

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_TRUTH_DISCOVERY_H_

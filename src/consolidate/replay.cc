#include "consolidate/replay.h"

#include <algorithm>

#include "dsl/parser.h"
#include "replace/replacement_store.h"

namespace ustl {

namespace {

// Quoted form for pair values in the text log: arbitrary bytes survive
// the line-oriented "key: value" format.
std::string QuoteValue(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

// Parses one quoted value starting at `pos` (which must point at the
// opening quote). Advances `pos` past the closing quote. False on
// malformed input.
bool ParseQuotedValue(std::string_view text, size_t* pos, std::string* out) {
  if (*pos >= text.size() || text[*pos] != '"') return false;
  out->clear();
  for (size_t i = *pos + 1; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') {
      *pos = i + 1;
      return true;
    }
    if (c == '\\') {
      if (++i >= text.size()) return false;
      switch (text[i]) {
        case '\\':
          *out += '\\';
          break;
        case '"':
          *out += '"';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        default:
          return false;
      }
      continue;
    }
    *out += c;
  }
  return false;  // unterminated
}

}  // namespace

size_t ApplyTransformation(Column* column,
                           const ApprovedTransformation& transformation) {
  // Route through the replacement store: candidate pairs (whole-value AND
  // token-level, Appendix A) are generated exactly as during the original
  // verification session, each consistent pair is applied at its recorded
  // occurrences, and Section 7.1's bookkeeping keeps later pairs valid
  // after earlier edits.
  ReplacementStore store(*column, CandidateGenOptions{});
  size_t edits = 0;
  if (!transformation.pairs.empty()) {
    // Faithful mode: rewrite exactly the recorded member pairs, in the
    // recorded order. A pair's transformation graph is a pure function of
    // its two values, so every candidate with the same (lhs, rhs) was a
    // member of the approved group; candidates appended by this
    // transformation's own edits are excluded, just as the live session's
    // grouping snapshot excluded them.
    const size_t snapshot = store.num_pairs();
    for (const StringPair& target : transformation.pairs) {
      for (size_t i = 0; i < snapshot; ++i) {
        if (store.occurrences(i).empty()) continue;
        if (!(store.pair(i) == target)) continue;
        edits += transformation.direction == ReplaceDirection::kLhsToRhs
                     ? store.Apply(i)
                     : store.ApplyReverse(i);
      }
    }
    *column = store.column();
    return edits;
  }
  // Generalization mode (no recorded members — legacy log, or a log
  // deliberately stripped to programs for fresh batches of the feed).
  // pairs() may grow while applying (edited clusters are re-derived);
  // newly appended pairs get their consistency check too, so one replay
  // step can complete a chain the original session approved in one group.
  for (size_t i = 0; i < store.num_pairs(); ++i) {
    if (store.occurrences(i).empty()) continue;
    const StringPair& pair = store.pair(i);
    if (!transformation.program.ConsistentWith(pair.lhs, pair.rhs)) continue;
    edits += transformation.direction == ReplaceDirection::kLhsToRhs
                 ? store.Apply(i)
                 : store.ApplyReverse(i);
  }
  *column = store.column();
  return edits;
}

size_t ReplayTransformations(
    Table* table,
    const std::vector<ApprovedTransformation>& transformations) {
  size_t edits = 0;
  for (size_t col = 0; col < table->num_columns(); ++col) {
    const std::string& name = table->column_names()[col];
    Column column = table->ExtractColumn(col);
    size_t column_edits = 0;
    for (const ApprovedTransformation& transformation : transformations) {
      if (!transformation.column.empty() && transformation.column != name) {
        continue;
      }
      column_edits += ApplyTransformation(&column, transformation);
    }
    if (column_edits > 0) table->StoreColumn(col, column);
    edits += column_edits;
  }
  return edits;
}

std::string SerializeTransformationLog(
    const std::vector<ApprovedTransformation>& transformations) {
  std::string out;
  for (const ApprovedTransformation& transformation : transformations) {
    if (!transformation.column.empty()) {
      out += "column: " + transformation.column + "\n";
    }
    out += "direction: ";
    out += transformation.direction == ReplaceDirection::kLhsToRhs
               ? "lhs->rhs"
               : "rhs->lhs";
    out += "\n";
    out += "program: " + SerializeProgram(transformation.program) + "\n";
    for (const StringPair& pair : transformation.pairs) {
      out += "pair: " + QuoteValue(pair.lhs) + " -> " + QuoteValue(pair.rhs) +
             "\n";
    }
    out += "\n";
  }
  return out;
}

Result<std::vector<ApprovedTransformation>> ParseTransformationLog(
    std::string_view text) {
  std::vector<ApprovedTransformation> out;
  ApprovedTransformation current;
  bool has_program = false;

  auto flush = [&]() -> Status {
    if (!has_program) return Status::OK();
    out.push_back(std::move(current));
    current = ApprovedTransformation{};
    has_program = false;
    return Status::OK();
  };

  size_t line_start = 0;
  size_t line_number = 0;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    ++line_number;
    line_start = line_end + 1;

    // Trim trailing CR.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) {
      Status status = flush();
      if (!status.ok()) return status;
      if (line_end == text.size()) break;
      continue;
    }
    const size_t colon = line.find(": ");
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(
          "transformation log line " + std::to_string(line_number) +
          ": expected 'key: value'");
    }
    std::string_view key = line.substr(0, colon);
    std::string_view value = line.substr(colon + 2);
    if (key == "column") {
      current.column = std::string(value);
    } else if (key == "direction") {
      if (value == "lhs->rhs") {
        current.direction = ReplaceDirection::kLhsToRhs;
      } else if (value == "rhs->lhs") {
        current.direction = ReplaceDirection::kRhsToLhs;
      } else {
        return Status::InvalidArgument(
            "transformation log line " + std::to_string(line_number) +
            ": unknown direction '" + std::string(value) + "'");
      }
    } else if (key == "program") {
      Result<Program> program = ParseProgram(value);
      if (!program.ok()) {
        return Status::InvalidArgument(
            "transformation log line " + std::to_string(line_number) +
            ": " + program.status().ToString());
      }
      current.program = std::move(program).value();
      has_program = true;
    } else if (key == "pair") {
      StringPair pair;
      size_t pos = 0;
      bool ok = ParseQuotedValue(value, &pos, &pair.lhs) &&
                value.substr(pos, 4) == " -> ";
      if (ok) {
        pos += 4;
        ok = ParseQuotedValue(value, &pos, &pair.rhs) && pos == value.size();
      }
      if (!ok) {
        return Status::InvalidArgument(
            "transformation log line " + std::to_string(line_number) +
            ": expected pair: \"lhs\" -> \"rhs\"");
      }
      current.pairs.push_back(std::move(pair));
    }
    // Unknown keys (e.g. "size") are informational; skip.
    if (line_end == text.size()) {
      Status status = flush();
      if (!status.ok()) return status;
      break;
    }
  }
  return out;
}

}  // namespace ustl

#include "consolidate/cluster.h"

#include "common/status.h"

namespace ustl {

size_t Table::num_records() const {
  size_t count = 0;
  for (const auto& cluster : rows_) count += cluster.size();
  return count;
}

size_t Table::AddCluster() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

void Table::AddRecord(size_t cluster, std::vector<std::string> values) {
  USTL_CHECK(cluster < rows_.size());
  USTL_CHECK(values.size() == num_columns());
  rows_[cluster].push_back(std::move(values));
}

Column Table::ExtractColumn(size_t col) const {
  USTL_CHECK(col < num_columns());
  Column out;
  out.reserve(rows_.size());
  for (const auto& cluster : rows_) {
    std::vector<std::string> values;
    values.reserve(cluster.size());
    for (const auto& record : cluster) values.push_back(record[col]);
    out.push_back(std::move(values));
  }
  return out;
}

void Table::StoreColumn(size_t col, const Column& column) {
  USTL_CHECK(col < num_columns());
  USTL_CHECK(column.size() == rows_.size());
  for (size_t c = 0; c < rows_.size(); ++c) {
    USTL_CHECK(column[c].size() == rows_[c].size());
    for (size_t r = 0; r < rows_[c].size(); ++r) {
      rows_[c][r][col] = column[c][r];
    }
  }
}

}  // namespace ustl

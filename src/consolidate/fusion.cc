#include "consolidate/fusion.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/status.h"
#include "consolidate/truth_discovery.h"

namespace ustl {
namespace {

// Distinct claimed values of one cluster with their supporter source ids
// (one entry per record; a source claiming twice counts twice, matching
// the record-granularity of the paper's clusters).
struct ClusterClaims {
  std::vector<std::string> values;             // distinct, sorted
  std::vector<std::vector<int>> supporters;    // parallel to values
};

ClusterClaims CollectClaims(const std::vector<std::string>& cluster,
                            const std::vector<int>& cluster_sources) {
  USTL_CHECK(cluster.size() == cluster_sources.size());
  std::map<std::string, std::vector<int>> by_value;
  for (size_t r = 0; r < cluster.size(); ++r) {
    by_value[cluster[r]].push_back(cluster_sources[r]);
  }
  ClusterClaims claims;
  claims.values.reserve(by_value.size());
  claims.supporters.reserve(by_value.size());
  for (auto& [value, supporters] : by_value) {
    claims.values.push_back(value);
    claims.supporters.push_back(std::move(supporters));
  }
  return claims;
}

// Argmax over scores; on an exact tie the lexicographically smallest
// value wins for the iterative methods (scores are continuous, exact ties
// mean identical evidence) — values are already sorted, so the first max
// is that value.
size_t ArgMax(const std::vector<double>& scores) {
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return best;
}

void ValidateSources(const Column& column, const SourceMatrix& sources,
                     size_t num_sources) {
  USTL_CHECK(column.size() == sources.size());
  for (size_t c = 0; c < column.size(); ++c) {
    USTL_CHECK(column[c].size() == sources[c].size());
    for (int s : sources[c]) {
      USTL_CHECK(s >= 0 && static_cast<size_t>(s) < num_sources);
    }
  }
}

}  // namespace

FusionResult WeightedVote(const Column& column, const SourceMatrix& sources,
                          const std::vector<double>& weights) {
  ValidateSources(column, sources, weights.size());
  FusionResult result;
  result.source_trust = weights;
  result.iterations = 1;
  result.golden.reserve(column.size());
  for (size_t c = 0; c < column.size(); ++c) {
    ClusterClaims claims = CollectClaims(column[c], sources[c]);
    if (claims.values.empty()) {
      result.golden.emplace_back(std::nullopt);
      continue;
    }
    std::vector<double> scores(claims.values.size(), 0.0);
    for (size_t v = 0; v < claims.values.size(); ++v) {
      for (int s : claims.supporters[v]) scores[v] += weights[s];
    }
    size_t best = ArgMax(scores);
    // MC tie semantics: a distinct value with the same score blocks the
    // decision.
    bool tie = false;
    for (size_t v = 0; v < scores.size(); ++v) {
      if (v != best && scores[v] == scores[best]) tie = true;
    }
    if (tie) {
      result.golden.emplace_back(std::nullopt);
    } else {
      result.golden.emplace_back(claims.values[best]);
    }
  }
  return result;
}

FusionResult TruthFinder(const Column& column, const SourceMatrix& sources,
                         size_t num_sources,
                         const TruthFinderOptions& options) {
  ValidateSources(column, sources, num_sources);
  std::vector<double> trust(num_sources, options.initial_trust);

  // Pre-collect claims once; the iteration only touches scores.
  std::vector<ClusterClaims> claims;
  claims.reserve(column.size());
  for (size_t c = 0; c < column.size(); ++c) {
    claims.push_back(CollectClaims(column[c], sources[c]));
  }

  auto tau = [&](int s) {
    const double t =
        std::clamp(trust[s], options.clamp, 1.0 - options.clamp);
    return -std::log(1.0 - t);
  };
  auto confidence = [&](double sigma) {
    return 1.0 / (1.0 + std::exp(-options.dampening * sigma));
  };

  int iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    std::vector<double> sum(num_sources, 0.0);
    std::vector<int> count(num_sources, 0);
    for (const ClusterClaims& cluster : claims) {
      for (size_t v = 0; v < cluster.values.size(); ++v) {
        double sigma = 0.0;
        for (int s : cluster.supporters[v]) sigma += tau(s);
        const double conf = confidence(sigma);
        for (int s : cluster.supporters[v]) {
          sum[s] += conf;
          ++count[s];
        }
      }
    }
    double delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      const double updated = count[s] == 0 ? trust[s] : sum[s] / count[s];
      delta = std::max(delta, std::abs(updated - trust[s]));
      trust[s] = updated;
    }
    if (delta < options.convergence) {
      ++iterations;
      break;
    }
  }

  FusionResult result;
  result.iterations = iterations;
  result.source_trust = trust;
  result.golden.reserve(column.size());
  for (const ClusterClaims& cluster : claims) {
    if (cluster.values.empty()) {
      result.golden.emplace_back(std::nullopt);
      continue;
    }
    std::vector<double> scores(cluster.values.size(), 0.0);
    for (size_t v = 0; v < cluster.values.size(); ++v) {
      for (int s : cluster.supporters[v]) scores[v] += tau(s);
    }
    result.golden.emplace_back(cluster.values[ArgMax(scores)]);
  }
  return result;
}

FusionResult AccuFusion(const Column& column, const SourceMatrix& sources,
                        size_t num_sources, const AccuOptions& options) {
  ValidateSources(column, sources, num_sources);
  USTL_CHECK(options.num_false_values >= 1);
  std::vector<double> accuracy(num_sources, options.initial_accuracy);

  std::vector<ClusterClaims> claims;
  claims.reserve(column.size());
  for (size_t c = 0; c < column.size(); ++c) {
    claims.push_back(CollectClaims(column[c], sources[c]));
  }

  const double n = static_cast<double>(options.num_false_values);
  auto claim_score = [&](int s) {
    const double a =
        std::clamp(accuracy[s], options.clamp, 1.0 - options.clamp);
    return std::log(n * a / (1.0 - a));
  };
  // Posterior of each value in a cluster under current accuracies.
  auto posteriors = [&](const ClusterClaims& cluster) {
    std::vector<double> scores(cluster.values.size(), 0.0);
    for (size_t v = 0; v < cluster.values.size(); ++v) {
      for (int s : cluster.supporters[v]) scores[v] += claim_score(s);
    }
    double max_score = *std::max_element(scores.begin(), scores.end());
    double total = 0.0;
    for (double& score : scores) {
      score = std::exp(score - max_score);
      total += score;
    }
    for (double& score : scores) score /= total;
    return scores;
  };

  int iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    std::vector<double> sum(num_sources, 0.0);
    std::vector<int> count(num_sources, 0);
    for (const ClusterClaims& cluster : claims) {
      if (cluster.values.empty()) continue;
      std::vector<double> p = posteriors(cluster);
      for (size_t v = 0; v < cluster.values.size(); ++v) {
        for (int s : cluster.supporters[v]) {
          sum[s] += p[v];
          ++count[s];
        }
      }
    }
    double delta = 0.0;
    for (size_t s = 0; s < num_sources; ++s) {
      const double updated =
          count[s] == 0 ? accuracy[s] : sum[s] / count[s];
      delta = std::max(delta, std::abs(updated - accuracy[s]));
      accuracy[s] = updated;
    }
    if (delta < options.convergence) {
      ++iterations;
      break;
    }
  }

  FusionResult result;
  result.iterations = iterations;
  result.source_trust = accuracy;
  result.golden.reserve(column.size());
  for (const ClusterClaims& cluster : claims) {
    if (cluster.values.empty()) {
      result.golden.emplace_back(std::nullopt);
      continue;
    }
    std::vector<double> p = posteriors(cluster);
    result.golden.emplace_back(cluster.values[ArgMax(p)]);
  }
  return result;
}

const char* FusionMethodName(FusionMethod method) {
  switch (method) {
    case FusionMethod::kMajority:
      return "MC";
    case FusionMethod::kWeightedVote:
      return "Weighted";
    case FusionMethod::kTruthFinder:
      return "TruthFinder";
    case FusionMethod::kAccu:
      return "Accu";
  }
  return "?";
}

std::vector<GoldenRecord> FuseTable(const Table& table,
                                    const SourceMatrix& record_sources,
                                    size_t num_sources, FusionMethod method,
                                    const std::vector<double>& weights) {
  // Weighted voting needs one weight per source; catch the omission here
  // rather than deep inside the per-column validation.
  USTL_CHECK(method != FusionMethod::kWeightedVote ||
             weights.size() == num_sources);
  std::vector<GoldenRecord> records(table.num_clusters(),
                                    GoldenRecord(table.num_columns()));
  for (size_t col = 0; col < table.num_columns(); ++col) {
    Column column = table.ExtractColumn(col);
    std::vector<std::optional<std::string>> golden;
    switch (method) {
      case FusionMethod::kMajority:
        golden = MajorityConsensusColumn(column);
        break;
      case FusionMethod::kWeightedVote:
        golden = WeightedVote(column, record_sources, weights).golden;
        break;
      case FusionMethod::kTruthFinder:
        golden =
            TruthFinder(column, record_sources, num_sources).golden;
        break;
      case FusionMethod::kAccu:
        golden = AccuFusion(column, record_sources, num_sources).golden;
        break;
    }
    for (size_t c = 0; c < records.size(); ++c) {
      records[c][col] = std::move(golden[c]);
    }
  }
  return records;
}

}  // namespace ustl

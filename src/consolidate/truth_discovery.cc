#include "consolidate/truth_discovery.h"

#include <map>

namespace ustl {

std::optional<std::string> MajorityValue(
    const std::vector<std::string>& values) {
  if (values.empty()) return std::nullopt;
  std::map<std::string, size_t> counts;
  for (const std::string& v : values) ++counts[v];
  size_t best = 0;
  bool tie = false;
  const std::string* winner = nullptr;
  for (const auto& [value, count] : counts) {
    if (count > best) {
      best = count;
      winner = &value;
      tie = false;
    } else if (count == best) {
      tie = true;
    }
  }
  if (tie || winner == nullptr) return std::nullopt;
  return *winner;
}

std::vector<std::optional<std::string>> MajorityConsensusColumn(
    const Column& column) {
  std::vector<std::optional<std::string>> out;
  out.reserve(column.size());
  for (const auto& cluster : column) out.push_back(MajorityValue(cluster));
  return out;
}

std::vector<GoldenRecord> MajorityConsensus(const Table& table) {
  std::vector<GoldenRecord> out(table.num_clusters(),
                                GoldenRecord(table.num_columns()));
  for (size_t col = 0; col < table.num_columns(); ++col) {
    Column column = table.ExtractColumn(col);
    std::vector<std::optional<std::string>> golden =
        MajorityConsensusColumn(column);
    for (size_t c = 0; c < golden.size(); ++c) out[c][col] = golden[c];
  }
  return out;
}

}  // namespace ustl

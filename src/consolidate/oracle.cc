#include "consolidate/oracle.h"

#include <algorithm>

namespace ustl {

SimulatedOracle::SimulatedOracle(VariantJudge variant_judge,
                                 DirectionJudge direction_judge,
                                 Options options)
    : variant_judge_(std::move(variant_judge)),
      direction_judge_(std::move(direction_judge)),
      options_(options),
      rng_(options.seed) {
  USTL_CHECK(variant_judge_ != nullptr);
}

Verdict SimulatedOracle::Verify(const std::vector<StringPair>& group_pairs) {
  ++questions_asked_;
  Verdict verdict;
  if (group_pairs.empty()) return verdict;

  // Inspect a deterministic sample of at most max_inspected pairs.
  std::vector<size_t> indices(group_pairs.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  if (indices.size() > options_.max_inspected) {
    rng_.Shuffle(&indices);
    indices.resize(options_.max_inspected);
  }

  size_t genuine = 0;
  int direction_votes = 0;
  for (size_t i : indices) {
    const StringPair& pair = group_pairs[i];
    if (variant_judge_(pair)) ++genuine;
    if (direction_judge_ != nullptr) {
      int vote = direction_judge_(pair);
      direction_votes += vote > 0 ? 1 : (vote < 0 ? -1 : 0);
    }
  }
  bool approved =
      static_cast<double>(genuine) >=
      options_.approve_threshold * static_cast<double>(indices.size());
  if (options_.error_rate > 0.0 && rng_.Bernoulli(options_.error_rate)) {
    approved = !approved;  // injected human mistake
  }
  verdict.approved = approved;
  verdict.direction = direction_votes < 0 ? ReplaceDirection::kRhsToLhs
                                          : ReplaceDirection::kLhsToRhs;
  return verdict;
}

Verdict ApproveAllOracle::Verify(const std::vector<StringPair>& group_pairs) {
  (void)group_pairs;
  Verdict verdict;
  verdict.approved = true;
  verdict.direction = ReplaceDirection::kLhsToRhs;
  return verdict;
}

}  // namespace ustl

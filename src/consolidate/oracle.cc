#include "consolidate/oracle.h"

#include <algorithm>

namespace ustl {

uint64_t HashQuestion(const std::vector<StringPair>& group_pairs) {
  // FNV-1a over length-prefixed fields: values may contain arbitrary
  // bytes, so a separator byte would be ambiguous ({"a\x1f", "x"} vs
  // {"a", "\x1fx"}); the length prefix makes every field boundary
  // explicit, and {"ab",""} vs {"a","b"} hash differently too.
  uint64_t h = 1469598103934665603ull;
  auto fold = [&h](std::string_view s) {
    uint64_t length = s.size();
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (length >> (8 * byte)) & 0xffull;
      h *= 1099511628211ull;
    }
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  for (const StringPair& pair : group_pairs) {
    fold(pair.lhs);
    fold(pair.rhs);
  }
  return h;
}

SimulatedOracle::SimulatedOracle(VariantJudge variant_judge,
                                 DirectionJudge direction_judge,
                                 Options options)
    : variant_judge_(std::move(variant_judge)),
      direction_judge_(std::move(direction_judge)),
      options_(options) {
  USTL_CHECK(variant_judge_ != nullptr);
}

Verdict SimulatedOracle::Verify(const std::vector<StringPair>& group_pairs) {
  ++questions_asked_;
  Verdict verdict;
  if (group_pairs.empty()) return verdict;

  // All randomness below is seeded from the question content: the sample
  // of inspected pairs and the error flip are the same whenever this group
  // is presented, in any order relative to other questions.
  Rng rng(HashQuestion(group_pairs) ^
          (options_.seed * 0x9e3779b97f4a7c15ull));

  // Inspect a deterministic sample of at most max_inspected pairs.
  std::vector<size_t> indices(group_pairs.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  if (indices.size() > options_.max_inspected) {
    rng.Shuffle(&indices);
    indices.resize(options_.max_inspected);
  }

  size_t genuine = 0;
  int direction_votes = 0;
  for (size_t i : indices) {
    const StringPair& pair = group_pairs[i];
    if (variant_judge_(pair)) ++genuine;
    if (direction_judge_ != nullptr) {
      int vote = direction_judge_(pair);
      direction_votes += vote > 0 ? 1 : (vote < 0 ? -1 : 0);
    }
  }
  bool approved =
      static_cast<double>(genuine) >=
      options_.approve_threshold * static_cast<double>(indices.size());
  if (options_.error_rate > 0.0 && rng.Bernoulli(options_.error_rate)) {
    approved = !approved;  // injected human mistake
  }
  verdict.approved = approved;
  verdict.direction = direction_votes < 0 ? ReplaceDirection::kRhsToLhs
                                          : ReplaceDirection::kLhsToRhs;
  return verdict;
}

Verdict ApproveAllOracle::Verify(const std::vector<StringPair>& group_pairs) {
  (void)group_pairs;
  Verdict verdict;
  verdict.approved = true;
  verdict.direction = ReplaceDirection::kLhsToRhs;
  return verdict;
}

}  // namespace ustl

// The clustered-records data model (Definition 1). Entity resolution is
// upstream of the paper; its output — clusters of duplicate records — is
// our input. A Table holds m named columns over a set of clusters;
// Algorithm 1 standardizes each column and then runs truth discovery.
#ifndef USTL_CONSOLIDATE_CLUSTER_H_
#define USTL_CONSOLIDATE_CLUSTER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "replace/replacement.h"

namespace ustl {

/// Clustered records: clusters()[c][r] is record r of cluster c, a vector
/// of m attribute values.
class Table {
 public:
  explicit Table(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  size_t num_columns() const { return column_names_.size(); }
  size_t num_clusters() const { return rows_.size(); }
  size_t num_records() const;

  /// Appends an empty cluster and returns its index.
  size_t AddCluster();
  /// Appends a record (must have num_columns() values) to cluster c.
  void AddRecord(size_t cluster, std::vector<std::string> values);

  const std::vector<std::vector<std::string>>& cluster(size_t c) const {
    return rows_[c];
  }

  /// Extracts column `col` as clusters of values (the unit Algorithm 1
  /// standardizes).
  Column ExtractColumn(size_t col) const;
  /// Writes a standardized column back; shape must match.
  void StoreColumn(size_t col, const Column& column);

 private:
  std::vector<std::string> column_names_;
  // rows_[c][r][col]
  std::vector<std::vector<std::vector<std::string>>> rows_;
};

/// A golden record: one optional value per column (nullopt when truth
/// discovery could not decide, e.g. a tie under majority consensus).
using GoldenRecord = std::vector<std::optional<std::string>>;

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_CLUSTER_H_

// The golden-record construction framework (Algorithm 1): per column,
// generate candidate replacements, group them (incrementally, Section 6),
// present groups to the human in decreasing size order until the budget is
// exhausted, apply approved groups, and finally run truth discovery.
#ifndef USTL_CONSOLIDATE_FRAMEWORK_H_
#define USTL_CONSOLIDATE_FRAMEWORK_H_

#include <functional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "consolidate/cluster.h"
#include "consolidate/oracle.h"
#include "consolidate/truth_discovery.h"
#include "grouping/grouping.h"
#include "replace/replacement_store.h"

namespace ustl {

struct FrameworkOptions {
  CandidateGenOptions candidates;
  /// Grouping configuration, including `grouping.num_threads` (0 =
  /// hardware concurrency, 1 = serial): the framework's parallelism knob.
  /// Results are bit-identical for any value — see
  /// GroupingOptions::num_threads for the contract.
  GroupingOptions grouping;
  /// Groups presented to the human per column (the budget of Section 3).
  size_t budget_per_column = 100;
  /// Groups of size 1 carry no repetition evidence; the paper's Single
  /// baseline presents them one by one. When false, singleton groups are
  /// still presented (they count against the budget).
  bool skip_singletons = false;
  /// Skip groups whose pivot is a single full-width ConstantStr ("replace
  /// anything by this exact value"). Those are repeated-conflict artifacts,
  /// not transformations, and would waste human budget; skipping them does
  /// not consume budget. See Group::pure_constant.
  bool skip_constant_pivot_groups = true;
  /// Skip groups whose pivot program is mostly "emit this literal":
  /// constant coverage above this fraction (Group::constant_coverage).
  /// Variant families always exist in both directions, and the
  /// low-coverage direction survives, so no transformation is lost.
  /// Set to 1.0 to disable.
  double max_constant_coverage = 0.7;
  /// Skip groups all of whose member replacements have empty replacement
  /// sets (Section 7.1: a replacement whose set became empty "no longer
  /// exists" and is removed from Phi). Typically the mirror of an already
  /// applied group. Does not consume budget.
  bool skip_dead_groups = true;
  /// Single-baseline presentation order. The paper's Single has no size
  /// signal (all groups have one member), so candidates are shown in
  /// generation order; enabling this ranks them by replacement-set size
  /// instead, a strictly stronger variant than the paper's.
  bool single_rank_by_occurrences = false;
  /// Called after every presented group with the number of groups
  /// presented so far and the current column state. Lets the benchmark
  /// harnesses measure precision/recall/MCC as a function of the budget
  /// (x-axis of Figures 6-8) in a single pass. May be null.
  ///
  /// Thread-safety under column parallelism (pipeline/pipeline.h): the
  /// pipeline serializes invocations — the callback is never entered
  /// concurrently, so it may touch unsynchronized state — but calls from
  /// *different columns* interleave in scheduling order. Per column the
  /// presented counts are still strictly increasing; use the column
  /// argument (or capture per-column state) to disambiguate, and don't
  /// assume a deterministic global call order when columns run in
  /// parallel.
  std::function<void(size_t, const Column&)> progress_callback;
  /// Name of the column being standardized. Purely attributive: it scopes
  /// the oracle QuestionContext so brokers can build per-column replay
  /// logs. The pipeline fills it per job; empty is fine elsewhere.
  std::string column_name;
  /// Cooperative cancellation (common/cancel.h). Checked before every
  /// presented group, forwarded into the grouping engine's scan loops and
  /// into the oracle QuestionContext (so a broker can unwind a waiter).
  /// A tripped token aborts the run via CancelledError before the next
  /// side effect; the partially edited column is abandoned by the caller.
  /// Inert by default.
  CancelToken cancel;
  /// Serving-layer attribution: id of the request this column belongs to
  /// (0 = none). Travels in the QuestionContext so per-request retry and
  /// breaker events can name their request.
  uint64_t request_id = 0;
  /// Per-request trace (obs/trace.h; null = untraced). StandardizeColumn
  /// opens candidates/apply spans under `trace_parent` (the serving
  /// layer's column span), forwards the context into the grouping options
  /// (graph_build, search_wave spans) and into every QuestionContext
  /// (oracle batch/call attribution). Observability only: nothing in the
  /// run reads it, so traced and untraced runs are byte-identical.
  TraceContext* trace = nullptr;
  uint64_t trace_parent = 0;
};

/// One presented group, for reports and the examples.
struct GroupTrace {
  size_t size = 0;
  bool approved = false;
  ReplaceDirection direction = ReplaceDirection::kLhsToRhs;
  size_t edits = 0;
  std::string structure;
  std::string program;
  std::vector<StringPair> sample_pairs;  // up to 5, for display
};

struct ColumnRunResult {
  size_t groups_presented = 0;
  size_t groups_approved = 0;
  size_t edits = 0;
  std::vector<GroupTrace> trace;
  /// Search-work counters of the column's grouping engine (searches,
  /// expansions, cache/warm hits...). The serving layer and the benches
  /// read these to show what a warm cross-engine search cache saved;
  /// zeroes for StandardizeColumnSingle, which never builds an engine.
  IncrementalStats grouping;
};

/// Standardizes one column in place (Algorithm 1 lines 2-9 for one Ci).
ColumnRunResult StandardizeColumn(Column* column,
                                  VerificationOracle* oracle,
                                  const FrameworkOptions& options);

/// The paper's Single baseline: no grouping — every candidate replacement
/// is a group by itself, presented in decreasing replacement-set size
/// (most 'profitable' first) until the budget runs out.
ColumnRunResult StandardizeColumnSingle(Column* column,
                                        VerificationOracle* oracle,
                                        const FrameworkOptions& options);

/// Full Algorithm 1: standardize every column of the table with the same
/// oracle/budget, then return MC golden records. Delegates to the serving
/// layer (via the pipeline's one-shot facade) in its serial, cache-off
/// configuration — defined in pipeline/pipeline.cc, which this header
/// must not include — so this entry point behaves exactly like the
/// historical per-column loop; use RunConsolidationPipeline
/// (pipeline/pipeline.h) for column parallelism, verdict caching and
/// broker statistics, or serve/service.h's ConsolidationService for
/// long-lived multi-table serving with caches warm across requests.
struct GoldenRecordRun {
  std::vector<ColumnRunResult> per_column;
  std::vector<GoldenRecord> golden_records;
};
GoldenRecordRun GoldenRecordCreation(Table* table, VerificationOracle* oracle,
                                     const FrameworkOptions& options);

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_FRAMEWORK_H_

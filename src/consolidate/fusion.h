// Truth-discovery / data-fusion substrate beyond majority consensus.
// Section 8.3 evaluates standardization with MC only, but Section 9 frames
// the pipeline as a pre-processing step for the truth-discovery and
// data-fusion literature it cites: TruthFinder-style iterative source
// trustworthiness (Yin et al. [44]) and Bayesian source-accuracy models
// (Dong et al. [15], Li et al. [31]). This module implements those two
// families plus a fixed-weight vote, over source-attributed claims, so the
// Table 8 experiment can be repeated for every fusion method.
//
// Claims are a clustered column (Column, as everywhere in the library)
// plus a parallel matrix of source ids: sources[c][r] is the id of the
// data source that contributed record r of cluster c (Figure 1's "Data
// Source 1..N"). All methods are deterministic.
#ifndef USTL_CONSOLIDATE_FUSION_H_
#define USTL_CONSOLIDATE_FUSION_H_

#include <optional>
#include <string>
#include <vector>

#include "consolidate/cluster.h"

namespace ustl {

/// Per-record source attribution, parallel to a Column.
using SourceMatrix = std::vector<std::vector<int>>;

/// The outcome of one fusion run over a column.
struct FusionResult {
  /// Per cluster: the fused value; nullopt when the cluster is empty or
  /// the method could not decide (e.g. an exact vote tie).
  std::vector<std::optional<std::string>> golden;
  /// Learned (or given) per-source trust/accuracy in [0, 1].
  std::vector<double> source_trust;
  /// Iterations until convergence (1 for non-iterative methods).
  int iterations = 0;
};

/// Fixed-weight vote: value score = sum of its supporters' weights; an
/// exact tie between two distinct top values yields no golden value
/// (majority-consensus semantics). With unit weights this is MC with
/// source-deduplicated counting.
FusionResult WeightedVote(const Column& column, const SourceMatrix& sources,
                          const std::vector<double>& weights);

struct TruthFinderOptions {
  /// Initial trustworthiness of every source.
  double initial_trust = 0.8;
  /// Dampening factor gamma of the logistic that maps a value's
  /// accumulated score to a confidence; prevents overconfidence from few
  /// correlated supporters.
  double dampening = 0.3;
  int max_iterations = 50;
  /// Stop when no source trust moves by more than this between rounds.
  double convergence = 1e-4;
  /// Trust is clamped to [clamp, 1 - clamp] so tau = -ln(1 - t) stays
  /// finite.
  double clamp = 0.01;
};

/// Iterative trustworthiness fusion: a value's confidence grows with the
/// trust of the sources claiming it, and a source's trust is the mean
/// confidence of its claims, iterated to a fixed point.
FusionResult TruthFinder(const Column& column, const SourceMatrix& sources,
                         size_t num_sources,
                         const TruthFinderOptions& options = {});

struct AccuOptions {
  /// Initial accuracy of every source.
  double initial_accuracy = 0.8;
  /// The assumed number of wrong values a bad source may emit (the n of
  /// the Bayesian model): a claim by a source of accuracy A multiplies a
  /// value's odds by n * A / (1 - A).
  int num_false_values = 10;
  int max_iterations = 50;
  double convergence = 1e-4;
  /// Accuracy is clamped to [clamp, 1 - clamp].
  double clamp = 0.01;
};

/// Bayesian source-accuracy fusion (the ACCU family without copying
/// detection): value posteriors from source accuracies, source accuracy
/// as the mean posterior of its claims, iterated to a fixed point.
FusionResult AccuFusion(const Column& column, const SourceMatrix& sources,
                        size_t num_sources, const AccuOptions& options = {});

/// The fusion methods, for table-level dispatch and benches.
enum class FusionMethod { kMajority, kWeightedVote, kTruthFinder, kAccu };

/// Printable method name ("MC", "Weighted", "TruthFinder", "Accu").
const char* FusionMethodName(FusionMethod method);

/// Fuses every column of a table with one method and per-record sources
/// (record_sources[c][r] attributes record r of cluster c, the same for
/// every column). `weights` is only consulted by kWeightedVote; kMajority
/// ignores sources entirely (it is MajorityConsensus).
std::vector<GoldenRecord> FuseTable(const Table& table,
                                    const SourceMatrix& record_sources,
                                    size_t num_sources, FusionMethod method,
                                    const std::vector<double>& weights = {});

}  // namespace ustl

#endif  // USTL_CONSOLIDATE_FUSION_H_

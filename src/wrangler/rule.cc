#include "wrangler/rule.h"

#include "common/string_util.h"

namespace ustl {

Result<WranglerScript> WranglerScript::Compile(
    std::string name, std::vector<WranglerRule> rules) {
  WranglerScript script;
  script.name_ = std::move(name);
  script.rules_ = std::move(rules);
  script.compiled_.reserve(script.rules_.size());
  for (const WranglerRule& rule : script.rules_) {
    if (rule.kind != WranglerRule::Kind::kRegexReplace) {
      script.compiled_.emplace_back();
      continue;
    }
    auto flags = std::regex::ECMAScript | std::regex::optimize;
    if (rule.icase) flags |= std::regex::icase;
    // std::regex constructors throw; contain that here so the public API
    // stays exception-free.
    try {
      script.compiled_.emplace_back(rule.pattern, flags);
    } catch (const std::regex_error& e) {
      return Status::InvalidArgument("bad regex '" + rule.pattern +
                                     "': " + e.what());
    }
  }
  return script;
}

std::string WranglerScript::Apply(const std::string& value) const {
  std::string out = value;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const WranglerRule& rule = rules_[i];
    switch (rule.kind) {
      case WranglerRule::Kind::kRegexReplace:
        out = std::regex_replace(out, compiled_[i], rule.replacement);
        break;
      case WranglerRule::Kind::kLowercase:
        out = ToLower(out);
        break;
    }
  }
  return out;
}

size_t WranglerScript::ApplyToColumn(Column* column) const {
  size_t changed = 0;
  for (auto& cluster : *column) {
    for (std::string& cell : cluster) {
      std::string next = Apply(cell);
      if (next != cell) {
        cell = std::move(next);
        ++changed;
      }
    }
  }
  return changed;
}

}  // namespace ustl

// A Trifacta-like data-wrangling rule engine (the paper's baseline,
// Section 8). A script is an ordered list of rules a skilled user wrote
// after eyeballing the data; each regex rule rewrites every cell globally
// with capture-group substitution, exactly like the two example rules
// printed in Section 8:
//
//   REPLACE with: ''          on: '({any}+)'
//   REPLACE with: '$2 $3. $1' on: '({alpha}+), ({alpha}+) ({alpha}.)'
//
// Global application is the baseline's characteristic failure mode: good
// precision, partial recall, occasional collateral edits.
#ifndef USTL_WRANGLER_RULE_H_
#define USTL_WRANGLER_RULE_H_

#include <regex>
#include <string>
#include <vector>

#include "common/status.h"
#include "replace/replacement.h"

namespace ustl {

/// One wrangling rule.
struct WranglerRule {
  enum class Kind {
    kRegexReplace,  // regex_replace(cell, pattern, replacement)
    kLowercase,     // ASCII-lowercase the whole cell
  };

  Kind kind = Kind::kRegexReplace;
  std::string pattern;      // ECMAScript regex (kRegexReplace)
  std::string replacement;  // may use $1..$9 (kRegexReplace)
  bool icase = false;
  std::string note;         // what the user meant, for reports
};

/// A compiled, named rule script.
class WranglerScript {
 public:
  /// Compiles all rules; fails on an invalid regex.
  static Result<WranglerScript> Compile(std::string name,
                                        std::vector<WranglerRule> rules);

  const std::string& name() const { return name_; }
  size_t num_rules() const { return rules_.size(); }
  const std::vector<WranglerRule>& rules() const { return rules_; }

  /// Applies every rule, in order, to one value.
  std::string Apply(const std::string& value) const;

  /// Applies the script to every cell of the column in place. Returns the
  /// number of cells changed.
  size_t ApplyToColumn(Column* column) const;

 private:
  WranglerScript() = default;

  std::string name_;
  std::vector<WranglerRule> rules_;
  std::vector<std::regex> compiled_;  // parallel to regex rules (empty
                                      // regex for non-regex kinds)
};

}  // namespace ustl

#endif  // USTL_WRANGLER_RULE_H_

#include "wrangler/scripts.h"

namespace ustl {
namespace {

WranglerRule Re(std::string pattern, std::string replacement,
                std::string note) {
  WranglerRule rule;
  rule.kind = WranglerRule::Kind::kRegexReplace;
  rule.pattern = std::move(pattern);
  rule.replacement = std::move(replacement);
  rule.note = std::move(note);
  return rule;
}

const WranglerScript* CompileOrDie(std::string name,
                                   std::vector<WranglerRule> rules) {
  Result<WranglerScript> script =
      WranglerScript::Compile(std::move(name), std::move(rules));
  USTL_CHECK(script.ok());
  return new WranglerScript(std::move(script).value());
}

}  // namespace

const WranglerScript& AddressWranglerScript() {
  static const WranglerScript& script = *CompileOrDie(
      "address-wrangle",
      {
          // Street suffixes the user noticed (the rarer ones are missed).
          Re("\\bSt\\b", "Street", "St -> Street"),
          Re("\\bAve\\b", "Avenue", "Ave -> Avenue"),
          Re("\\bBlvd\\b", "Boulevard", "Blvd -> Boulevard"),
          Re("\\bRd\\b", "Road", "Rd -> Road"),
          Re("\\bDr\\b", "Drive", "Dr -> Drive"),
          Re("\\bLn\\b", "Lane", "Ln -> Lane"),
          // Ordinal suffixes: converge "9th"/"9" to the cardinal form.
          Re("\\b(\\d+)(?:st|nd|rd|th)\\b", "$1", "strip ordinal suffix"),
          // Compass directions.
          Re("\\bE\\b", "East", "E -> East"),
          Re("\\bW\\b", "West", "W -> West"),
          Re("\\bN\\b", "North", "N -> North"),
          Re("\\bS\\b", "South", "S -> South"),
          // The states the user spotted in the sample they eyeballed.
          Re("\\bWI\\b", "Wisconsin", "WI -> Wisconsin"),
          Re("\\bCA\\b", "California", "CA -> California"),
          Re("\\bTX\\b", "Texas", "TX -> Texas"),
          Re("\\bOH\\b", "Ohio", "OH -> Ohio"),
          Re("\\bFL\\b", "Florida", "FL -> Florida"),
          Re("\\bGA\\b", "Georgia", "GA -> Georgia"),
          Re("\\bOR\\b", "Oregon", "OR -> Oregon"),
          Re("\\bAZ\\b", "Arizona", "AZ -> Arizona"),
          Re("\\bCO\\b", "Colorado", "CO -> Colorado"),
          Re("\\bVA\\b", "Virginia", "VA -> Virginia"),
          Re("\\bWA\\b", "Washington", "WA -> Washington"),
      });
  return script;
}

const WranglerScript& AuthorListWranglerScript() {
  static const WranglerScript& script = *CompileOrDie(
      "authorlist-wrangle",
      {
          // Section 8's first example rule: drop parenthesized content.
          Re("\\s*\\((?:edt|author|editor|eds)\\)", "",
             "remove (edt)/(author) annotations"),
          // Whole-cell "last, first" transposition, one and two authors
          // (the paper's second example rule family).
          Re("^([a-z]+), ([a-z]+\\.?)$", "$2 $1",
             "transpose single 'last, first'"),
          Re("^([a-z]+), ([a-z]+\\.?) ([a-z]+), ([a-z]+\\.?)$",
             "$2 $1, $4 $3", "transpose two transposed authors"),
          Re("^([a-z]+), ([a-z]+\\.?) ([a-z]+), ([a-z]+\\.?) ([a-z]+), "
             "([a-z]+\\.?)$",
             "$2 $1, $4 $3, $6 $5", "transpose three transposed authors"),
          // A few nicknames the user recognized.
          Re("\\bbob\\b", "robert", "bob -> robert"),
          Re("\\bbill\\b", "william", "bill -> william"),
          Re("\\bjim\\b", "james", "jim -> james"),
          Re("\\bmike\\b", "michael", "mike -> michael"),
          Re("\\btom\\b", "thomas", "tom -> thomas"),
          Re("\\bdan\\b", "daniel", "dan -> daniel"),
      });
  return script;
}

const WranglerScript& JournalTitleWranglerScript() {
  static const WranglerScript& script = *CompileOrDie(
      "journaltitle-wrangle",
      {
          // Word abbreviations the user expanded (a partial list).
          Re("\\bJ\\.", "Journal", "J. -> Journal"),
          Re("\\bInt\\.", "International", "Int. -> International"),
          Re("\\bRev\\.", "Review", "Rev. -> Review"),
          Re("\\bProc\\.", "Proceedings", "Proc. -> Proceedings"),
          Re("\\bTrans\\.", "Transactions", "Trans. -> Transactions"),
          Re("\\bAm\\.", "American", "Am. -> American"),
          Re("\\bEur\\.", "European", "Eur. -> European"),
          Re("\\bAnn\\.", "Annals", "Ann. -> Annals"),
          Re("\\bRes\\.", "Research", "Res. -> Research"),
          Re("\\bSci\\.", "Science", "Sci. -> Science"),
          Re("\\bLett\\.", "Letters", "Lett. -> Letters"),
          // Ampersand and article normalization.
          Re("\\s*&\\s*", " and ", "& -> and"),
          Re("^[Tt]he\\s+", "", "drop leading article"),
          // Note: the user did not address case variants ("journal of
          // biology" records stay lowercased) — part of the baseline's
          // recall ceiling, matching the paper's JournalTitle result.
      });
  return script;
}

}  // namespace ustl

// Hand-written wrangler scripts for the three datasets, standing in for
// the paper's "skilled user spends 1 hour in Trifacta, writes 30-40 lines
// of wrangler code". Coverage is deliberately partial — the user fixes the
// families they notice, which is exactly the recall ceiling the paper
// measures for the baseline.
#ifndef USTL_WRANGLER_SCRIPTS_H_
#define USTL_WRANGLER_SCRIPTS_H_

#include "wrangler/rule.h"

namespace ustl {

/// Address: expand the common street suffixes and states, strip ordinal
/// suffixes, expand compass directions.
const WranglerScript& AddressWranglerScript();

/// AuthorList: drop (edt)/(author)/(editor) annotations, transpose
/// whole-cell "last, first" lists of one or two authors, expand a few
/// nicknames.
const WranglerScript& AuthorListWranglerScript();

/// JournalTitle: expand the common word abbreviations, & -> and, drop a
/// leading article, lowercase everything.
const WranglerScript& JournalTitleWranglerScript();

}  // namespace ustl

#endif  // USTL_WRANGLER_SCRIPTS_H_

// The replacement store (Section 7.1): owns a working copy of the column,
// the candidate replacements and their replacement sets, applies approved
// replacements, and keeps the replacement sets consistent after edits.
//
// Whole-value occurrences are verified (cell must still equal lhs) and
// rewritten to rhs; token-level occurrences are verified at their recorded
// offset with a fallback scan for lhs inside the cell. After an edit, the
// affected clusters' candidate pairs are regenerated and merged, which
// reproduces the update rules of Section 7.1 (entries migrate to the pairs
// the new values form; emptied pairs die).
#ifndef USTL_REPLACE_REPLACEMENT_STORE_H_
#define USTL_REPLACE_REPLACEMENT_STORE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "replace/candidate_gen.h"
#include "replace/replacement.h"

namespace ustl {

class ReplacementStore {
 public:
  ReplacementStore(Column column, const CandidateGenOptions& options);

  /// The distinct candidate replacements Phi. Indices are stable: applying
  /// replacements may append new pairs but never renumbers existing ones.
  const std::vector<StringPair>& pairs() const { return set_.pairs; }
  const StringPair& pair(size_t index) const { return set_.pairs[index]; }
  size_t num_pairs() const { return set_.pairs.size(); }

  /// The live occurrences of a pair; empty when the replacement no longer
  /// exists anywhere (Section 7.1 removes such replacements from Phi).
  const std::vector<Occurrence>& occurrences(size_t index) const {
    return set_.occurrences[index];
  }

  /// The working column (updated in place by Apply).
  const Column& column() const { return column_; }

  /// Applies pair `index` in the stored direction (lhs replaced by rhs) at
  /// every valid occurrence. Returns the number of edits made.
  size_t Apply(size_t index);

  /// Applies pair `index` in the reverse direction (rhs replaced by lhs).
  /// Section 3 step 3: the human picks the direction at approval time.
  /// Implemented via the mirrored pair's occurrences.
  size_t ApplyReverse(size_t index);

 private:
  // Re-derives candidates for `cluster` after edits: drops its stale
  // occurrences from every pair, then regenerates and merges.
  void RefreshCluster(size_t cluster);

  size_t ApplyDirected(const std::string& lhs, const std::string& rhs,
                       const std::vector<Occurrence>& occurrences);

  Column column_;
  CandidateGenOptions options_;
  CandidateSet set_;
};

}  // namespace ustl

#endif  // USTL_REPLACE_REPLACEMENT_STORE_H_

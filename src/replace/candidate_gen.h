// Candidate replacement generation (Section 3 step 1, Appendix A).
// Full-value candidates pair every two non-identical values within a
// cluster, in both directions. Token-level candidates come from the LCS
// alignment of the whitespace tokens of such a pair; the optional
// character-level mode uses the Damerau-Levenshtein alignment instead.
#ifndef USTL_REPLACE_CANDIDATE_GEN_H_
#define USTL_REPLACE_CANDIDATE_GEN_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "replace/replacement.h"

namespace ustl {

struct CandidateGenOptions {
  /// Pair whole cell values (Section 3 step 1).
  bool full_value_pairs = true;
  /// LCS-aligned token segments (Appendix A).
  bool token_level = true;
  /// Damerau-Levenshtein-aligned character segments (Appendix A mentions
  /// this alternative [11]); off by default as in the paper.
  bool char_level = false;
  /// Cells longer than this are skipped entirely (graphs would be trivial
  /// anyway, and quadratic pair enumeration on huge cells is wasted work).
  size_t max_value_len = 256;
};

/// The distinct candidate replacements of a column plus their replacement
/// sets L[lhs -> rhs] (Section 7.1). Pair indices are stable identifiers.
struct CandidateSet {
  std::vector<StringPair> pairs;
  std::vector<std::vector<Occurrence>> occurrences;  // parallel to pairs

  /// Index of a pair, or SIZE_MAX.
  size_t Find(const std::string& lhs, const std::string& rhs) const;

  /// Internal: pair key -> index ("lhs\x1frhs").
  std::unordered_map<std::string, size_t> index;
};

/// Generates all candidate replacements of `column`.
CandidateSet GenerateCandidates(const Column& column,
                                const CandidateGenOptions& options);

/// Generates candidates for a single cluster and merges them into `set`
/// (new pairs appended, occurrences added, duplicates ignored). Used by
/// the replacement store to refresh edited clusters (Section 7.1).
void GenerateForCluster(const Column& column, size_t cluster,
                        const CandidateGenOptions& options, CandidateSet* set);

}  // namespace ustl

#endif  // USTL_REPLACE_CANDIDATE_GEN_H_

#include "replace/candidate_gen.h"

#include <algorithm>

#include "text/alignment.h"

namespace ustl {
namespace {

constexpr char kKeySep = '\x1f';

std::string PairKey(const std::string& lhs, const std::string& rhs) {
  std::string key = lhs;
  key.push_back(kKeySep);
  key += rhs;
  return key;
}

// Adds the occurrence of `lhs -> rhs` to the set, creating the pair on
// first sight. Duplicate occurrences are ignored.
void AddCandidate(const std::string& lhs, const std::string& rhs,
                  const Occurrence& occurrence, CandidateSet* set) {
  if (lhs.empty() || rhs.empty() || lhs == rhs) return;
  std::string key = PairKey(lhs, rhs);
  auto [it, inserted] = set->index.emplace(key, set->pairs.size());
  if (inserted) {
    set->pairs.push_back(StringPair{lhs, rhs});
    set->occurrences.emplace_back();
  }
  std::vector<Occurrence>& list = set->occurrences[it->second];
  if (std::find(list.begin(), list.end(), occurrence) == list.end()) {
    list.push_back(occurrence);
  }
}

}  // namespace

size_t CandidateSet::Find(const std::string& lhs,
                          const std::string& rhs) const {
  auto it = index.find(PairKey(lhs, rhs));
  return it == index.end() ? static_cast<size_t>(-1) : it->second;
}

void GenerateForCluster(const Column& column, size_t cluster,
                        const CandidateGenOptions& options,
                        CandidateSet* set) {
  const std::vector<std::string>& rows = column[cluster];
  for (size_t a = 0; a < rows.size(); ++a) {
    if (rows[a].size() > options.max_value_len) continue;
    for (size_t b = 0; b < rows.size(); ++b) {
      if (a == b) continue;
      if (rows[b].size() > options.max_value_len) continue;
      const std::string& va = rows[a];
      const std::string& vb = rows[b];
      if (va == vb) continue;
      // Direction va -> vb; the (b, a) iteration emits the reverse.
      if (options.full_value_pairs) {
        AddCandidate(va, vb,
                     Occurrence{cluster, a, 1, /*whole_value=*/true}, set);
      }
      if (options.token_level) {
        for (const AlignedSegment& seg : TokenLcsAlign(va, vb)) {
          AddCandidate(seg.lhs, seg.rhs,
                       Occurrence{cluster, a, seg.lhs_begin,
                                  /*whole_value=*/false},
                       set);
        }
      }
      if (options.char_level) {
        for (const AlignedSegment& seg : DamerauLevenshteinAlign(va, vb)) {
          AddCandidate(seg.lhs, seg.rhs,
                       Occurrence{cluster, a, seg.lhs_begin,
                                  /*whole_value=*/false},
                       set);
        }
      }
    }
  }
}

CandidateSet GenerateCandidates(const Column& column,
                                const CandidateGenOptions& options) {
  CandidateSet set;
  for (size_t c = 0; c < column.size(); ++c) {
    GenerateForCluster(column, c, options, &set);
  }
  return set;
}

}  // namespace ustl

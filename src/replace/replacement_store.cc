#include "replace/replacement_store.h"

#include <algorithm>

#include "common/status.h"

namespace ustl {

ReplacementStore::ReplacementStore(Column column,
                                   const CandidateGenOptions& options)
    : column_(std::move(column)), options_(options) {
  set_ = GenerateCandidates(column_, options_);
}

size_t ReplacementStore::ApplyDirected(
    const std::string& lhs, const std::string& rhs,
    const std::vector<Occurrence>& occurrences) {
  // Copy and group by cell: RefreshCluster below mutates occurrence
  // lists, and per-cell handling is what keeps one Apply call from
  // editing a cell twice (a whole-value rewrite subsumes any token
  // occurrence in the same cell; "9" -> "9th" must not fire again on the
  // prefix of the freshly written "9th").
  std::vector<Occurrence> pending = occurrences;
  std::sort(pending.begin(), pending.end());
  std::vector<size_t> touched;
  size_t edits = 0;
  size_t i = 0;
  while (i < pending.size()) {
    const size_t cluster = pending[i].cluster;
    const size_t row = pending[i].row;
    size_t cell_end = i;
    bool whole = false;
    while (cell_end < pending.size() && pending[cell_end].cluster == cluster &&
           pending[cell_end].row == row) {
      whole |= pending[cell_end].whole_value;
      ++cell_end;
    }
    std::string& cell = column_[cluster][row];
    size_t cell_edits = 0;
    if (whole) {
      if (cell == lhs) {
        cell = rhs;
        cell_edits = 1;
      }
      // Token occurrences in the same cell describe the same rewrite at a
      // finer grain; after the whole-value rewrite (or a stale mismatch)
      // they must not fire.
    } else {
      // Right-to-left keeps earlier recorded offsets valid as edits at
      // later offsets change the cell length. Offsets are strict: a span
      // that no longer holds lhs is stale and skipped.
      for (size_t j = cell_end; j-- > i;) {
        const size_t offset = static_cast<size_t>(pending[j].begin) - 1;
        if (offset + lhs.size() <= cell.size() &&
            cell.compare(offset, lhs.size(), lhs) == 0) {
          cell.replace(offset, lhs.size(), rhs);
          ++cell_edits;
        }
      }
    }
    if (cell_edits > 0 &&
        std::find(touched.begin(), touched.end(), cluster) ==
            touched.end()) {
      touched.push_back(cluster);
    }
    edits += cell_edits;
    i = cell_end;
  }
  for (size_t cluster : touched) RefreshCluster(cluster);
  return edits;
}

size_t ReplacementStore::Apply(size_t index) {
  USTL_CHECK(index < set_.pairs.size());
  const StringPair pair = set_.pairs[index];  // copy: lists mutate below
  return ApplyDirected(pair.lhs, pair.rhs, set_.occurrences[index]);
}

size_t ReplacementStore::ApplyReverse(size_t index) {
  USTL_CHECK(index < set_.pairs.size());
  const StringPair pair = set_.pairs[index];
  size_t mirror = set_.Find(pair.rhs, pair.lhs);
  if (mirror == static_cast<size_t>(-1)) return 0;
  return ApplyDirected(pair.rhs, pair.lhs, set_.occurrences[mirror]);
}

void ReplacementStore::RefreshCluster(size_t cluster) {
  // Drop every stale occurrence that points into this cluster (Section 7.1
  // removes entries whose value changed)...
  for (std::vector<Occurrence>& list : set_.occurrences) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [cluster](const Occurrence& occ) {
                                return occ.cluster == cluster;
                              }),
               list.end());
  }
  // ... then re-derive the cluster's candidates; new pairs the edited
  // values form are appended, existing pairs gain the migrated entries.
  GenerateForCluster(column_, cluster, options_, &set_);
}

}  // namespace ustl

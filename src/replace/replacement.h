// Candidate replacements and their provenance (Section 3 step 1 and
// Section 7.1). A column is processed as clusters of cell values; an
// Occurrence records one place a replacement was generated from, so that
// approved replacements can be backtracked and applied.
#ifndef USTL_REPLACE_REPLACEMENT_H_
#define USTL_REPLACE_REPLACEMENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "grouping/group.h"

namespace ustl {

/// One column of clustered records: column[c][r] is the value of row r in
/// cluster c. This is the unit the framework standardizes (Algorithm 1
/// processes one column at a time).
using Column = std::vector<std::vector<std::string>>;

/// Where a replacement lhs -> rhs applies: cell (cluster, row), at the
/// 1-based character offset `begin` with length |lhs|. Whole-value
/// occurrences have begin == 1 and length == cell size; token-level
/// occurrences (Appendix A) point into the cell.
struct Occurrence {
  size_t cluster = 0;
  size_t row = 0;
  int begin = 1;          // 1-based offset of lhs within the cell
  bool whole_value = true;

  bool operator==(const Occurrence& o) const {
    return cluster == o.cluster && row == o.row && begin == o.begin &&
           whole_value == o.whole_value;
  }
  bool operator<(const Occurrence& o) const {
    if (cluster != o.cluster) return cluster < o.cluster;
    if (row != o.row) return row < o.row;
    if (begin != o.begin) return begin < o.begin;
    return whole_value < o.whole_value;
  }
};

}  // namespace ustl

#endif  // USTL_REPLACE_REPLACEMENT_H_

#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "persist/crash_point.h"
#include "persist/wal.h"  // Crc32c

namespace ustl {

namespace {

constexpr char kMagic[8] = {'U', 'S', 'T', 'L', 'S', 'N', 'P', '1'};

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

Status WriteAllFd(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("snapshot write: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// fsyncs the directory containing `path` so the rename itself is durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("snapshot dir open '" + dir + "': " +
                            std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("snapshot dir fsync '" + dir + "': " +
                            std::strerror(err));
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         const std::vector<std::string>& records) {
  std::string body;
  body.append(kMagic, sizeof(kMagic));
  PutU64(&body, records.size());
  for (const std::string& record : records) {
    if (record.size() > 0x7FFFFFFFu) {
      return Status::InvalidArgument("snapshot record too large");
    }
    PutU32(&body, static_cast<uint32_t>(record.size()));
    body.append(record);
  }
  PutU32(&body, Crc32c(body.data(), body.size()));

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot open '" + tmp + "': " +
                            std::strerror(errno));
  }
  Status status = WriteAllFd(fd, body);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal("snapshot fsync '" + tmp + "': " +
                              std::strerror(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal("snapshot close '" + tmp + "': " +
                              std::strerror(errno));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  if (CrashPoint::Reached(CrashPointKind::kSnapshotTemp)) {
    // Temp file durable, final name untouched: recovery must ignore the
    // orphan temp and use the previous snapshot + full WAL.
    CrashPoint::Kill();
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot rename '" + tmp + "' -> '" + path +
                            "': " + std::strerror(err));
  }
  Status dir_status = SyncParentDir(path);
  if (!dir_status.ok()) return dir_status;

  if (CrashPoint::Reached(CrashPointKind::kSnapshotRename)) {
    // Snapshot published, WAL not yet compacted: recovery replays the new
    // snapshot plus stale WAL records, which must be harmless duplicates.
    CrashPoint::Kill();
  }
  return Status::OK();
}

Status ReadSnapshotFile(const std::string& path,
                        std::vector<std::string>* records) {
  records->clear();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("snapshot '" + path + "' does not exist");
    }
    return Status::Internal("snapshot open '" + path + "': " +
                            std::strerror(errno));
  }
  std::string contents;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return Status::Internal("snapshot read '" + path + "': " +
                                std::strerror(err));
      }
      if (n == 0) break;
      contents.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);

  constexpr size_t kMinBytes = sizeof(kMagic) + 8 + 4;  // magic+count+crc
  if (contents.size() < kMinBytes) {
    return Status::Internal("snapshot '" + path + "': truncated header");
  }
  if (std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Internal("snapshot '" + path + "': bad magic");
  }
  const uint32_t stored_crc = GetU32(contents.data() + contents.size() - 4);
  const uint32_t actual_crc = Crc32c(contents.data(), contents.size() - 4);
  if (stored_crc != actual_crc) {
    return Status::Internal("snapshot '" + path + "': checksum mismatch");
  }

  const uint64_t count = GetU64(contents.data() + sizeof(kMagic));
  size_t off = sizeof(kMagic) + 8;
  const size_t end = contents.size() - 4;
  // Bounded decode: every length is validated against the remaining
  // bytes, so a forged count or length cannot over-read or over-allocate.
  if (count > (end - off) / 4) {
    return Status::Internal("snapshot '" + path + "': record count too large");
  }
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (end - off < 4) {
      records->clear();
      return Status::Internal("snapshot '" + path + "': truncated record");
    }
    const uint32_t len = GetU32(contents.data() + off);
    off += 4;
    if (end - off < len) {
      records->clear();
      return Status::Internal("snapshot '" + path + "': truncated record");
    }
    records->emplace_back(contents.data() + off, len);
    off += len;
  }
  if (off != end) {
    records->clear();
    return Status::Internal("snapshot '" + path + "': trailing garbage");
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("atomic write open '" + tmp + "': " +
                            std::strerror(errno));
  }
  Status status = WriteAllFd(fd, contents);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal("atomic write fsync '" + tmp + "': " +
                              std::strerror(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal("atomic write close '" + tmp + "': " +
                              std::strerror(errno));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("atomic write rename '" + tmp + "' -> '" + path +
                            "': " + std::strerror(err));
  }
  return Status::OK();
}

}  // namespace ustl

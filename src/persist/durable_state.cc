#include "persist/durable_state.h"

#include <cstdint>
#include <filesystem>
#include <utility>

#include "persist/snapshot.h"

namespace ustl {

namespace {

constexpr uint8_t kTagVerdict = 1;
constexpr uint8_t kTagApproved = 2;

constexpr char kSnapshotFile[] = "snapshot.bin";
constexpr char kWalFile[] = "wal.log";

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Cursor-style bounded reader: every Get validates the remaining bytes,
// so a corrupt length can never over-read.
struct Reader {
  const char* p;
  size_t left;
  bool ok = true;

  uint8_t U8() {
    if (left < 1) return Fail<uint8_t>();
    const uint8_t v = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return v;
  }
  uint32_t U32() {
    if (left < 4) return Fail<uint32_t>();
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(p[i]);
    }
    p += 4;
    left -= 4;
    return v;
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }
  std::string Str() {
    const uint32_t len = U32();
    if (!ok || left < len) return Fail<std::string>();
    std::string s(p, len);
    p += len;
    left -= len;
    return s;
  }

  template <typename T>
  T Fail() {
    ok = false;
    left = 0;
    return T{};
  }
};

}  // namespace

std::string EncodeVerdictRecord(const DurableVerdict& verdict) {
  std::string out;
  out.push_back(static_cast<char>(kTagVerdict));
  PutU64(&out, verdict.key.lo);
  PutU64(&out, verdict.key.hi);
  out.push_back(verdict.verdict.approved ? 1 : 0);
  out.push_back(static_cast<char>(verdict.verdict.direction));
  return out;
}

std::string EncodeApprovedRecord(const DurableApproved& approved) {
  std::string out;
  out.push_back(static_cast<char>(kTagApproved));
  PutStr(&out, approved.column);
  PutStr(&out, approved.program);
  out.push_back(static_cast<char>(approved.direction));
  PutU64(&out, approved.rank);
  PutU32(&out, static_cast<uint32_t>(approved.pairs.size()));
  for (const StringPair& pair : approved.pairs) {
    PutStr(&out, pair.lhs);
    PutStr(&out, pair.rhs);
  }
  return out;
}

Status DecodeDurableRecord(std::string_view bytes, OracleDurableState* out) {
  Reader reader{bytes.data(), bytes.size()};
  const uint8_t tag = reader.U8();
  if (!reader.ok) return Status::Internal("durable record: empty");
  switch (tag) {
    case kTagVerdict: {
      DurableVerdict verdict;
      verdict.key.lo = reader.U64();
      verdict.key.hi = reader.U64();
      const uint8_t approved = reader.U8();
      const uint8_t direction = reader.U8();
      if (!reader.ok || reader.left != 0 || approved > 1 || direction > 1) {
        return Status::Internal("durable record: malformed verdict");
      }
      verdict.verdict.approved = approved != 0;
      verdict.verdict.direction = static_cast<ReplaceDirection>(direction);
      out->verdicts.push_back(std::move(verdict));
      return Status::OK();
    }
    case kTagApproved: {
      DurableApproved approved;
      approved.column = reader.Str();
      approved.program = reader.Str();
      const uint8_t direction = reader.U8();
      approved.rank = reader.U64();
      const uint32_t pair_count = reader.U32();
      if (!reader.ok || direction > 1) {
        return Status::Internal("durable record: malformed approved header");
      }
      // Each pair needs >= 8 bytes of length prefixes, which bounds the
      // reserve against a forged count.
      if (pair_count > reader.left / 8) {
        return Status::Internal("durable record: pair count too large");
      }
      approved.direction = static_cast<ReplaceDirection>(direction);
      approved.pairs.reserve(pair_count);
      for (uint32_t i = 0; i < pair_count; ++i) {
        StringPair pair;
        pair.lhs = reader.Str();
        pair.rhs = reader.Str();
        if (!reader.ok) {
          return Status::Internal("durable record: malformed pair");
        }
        approved.pairs.push_back(std::move(pair));
      }
      if (reader.left != 0) {
        return Status::Internal("durable record: trailing bytes");
      }
      out->approved.push_back(std::move(approved));
      return Status::OK();
    }
    default:
      return Status::Internal("durable record: unknown tag " +
                              std::to_string(tag));
  }
}

Result<std::unique_ptr<DurableState>> DurableState::Open(
    const std::string& dir, const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("persist dir '" + dir + "': " + ec.message());
  }

  std::unique_ptr<DurableState> state(new DurableState());
  state->dir_ = dir;
  state->options_ = options;

  // Snapshot first (if any): the compacted base.
  std::vector<std::string> snapshot_records;
  Status snap_status =
      ReadSnapshotFile(dir + "/" + kSnapshotFile, &snapshot_records);
  if (!snap_status.ok() && snap_status.code() != StatusCode::kNotFound) {
    return snap_status;
  }
  for (const std::string& record : snapshot_records) {
    Status decode_status = DecodeDurableRecord(record, &state->recovered_);
    if (!decode_status.ok()) return decode_status;
  }

  // Then the WAL's durable prefix on top. A torn tail is truncated by
  // Open and reported, not failed; a record that frames+checksums but
  // does not decode is format skew and fails typed.
  WalOptions wal_options;
  wal_options.fsync = options.fsync;
  wal_options.batch_appends = options.batch_appends;
  wal_options.trace = options.trace;
  wal_options.fsync_latency_us = options.fsync_latency_us;
  WalOpenResult wal_result;
  Status wal_status =
      state->wal_.Open(dir + "/" + kWalFile, wal_options, &wal_result);
  if (!wal_status.ok()) return wal_status;
  for (const std::string& record : wal_result.records) {
    Status decode_status = DecodeDurableRecord(record, &state->recovered_);
    if (!decode_status.ok()) return decode_status;
  }

  state->recovered_records_ =
      snapshot_records.size() + wal_result.records.size();
  state->truncated_tail_bytes_ = wal_result.truncated_tail_bytes;
  return state;
}

DurableState::~DurableState() = default;

void DurableState::RecoverInto(OracleBroker* broker) {
  broker->RestoreDurableState(recovered_);
  // Release the recovered copy before traffic starts; the counters keep
  // reporting what was recovered.
  recovered_ = OracleDurableState();
  broker->SetDurabilityListener(this);
}

void DurableState::AppendRecord(const std::string& payload) {
  // Root span on the process-level context (parent 0): one per durable
  // record, wrapping the frame write and any policy-driven fsync (which
  // opens its own root "fsync" span inside).
  ScopedSpan append_span(options_.trace, 0, "wal_append");
  append_span.AddAttr("bytes", static_cast<int64_t>(payload.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  if (!wal_.is_open()) return;
  Status status = wal_.Append(payload);
  if (!status.ok() && deferred_error_.ok()) {
    // Listener path runs under the broker mutex: remember the first
    // failure for Flush instead of throwing into verdict processing. A
    // lost append only weakens warmth, never correctness.
    deferred_error_ = status;
  }
}

void DurableState::OnVerdictCached(const DurableVerdict& verdict) {
  AppendRecord(EncodeVerdictRecord(verdict));
}

void DurableState::OnApprovedRecorded(const DurableApproved& approved) {
  AppendRecord(EncodeApprovedRecord(approved));
}

bool DurableState::ShouldCompact() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.compact_wal_bytes > 0 &&
         wal_.bytes() > options_.compact_wal_bytes;
}

Status DurableState::WriteSnapshot(const OracleDurableState& state) {
  // Compaction = encode + snapshot publish + WAL reset; the snapshot
  // write nests inside so a profile separates serialization from the
  // rename-and-fsync publish.
  ScopedSpan compaction_span(options_.trace, 0, "compaction");
  std::vector<std::string> records;
  records.reserve(state.verdicts.size() + state.approved.size());
  for (const DurableVerdict& verdict : state.verdicts) {
    records.push_back(EncodeVerdictRecord(verdict));
  }
  for (const DurableApproved& approved : state.approved) {
    records.push_back(EncodeApprovedRecord(approved));
  }
  compaction_span.AddAttr("records", static_cast<int64_t>(records.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  ScopedSpan snapshot_span(options_.trace, compaction_span.id(),
                           "snapshot_write");
  Status status = WriteSnapshotFile(dir_ + "/" + kSnapshotFile, records);
  if (!status.ok()) return status;
  snapshot_span.End();
  ++snapshot_writes_;
  if (wal_.is_open()) {
    Status reset_status = wal_.Reset();
    if (!reset_status.ok()) return reset_status;
  }
  return Status::OK();
}

Status DurableState::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!deferred_error_.ok()) return deferred_error_;
  if (!wal_.is_open()) return Status::OK();
  return wal_.Sync();
}

PersistStats DurableState::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PersistStats stats;
  stats.wal_appends = wal_.appends();
  stats.fsyncs = wal_.fsyncs();
  stats.recovered_records = recovered_records_;
  stats.truncated_tail_bytes = truncated_tail_bytes_;
  stats.snapshot_writes = snapshot_writes_;
  return stats;
}

}  // namespace ustl

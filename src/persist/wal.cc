#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "persist/crash_point.h"

namespace ustl {

namespace {

// CRC32C lookup table (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated once at first use.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

// Loops write(2) until every byte is handed to the kernel.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal write: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, std::string* out) {
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal read: ") +
                              std::strerror(errno));
    }
    if (n == 0) return Status::OK();
    out->append(buf, static_cast<size_t>(n));
  }
}

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  const auto& table = Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("fsync policy '" + std::string(name) +
                                 "': expected none|batch|always");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Wal::~Wal() { Close(); }

Status Wal::Open(const std::string& path, const WalOptions& options,
                 WalOpenResult* result) {
  if (fd_ >= 0) return Status::FailedPrecondition("wal already open");
  result->records.clear();
  result->truncated_tail_bytes = 0;

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("wal open '" + path + "': " +
                            std::strerror(errno));
  }

  std::string contents;
  Status read_status = ReadAll(fd, &contents);
  if (!read_status.ok()) {
    ::close(fd);
    return read_status;
  }

  // Replay intact frames; stop at the first incomplete frame or CRC
  // mismatch and truncate the file there. Everything before the tear is
  // the durable prefix.
  size_t good = 0;
  while (contents.size() - good >= kFrameHeaderBytes) {
    const uint32_t len = GetU32(contents.data() + good);
    const uint32_t crc = GetU32(contents.data() + good + 4);
    if (contents.size() - good - kFrameHeaderBytes < len) break;
    const char* payload = contents.data() + good + kFrameHeaderBytes;
    if (Crc32c(payload, len) != crc) break;
    result->records.emplace_back(payload, len);
    good += kFrameHeaderBytes + len;
  }
  if (good < contents.size()) {
    result->truncated_tail_bytes = contents.size() - good;
    if (::ftruncate(fd, static_cast<off_t>(good)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("wal truncate '" + path + "': " +
                              std::strerror(err));
    }
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("wal fsync '" + path + "': " +
                              std::strerror(err));
    }
  }
  if (::lseek(fd, static_cast<off_t>(good), SEEK_SET) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("wal seek '" + path + "': " +
                            std::strerror(err));
  }

  fd_ = fd;
  path_ = path;
  options_ = options;
  bytes_ = good;
  appends_ = 0;
  fsyncs_ = 0;
  unsynced_appends_ = 0;
  return Status::OK();
}

Status Wal::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  if (payload.size() > 0x7FFFFFFFu) {
    return Status::InvalidArgument("wal record too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.append(payload.data(), payload.size());

  if (CrashPoint::Reached(CrashPointKind::kWalMidRecord)) {
    // Simulate a torn write: hand the kernel only a prefix of the frame
    // (header plus half the payload), then die without unwinding. The
    // restarted process must truncate this tear.
    const size_t torn = kFrameHeaderBytes + payload.size() / 2;
    (void)WriteAll(fd_, frame.data(), torn);
    CrashPoint::Kill();
  }

  Status write_status = WriteAll(fd_, frame.data(), frame.size());
  if (!write_status.ok()) return write_status;
  bytes_ += frame.size();
  ++appends_;
  ++unsynced_appends_;

  if (options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kBatch && options_.batch_appends > 0 &&
       unsynced_appends_ >= options_.batch_appends)) {
    Status sync_status = SyncNow();
    if (!sync_status.ok()) return sync_status;
  }

  if (CrashPoint::Reached(CrashPointKind::kWalAppend)) {
    // Record boundary: the full frame reached the kernel (and, under
    // kAlways, the platter). Recovery must replay it.
    CrashPoint::Kill();
  }
  return Status::OK();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  if (unsynced_appends_ == 0) return Status::OK();
  return SyncNow();
}

Status Wal::SyncNow() {
  ScopedSpan fsync_span(options_.trace, 0, "fsync");
  SteadyClock::time_point start;
  if (options_.fsync_latency_us != nullptr) start = SteadyNow();
  if (::fsync(fd_) != 0) {
    return Status::Internal("wal fsync '" + path_ + "': " +
                            std::strerror(errno));
  }
  if (options_.fsync_latency_us != nullptr) {
    options_.fsync_latency_us->Observe(MicrosSince(start));
  }
  ++fsyncs_;
  unsynced_appends_ = 0;
  return Status::OK();
}

Status Wal::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("wal truncate '" + path_ + "': " +
                            std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::Internal("wal seek '" + path_ + "': " +
                            std::strerror(errno));
  }
  bytes_ = 0;
  unsynced_appends_ = 0;
  if (options_.fsync != FsyncPolicy::kNone) {
    Status sync_status = SyncNow();
    if (!sync_status.ok()) return sync_status;
  }
  return Status::OK();
}

Status Wal::Close() {
  if (fd_ < 0) return Status::OK();
  Status status = Status::OK();
  if (options_.fsync != FsyncPolicy::kNone && unsynced_appends_ > 0) {
    status = SyncNow();
  }
  if (::close(fd_) != 0 && status.ok()) {
    status = Status::Internal("wal close '" + path_ + "': " +
                              std::strerror(errno));
  }
  fd_ = -1;
  return status;
}

}  // namespace ustl

// Atomic, checksummed point-in-time snapshots (ISSUE 9 tentpole).
//
// On-disk format, little-endian:
//
//   "USTLSNP1"                   8-byte magic + version
//   u64 record_count
//   record_count times: [u32 len][bytes]
//   u32 crc32c(everything above)
//
// A snapshot is written with the classic atomic-publish dance: write a
// temp file in the same directory, fsync it, rename(2) over the final
// name, fsync the directory. A crash at any point leaves either the old
// snapshot or the new one — never a half-written file under the final
// name. The reader validates magic, count, framing, and the trailing CRC
// and returns a typed error (never a crash, never a partial result) for
// anything malformed.
#ifndef USTL_PERSIST_SNAPSHOT_H_
#define USTL_PERSIST_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ustl {

/// Atomically replaces `path` with `records` in snapshot format.
/// Carries the kSnapshotTemp / kSnapshotRename crash points.
Status WriteSnapshotFile(const std::string& path,
                         const std::vector<std::string>& records);

/// Reads and validates a snapshot. NotFound if the file does not exist;
/// Internal (with a reason) for any corruption.
Status ReadSnapshotFile(const std::string& path,
                        std::vector<std::string>* records);

/// Write-temp-fsync-rename for arbitrary file contents — used for the
/// final metrics scrape so a crash never leaves a truncated file under
/// the published name.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace ustl

#endif  // USTL_PERSIST_SNAPSHOT_H_

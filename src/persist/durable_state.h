// Durable warm state for the serving stack (ISSUE 9 tentpole): the
// OracleBroker's verdict cache and approved-transformation log, persisted
// as a snapshot plus a WAL of binary records, recovered on open.
//
// Why these two structures and nothing else: both are pure functions of
// question *content* (the order-independence contract in
// consolidate/oracle.h), so replaying any durable prefix of them into a
// fresh broker can never change an output byte — it only skips backend
// calls the warm broker no longer needs to make. Service history, search
// caches, in-flight requests are all recomputable or per-request and stay
// volatile.
//
// Layout under the persist dir:
//   snapshot.bin — full state at the last compaction (snapshot.h format)
//   wal.log      — records appended since (wal.h format)
// Recovery = decode snapshot, then replay the WAL's durable prefix on
// top. Duplicates (a crash between snapshot rename and WAL reset) are
// absorbed by the broker's idempotent restore paths.
#ifndef USTL_PERSIST_DURABLE_STATE_H_
#define USTL_PERSIST_DURABLE_STATE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/wal.h"
#include "pipeline/oracle_broker.h"

namespace ustl {

/// Counters behind the ustl_persist_* gauges (obs/metrics.h).
struct PersistStats {
  uint64_t wal_appends = 0;
  uint64_t fsyncs = 0;
  /// Records recovered on open: snapshot entries + intact WAL records.
  uint64_t recovered_records = 0;
  /// Bytes dropped from the WAL tail on open (a torn write; expected
  /// after a crash, not an error).
  uint64_t truncated_tail_bytes = 0;
  uint64_t snapshot_writes = 0;
};

/// Binary record codec shared by the WAL payloads and snapshot entries.
/// Encoding is little-endian, length-prefixed; decoding is bounds-checked
/// against every length so corrupt or adversarial bytes yield a typed
/// error, never an over-read.
std::string EncodeVerdictRecord(const DurableVerdict& verdict);
std::string EncodeApprovedRecord(const DurableApproved& approved);
/// Decodes one record into whichever side of `out` it belongs to.
Status DecodeDurableRecord(std::string_view bytes, OracleDurableState* out);

class DurableState : public OracleDurabilityListener {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    /// Under kBatch: fsync once every this many WAL appends.
    uint64_t batch_appends = 32;
    /// Snapshot + WAL reset once the WAL grows past this (0 = never
    /// auto-compact; the final shutdown snapshot still happens).
    uint64_t compact_wal_bytes = 4ull << 20;
    /// Borrowed process-level trace context (the service's, never a
    /// request's): wal_append / fsync / snapshot_write / compaction open
    /// root spans under it so durability stalls are attributable in
    /// profiles and flight-recorder dumps. Must outlive this object.
    /// Null = no spans.
    TraceContext* trace = nullptr;
    /// Borrowed histogram for per-fsync wall latency
    /// (ustl_persist_fsync_latency_us). Null = not recorded.
    Histogram* fsync_latency_us = nullptr;
  };

  /// Opens (creating if needed) the persist dir, recovers the snapshot +
  /// WAL durable prefix, and leaves the WAL open for appending. Fails
  /// with a typed error on unreadable/corrupt snapshot or undecodable WAL
  /// records (a torn WAL *tail* is recovery, not an error).
  static Result<std::unique_ptr<DurableState>> Open(const std::string& dir,
                                                    const Options& options);

  ~DurableState() override;

  /// Seeds `broker` with the recovered state, then attaches this as its
  /// durability listener — in that order, so recovery is never re-logged.
  /// Call once, before the broker sees its first question. The caller
  /// must detach the listener (SetDurabilityListener(nullptr)) before
  /// destroying this object.
  void RecoverInto(OracleBroker* broker);

  // OracleDurabilityListener — called under the broker mutex; appends one
  // WAL record. An I/O failure is remembered (surfaced by Flush) rather
  // than thrown into the broker's hot path.
  void OnVerdictCached(const DurableVerdict& verdict) override;
  void OnApprovedRecorded(const DurableApproved& approved) override;

  /// True once the WAL has outgrown Options::compact_wal_bytes. The
  /// service polls this outside the broker lock and, when set, exports
  /// the broker state and calls WriteSnapshot — never from inside the
  /// listener, which holds the broker mutex that ExportDurableState
  /// needs.
  bool ShouldCompact() const;

  /// Writes `state` as the new snapshot (atomic publish), then resets the
  /// WAL: every logged record is now redundant. Records appended by other
  /// threads between the export and the reset are dropped from disk —
  /// they cost a re-asked question after a crash, never a changed byte.
  Status WriteSnapshot(const OracleDurableState& state);

  /// fsyncs pending WAL appends and surfaces any append error remembered
  /// by the listener path.
  Status Flush();

  PersistStats stats() const;

 private:
  DurableState() = default;
  void AppendRecord(const std::string& payload);

  std::string dir_;
  Options options_;
  mutable std::mutex mutex_;
  Wal wal_;
  /// State recovered at Open, handed to the broker by RecoverInto (then
  /// released).
  OracleDurableState recovered_;
  uint64_t recovered_records_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
  uint64_t snapshot_writes_ = 0;
  Status deferred_error_;
};

}  // namespace ustl

#endif  // USTL_PERSIST_DURABLE_STATE_H_

#include "persist/crash_point.h"

#include <csignal>
#include <atomic>
#include <cstdlib>
#include <string>

namespace ustl {

namespace {

std::atomic<uint8_t> g_kind{static_cast<uint8_t>(CrashPointKind::kNone)};
std::atomic<uint64_t> g_countdown{0};

}  // namespace

void CrashPoint::Arm(CrashPointKind kind, uint64_t at) {
  if (kind == CrashPointKind::kNone || at == 0) {
    Disarm();
    return;
  }
  // Countdown first: a concurrent Reached() observing the new kind must
  // also observe a live countdown, never a stale zero.
  g_countdown.store(at, std::memory_order_relaxed);
  g_kind.store(static_cast<uint8_t>(kind), std::memory_order_release);
}

void CrashPoint::Disarm() {
  g_kind.store(static_cast<uint8_t>(CrashPointKind::kNone),
               std::memory_order_release);
  g_countdown.store(0, std::memory_order_relaxed);
}

Status CrashPoint::ArmFromSpec(std::string_view spec) {
  if (spec.empty()) {
    Disarm();
    return Status::OK();
  }
  const size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("crash point spec '" + std::string(spec) +
                                   "': expected kind:N");
  }
  const std::string_view name = spec.substr(0, colon);
  const std::string count_str(spec.substr(colon + 1));
  char* end = nullptr;
  const uint64_t at = std::strtoull(count_str.c_str(), &end, 10);
  if (end == count_str.c_str() || *end != '\0' || at == 0) {
    return Status::InvalidArgument("crash point spec '" + std::string(spec) +
                                   "': N must be a positive integer");
  }
  CrashPointKind kind;
  if (name == "wal_append") {
    kind = CrashPointKind::kWalAppend;
  } else if (name == "wal_mid_record") {
    kind = CrashPointKind::kWalMidRecord;
  } else if (name == "snapshot_temp") {
    kind = CrashPointKind::kSnapshotTemp;
  } else if (name == "snapshot_rename") {
    kind = CrashPointKind::kSnapshotRename;
  } else {
    return Status::InvalidArgument("crash point spec '" + std::string(spec) +
                                   "': unknown kind");
  }
  Arm(kind, at);
  return Status::OK();
}

bool CrashPoint::Reached(CrashPointKind kind) {
  if (static_cast<CrashPointKind>(g_kind.load(std::memory_order_acquire)) !=
      kind) {
    return false;
  }
  // fetch_sub counts every hit exactly once even when writers race; only
  // the hit that takes the countdown from 1 to 0 is "the" armed one.
  return g_countdown.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

void CrashPoint::Kill() {
  // SIGKILL cannot be caught or ignored: the process dies mid-syscall
  // sequence with no unwinding, which is the whole point of the seam.
  std::raise(SIGKILL);
  std::abort();  // unreachable; keeps [[noreturn]] honest if raise fails
}

}  // namespace ustl

// Failpoint seam for kill-testing the durability layer (ISSUE 9). A
// crash-safe log is only honest if something actually kills the process
// at the worst possible byte: CrashPoint lets tests and the check.sh
// crash-recovery leg arm exactly one process-wide failpoint — "the Nth
// WAL append", "mid-way through the Nth record's bytes", "after the
// snapshot temp file, before the rename" — and the instrumented writer
// then raises SIGKILL at that seam: no destructors, no flush, no atexit.
// Data already handed to write(2) survives in the page cache (process
// death, not machine death), so the restarted process sees precisely the
// torn prefix a real crash would have left.
//
// The seam is deliberately dumb: a single armed (kind, countdown) pair
// behind relaxed atomics, disarmed by default, checked only inside the
// persist writers. An unarmed check is one atomic load — the production
// hot path pays nothing measurable.
#ifndef USTL_PERSIST_CRASH_POINT_H_
#define USTL_PERSIST_CRASH_POINT_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace ustl {

enum class CrashPointKind : uint8_t {
  kNone = 0,
  /// After a WAL record's bytes are fully handed to write(2) — a record
  /// boundary: recovery must replay every record including this one.
  kWalAppend,
  /// Before a WAL record is written, the writer emits only a torn prefix
  /// of its frame (header plus half the payload) and dies — recovery must
  /// truncate the tear and replay everything before it.
  kWalMidRecord,
  /// After the snapshot temp file is written and synced, before the
  /// rename — recovery must ignore the temp file and use the old
  /// snapshot + full WAL.
  kSnapshotTemp,
  /// After the snapshot rename landed, before the WAL is compacted —
  /// recovery reads the new snapshot plus the stale (pre-compaction)
  /// WAL, whose records must be harmless duplicates.
  kSnapshotRename,
};

class CrashPoint {
 public:
  /// Arms the process-wide failpoint: the `at`-th (1-based) hit of `kind`
  /// kills the process. Replaces any previous arming; kNone disarms.
  static void Arm(CrashPointKind kind, uint64_t at);
  static void Disarm();

  /// Parses "wal_append:N", "wal_mid_record:N", "snapshot_temp:N" or
  /// "snapshot_rename:N" (N >= 1) and arms it; "" disarms.
  static Status ArmFromSpec(std::string_view spec);

  /// Counts one hit of `kind`; true when this hit is the armed one. The
  /// caller then performs its deliberately-partial write (if any) and
  /// calls Kill(). Unarmed: a single relaxed load.
  static bool Reached(CrashPointKind kind);

  /// raise(SIGKILL): the process dies without unwinding — exactly what a
  /// crash leaves behind.
  [[noreturn]] static void Kill();
};

}  // namespace ustl

#endif  // USTL_PERSIST_CRASH_POINT_H_

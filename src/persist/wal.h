// Append-only write-ahead log with checksummed, length-prefixed records
// and torn-tail truncation on open (ISSUE 9 tentpole).
//
// On-disk framing, little-endian:
//
//   [u32 payload_len][u32 crc32c(payload)][payload bytes]
//
// repeated back to back. The only failure a single-writer WAL on a local
// filesystem has to survive is a torn tail — the process died partway
// through handing a record to write(2) — so recovery is: scan records
// until the first incomplete frame or CRC mismatch, truncate the file
// there, and report everything before it as the durable prefix. A
// mismatch mid-file (bit rot, hand-edited file) also truncates from that
// point: durable-prefix semantics, never a partial or reordered replay.
//
// Durability is tunable per deployment via FsyncPolicy:
//   kNone    — never fsync; crash loses page-cache tail (fastest).
//   kBatch   — fsync every `batch_appends` records and on Sync()/close.
//   kAlways  — fsync after every append (slowest, loses nothing).
// Since every WAL record here is a replayable pure function of question
// content, a lost tail only costs re-asked oracle questions, never
// wrong answers — which is why kBatch is the serving default.
#ifndef USTL_PERSIST_WAL_H_
#define USTL_PERSIST_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustl {

/// CRC32C (Castagnoli), table-driven software implementation. Test
/// vector: Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(const void* data, size_t size);
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

enum class FsyncPolicy : uint8_t { kNone, kBatch, kAlways };

/// Parses "none" | "batch" | "always".
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Under kBatch: fsync once every this many appends (and on Sync()).
  uint64_t batch_appends = 32;
  /// Borrowed process-level trace context (obs/trace.h): each fsync
  /// opens a root "fsync" span, so durability stalls show up in profiles
  /// and flight-recorder dumps. Null = no spans (the default; tests and
  /// standalone WAL users stay observability-free).
  TraceContext* trace = nullptr;
  /// Borrowed latency histogram: every fsync's wall time lands here
  /// (the ustl_persist_fsync_latency_us satellite). Null = not recorded.
  Histogram* fsync_latency_us = nullptr;
};

/// What Wal::Open recovered from an existing log file.
struct WalOpenResult {
  /// Payloads of every intact record, in append order.
  std::vector<std::string> records;
  /// Bytes dropped from the tail (0 for a clean file). Nonzero after a
  /// torn write — expected, not an error.
  uint64_t truncated_tail_bytes = 0;
};

class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) the log at `path`, replays intact records
  /// into `*result`, truncates any torn tail, and leaves the file open
  /// for appending. Not thread-safe against concurrent Open on the same
  /// path — the WAL is single-writer by design.
  Status Open(const std::string& path, const WalOptions& options,
              WalOpenResult* result);

  /// Appends one framed record. The frame is handed to write(2) as a
  /// single buffer; fsync per the policy. Carries the kWalAppend /
  /// kWalMidRecord crash points.
  Status Append(std::string_view payload);

  /// Forces an fsync now if any append happened since the last sync,
  /// regardless of policy.
  Status Sync();

  /// Truncates the log to empty and fsyncs — called after a snapshot has
  /// durably landed, making every logged record redundant.
  Status Reset();

  /// Closes the file (syncing first under kBatch/kAlways). Idempotent.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  /// Current log size in bytes (frames included).
  uint64_t bytes() const { return bytes_; }
  uint64_t appends() const { return appends_; }
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  Status SyncNow();

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  uint64_t bytes_ = 0;
  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t unsynced_appends_ = 0;
};

}  // namespace ustl

#endif  // USTL_PERSIST_WAL_H_

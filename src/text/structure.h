// Structure signatures (Section 7.2). The structure Struc(s) of a string
// maps it to a sequence of terms: one of the four regex-based character
// classes for maximal class runs, or the literal character itself for
// kOther characters. Two replacements are structurally equivalent iff both
// sides have equal structures; the grouping algorithms first partition the
// candidate replacements by structure and refine each structure group by
// pivot path.
#ifndef USTL_TEXT_STRUCTURE_H_
#define USTL_TEXT_STRUCTURE_H_

#include <string>
#include <string_view>

namespace ustl {

/// The canonical structure signature of a string. The signature alphabet is
/// {d, l, u, s} for digit/lower/upper/space runs plus the literal kOther
/// characters themselves (which are never in [a-z0-9A-Z] or whitespace, so
/// the encoding is unambiguous). Example: Struc("9th") == "dl",
/// Struc("Lee, Mary") == "ul,su".
std::string StructureOf(std::string_view s);

/// Structure signature of a replacement lhs -> rhs, e.g. "d=>dl" for
/// 9 -> 9th. Used as the partition key for structure groups.
std::string ReplacementStructure(std::string_view lhs, std::string_view rhs);

/// True iff the two replacements are structurally equivalent (Definition 4).
bool StructurallyEquivalent(std::string_view lhs1, std::string_view rhs1,
                            std::string_view lhs2, std::string_view rhs2);

}  // namespace ustl

#endif  // USTL_TEXT_STRUCTURE_H_

// Character classes underlying the paper's pre-defined regex terms
// (Section 4.1 / Section 7.2): digits Td=[0-9]+, lowercase Tl=[a-z]+,
// capitals TC=[A-Z]+, whitespace Tb=\s+, and single-character terms for
// everything else. ASCII-only by design.
#ifndef USTL_TEXT_CHAR_CLASS_H_
#define USTL_TEXT_CHAR_CLASS_H_

#include <cstdint>
#include <string_view>

namespace ustl {

/// The five character categories of Section 7.2.
enum class CharClass : uint8_t {
  kDigit = 0,   // [0-9]
  kLower = 1,   // [a-z]
  kUpper = 2,   // [A-Z]
  kSpace = 3,   // \s
  kOther = 4,   // single-character terms (punctuation etc.)
};

/// Classifies one character.
inline CharClass ClassOf(char c) {
  unsigned char uc = static_cast<unsigned char>(c);
  if (uc >= '0' && uc <= '9') return CharClass::kDigit;
  if (uc >= 'a' && uc <= 'z') return CharClass::kLower;
  if (uc >= 'A' && uc <= 'Z') return CharClass::kUpper;
  if (uc == ' ' || uc == '\t' || uc == '\n' || uc == '\r' || uc == '\f' ||
      uc == '\v') {
    return CharClass::kSpace;
  }
  return CharClass::kOther;
}

/// One-letter mnemonic used in structure signatures: d, l, u, s.
/// kOther has no mnemonic (the literal character is used instead).
char CharClassMnemonic(CharClass c);

/// Human-readable name used in debug output: "Td", "Tl", "TC", "Tb".
const char* CharClassTermName(CharClass c);

}  // namespace ustl

#endif  // USTL_TEXT_CHAR_CLASS_H_

// Terms and term matching (Appendix B). A term is either one of the four
// regex-based terms (maximal character-class runs) or a constant-string term
// that matches exactly one literal string. Positions are 1-based throughout,
// exactly as in the paper, so that s[i, j) denotes characters i .. j-1 and
// the examples in Figures 3-5 hold verbatim.
#ifndef USTL_TEXT_TERMS_H_
#define USTL_TEXT_TERMS_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/char_class.h"

namespace ustl {

/// A term usable in MatchPos: a regex character-class term or a constant
/// string. Value type with full ordering so terms can key maps.
class Term {
 public:
  /// Regex-based term for `c` (must not be kOther).
  static Term Regex(CharClass c);
  /// Constant-string term matching exactly `literal` (non-empty).
  static Term Constant(std::string literal);

  bool is_regex() const { return is_regex_; }
  CharClass char_class() const { return char_class_; }
  const std::string& literal() const { return literal_; }

  /// "Td", "Tl", "TC", "Tb" or "T\"literal\"".
  std::string ToString() const;

  bool operator==(const Term& o) const {
    return is_regex_ == o.is_regex_ && char_class_ == o.char_class_ &&
           literal_ == o.literal_;
  }
  bool operator<(const Term& o) const {
    if (is_regex_ != o.is_regex_) return is_regex_ && !o.is_regex_;
    if (char_class_ != o.char_class_) return char_class_ < o.char_class_;
    return literal_ < o.literal_;
  }

 private:
  Term() = default;

  bool is_regex_ = true;
  CharClass char_class_ = CharClass::kDigit;
  std::string literal_;
};

/// A match of a term in a string: the 1-based half-open span s[begin, end).
struct TermMatch {
  int begin = 0;  // 1-based, inclusive
  int end = 0;    // 1-based, exclusive

  bool operator==(const TermMatch& o) const {
    return begin == o.begin && end == o.end;
  }
};

/// All matches of `term` in `s`, left to right.
/// Regex terms match maximal runs of their character class; constant terms
/// match non-overlapping leftmost occurrences.
std::vector<TermMatch> FindMatches(const Term& term, std::string_view s);

/// The tokens of `s`: maximal runs of a single character class. Each token
/// carries its span. Used for constant-term candidates and scoring (App. E)
/// and by the LCS aligner.
struct Token {
  std::string text;
  CharClass char_class;
  int begin = 0;  // 1-based
  int end = 0;    // 1-based, exclusive
};
std::vector<Token> ClassTokens(std::string_view s);

/// Splits on whitespace into word tokens (used by the Appendix-A aligner).
std::vector<std::string> WhitespaceTokens(std::string_view s);

}  // namespace ustl

#endif  // USTL_TEXT_TERMS_H_

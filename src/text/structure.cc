#include "text/structure.h"

#include "text/char_class.h"

namespace ustl {

std::string StructureOf(std::string_view s) {
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    CharClass c = ClassOf(s[i]);
    if (c == CharClass::kOther) {
      out.push_back(s[i]);
      ++i;
    } else {
      out.push_back(CharClassMnemonic(c));
      while (i < s.size() && ClassOf(s[i]) == c) ++i;
    }
  }
  return out;
}

std::string ReplacementStructure(std::string_view lhs, std::string_view rhs) {
  std::string out = StructureOf(lhs);
  out += "=>";
  out += StructureOf(rhs);
  return out;
}

bool StructurallyEquivalent(std::string_view lhs1, std::string_view rhs1,
                            std::string_view lhs2, std::string_view rhs2) {
  return StructureOf(lhs1) == StructureOf(lhs2) &&
         StructureOf(rhs1) == StructureOf(rhs2);
}

}  // namespace ustl

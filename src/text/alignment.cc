#include "text/alignment.h"

#include <algorithm>

#include "common/status.h"
#include "text/char_class.h"

namespace ustl {
namespace {

struct SpannedToken {
  std::string_view text;
  int begin;  // 1-based
  int end;    // 1-based exclusive
};

std::vector<SpannedToken> SpannedWhitespaceTokens(std::string_view s) {
  std::vector<SpannedToken> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && ClassOf(s[i]) == CharClass::kSpace) ++i;
    size_t j = i;
    while (j < s.size() && ClassOf(s[j]) != CharClass::kSpace) ++j;
    if (j > i) {
      out.push_back(SpannedToken{s.substr(i, j - i), static_cast<int>(i) + 1,
                                 static_cast<int>(j) + 1});
    }
    i = j;
  }
  return out;
}

// Emits the aligned gap [li, lj) x [ri, rj) (token indices) as a segment if
// both sides are non-empty.
void EmitGap(std::string_view lhs, std::string_view rhs,
             const std::vector<SpannedToken>& lt,
             const std::vector<SpannedToken>& rt, size_t li, size_t lj,
             size_t ri, size_t rj, std::vector<AlignedSegment>* out) {
  if (li >= lj || ri >= rj) return;
  int lb = lt[li].begin;
  int le = lt[lj - 1].end;
  int rb = rt[ri].begin;
  int re = rt[rj - 1].end;
  AlignedSegment seg;
  seg.lhs = std::string(lhs.substr(lb - 1, le - lb));
  seg.rhs = std::string(rhs.substr(rb - 1, re - rb));
  seg.lhs_begin = lb;
  seg.rhs_begin = rb;
  if (seg.lhs != seg.rhs) out->push_back(std::move(seg));
}

}  // namespace

int TokenLcsLength(std::string_view lhs, std::string_view rhs) {
  auto lt = SpannedWhitespaceTokens(lhs);
  auto rt = SpannedWhitespaceTokens(rhs);
  size_t n = lt.size(), m = rt.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (lt[i - 1].text == rt[j - 1].text) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  return dp[n][m];
}

std::vector<AlignedSegment> TokenLcsAlign(std::string_view lhs,
                                          std::string_view rhs) {
  auto lt = SpannedWhitespaceTokens(lhs);
  auto rt = SpannedWhitespaceTokens(rhs);
  size_t n = lt.size(), m = rt.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (lt[i - 1].text == rt[j - 1].text) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  // Backtrack to recover the matched token pairs in order.
  std::vector<std::pair<size_t, size_t>> matches;
  size_t i = n, j = m;
  while (i > 0 && j > 0) {
    if (lt[i - 1].text == rt[j - 1].text &&
        dp[i][j] == dp[i - 1][j - 1] + 1) {
      matches.emplace_back(i - 1, j - 1);
      --i;
      --j;
    } else if (dp[i - 1][j] >= dp[i][j - 1]) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(matches.begin(), matches.end());

  std::vector<AlignedSegment> out;
  size_t li = 0, ri = 0;
  for (auto [mi, mj] : matches) {
    EmitGap(lhs, rhs, lt, rt, li, mi, ri, mj, &out);
    li = mi + 1;
    ri = mj + 1;
  }
  EmitGap(lhs, rhs, lt, rt, li, n, ri, m, &out);
  return out;
}

int DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  // Optimal string alignment variant: adjacent transpositions cost 1 and a
  // transposed pair is not edited again.
  size_t n = a.size(), m = b.size();
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 0; i <= n; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= m; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

std::vector<AlignedSegment> DamerauLevenshteinAlign(std::string_view lhs,
                                                    std::string_view rhs) {
  size_t n = lhs.size(), m = rhs.size();
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 0; i <= n; ++i) d[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= m; ++j) d[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      int cost = lhs[i - 1] == rhs[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && lhs[i - 1] == rhs[j - 2] &&
          lhs[i - 2] == rhs[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  // Backtrack, marking which (i, j) cells are on a "match" step; maximal
  // non-match stretches on either side become aligned segments.
  struct Step {
    size_t i, j;
    bool match;
  };
  std::vector<Step> steps;
  size_t i = n, j = m;
  while (i > 0 || j > 0) {
    if (i > 1 && j > 1 && lhs[i - 1] == rhs[j - 2] &&
        lhs[i - 2] == rhs[j - 1] && d[i][j] == d[i - 2][j - 2] + 1) {
      steps.push_back(Step{i, j, false});
      steps.push_back(Step{i - 1, j - 1, false});
      i -= 2;
      j -= 2;
    } else if (i > 0 && j > 0 &&
               d[i][j] == d[i - 1][j - 1] + (lhs[i - 1] == rhs[j - 1] ? 0 : 1)) {
      steps.push_back(Step{i, j, lhs[i - 1] == rhs[j - 1]});
      --i;
      --j;
    } else if (i > 0 && d[i][j] == d[i - 1][j] + 1) {
      steps.push_back(Step{i, 0, false});
      --i;
    } else {
      USTL_CHECK(j > 0);
      steps.push_back(Step{0, j, false});
      --j;
    }
  }
  std::reverse(steps.begin(), steps.end());

  std::vector<AlignedSegment> out;
  // Sweep steps, accumulating spans of non-match operations.
  size_t lhs_lo = 0, lhs_hi = 0, rhs_lo = 0, rhs_hi = 0;  // 0-based [lo, hi)
  bool open = false;
  size_t li = 0, rj = 0;  // consumed prefix lengths
  auto flush = [&]() {
    if (!open) return;
    open = false;
    std::string l(lhs.substr(lhs_lo, lhs_hi - lhs_lo));
    std::string r(rhs.substr(rhs_lo, rhs_hi - rhs_lo));
    if (!l.empty() && !r.empty() && l != r) {
      out.push_back(AlignedSegment{std::move(l), std::move(r),
                                   static_cast<int>(lhs_lo) + 1,
                                   static_cast<int>(rhs_lo) + 1});
    }
  };
  for (const Step& st : steps) {
    size_t consumed_l = st.i > 0 ? 1 : 0;
    size_t consumed_r = st.j > 0 ? 1 : 0;
    if (st.match) {
      flush();
    } else {
      if (!open) {
        open = true;
        lhs_lo = li;
        lhs_hi = li;
        rhs_lo = rj;
        rhs_hi = rj;
      }
      lhs_hi = li + consumed_l;
      rhs_hi = rj + consumed_r;
    }
    li += consumed_l;
    rj += consumed_r;
  }
  flush();
  return out;
}

}  // namespace ustl

#include "text/char_class.h"

#include "common/status.h"

namespace ustl {

char CharClassMnemonic(CharClass c) {
  switch (c) {
    case CharClass::kDigit:
      return 'd';
    case CharClass::kLower:
      return 'l';
    case CharClass::kUpper:
      return 'u';
    case CharClass::kSpace:
      return 's';
    case CharClass::kOther:
      break;
  }
  USTL_CHECK(false && "kOther has no mnemonic");
  return '?';
}

const char* CharClassTermName(CharClass c) {
  switch (c) {
    case CharClass::kDigit:
      return "Td";
    case CharClass::kLower:
      return "Tl";
    case CharClass::kUpper:
      return "TC";
    case CharClass::kSpace:
      return "Tb";
    case CharClass::kOther:
      return "T?";
  }
  return "T?";
}

}  // namespace ustl

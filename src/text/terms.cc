#include "text/terms.h"

#include "common/status.h"
#include "common/string_util.h"

namespace ustl {

Term Term::Regex(CharClass c) {
  USTL_CHECK(c != CharClass::kOther);
  Term t;
  t.is_regex_ = true;
  t.char_class_ = c;
  return t;
}

Term Term::Constant(std::string literal) {
  USTL_CHECK(!literal.empty());
  Term t;
  t.is_regex_ = false;
  t.char_class_ = CharClass::kOther;
  t.literal_ = std::move(literal);
  return t;
}

std::string Term::ToString() const {
  if (is_regex_) return CharClassTermName(char_class_);
  return "T\"" + EscapeForDisplay(literal_) + "\"";
}

std::vector<TermMatch> FindMatches(const Term& term, std::string_view s) {
  std::vector<TermMatch> out;
  if (term.is_regex()) {
    const CharClass want = term.char_class();
    size_t i = 0;
    while (i < s.size()) {
      if (ClassOf(s[i]) == want) {
        size_t j = i + 1;
        while (j < s.size() && ClassOf(s[j]) == want) ++j;
        out.push_back(TermMatch{static_cast<int>(i) + 1,
                                static_cast<int>(j) + 1});
        i = j;
      } else {
        ++i;
      }
    }
  } else {
    const std::string& lit = term.literal();
    size_t i = 0;
    while (i + lit.size() <= s.size()) {
      if (s.substr(i, lit.size()) == lit) {
        out.push_back(TermMatch{static_cast<int>(i) + 1,
                                static_cast<int>(i + lit.size()) + 1});
        i += lit.size();  // non-overlapping leftmost matches
      } else {
        ++i;
      }
    }
  }
  return out;
}

std::vector<Token> ClassTokens(std::string_view s) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < s.size()) {
    CharClass c = ClassOf(s[i]);
    size_t j = i + 1;
    if (c != CharClass::kOther) {
      while (j < s.size() && ClassOf(s[j]) == c) ++j;
    }
    // kOther characters are single-character terms (Section 7.2), so a run
    // of punctuation becomes one token per character.
    out.push_back(Token{std::string(s.substr(i, j - i)), c,
                        static_cast<int>(i) + 1, static_cast<int>(j) + 1});
    i = j;
  }
  return out;
}

std::vector<std::string> WhitespaceTokens(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && ClassOf(s[i]) == CharClass::kSpace) ++i;
    size_t j = i;
    while (j < s.size() && ClassOf(s[j]) != CharClass::kSpace) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace ustl

// Fine-grained candidate replacement generation by alignment (Appendix A).
//
// TokenLcsAlign splits both values into whitespace tokens, computes their
// longest common subsequence, and emits each maximal pair of aligned
// non-identical token runs as a segment pair ("9" ~ "9th",
// "Wisconsin" ~ "WI"). DamerauLevenshteinAlign does the analogous
// character-level alignment via an optimal edit script (transpositions
// included), following the alternative in [11]/[41] the appendix mentions.
#ifndef USTL_TEXT_ALIGNMENT_H_
#define USTL_TEXT_ALIGNMENT_H_

#include <string>
#include <string_view>
#include <vector>

namespace ustl {

/// An aligned pair of non-identical segments, one from each input value.
/// `lhs_begin`/`rhs_begin` are 1-based character offsets of the segment in
/// the original values (0 when the segment is empty), so callers can apply
/// a replacement in place.
struct AlignedSegment {
  std::string lhs;
  std::string rhs;
  int lhs_begin = 0;
  int rhs_begin = 0;

  bool operator==(const AlignedSegment& o) const {
    return lhs == o.lhs && rhs == o.rhs && lhs_begin == o.lhs_begin &&
           rhs_begin == o.rhs_begin;
  }
};

/// Token-level LCS alignment (Appendix A). Segments where either side is
/// empty (pure insertions/deletions) are skipped: a replacement needs two
/// non-empty different strings.
std::vector<AlignedSegment> TokenLcsAlign(std::string_view lhs,
                                          std::string_view rhs);

/// Character-level alignment from an optimal Damerau-Levenshtein edit
/// script: maximal runs of non-match operations become segment pairs.
std::vector<AlignedSegment> DamerauLevenshteinAlign(std::string_view lhs,
                                                    std::string_view rhs);

/// The Damerau-Levenshtein distance (adjacent transpositions count 1).
/// Exposed for tests and for similarity gating in candidate generation.
int DamerauLevenshteinDistance(std::string_view a, std::string_view b);

/// Longest common subsequence length over whitespace tokens. Exposed for
/// tests and datagen sanity checks.
int TokenLcsLength(std::string_view lhs, std::string_view rhs);

}  // namespace ustl

#endif  // USTL_TEXT_ALIGNMENT_H_

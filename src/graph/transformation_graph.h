// Transformation graphs (Definition 2). Given a replacement s -> t, the
// graph has |t|+1 nodes; the edge e(i,j) represents the target substring
// t[i, j) and carries every string function label that produces t[i, j)
// when applied to s. A transformation path is a root-to-sink path (node 1
// to node |t|+1); by Theorem 4.2 the paths are exactly the programs
// consistent with the replacement.
#ifndef USTL_GRAPH_TRANSFORMATION_GRAPH_H_
#define USTL_GRAPH_TRANSFORMATION_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/interner.h"

namespace ustl {

/// Index of a graph within a grouping run; doubles as the replacement id.
using GraphId = uint32_t;

/// One outgoing edge of a node: target node and its sorted label set.
struct GraphEdge {
  int to = 0;                   // 1-based node index, to > from
  std::vector<LabelId> labels;  // sorted ascending, unique
};

/// The DAG for one replacement s -> t. Nodes are numbered 1 .. |t|+1.
class TransformationGraph {
 public:
  TransformationGraph(std::string source, std::string target);

  const std::string& source() const { return source_; }
  const std::string& target() const { return target_; }

  /// |t| + 1; node ids are 1 .. num_nodes().
  int num_nodes() const { return static_cast<int>(target_.size()) + 1; }
  /// The sink node id, |t| + 1.
  int last_node() const { return num_nodes(); }

  /// Outgoing edges of node `from` (1-based), ordered by target node.
  const std::vector<GraphEdge>& edges_from(int from) const;

  /// Adds `label` to edge (from, to), creating the edge if needed.
  /// Labels within an edge are kept sorted and unique.
  void AddLabel(int from, int to, LabelId label);

  /// Rewrites every label id through `remap` (indexed by the old id) and
  /// restores the per-edge sorted order. Used when a graph built against a
  /// shard-local interner is rebased onto the shared one; remapping never
  /// merges labels because interner ids are injective per function.
  void RemapLabels(const std::vector<LabelId>& remap);

  /// Total number of (edge, label) pairs; used for stats and bounds.
  size_t TotalLabelCount() const;
  /// Number of edges with at least one label.
  size_t EdgeCount() const;

  /// True iff `path` is a root-to-sink label path of this graph (each
  /// consecutive label sits on an adjacent edge). Used by tests and by the
  /// optimal-partition checker.
  bool ContainsPath(const LabelPath& path) const;

  /// Enumerates up to `limit` root-to-sink label paths (DFS order). For
  /// tests and the exact optimal-partition solver only; exponential in
  /// general.
  std::vector<LabelPath> EnumeratePaths(size_t limit) const;

 private:
  std::string source_;
  std::string target_;
  // adjacency_[i] holds edges out of node i+1, ordered by `to`.
  std::vector<std::vector<GraphEdge>> adjacency_;
};

}  // namespace ustl

#endif  // USTL_GRAPH_TRANSFORMATION_GRAPH_H_

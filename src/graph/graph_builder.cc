#include "graph/graph_builder.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "text/char_class.h"
#include "text/terms.h"

namespace ustl {
namespace {

constexpr CharClass kRegexClasses[] = {CharClass::kDigit, CharClass::kLower,
                                       CharClass::kUpper, CharClass::kSpace};

// Longest common prefix length of a and b.
size_t Lcp(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// Longest common suffix length of a and b.
size_t Lcs(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[a.size() - 1 - i] == b[b.size() - 1 - i]) ++i;
  return i;
}

}  // namespace

GraphBuilder::GraphBuilder(GraphBuilderOptions options,
                           LabelInterner* interner)
    : options_(options), interner_(interner) {
  USTL_CHECK(interner_ != nullptr);
}

Result<TransformationGraph> GraphBuilder::Build(std::string_view s,
                                                std::string_view t) const {
  if (t.empty()) {
    return Status::InvalidArgument("replacement target must be non-empty");
  }
  if (s == t) {
    return Status::InvalidArgument("replacement sides must differ");
  }
  TransformationGraph graph{std::string(s), std::string(t)};
  const int n = static_cast<int>(s.size());
  const int m = static_cast<int>(t.size());

  // Oversized values get the trivial constant-only graph so that every
  // replacement keeps at least one transformation path (see header).
  if (n > options_.max_input_len || m > options_.max_output_len) {
    graph.AddLabel(1, m + 1,
                   interner_->Intern(StringFn::ConstantStr(std::string(t))));
    return graph;
  }

  // --- Position array P[1 .. n+1] (Algorithm 8 lines 3-11), tiered per the
  // static order of Section 7.4: regex MatchPos, then constant-term
  // MatchPos, then ConstPos.
  std::vector<std::vector<PosFn>> positions(n + 2);
  {
    std::vector<std::vector<PosFn>> tier0(n + 2), tier2(n + 2);
    std::vector<std::pair<double, PosFn>> best_const(n + 2,
                                                     {0.0, PosFn::ConstPos(1)});
    std::vector<bool> has_const(n + 2, false);

    for (CharClass c : kRegexClasses) {
      Term term = Term::Regex(c);
      auto matches = FindMatches(term, s);
      const int total = static_cast<int>(matches.size());
      for (int k = 1; k <= total; ++k) {
        const TermMatch& match = matches[k - 1];
        tier0[match.begin].push_back(PosFn::MatchPos(term, k, Dir::kBegin));
        tier0[match.begin].push_back(
            PosFn::MatchPos(term, k - total - 1, Dir::kBegin));
        tier0[match.end].push_back(PosFn::MatchPos(term, k, Dir::kEnd));
        tier0[match.end].push_back(
            PosFn::MatchPos(term, k - total - 1, Dir::kEnd));
      }
    }

    if (options_.scorer != nullptr) {
      // Constant-string terms, restricted to class tokens and, per
      // position, to the best-scoring term (Appendix E static order).
      std::vector<std::string> seen;
      for (const Token& token : ClassTokens(s)) {
        if (std::find(seen.begin(), seen.end(), token.text) != seen.end()) {
          continue;
        }
        seen.push_back(token.text);
        double score = options_.scorer->Score(token.text);
        if (score <= 0.0) continue;
        Term term = Term::Constant(token.text);
        auto matches = FindMatches(term, s);
        const int total = static_cast<int>(matches.size());
        for (int k = 1; k <= total; ++k) {
          const TermMatch& match = matches[k - 1];
          for (auto [position, dir] :
               {std::pair{match.begin, Dir::kBegin},
                std::pair{match.end, Dir::kEnd}}) {
            if (!has_const[position] || score > best_const[position].first) {
              has_const[position] = true;
              best_const[position] = {score, PosFn::MatchPos(term, k, dir)};
            }
          }
        }
      }
    }

    for (int k = 1; k <= n + 1; ++k) {
      tier2[k].push_back(PosFn::ConstPos(k));
      tier2[k].push_back(PosFn::ConstPos(k - n - 2));
    }

    for (int k = 1; k <= n + 1; ++k) {
      std::vector<PosFn>& out = positions[k];
      if (options_.position_static_order) {
        if (!tier0[k].empty()) {
          out = tier0[k];
        } else if (has_const[k]) {
          out.push_back(best_const[k].second);
        } else {
          out = tier2[k];
        }
      } else {
        out = tier0[k];
        if (has_const[k]) out.push_back(best_const[k].second);
        out.insert(out.end(), tier2[k].begin(), tier2[k].end());
      }
      std::sort(out.begin(), out.end());
    }
  }

  // --- Constant and SubStr labels per edge (Algorithm 8 lines 13-18).
  // Appendix-E pruning: with a scorer, ConstantStr(t[i,j)) is added only if
  // no extension substring scores strictly higher. Scores for all (i, j)
  // are precomputed, then extension maxima by prefix/suffix sweeps, so the
  // check is O(1) per edge instead of O(|t|) scorer lookups.
  std::vector<std::vector<double>> score, left_ext_max, right_ext_max;
  if (options_.scorer != nullptr) {
    score.assign(m + 2, std::vector<double>(m + 2, 0.0));
    left_ext_max = score;
    right_ext_max = score;
    for (int i = 1; i <= m; ++i) {
      for (int j = i + 1; j <= m + 1; ++j) {
        score[i][j] = options_.scorer->Score(t.substr(i - 1, j - i));
      }
    }
    // left_ext_max[i][j] = max over k < i of score[k][j].
    for (int j = 2; j <= m + 1; ++j) {
      double running = 0.0;
      for (int i = 1; i < j; ++i) {
        left_ext_max[i][j] = running;
        running = std::max(running, score[i][j]);
      }
    }
    // right_ext_max[i][j] = max over l > j of score[i][l].
    for (int i = 1; i <= m; ++i) {
      double running = 0.0;
      for (int j = m + 1; j > i; --j) {
        right_ext_max[i][j] = running;
        running = std::max(running, score[i][j]);
      }
    }
  }
  auto const_allowed = [&](int i, int j) {
    if (options_.scorer == nullptr) return true;
    return left_ext_max[i][j] <= score[i][j] &&
           right_ext_max[i][j] <= score[i][j];
  };

  // Class-token boundaries of t, for the token_aligned_labels restriction.
  std::vector<bool> aligned(m + 2, !options_.token_aligned_labels);
  if (options_.token_aligned_labels) {
    for (const Token& token : ClassTokens(t)) aligned[token.begin] = true;
    aligned[m + 1] = true;
  }
  auto edge_aligned = [&](int i, int j) {
    if (i == 1 && j == m + 1) return true;  // completeness guarantee
    return aligned[i] && aligned[j];
  };

  for (int i = 1; i <= m; ++i) {
    for (int j = i + 1; j <= m + 1; ++j) {
      if (!edge_aligned(i, j)) continue;
      std::string_view u = t.substr(i - 1, j - i);
      if (options_.enable_constants && const_allowed(i, j)) {
        graph.AddLabel(i, j,
                       interner_->Intern(StringFn::ConstantStr(std::string(u))));
      }
      if (!options_.enable_substr) continue;
      int label_budget = options_.max_substr_labels_per_edge;
      const int len = j - i;
      for (int x = 1; x + len <= n + 1 && label_budget > 0; ++x) {
        if (s.substr(x - 1, len) != u) continue;
        const int y = x + len;
        for (const PosFn& left : positions[x]) {
          if (label_budget <= 0) break;
          for (const PosFn& right : positions[y]) {
            if (label_budget <= 0) break;
            graph.AddLabel(i, j,
                           interner_->Intern(StringFn::SubStr(left, right)));
            --label_budget;
          }
        }
      }
    }
  }

  // --- Affix labels (Appendix D), longest prefix/suffix only (Appendix E).
  if (options_.enable_affix) {
    for (CharClass c : kRegexClasses) {
      Term term = Term::Regex(c);
      auto matches = FindMatches(term, s);
      for (int k = 1; k <= static_cast<int>(matches.size()); ++k) {
        const TermMatch& match = matches[k - 1];
        std::string_view text =
            s.substr(match.begin - 1, match.end - match.begin);
        for (int i = 1; i <= m; ++i) {
          size_t len = Lcp(t.substr(i - 1), text);
          if (len >= 1) {
            graph.AddLabel(i, i + static_cast<int>(len),
                           interner_->Intern(StringFn::Prefix(term, k)));
          }
        }
        for (int j = 2; j <= m + 1; ++j) {
          size_t len = Lcs(t.substr(0, j - 1), text);
          if (len >= 1) {
            graph.AddLabel(j - static_cast<int>(len), j,
                           interner_->Intern(StringFn::Suffix(term, k)));
          }
        }
      }
    }
  }

  return graph;
}

Result<std::vector<TransformationGraph>> GraphBuilder::BuildBatch(
    const std::vector<BuildRequest>& requests, ThreadPool* pool) const {
  const size_t n = requests.size();
  std::vector<TransformationGraph> graphs;
  graphs.reserve(n);

  const bool serial = pool == nullptr || pool->num_threads() <= 1 ||
                      pool->InWorkerThread() || n < 2;
  if (serial) {
    for (const BuildRequest& request : requests) {
      Result<TransformationGraph> graph =
          Build(request.source, request.target);
      if (!graph.ok()) return graph.status();
      graphs.push_back(std::move(graph).value());
    }
    return graphs;
  }

  // Parallel phase: every graph gets a private interner, so construction
  // is lock-free and the shared interner is untouched until the merge.
  struct Shard {
    std::unique_ptr<LabelInterner> interner;
    std::optional<TransformationGraph> graph;
    Status status;
  };
  std::vector<Shard> shards(n);
  ParallelFor(pool, n, [&](size_t i) {
    Shard& shard = shards[i];
    shard.interner = std::make_unique<LabelInterner>();
    GraphBuilder local(options_, shard.interner.get());
    Result<TransformationGraph> graph =
        local.Build(requests[i].source, requests[i].target);
    if (graph.ok()) {
      shard.graph.emplace(std::move(graph).value());
    } else {
      shard.status = graph.status();
    }
  });

  // Merge phase, sequential in request order: folding shard i's labels in
  // local-id order replays the exact label first-sight sequence of the
  // serial loop, so the shared interner ends up byte-for-byte the same.
  std::vector<LabelId> remap;
  for (Shard& shard : shards) {
    if (!shard.status.ok()) return shard.status;
    remap.clear();
    remap.reserve(shard.interner->size());
    for (LabelId local = 0; local < shard.interner->size(); ++local) {
      remap.push_back(interner_->Intern(shard.interner->Get(local)));
    }
    shard.graph->RemapLabels(remap);
    graphs.push_back(std::move(*shard.graph));
  }
  return graphs;
}

}  // namespace ustl

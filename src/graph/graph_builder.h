// Transformation graph construction (Appendix C, Algorithm 8), extended
// with the affix labels of Appendix D and the static orders of Appendix E.
// Runs in O(|s|^2 |t|^2) time; the options bound the label explosion for
// long values.
#ifndef USTL_GRAPH_GRAPH_BUILDER_H_
#define USTL_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "dsl/interner.h"
#include "graph/term_scorer.h"
#include "graph/transformation_graph.h"

namespace ustl {

/// Knobs for graph construction. Defaults reproduce the paper's
/// configuration (affix extension on, static orders on).
struct GraphBuilderOptions {
  /// Adds Prefix/Suffix labels (Appendix D). Figure 10 ablates this.
  bool enable_affix = true;
  /// Adds SubStr labels; disable only for degenerate constant-only graphs.
  bool enable_substr = true;
  /// Adds ConstantStr labels (Definition 2 line 15).
  bool enable_constants = true;
  /// Static order of position functions (Section 7.4): at each position
  /// keep only the best tier available (regex MatchPos > constant-term
  /// MatchPos > ConstPos).
  bool position_static_order = true;
  /// Restrict ConstantStr and SubStr labels to edges aligned with class
  /// tokens of t (maximal character-class runs; the full-width edge is
  /// always kept so every replacement has a path). Appendix E prefers
  /// token-structured constants over character fragments; aligning the
  /// edges keeps the path space at token granularity, which is what makes
  /// pivot search tractable on conflict-heavy structure groups. Affix
  /// labels are not restricted (Street -> St needs the mid-token cut,
  /// Appendix D).
  bool token_aligned_labels = true;
  /// Values longer than these get a trivial graph (single full-width
  /// ConstantStr edge) instead of a quadratic label set.
  int max_input_len = 96;
  int max_output_len = 64;
  /// Per-edge cap on SubStr labels; deterministic prefix of the generation
  /// order is kept, so analogous edges in different graphs keep analogous
  /// labels.
  int max_substr_labels_per_edge = 32;
  /// Optional Appendix-E scorer: enables constant-term MatchPos positions
  /// and prunes dominated ConstantStr labels. May be null.
  const TermScorer* scorer = nullptr;
};

/// Builds transformation graphs, interning labels into a shared interner.
/// Thread-compatible: const after construction except for the interner.
class GraphBuilder {
 public:
  GraphBuilder(GraphBuilderOptions options, LabelInterner* interner);

  /// Builds the graph for the replacement s -> t. `t` must be non-empty and
  /// `s` must differ from `t`. Values exceeding the length limits yield the
  /// trivial constant-only graph (never an error), so every replacement
  /// always has at least one transformation path.
  Result<TransformationGraph> Build(std::string_view s,
                                    std::string_view t) const;

  /// One replacement of a batch build; the viewed strings must outlive the
  /// BuildBatch call.
  struct BuildRequest {
    std::string_view source;
    std::string_view target;
  };

  /// Builds the graphs of one structure group, in request order, using
  /// `pool` to construct them concurrently. Guaranteed bit-identical to
  /// calling Build in a loop — including the ids the shared interner
  /// assigns: each graph is built against a thread-private interner and
  /// the shard interners are then folded into the shared one in request
  /// order, which reproduces the serial first-sight order exactly. With a
  /// null or single-threaded pool this *is* the serial loop.
  Result<std::vector<TransformationGraph>> BuildBatch(
      const std::vector<BuildRequest>& requests, ThreadPool* pool) const;

  const GraphBuilderOptions& options() const { return options_; }

  const LabelInterner* interner() const { return interner_; }

 private:
  GraphBuilderOptions options_;
  LabelInterner* interner_;
};

}  // namespace ustl

#endif  // USTL_GRAPH_GRAPH_BUILDER_H_

#include "graph/transformation_graph.h"

#include <algorithm>

#include "common/status.h"

namespace ustl {

TransformationGraph::TransformationGraph(std::string source,
                                         std::string target)
    : source_(std::move(source)), target_(std::move(target)) {
  adjacency_.resize(target_.size() + 1);
}

const std::vector<GraphEdge>& TransformationGraph::edges_from(int from) const {
  // Per-access bounds check on the hottest accessor in the codebase
  // (every DFS move gather and index scan goes through here) — debug-only.
  USTL_DCHECK(from >= 1 && from <= num_nodes());
  return adjacency_[from - 1];
}

void TransformationGraph::AddLabel(int from, int to, LabelId label) {
  USTL_DCHECK(from >= 1 && to > from && to <= num_nodes());
  auto& edges = adjacency_[from - 1];
  auto it = std::lower_bound(
      edges.begin(), edges.end(), to,
      [](const GraphEdge& e, int target_node) { return e.to < target_node; });
  if (it == edges.end() || it->to != to) {
    it = edges.insert(it, GraphEdge{to, {}});
  }
  auto& labels = it->labels;
  auto lit = std::lower_bound(labels.begin(), labels.end(), label);
  if (lit == labels.end() || *lit != label) labels.insert(lit, label);
}

void TransformationGraph::RemapLabels(const std::vector<LabelId>& remap) {
  for (auto& edges : adjacency_) {
    for (GraphEdge& edge : edges) {
      for (LabelId& label : edge.labels) {
        USTL_DCHECK(label < remap.size());
        label = remap[label];
      }
      std::sort(edge.labels.begin(), edge.labels.end());
    }
  }
}

size_t TransformationGraph::TotalLabelCount() const {
  size_t count = 0;
  for (const auto& edges : adjacency_) {
    for (const auto& edge : edges) count += edge.labels.size();
  }
  return count;
}

size_t TransformationGraph::EdgeCount() const {
  size_t count = 0;
  for (const auto& edges : adjacency_) count += edges.size();
  return count;
}

bool TransformationGraph::ContainsPath(const LabelPath& path) const {
  if (path.empty()) return false;
  // DFS over (node, path index); multiple edges may carry the same label
  // only from different nodes, so at most one edge matches per step.
  struct Frame {
    int node;
    size_t index;
  };
  std::vector<Frame> stack = {{1, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.index == path.size()) {
      if (f.node == last_node()) return true;
      continue;
    }
    for (const GraphEdge& edge : edges_from(f.node)) {
      if (std::binary_search(edge.labels.begin(), edge.labels.end(),
                             path[f.index])) {
        stack.push_back(Frame{edge.to, f.index + 1});
      }
    }
  }
  return false;
}

std::vector<LabelPath> TransformationGraph::EnumeratePaths(
    size_t limit) const {
  std::vector<LabelPath> out;
  LabelPath current;
  // Recursive DFS with an explicit lambda.
  auto dfs = [&](auto&& self, int node) -> void {
    if (out.size() >= limit) return;
    if (node == last_node()) {
      if (!current.empty()) out.push_back(current);
      return;
    }
    for (const GraphEdge& edge : edges_from(node)) {
      for (LabelId label : edge.labels) {
        if (out.size() >= limit) return;
        current.push_back(label);
        self(self, edge.to);
        current.pop_back();
      }
    }
  };
  dfs(dfs, 1);
  return out;
}

}  // namespace ustl

#include "graph/term_scorer.h"

#include <cmath>

#include "text/terms.h"

namespace ustl {

void CorpusFrequency::Add(std::string_view s) {
  for (const Token& token : ClassTokens(s)) ++freq_[token.text];
}

int64_t CorpusFrequency::Get(std::string_view token) const {
  auto it = freq_.find(std::string(token));
  return it == freq_.end() ? 0 : it->second;
}

double FrequencyTermScorer::Score(std::string_view token) const {
  int64_t struc = struc_.Get(token);
  if (struc == 0) return 0.0;
  int64_t global = global_ != nullptr ? global_->Get(token) : struc;
  if (global < struc) global = struc;  // guard against inconsistent feeding
  return static_cast<double>(struc) / std::sqrt(static_cast<double>(global));
}

}  // namespace ustl

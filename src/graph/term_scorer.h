// Constant-string scoring (Appendix E). Constant terms that appear often
// within a structure group but rarely elsewhere make good labels ("Mr." in
// name columns); single characters are frequent everywhere and score low.
// The score is freqStruc(tau) / sqrt(freqGlobal(tau)).
#ifndef USTL_GRAPH_TERM_SCORER_H_
#define USTL_GRAPH_TERM_SCORER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ustl {

/// Scores constant-string terms for the static orders of Appendix E.
/// Implementations must be immutable during a grouping run.
class TermScorer {
 public:
  virtual ~TermScorer() = default;
  /// Higher is better; 0 means "unknown token".
  virtual double Score(std::string_view token) const = 0;
};

/// Token frequencies over a corpus of strings (class tokens = maximal
/// character-class runs). One instance holds the whole column's counts and
/// is shared by every structure group's scorer.
class CorpusFrequency {
 public:
  /// Counts the class tokens of one string.
  void Add(std::string_view s);
  int64_t Get(std::string_view token) const;

 private:
  std::unordered_map<std::string, int64_t> freq_;
};

/// freqStruc / sqrt(freqGlobal). Build one per structure group: feed the
/// group's strings to AddStructureString; `global` is the shared
/// whole-column frequency table (must outlive the scorer).
class FrequencyTermScorer : public TermScorer {
 public:
  explicit FrequencyTermScorer(const CorpusFrequency* global)
      : global_(global) {}

  /// Counts the class tokens of a string belonging to the structure group.
  void AddStructureString(std::string_view s) { struc_.Add(s); }

  double Score(std::string_view token) const override;

 private:
  CorpusFrequency struc_;
  const CorpusFrequency* global_;
};

}  // namespace ustl

#endif  // USTL_GRAPH_TERM_SCORER_H_

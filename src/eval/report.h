// Plain-text report helpers for the benchmark harnesses: aligned tables
// (Table 6 / Table 8 analogs) and gnuplot-ready series (Figures 6-10).
#ifndef USTL_EVAL_REPORT_H_
#define USTL_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace ustl {

/// A simple fixed-width table printer.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Renders with column-aligned padding and a header separator.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string Fmt(double value, int digits = 3);

/// Prints a metric series "x y1 y2 ..." with a "# x name1 name2" header —
/// one block per figure panel, directly plottable.
std::string RenderSeries(const std::string& title,
                         const std::vector<std::string>& column_names,
                         const std::vector<std::vector<double>>& rows);

}  // namespace ustl

#endif  // USTL_EVAL_REPORT_H_

#include "eval/report.h"

#include <algorithm>
#include <cstdio>

namespace ustl {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      line.append(widths[i] - row[i].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string RenderSeries(const std::string& title,
                         const std::vector<std::string>& column_names,
                         const std::vector<std::vector<double>>& rows) {
  std::string out = "# " + title + "\n# ";
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += " ";
    out += column_names[i];
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " ";
      out += i == 0 ? Fmt(row[i], 0) : Fmt(row[i], 4);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ustl

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace ustl {

double Precision(const Confusion& c) {
  if (c.tp + c.fp == 0) return 1.0;
  return static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fp);
}

double Recall(const Confusion& c) {
  if (c.tp + c.fn == 0) return 0.0;
  return static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn);
}

double Mcc(const Confusion& c) {
  double tp = static_cast<double>(c.tp), fp = static_cast<double>(c.fp);
  double fn = static_cast<double>(c.fn), tn = static_cast<double>(c.tn);
  double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  if (denom == 0.0) return 0.0;
  return (tp * tn - fp * fn) / denom;
}

std::vector<SampledPair> SampleLabeledPairs(
    const Column& column,
    const std::function<bool(size_t, size_t, size_t)>& is_variant,
    size_t count, uint64_t seed) {
  // Enumerate all candidate (cluster, a, b) pairs, then sample without
  // replacement. Cluster sizes are modest, so materializing is fine.
  std::vector<SampledPair> all;
  for (size_t c = 0; c < column.size(); ++c) {
    const auto& rows = column[c];
    for (size_t a = 0; a < rows.size(); ++a) {
      for (size_t b = a + 1; b < rows.size(); ++b) {
        if (rows[a] == rows[b]) continue;
        all.push_back(SampledPair{c, a, b, is_variant(c, a, b)});
      }
    }
  }
  Rng rng(seed);
  rng.Shuffle(&all);
  if (all.size() > count) all.resize(count);
  return all;
}

Confusion EvaluateIdentity(const Column& column,
                           const std::vector<SampledPair>& samples) {
  Confusion c;
  for (const SampledPair& s : samples) {
    bool identical = column[s.cluster][s.row_a] == column[s.cluster][s.row_b];
    if (s.is_variant) {
      identical ? ++c.tp : ++c.fn;
    } else {
      identical ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

}  // namespace ustl

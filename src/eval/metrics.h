// The evaluation protocol of Section 8: sample non-identical in-cluster
// value pairs, label each variant/conflict from ground truth, standardize,
// then count pairs that became identical. TP = variant & identical,
// FN = variant & still different, FP = conflict & identical, TN = conflict
// & still different (Table 7). Metrics: precision, recall, MCC (the paper
// avoids F1 because of class imbalance).
#ifndef USTL_EVAL_METRICS_H_
#define USTL_EVAL_METRICS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "replace/replacement.h"

namespace ustl {

struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tn = 0;
};

/// TP / (TP + FP); 1.0 when no positives were produced (nothing wrongly
/// merged), matching how the paper reports precision at budget 0.
double Precision(const Confusion& c);
/// TP / (TP + FN); 0.0 when there are no variant pairs.
double Recall(const Confusion& c);
/// Matthews correlation coefficient in [-1, 1]; 0.0 when undefined.
double Mcc(const Confusion& c);

/// One labelled sample: a pair of cells of the same cluster with
/// non-identical values at sampling time.
struct SampledPair {
  size_t cluster = 0;
  size_t row_a = 0;
  size_t row_b = 0;
  bool is_variant = false;
};

/// Samples up to `count` distinct non-identical in-cluster cell pairs,
/// labelled by `is_variant(cluster, row_a, row_b)` (ground truth).
/// Deterministic in `seed`.
std::vector<SampledPair> SampleLabeledPairs(
    const Column& column,
    const std::function<bool(size_t, size_t, size_t)>& is_variant,
    size_t count, uint64_t seed);

/// Checks which sampled pairs became identical in the (standardized)
/// column and fills the confusion matrix per Table 7.
Confusion EvaluateIdentity(const Column& column,
                           const std::vector<SampledPair>& samples);

}  // namespace ustl

#endif  // USTL_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/generators.h"
#include "datagen/judges.h"
#include "datagen/vocab.h"

namespace ustl {
namespace {

// One author of a list; lists are rendered lowercase as in Table 4.
struct Author {
  std::string first;
  std::string last;
};

std::vector<Author> RandomAuthors(Rng* rng) {
  // 1-3 authors, weighted toward fewer.
  size_t count = rng->Weighted({0.55, 0.3, 0.15}) + 1;
  std::vector<Author> authors;
  for (size_t i = 0; i < count; ++i) {
    authors.push_back(Author{rng->Choice(FirstNames()),
                             rng->Choice(LastNames())});
  }
  return authors;
}

std::string Initial(const std::string& first) {
  return std::string(1, first[0]) + ".";
}

// Renders one record's author list under sampled format choices. Format
// choices apply list-wide (real sources are internally consistent); the
// transformation families are those of Table 4 groups A-E.
std::string Render(const std::vector<Author>& authors,
                   const AuthorListGenOptions& opt, Rng* rng,
                   bool canonical) {
  bool transpose = !canonical && rng->Bernoulli(opt.p_transpose);
  bool initials = !canonical && !transpose && rng->Bernoulli(opt.p_initials);
  bool nickname = !canonical && rng->Bernoulli(opt.p_nickname);
  bool annotation = !canonical && rng->Bernoulli(opt.p_annotation);
  bool glue = transpose && rng->Bernoulli(opt.p_glue / opt.p_transpose);

  std::vector<std::string> rendered;
  for (const Author& author : authors) {
    std::string first = author.first;
    if (nickname) {
      if (auto nick = Nicknames().Abbreviate(first)) first = *nick;
    }
    if (initials) first = Initial(first);
    std::string name =
        transpose ? author.last + ", " + first : first + " " + author.last;
    if (annotation) {
      const char* notes[] = {" (edt)", " (author)", " (editor)"};
      name += notes[rng->Uniform(0, 2)];
    }
    rendered.push_back(std::move(name));
  }
  // Transposed lists separate authors by whitespace ("fox, dan box, jon"),
  // canonical lists by commas ("dan fox, jon box") — Table 4 group A. The
  // glued variant (group D) drops the separator entirely.
  const char* sep = transpose ? (glue ? "" : " ") : ", ";
  return Join(rendered, sep);
}

// Canonicalizer for the segment judge: lowercase already; strip commas and
// parentheses (keeping dots so initials stay recognizable), drop
// annotation words, expand nicknames.
std::string AuthorCanon(std::string_view token) {
  std::string_view trimmed = TrimPunct(token, ",()");
  if (trimmed.empty()) return "";
  std::string word = ToLower(trimmed);
  if (word == "edt" || word == "author" || word == "editor" ||
      word == "eds") {
    return "";
  }
  if (auto full = Nicknames().Expand(word)) word = *full;
  return word;
}

}  // namespace

GeneratedDataset GenerateAuthorListDataset(const AuthorListGenOptions& opt) {
  Rng rng(opt.seed);
  GeneratedDataset data;
  data.name = "AuthorList";

  const size_t num_clusters = static_cast<size_t>(
      static_cast<double>(opt.base_clusters) * opt.scale);
  int next_id = 0;
  for (size_t c = 0; c < num_clusters; ++c) {
    const int true_id = next_id++;
    const std::vector<Author> true_value = RandomAuthors(&rng);
    data.cluster_true_id.push_back(true_id);
    data.column.emplace_back();
    data.cell_truth.emplace_back();

    // Conflicts repeat verbatim; see the Address generator for why.
    std::vector<std::pair<int, std::string>> conflicts;
    const int64_t size = rng.SkewedSize(
        opt.mean_cluster_size, static_cast<int64_t>(opt.max_cluster_size));
    for (int64_t r = 0; r < size; ++r) {
      int id;
      std::string cell;
      if (r > 0 && rng.Bernoulli(opt.p_conflict)) {
        if (!conflicts.empty() && rng.Bernoulli(opt.p_reuse_conflict)) {
          const auto& reused =
              conflicts[static_cast<size_t>(rng.Uniform(
                  0, static_cast<int64_t>(conflicts.size()) - 1))];
          id = reused.first;
          cell = reused.second;
        } else {
          id = next_id++;
          cell = Render(RandomAuthors(&rng), opt, &rng, /*canonical=*/false);
          conflicts.emplace_back(id, cell);
        }
      } else {
        id = true_id;
        cell = Render(true_value, opt, &rng, /*canonical=*/r == 0);
      }
      data.string_ids[cell].insert(id);
      data.column.back().push_back(std::move(cell));
      data.cell_truth.back().push_back(id);
    }
  }

  data.variant_judge = [](const StringPair& pair) {
    // Name transposition reorders tokens, so multiset comparison.
    return SegmentsEquivalent(pair.lhs, pair.rhs, AuthorCanon,
                              /*allow_reorder=*/true);
  };
  data.direction_judge = [](const StringPair& pair) {
    // Prefer the canonical "first last, first last" rendering: fewer
    // punctuation characters wins, then longer (expanded) form.
    auto punct = [](const std::string& s) {
      size_t count = 0;
      for (char ch : s) count += (ch == ',' || ch == '(' || ch == ')');
      return count;
    };
    size_t pl = punct(pair.lhs), pr = punct(pair.rhs);
    if (pl != pr) return pr < pl ? 1 : -1;
    if (pair.rhs.size() != pair.lhs.size()) {
      return pair.rhs.size() > pair.lhs.size() ? 1 : -1;
    }
    return 0;
  };
  return data;
}

}  // namespace ustl

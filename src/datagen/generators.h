// Synthetic generators for the paper's three datasets (Section 8). Each
// generator produces clustered values exhibiting the same transformation
// families as the original data, plus exact ground truth (DESIGN.md
// documents the substitution). All generators are deterministic in the
// seed. The `scale` field multiplies the cluster count, so benches can run
// anywhere from smoke-test to paper-size workloads.
#ifndef USTL_DATAGEN_GENERATORS_H_
#define USTL_DATAGEN_GENERATORS_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace ustl {

/// NYC discretionary-funding Address analog: street suffix / state /
/// direction abbreviations and ordinal stripping; conflicting addresses
/// within clusters (Table 6: 18% variant, 82% conflict pairs).
struct AddressGenOptions {
  double scale = 1.0;
  size_t base_clusters = 300;
  double mean_cluster_size = 5.8;
  size_t max_cluster_size = 40;
  double p_conflict = 0.45;        // a record reports a different address
  double p_reuse_conflict = 0.5;   // conflicts repeat within a cluster
  double p_suffix_abbr = 0.5;
  double p_state_abbr = 0.5;
  double p_ordinal_strip = 0.35;
  double p_direction_abbr = 0.5;
  uint64_t seed = 1;
};
GeneratedDataset GenerateAddressDataset(const AddressGenOptions& options);

/// AbeBooks AuthorList analog: transposed "last, first" lists, initials,
/// nicknames, (edt)/(author) annotations, glued separators (Table 4
/// groups A-E; Table 6: 26.5% variant pairs).
struct AuthorListGenOptions {
  double scale = 1.0;
  size_t base_clusters = 140;
  double mean_cluster_size = 9.0;
  size_t max_cluster_size = 40;
  double p_conflict = 0.3;
  double p_reuse_conflict = 0.5;
  double p_transpose = 0.35;       // "last, first" author format
  double p_initials = 0.25;        // "d. fox"
  double p_nickname = 0.2;         // robert -> bob
  double p_annotation = 0.2;       // trailing "(edt)" etc.
  double p_glue = 0.08;            // missing separator between authors
  uint64_t seed = 2;
};
GeneratedDataset GenerateAuthorListDataset(const AuthorListGenOptions& options);

/// Rayyan JournalTitle analog: word abbreviations, case folding, &/and,
/// article dropping (Table 6: 74% variant pairs, small clusters).
struct JournalTitleGenOptions {
  double scale = 1.0;
  size_t base_clusters = 700;
  double mean_cluster_size = 1.9;
  size_t max_cluster_size = 16;
  double p_conflict = 0.12;
  double p_reuse_conflict = 0.5;
  double p_abbreviate = 0.45;      // dictionary word abbreviation style
  double p_lowercase = 0.2;
  double p_amp = 0.5;              // "and" -> "&" when present
  double p_drop_the = 0.5;         // drop a leading "The "
  uint64_t seed = 3;
};
GeneratedDataset GenerateJournalTitleDataset(
    const JournalTitleGenOptions& options);

/// Convenience: the three datasets at a common scale and seed offset.
struct AllDatasets {
  GeneratedDataset author_list;
  GeneratedDataset address;
  GeneratedDataset journal_title;
};
AllDatasets GenerateAllDatasets(double scale, uint64_t seed);

}  // namespace ustl

#endif  // USTL_DATAGEN_GENERATORS_H_

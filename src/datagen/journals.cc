#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/generators.h"
#include "datagen/judges.h"
#include "datagen/vocab.h"

namespace ustl {
namespace {

// A structured journal title: words plus knowledge of which are
// abbreviatable (so variants abbreviate consistently).
struct JournalValue {
  std::vector<std::string> words;  // canonical words, e.g. {"Journal","of","Biology"}
  bool leading_the = false;
  bool has_and = false;            // "X and Y" composite field
};

JournalValue RandomJournal(Rng* rng) {
  JournalValue v;
  const std::string field = rng->Choice(Fields());
  switch (rng->Weighted({0.2, 0.15, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1})) {
    case 0:
      v.words = {"Journal", "of", field};
      break;
    case 1:
      v.words = {"International", "Journal", "of", field};
      break;
    case 2:
      v.words = {rng->Bernoulli(0.5) ? "American" : "European", "Journal",
                 "of", field};
      break;
    case 3:
      v.words = {"Annals", "of", field};
      break;
    case 4:
      v.words = {field, rng->Choice(FieldQualifiers())};
      break;
    case 5:
      v.words = {"Review", "of", field};
      break;
    case 6: {
      std::string other = rng->Choice(Fields());
      while (other == field) other = rng->Choice(Fields());
      v.words = {"Journal", "of", field, "and", other};
      v.has_and = true;
      break;
    }
    default:
      v.words = {"Transactions", "on", field};
      break;
  }
  v.leading_the = rng->Bernoulli(0.25);
  return v;
}

std::string Render(const JournalValue& v, const JournalTitleGenOptions& opt,
                   Rng* rng, bool canonical) {
  bool abbreviate = !canonical && rng->Bernoulli(opt.p_abbreviate);
  bool lowercase = !canonical && rng->Bernoulli(opt.p_lowercase);
  bool amp = !canonical && v.has_and && rng->Bernoulli(opt.p_amp);
  bool drop_the = !canonical && rng->Bernoulli(opt.p_drop_the);

  std::vector<std::string> words;
  if (v.leading_the && !drop_the) words.push_back("The");
  for (const std::string& word : v.words) {
    std::string out = word;
    if (amp && out == "and") out = "&";
    if (abbreviate) {
      if (auto abbr = JournalWords().Abbreviate(out)) out = *abbr;
    }
    words.push_back(std::move(out));
  }
  std::string title = Join(words, " ");
  if (lowercase) title = ToLower(title);
  return title;
}

// Canonicalizer for the segment judge: expand abbreviations (before
// lowercasing: the dictionary is cased), map & to and, drop articles.
std::string JournalCanon(std::string_view token) {
  std::string_view trimmed = TrimPunct(token, ",");
  if (trimmed.empty()) return "";
  std::string word(trimmed);
  if (word == "&") word = "and";
  if (auto full = JournalWords().Expand(word)) word = *full;
  // Abbreviations may appear lowercased ("j." in a lowercased variant).
  std::string upper_first = word;
  if (!upper_first.empty()) {
    upper_first[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(upper_first[0])));
    if (auto full = JournalWords().Expand(upper_first)) word = *full;
  }
  word = ToLower(word);
  if (word == "the" || word == "of" || word == "on") return "";
  return word;
}

}  // namespace

GeneratedDataset GenerateJournalTitleDataset(
    const JournalTitleGenOptions& opt) {
  Rng rng(opt.seed);
  GeneratedDataset data;
  data.name = "JournalTitle";

  const size_t num_clusters = static_cast<size_t>(
      static_cast<double>(opt.base_clusters) * opt.scale);
  int next_id = 0;
  for (size_t c = 0; c < num_clusters; ++c) {
    const int true_id = next_id++;
    const JournalValue true_value = RandomJournal(&rng);
    data.cluster_true_id.push_back(true_id);
    data.column.emplace_back();
    data.cell_truth.emplace_back();

    // Conflicts repeat verbatim; see the Address generator for why.
    std::vector<std::pair<int, std::string>> conflicts;
    const int64_t size = rng.SkewedSize(
        opt.mean_cluster_size, static_cast<int64_t>(opt.max_cluster_size));
    for (int64_t r = 0; r < size; ++r) {
      int id;
      std::string cell;
      if (r > 0 && rng.Bernoulli(opt.p_conflict)) {
        if (!conflicts.empty() && rng.Bernoulli(opt.p_reuse_conflict)) {
          const auto& reused =
              conflicts[static_cast<size_t>(rng.Uniform(
                  0, static_cast<int64_t>(conflicts.size()) - 1))];
          id = reused.first;
          cell = reused.second;
        } else {
          id = next_id++;
          cell = Render(RandomJournal(&rng), opt, &rng, /*canonical=*/false);
          conflicts.emplace_back(id, cell);
        }
      } else {
        id = true_id;
        cell = Render(true_value, opt, &rng, /*canonical=*/r == 0);
      }
      data.string_ids[cell].insert(id);
      data.column.back().push_back(std::move(cell));
      data.cell_truth.back().push_back(id);
    }
  }

  data.variant_judge = [](const StringPair& pair) {
    return SegmentsEquivalent(pair.lhs, pair.rhs, JournalCanon,
                              /*allow_reorder=*/false);
  };
  data.direction_judge = [](const StringPair& pair) {
    if (pair.rhs.size() != pair.lhs.size()) {
      return pair.rhs.size() > pair.lhs.size() ? 1 : -1;
    }
    return 0;
  };
  return data;
}

AllDatasets GenerateAllDatasets(double scale, uint64_t seed) {
  AllDatasets out;
  AuthorListGenOptions authors;
  authors.scale = scale;
  authors.seed = seed + 2;
  out.author_list = GenerateAuthorListDataset(authors);
  AddressGenOptions address;
  address.scale = scale;
  address.seed = seed + 1;
  out.address = GenerateAddressDataset(address);
  JournalTitleGenOptions journals;
  journals.scale = scale;
  journals.seed = seed + 3;
  out.journal_title = GenerateJournalTitleDataset(journals);
  return out;
}

}  // namespace ustl

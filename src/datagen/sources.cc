#include "datagen/sources.h"

#include "common/random.h"
#include "common/status.h"

namespace ustl {

std::vector<double> SourceAssignment::EmpiricalReliability(
    const GeneratedDataset& data) const {
  std::vector<double> correct(reliability.size(), 0.0);
  std::vector<double> total(reliability.size(), 0.0);
  for (size_t c = 0; c < source_of.size(); ++c) {
    for (size_t r = 0; r < source_of[c].size(); ++r) {
      const int s = source_of[c][r];
      total[s] += 1.0;
      if (data.cell_truth[c][r] == data.cluster_true_id[c]) {
        correct[s] += 1.0;
      }
    }
  }
  std::vector<double> out(reliability.size(), 0.0);
  for (size_t s = 0; s < out.size(); ++s) {
    out[s] = total[s] == 0.0 ? 0.0 : correct[s] / total[s];
  }
  return out;
}

SourceAssignment AssignSources(const GeneratedDataset& data,
                               const SourceModelOptions& options) {
  USTL_CHECK(options.num_sources >= 1);
  USTL_CHECK(options.min_reliability <= options.max_reliability);
  SourceAssignment assignment;
  assignment.reliability.resize(options.num_sources);
  for (size_t s = 0; s < options.num_sources; ++s) {
    const double frac =
        options.num_sources == 1
            ? 0.5
            : static_cast<double>(s) / (options.num_sources - 1);
    assignment.reliability[s] =
        options.min_reliability +
        frac * (options.max_reliability - options.min_reliability);
  }

  Rng rng(options.seed);
  assignment.source_of.resize(data.column.size());
  std::vector<double> weights(options.num_sources);
  for (size_t c = 0; c < data.column.size(); ++c) {
    assignment.source_of[c].resize(data.column[c].size());
    for (size_t r = 0; r < data.column[c].size(); ++r) {
      const bool correct =
          data.cell_truth[c][r] == data.cluster_true_id[c];
      for (size_t s = 0; s < options.num_sources; ++s) {
        weights[s] = correct ? assignment.reliability[s]
                             : 1.0 - assignment.reliability[s];
      }
      assignment.source_of[c][r] = static_cast<int>(rng.Weighted(weights));
    }
  }
  return assignment;
}

}  // namespace ustl

#include "datagen/judges.h"

#include <algorithm>

#include "datagen/vocab.h"
#include "text/terms.h"

namespace ustl {

std::string_view TrimPunct(std::string_view token, std::string_view strip) {
  size_t begin = 0, end = token.size();
  while (begin < end && strip.find(token[begin]) != std::string_view::npos) {
    ++begin;
  }
  while (end > begin &&
         strip.find(token[end - 1]) != std::string_view::npos) {
    --end;
  }
  return token.substr(begin, end - begin);
}

std::vector<std::string> CanonTokens(std::string_view segment,
                                     const TokenCanon& canon) {
  std::vector<std::string> out;
  for (const std::string& token : WhitespaceTokens(segment)) {
    std::string canonical = canon(token);
    if (!canonical.empty()) out.push_back(std::move(canonical));
  }
  return out;
}

bool SegmentsEquivalent(std::string_view lhs, std::string_view rhs,
                        const TokenCanon& canon, bool allow_reorder) {
  std::vector<std::string> a = CanonTokens(lhs, canon);
  std::vector<std::string> b = CanonTokens(rhs, canon);
  if (a.size() != b.size() || a.empty()) return false;
  if (allow_reorder) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (InitialPair(a[i], b[i])) continue;
    return false;
  }
  return true;
}

}  // namespace ustl

// The generated-dataset container: a clustered column plus exact ground
// truth. Every cell carries the id of the logical value it represents;
// two cells of a cluster form a variant pair iff their ids match and their
// strings differ (the paper's human labelling of 1000 sampled pairs,
// Section 8). Generators also install string-level judges so the
// simulated oracle can assess token-level replacement pairs.
#ifndef USTL_DATAGEN_DATASET_H_
#define USTL_DATAGEN_DATASET_H_

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "grouping/group.h"
#include "replace/replacement.h"

namespace ustl {

class GeneratedDataset {
 public:
  std::string name;
  Column column;
  /// Parallel to column: the logical value id of each cell.
  std::vector<std::vector<int>> cell_truth;
  /// Per cluster: the id of the entity's true value (for Table 8).
  std::vector<int> cluster_true_id;
  /// Every generated string mapped to the ids it was generated for.
  std::unordered_map<std::string, std::set<int>> string_ids;

  /// Pair-level ground truth installed by the generator: is lhs -> rhs a
  /// genuine variant transformation (full values or aligned segments)?
  std::function<bool(const StringPair&)> variant_judge;
  /// Preferred replacement direction: > 0 replace lhs by rhs.
  std::function<int(const StringPair&)> direction_judge;

  /// Cell-level ground truth: same logical value, different strings.
  bool IsVariantCellPair(size_t cluster, size_t row_a, size_t row_b) const {
    return cell_truth[cluster][row_a] == cell_truth[cluster][row_b];
  }

  /// True iff the pair of strings represents the same logical value,
  /// either because both strings were generated for a common id or per the
  /// generator's segment judge.
  bool IsTrueVariantPair(const StringPair& pair) const;

  size_t num_records() const;
  size_t num_clusters() const { return column.size(); }
};

/// Table 6 analog: cluster-size and pair statistics of a dataset.
struct DatasetStats {
  size_t num_records = 0;
  size_t num_clusters = 0;
  double avg_cluster_size = 0.0;
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
  size_t distinct_value_pairs = 0;  // distinct non-identical in-cluster pairs
  double variant_pair_fraction = 0.0;
  double conflict_pair_fraction = 0.0;
};
DatasetStats ComputeStats(const GeneratedDataset& dataset);

}  // namespace ustl

#endif  // USTL_DATAGEN_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/generators.h"
#include "datagen/judges.h"
#include "datagen/vocab.h"

namespace ustl {
namespace {

// A structured address value; formatting choices render its variants.
struct AddressValue {
  std::string ordinal;   // "9th"
  std::string direction; // "East" or ""
  std::string name;      // "Oak" or ""
  std::string suffix;    // "Street"
  std::string zip;       // "02141"
  std::string state;     // "Wisconsin"
};

AddressValue RandomAddress(Rng* rng) {
  AddressValue v;
  v.ordinal = OrdinalOf(static_cast<int>(rng->Uniform(1, 99)));
  if (rng->Bernoulli(0.3)) {
    v.direction = Directions().entries()[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(Directions().entries().size()) - 1))].first;
  }
  if (rng->Bernoulli(0.4)) v.name = rng->Choice(StreetNames());
  v.suffix = StreetSuffixes().entries()[static_cast<size_t>(rng->Uniform(
      0, static_cast<int64_t>(StreetSuffixes().entries().size()) - 1))].first;
  char zip[8];
  std::snprintf(zip, sizeof(zip), "%05d",
                static_cast<int>(rng->Uniform(501, 99950)));
  v.zip = zip;
  v.state = States().entries()[static_cast<size_t>(rng->Uniform(
      0, static_cast<int64_t>(States().entries().size()) - 1))].first;
  return v;
}

std::string Render(const AddressValue& v, const AddressGenOptions& opt,
                   Rng* rng, bool canonical) {
  std::string ordinal = v.ordinal;
  std::string direction = v.direction;
  std::string suffix = v.suffix;
  std::string state = v.state;
  if (!canonical) {
    if (rng->Bernoulli(opt.p_ordinal_strip)) {
      ordinal = *StripOrdinal(ordinal);
    }
    if (!direction.empty() && rng->Bernoulli(opt.p_direction_abbr)) {
      direction = *Directions().Abbreviate(direction);
    }
    if (rng->Bernoulli(opt.p_suffix_abbr)) {
      suffix = *StreetSuffixes().Abbreviate(suffix);
    }
    if (rng->Bernoulli(opt.p_state_abbr)) {
      state = *States().Abbreviate(state);
    }
  }
  std::string out = ordinal;
  if (!direction.empty()) out += " " + direction;
  if (!v.name.empty()) out += " " + v.name;
  out += " " + suffix + ", " + v.zip + " " + state;
  return out;
}

// Canonicalizer for the segment judge: lowercase, strip commas, expand
// abbreviations, strip ordinal suffixes (dots are kept for InitialPair,
// which never triggers here).
std::string AddressCanon(std::string_view token) {
  std::string_view trimmed = TrimPunct(token, ",");
  if (trimmed.empty()) return "";
  std::string word(trimmed);
  if (auto full = StreetSuffixes().Expand(word)) word = *full;
  if (auto full = States().Expand(word)) word = *full;
  if (auto full = Directions().Expand(word)) word = *full;
  if (auto stripped = StripOrdinal(word)) word = *stripped;
  return ToLower(word);
}

}  // namespace

GeneratedDataset GenerateAddressDataset(const AddressGenOptions& opt) {
  Rng rng(opt.seed);
  GeneratedDataset data;
  data.name = "Address";

  const size_t num_clusters = static_cast<size_t>(
      static_cast<double>(opt.base_clusters) * opt.scale);
  int next_id = 0;
  for (size_t c = 0; c < num_clusters; ++c) {
    const int true_id = next_id++;
    const AddressValue true_value = RandomAddress(&rng);
    data.cluster_true_id.push_back(true_id);
    data.column.emplace_back();
    data.cell_truth.emplace_back();

    // Per-cluster pool of conflicting addresses (other logical values the
    // sources disagree on). Conflicts are reused *verbatim*: sources that
    // copy a wrong value copy its exact string, which is what lets
    // repeated conflicts outvote a format-fragmented truth before
    // standardization (the Table 8 regime).
    std::vector<std::pair<int, std::string>> conflicts;

    const int64_t size = rng.SkewedSize(
        opt.mean_cluster_size, static_cast<int64_t>(opt.max_cluster_size));
    for (int64_t r = 0; r < size; ++r) {
      int id;
      std::string cell;
      if (r > 0 && rng.Bernoulli(opt.p_conflict)) {
        if (!conflicts.empty() && rng.Bernoulli(opt.p_reuse_conflict)) {
          const auto& reused =
              conflicts[static_cast<size_t>(rng.Uniform(
                  0, static_cast<int64_t>(conflicts.size()) - 1))];
          id = reused.first;
          cell = reused.second;
        } else {
          id = next_id++;
          cell = Render(RandomAddress(&rng), opt, &rng, /*canonical=*/false);
          conflicts.emplace_back(id, cell);
        }
      } else {
        id = true_id;
        cell = Render(true_value, opt, &rng, /*canonical=*/r == 0);
      }
      data.string_ids[cell].insert(id);
      data.column.back().push_back(std::move(cell));
      data.cell_truth.back().push_back(id);
    }
  }

  data.variant_judge = [](const StringPair& pair) {
    return SegmentsEquivalent(pair.lhs, pair.rhs, AddressCanon,
                              /*allow_reorder=*/false);
  };
  data.direction_judge = [](const StringPair& pair) {
    // Prefer the expanded (canonical) form; longer side wins.
    if (pair.rhs.size() != pair.lhs.size()) {
      return pair.rhs.size() > pair.lhs.size() ? 1 : -1;
    }
    return 0;
  };
  return data;
}

}  // namespace ustl

#include "datagen/vocab.h"

#include <cctype>

#include "common/status.h"

namespace ustl {

Dictionary::Dictionary(
    std::vector<std::pair<std::string, std::string>> entries)
    : entries_(std::move(entries)) {
  for (const auto& [full, abbr] : entries_) {
    full_to_abbr_.emplace(full, abbr);
    abbr_to_full_.emplace(abbr, full);
  }
}

std::optional<std::string> Dictionary::Abbreviate(
    std::string_view full) const {
  auto it = full_to_abbr_.find(std::string(full));
  if (it == full_to_abbr_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Dictionary::Expand(std::string_view abbr) const {
  auto it = abbr_to_full_.find(std::string(abbr));
  if (it == abbr_to_full_.end()) return std::nullopt;
  return it->second;
}

bool Dictionary::ArePaired(std::string_view a, std::string_view b) const {
  auto abbr = Abbreviate(a);
  if (abbr.has_value() && *abbr == b) return true;
  auto full = Expand(a);
  return full.has_value() && *full == b;
}

const Dictionary& StreetSuffixes() {
  static const Dictionary& dict = *new Dictionary({
      {"Street", "St"},     {"Avenue", "Ave"},  {"Boulevard", "Blvd"},
      {"Road", "Rd"},       {"Drive", "Dr"},    {"Lane", "Ln"},
      {"Place", "Pl"},      {"Court", "Ct"},    {"Square", "Sq"},
      {"Terrace", "Ter"},   {"Parkway", "Pkwy"}, {"Highway", "Hwy"},
  });
  return dict;
}

const Dictionary& States() {
  static const Dictionary& dict = *new Dictionary({
      {"Wisconsin", "WI"},  {"California", "CA"}, {"Texas", "TX"},
      {"Ohio", "OH"},       {"Florida", "FL"},    {"Maine", "ME"},
      {"Georgia", "GA"},    {"Oregon", "OR"},     {"Arizona", "AZ"},
      {"Colorado", "CO"},   {"Alabama", "AL"},    {"Montana", "MT"},
      {"Nevada", "NV"},     {"Kansas", "KS"},     {"Iowa", "IA"},
      {"Utah", "UT"},       {"Idaho", "ID"},      {"Virginia", "VA"},
      {"Washington", "WA"}, {"Delaware", "DE"},
  });
  return dict;
}

const Dictionary& Directions() {
  static const Dictionary& dict = *new Dictionary({
      {"East", "E"},
      {"West", "W"},
      {"North", "N"},
      {"South", "S"},
  });
  return dict;
}

const Dictionary& Nicknames() {
  static const Dictionary& dict = *new Dictionary({
      {"robert", "bob"},     {"william", "bill"},  {"james", "jim"},
      {"richard", "rick"},   {"thomas", "tom"},    {"charles", "chuck"},
      {"margaret", "peggy"}, {"elizabeth", "liz"}, {"katherine", "kate"},
      {"michael", "mike"},   {"christopher", "chris"}, {"daniel", "dan"},
      {"matthew", "matt"},   {"steven", "steve"},  {"jeffrey", "jeff"},
      {"kenneth", "ken"},    {"joseph", "joe"},    {"david", "dave"},
      {"anthony", "tony"},   {"patricia", "pat"},  {"jonathan", "jon"},
      {"samuel", "sam"},     {"benjamin", "ben"},  {"timothy", "tim"},
  });
  return dict;
}

const Dictionary& JournalWords() {
  static const Dictionary& dict = *new Dictionary({
      {"Journal", "J."},        {"International", "Int."},
      {"Review", "Rev."},       {"Proceedings", "Proc."},
      {"Transactions", "Trans."}, {"Quarterly", "Q."},
      {"American", "Am."},      {"European", "Eur."},
      {"Annals", "Ann."},       {"Bulletin", "Bull."},
      {"Advances", "Adv."},     {"Applied", "Appl."},
      {"Research", "Res."},     {"Science", "Sci."},
      {"Engineering", "Eng."},  {"Medicine", "Med."},
      {"Biology", "Biol."},     {"Chemistry", "Chem."},
      {"Physics", "Phys."},     {"Mathematics", "Math."},
      {"Computing", "Comput."}, {"Systems", "Syst."},
      {"Letters", "Lett."},     {"Studies", "Stud."},
      {"National", "Natl."},    {"Society", "Soc."},
      {"Association", "Assoc."}, {"Clinical", "Clin."},
      {"Experimental", "Exp."}, {"Theoretical", "Theor."},
  });
  return dict;
}

const std::vector<std::string>& StreetNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "Main",     "Oak",      "Pine",   "Maple",    "Cedar",  "Elm",
      "Lake",     "Hill",     "Park",   "River",    "Spring", "Church",
      "Mill",     "Walnut",   "Center", "Union",    "Prospect", "Highland",
      "Franklin", "Jefferson", "Madison", "Monroe",  "Grant",  "Lincoln",
  };
  return names;
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "mary",    "john",   "linda",  "susan",  "karen",   "nancy",
      "betty",   "helen",  "sandra", "donna",  "carol",   "ruth",
      "sharon",  "laura",  "sarah",  "jessica", "anna",   "lisa",
      "emily",   "alice",  "julia",  "grace",  "robert",  "william",
      "james",   "richard", "thomas", "charles", "margaret", "elizabeth",
      "katherine", "michael", "christopher", "daniel", "matthew", "steven",
      "jeffrey", "kenneth", "joseph", "david", "anthony", "patricia",
      "jonathan", "samuel", "benjamin", "timothy",
  };
  return names;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "smith",   "johnson", "brown",  "taylor",  "anderson", "clark",
      "lewis",   "walker",  "hall",   "allen",   "young",    "king",
      "wright",  "scott",   "green",  "baker",   "adams",    "nelson",
      "carter",  "mitchell", "turner", "phillips", "campbell", "parker",
      "evans",   "edwards", "collins", "stewart", "morris",   "rogers",
      "reed",    "cook",    "morgan", "bell",    "murphy",   "bailey",
      "rivera",  "cooper",  "richardson", "cox", "howard",   "ward",
      "peterson", "gray",   "ramirez", "watson", "brooks",   "kelly",
  };
  return names;
}

const std::vector<std::string>& Fields() {
  static const std::vector<std::string>& fields = *new std::vector<std::string>{
      "Biology",    "Chemistry",  "Physics",     "Medicine",
      "Economics",  "Sociology",  "Psychology",  "Linguistics",
      "Statistics", "Mathematics", "Engineering", "Education",
      "Ecology",    "Genetics",   "Neuroscience", "Oncology",
      "Cardiology", "Immunology", "Geology",     "Astronomy",
      "Agronomy",   "Botany",     "Zoology",     "Pharmacology",
  };
  return fields;
}

const std::vector<std::string>& FieldQualifiers() {
  static const std::vector<std::string>& words = *new std::vector<std::string>{
      "Research", "Letters", "Reports",  "Methods",
      "Practice", "Theory",  "Education", "Systems",
  };
  return words;
}

std::string OrdinalOf(int number) {
  USTL_CHECK(number > 0);
  int mod100 = number % 100;
  int mod10 = number % 10;
  const char* suffix = "th";
  if (mod100 < 11 || mod100 > 13) {
    if (mod10 == 1) suffix = "st";
    if (mod10 == 2) suffix = "nd";
    if (mod10 == 3) suffix = "rd";
  }
  return std::to_string(number) + suffix;
}

std::optional<std::string> StripOrdinal(std::string_view token) {
  if (token.size() < 3) return std::nullopt;
  std::string_view digits = token.substr(0, token.size() - 2);
  std::string_view suffix = token.substr(token.size() - 2);
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  }
  int number = 0;
  for (char c : digits) number = number * 10 + (c - '0');
  if (number <= 0) return std::nullopt;
  if (OrdinalOf(number) != std::string(token)) return std::nullopt;
  (void)suffix;
  return std::string(digits);
}

bool OrdinalPair(std::string_view a, std::string_view b) {
  auto stripped_a = StripOrdinal(a);
  if (stripped_a.has_value() && *stripped_a == b) return true;
  auto stripped_b = StripOrdinal(b);
  return stripped_b.has_value() && *stripped_b == a;
}

bool InitialPair(std::string_view a, std::string_view b) {
  auto is_initial_of = [](std::string_view initial, std::string_view full) {
    return initial.size() == 2 && initial[1] == '.' && full.size() >= 2 &&
           std::tolower(static_cast<unsigned char>(initial[0])) ==
               std::tolower(static_cast<unsigned char>(full[0])) &&
           full.find('.') == std::string_view::npos;
  };
  return is_initial_of(a, b) || is_initial_of(b, a);
}

}  // namespace ustl

#include "datagen/dataset.h"

#include <algorithm>

namespace ustl {

bool GeneratedDataset::IsTrueVariantPair(const StringPair& pair) const {
  auto lhs_it = string_ids.find(pair.lhs);
  auto rhs_it = string_ids.find(pair.rhs);
  if (lhs_it != string_ids.end() && rhs_it != string_ids.end()) {
    for (int id : lhs_it->second) {
      if (rhs_it->second.count(id) > 0) return true;
    }
  }
  return variant_judge != nullptr && variant_judge(pair);
}

size_t GeneratedDataset::num_records() const {
  size_t count = 0;
  for (const auto& cluster : column) count += cluster.size();
  return count;
}

DatasetStats ComputeStats(const GeneratedDataset& dataset) {
  DatasetStats stats;
  stats.num_clusters = dataset.num_clusters();
  stats.num_records = dataset.num_records();
  stats.min_cluster_size = stats.num_clusters == 0 ? 0 : SIZE_MAX;
  for (const auto& cluster : dataset.column) {
    stats.min_cluster_size = std::min(stats.min_cluster_size, cluster.size());
    stats.max_cluster_size = std::max(stats.max_cluster_size, cluster.size());
  }
  if (stats.num_clusters > 0) {
    stats.avg_cluster_size = static_cast<double>(stats.num_records) /
                             static_cast<double>(stats.num_clusters);
  }

  // Distinct non-identical (unordered) value pairs within clusters, split
  // into variant vs conflict by cell ground truth (as the paper's Table 6).
  std::set<std::pair<std::string, std::string>> variant, conflict;
  for (size_t c = 0; c < dataset.column.size(); ++c) {
    const auto& rows = dataset.column[c];
    for (size_t a = 0; a < rows.size(); ++a) {
      for (size_t b = a + 1; b < rows.size(); ++b) {
        if (rows[a] == rows[b]) continue;
        auto key = rows[a] < rows[b] ? std::make_pair(rows[a], rows[b])
                                     : std::make_pair(rows[b], rows[a]);
        if (dataset.IsVariantCellPair(c, a, b)) {
          variant.insert(key);
        } else {
          conflict.insert(key);
        }
      }
    }
  }
  // A pair observed as both (rare id collision) counts as variant.
  for (const auto& key : variant) conflict.erase(key);
  stats.distinct_value_pairs = variant.size() + conflict.size();
  if (stats.distinct_value_pairs > 0) {
    stats.variant_pair_fraction =
        static_cast<double>(variant.size()) /
        static_cast<double>(stats.distinct_value_pairs);
    stats.conflict_pair_fraction =
        static_cast<double>(conflict.size()) /
        static_cast<double>(stats.distinct_value_pairs);
  }
  return stats;
}

}  // namespace ustl

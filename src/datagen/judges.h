// Segment-equivalence machinery for ground-truth judges. A dataset family
// supplies a token canonicalizer (lowercase, strip punctuation, expand its
// abbreviation dictionaries, ...); two segments are equivalent when their
// canonical token multisets match, with a special case for dotted initials
// ("m." vs "mary"). Used by the simulated oracle on token-level candidate
// replacements, whose strings are fragments rather than whole generated
// values.
#ifndef USTL_DATAGEN_JUDGES_H_
#define USTL_DATAGEN_JUDGES_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ustl {

/// Canonicalizes one token; returning "" drops the token.
using TokenCanon = std::function<std::string(std::string_view)>;

/// Canonical token list of a segment under `canon` (whitespace-tokenized,
/// empty canonical forms dropped).
std::vector<std::string> CanonTokens(std::string_view segment,
                                     const TokenCanon& canon);

/// True iff the canonical token multisets match; `allow_reorder` permits
/// permutations (name transposition). Tokens also match pairwise when one
/// is the dotted initial of the other.
bool SegmentsEquivalent(std::string_view lhs, std::string_view rhs,
                        const TokenCanon& canon, bool allow_reorder);

/// Strips leading/trailing characters in `strip` from a token.
std::string_view TrimPunct(std::string_view token, std::string_view strip);

}  // namespace ustl

#endif  // USTL_DATAGEN_JUDGES_H_

// Source attribution for generated datasets. The paper's Figure 1 shows
// records arriving from "Data Source 1..N"; truth-discovery methods
// (consolidate/fusion.h) need that attribution to learn per-source
// reliability. The real datasets carry no usable source column, so we
// simulate one: sources get ground-truth reliabilities, and each record is
// assigned a source with probability proportional to how well the source's
// reliability explains the record's correctness — a correct record tends
// to come from a reliable source, a conflicting record from an unreliable
// one. The induced conditional P(record correct | source s) converges to
// the configured reliability as clusters grow, which is exactly the
// generative model ACCU/TruthFinder assume.
#ifndef USTL_DATAGEN_SOURCES_H_
#define USTL_DATAGEN_SOURCES_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"

namespace ustl {

struct SourceModelOptions {
  size_t num_sources = 8;
  /// Reliabilities are evenly spread over [min, max], so the learning
  /// methods have a spectrum to recover.
  double min_reliability = 0.55;
  double max_reliability = 0.95;
  uint64_t seed = 11;
};

struct SourceAssignment {
  /// source_of[c][r]: source id of record r in cluster c (parallel to
  /// GeneratedDataset::column).
  std::vector<std::vector<int>> source_of;
  /// Ground-truth reliability per source id.
  std::vector<double> reliability;

  size_t num_sources() const { return reliability.size(); }

  /// Empirical P(record correct | source): how reliable each source
  /// actually is in this assignment (for tests and reports).
  std::vector<double> EmpiricalReliability(
      const GeneratedDataset& data) const;
};

/// Assigns every record of `data` to a simulated source.
SourceAssignment AssignSources(const GeneratedDataset& data,
                               const SourceModelOptions& options = {});

}  // namespace ustl

#endif  // USTL_DATAGEN_SOURCES_H_

// Shared vocabularies for the synthetic dataset generators. The
// transformation families mirror what the paper's three real datasets
// exhibit (Table 4, Figure 2, Section 8): street-suffix/state/direction
// abbreviations and ordinals for Address, name transposition / initials /
// nicknames / annotations for AuthorList, and word abbreviations for
// JournalTitle.
#ifndef USTL_DATAGEN_VOCAB_H_
#define USTL_DATAGEN_VOCAB_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ustl {

/// A bidirectional full-form <-> abbreviation dictionary.
class Dictionary {
 public:
  explicit Dictionary(
      std::vector<std::pair<std::string, std::string>> entries);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Abbreviation of a full form, if known.
  std::optional<std::string> Abbreviate(std::string_view full) const;
  /// Full form of an abbreviation, if known.
  std::optional<std::string> Expand(std::string_view abbr) const;
  /// True iff {a, b} is a dictionary pair in either direction.
  bool ArePaired(std::string_view a, std::string_view b) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  std::unordered_map<std::string, std::string> full_to_abbr_;
  std::unordered_map<std::string, std::string> abbr_to_full_;
};

/// Street suffixes: Street/St, Avenue/Ave, ...
const Dictionary& StreetSuffixes();
/// US states (single-token names only): Wisconsin/WI, California/CA, ...
const Dictionary& States();
/// Compass directions: East/E, ...
const Dictionary& Directions();
/// First-name nicknames: robert/bob, william/bill, ... (lowercase).
const Dictionary& Nicknames();
/// Journal-title word abbreviations: Journal/J., Review/Rev., ...
const Dictionary& JournalWords();

/// Street names for address generation.
const std::vector<std::string>& StreetNames();
/// Lowercase first names (including the nickname full forms).
const std::vector<std::string>& FirstNames();
/// Lowercase last names.
const std::vector<std::string>& LastNames();
/// Scientific fields for journal titles.
const std::vector<std::string>& Fields();
/// Secondary title words for journal titles.
const std::vector<std::string>& FieldQualifiers();

/// "9" -> "9th", "3" -> "3rd", "22" -> "22nd", "11" -> "11th" (English
/// ordinal suffix rules).
std::string OrdinalOf(int number);
/// Strips a trailing ordinal suffix: "9th" -> "9"; nullopt when `token` is
/// not an ordinal.
std::optional<std::string> StripOrdinal(std::string_view token);
/// True iff {a, b} are the cardinal/ordinal forms of the same number.
bool OrdinalPair(std::string_view a, std::string_view b);
/// True iff one token is the dotted initial of the other ("m." / "mary").
bool InitialPair(std::string_view a, std::string_view b);

}  // namespace ustl

#endif  // USTL_DATAGEN_VOCAB_H_

#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/timer.h"
#include "consolidate/truth_discovery.h"

namespace ustl {

namespace {

/// Deterministic content hash for head sampling (FNV-1a over column
/// names and every cell in cluster/record order, with a separator mix
/// between strings so concatenations cannot collide trivially). A pure
/// function of the table's bytes: the sampled set is identical across
/// thread counts, codecs and repeated runs.
uint64_t HashTableContent(const Table& table) {
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](const std::string& text) {
    for (char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= 0xFFu;
    hash *= 1099511628211ull;
  };
  for (const std::string& name : table.column_names()) mix(name);
  for (size_t c = 0; c < table.num_clusters(); ++c) {
    for (const auto& row : table.cluster(c)) {
      for (const std::string& cell : row) mix(cell);
    }
  }
  return hash;
}

void AppendJsonEscaped(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Span names the profiler gauges export self-times for: the closed set
/// the serving + persist layers open (unknown names still profile into
/// the table/dump; they just have no dedicated gauge).
const char* const kProfiledSpanNames[] = {
    "request",     "admission_wait", "column",        "candidates",
    "graph_build", "search_wave",    "oracle_batch",  "oracle_call",
    "apply",       "fuse",           "wal_append",    "fsync",
    "snapshot_write", "compaction"};

}  // namespace

// Per-column-job oracle shim: forwards every question to the service's
// shared broker, then streams the verdict as an event. One instance per
// job, so the request/column attribution needs no lookup.
class ServeEventOracle : public VerificationOracle {
 public:
  ServeEventOracle(ConsolidationService* service,
                   ConsolidationService::Request* request, size_t column)
      : service_(service), request_(request), column_(column) {}

  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    return VerifyWithContext(group_pairs, QuestionContext{});
  }

  Verdict VerifyWithContext(const std::vector<StringPair>& group_pairs,
                            const QuestionContext& context) override {
    Verdict verdict = service_->broker_.VerifyWithContext(group_pairs, context);
    // This runs once per presented group — the pipeline's hot path now
    // that it delegates here — so skip event construction (two string
    // copies) outright for the common listener-less request.
    if (!request_->on_event) return verdict;
    ServeEvent event;
    event.kind = ServeEvent::Kind::kVerdict;
    event.column = request_->table->column_names()[column_];
    event.column_index = column_;
    event.presented = context.presented;
    event.group_size = group_pairs.size();
    event.approved = verdict.approved;
    event.direction = verdict.direction;
    event.program = std::string(context.program);
    service_->Emit(*request_, std::move(event));
    return verdict;
  }

 private:
  ConsolidationService* service_;
  ConsolidationService::Request* request_;
  size_t column_;
};

ConsolidationService::ConsolidationService(VerificationOracle* backend,
                                           ServiceOptions options)
    : backend_(backend),
      options_(std::move(options)),
      budget_(ResolveThreadCount(options_.num_threads)),
      workers_(options_.max_concurrent_jobs > 0
                   ? std::min(budget_, options_.max_concurrent_jobs)
                   : budget_),
      per_job_threads_(std::max(1, budget_ / workers_)),
      retrying_(options_.enable_retry
                    ? std::make_unique<RetryingOracle>(backend_,
                                                       WireRetryOptions())
                    : nullptr),
      broker_(retrying_ != nullptr
                  ? static_cast<VerificationOracle*>(retrying_.get())
                  : backend_,
              options_.broker),
      search_cache_(options_.search_cache),
      pool_(std::make_unique<ThreadPool>(workers_ + 1)) {
  USTL_CHECK(backend_ != nullptr);
  USTL_CHECK(options_.max_pending_requests > 0);
  paused_ = options_.start_paused;
  boost_tokens_ = budget_ % workers_;
  // Diagnosis layer before RegisterMetrics (which wires its gauges) and
  // before the persist layer (which borrows the process-level context).
  if (options_.enable_profiler) {
    profiler_ = std::make_unique<ProfileAccumulator>();
  }
  if (options_.enable_flight_recorder) {
    recorder_ =
        std::make_unique<FlightRecorder>(options_.flight_recorder_capacity);
  }
  if (profiler_ != nullptr || recorder_ != nullptr) {
    service_tee_ = std::make_unique<TeeTraceSink>(
        std::vector<TraceSink*>{profiler_.get(), recorder_.get()});
    service_trace_ =
        std::make_unique<TraceContext>(service_tee_.get(), "service", epoch_);
  }
  RegisterMetrics();
  if (!options_.persist_dir.empty()) {
    // The persist layer emits into the process-level context only — its
    // spans must never reach a request's --trace-out sink (each request
    // stream closes with exactly one root).
    options_.persist.trace = service_trace_.get();
    options_.persist.fsync_latency_us = persist_fsync_latency_us_;
    // Recover BEFORE the first request can be admitted: the broker is
    // seeded with the durable prefix, then the listener attaches so only
    // genuinely new state is WAL-logged. A torn WAL tail is recovery;
    // an unreadably corrupt snapshot is a construction failure — serving
    // with silently partial warm state is the one thing this layer must
    // never do.
    Result<std::unique_ptr<DurableState>> opened =
        DurableState::Open(options_.persist_dir, options_.persist);
    if (!opened.ok()) {
      throw std::runtime_error("persist recovery failed: " +
                               opened.status().ToString());
    }
    persist_ = std::move(opened).value();
    persist_->RecoverInto(&broker_);
  }
}

void ConsolidationService::RegisterMetrics() {
  // Registry-native lifecycle counters: these ARE the service's stats
  // storage — stats(), the text/JSON scrapes and the CLI summaries all
  // read the same instruments.
  requests_admitted_ = metrics_.RegisterCounter(
      "ustl_requests_admitted_total", "Requests admitted by Submit");
  requests_completed_ = metrics_.RegisterCounter(
      "ustl_requests_completed_total", "Requests finalized (any status)");
  columns_dispatched_ = metrics_.RegisterCounter(
      "ustl_columns_dispatched_total", "Column jobs handed to workers");
  requests_cancelled_ = metrics_.RegisterCounter(
      "ustl_requests_cancelled_total", "Requests finalized with kCancelled");
  requests_deadline_exceeded_ = metrics_.RegisterCounter(
      "ustl_requests_deadline_exceeded_total",
      "Requests finalized with kDeadlineExceeded");
  aged_grants_ = metrics_.RegisterCounter(
      "ustl_aged_grants_total", "Fairness-aging out-of-cycle grants");
  handles_reaped_ = metrics_.RegisterCounter(
      "ustl_handles_reaped_total", "Unwaited results reclaimed by the GC");
  requests_rejected_ = metrics_.RegisterCounter(
      "ustl_requests_rejected_total",
      "Submits rejected with kShuttingDown after drain began");
  grouping_searches_ = metrics_.RegisterCounter(
      "ustl_grouping_searches_total", "Pivot searches run by column jobs");
  grouping_expansions_ = metrics_.RegisterCounter(
      "ustl_grouping_expansions_total", "DFS expansions spent in searches");
  grouping_cache_hits_ = metrics_.RegisterCounter(
      "ustl_grouping_cache_hits_total",
      "Searches resolved from cross-round result reuse");
  grouping_warm_hits_ = metrics_.RegisterCounter(
      "ustl_grouping_warm_hits_total",
      "Cache hits served from cross-engine warm starts");
  grouping_speculative_searches_ = metrics_.RegisterCounter(
      "ustl_grouping_speculative_searches_total",
      "Wave searches past the serial stop point");
  index_blocks_skipped_ = metrics_.RegisterCounter(
      "ustl_index_blocks_skipped_total",
      "Block-codec posting blocks skipped via metadata");
  index_blocks_decoded_ = metrics_.RegisterCounter(
      "ustl_index_blocks_decoded_total", "Block-codec posting blocks decoded");
  index_joins_pruned_ = metrics_.RegisterCounter(
      "ustl_index_joins_pruned_total",
      "Whole posting joins pruned by block metadata");
  admission_wait_us_ = metrics_.RegisterHistogram(
      "ustl_admission_wait_us", "Submit-to-admission wait per request",
      DefaultLatencyBucketsUs());
  request_duration_us_ = metrics_.RegisterHistogram(
      "ustl_request_duration_us", "Submit-to-finalize latency per request",
      DefaultLatencyBucketsUs());
  column_duration_us_ = metrics_.RegisterHistogram(
      "ustl_column_duration_us", "StandardizeColumn latency per column job",
      DefaultLatencyBucketsUs());
  persist_fsync_latency_us_ = metrics_.RegisterHistogram(
      "ustl_persist_fsync_latency_us", "WAL fsync wall latency",
      DefaultLatencyBucketsUs());
  flight_dumps_ = metrics_.RegisterCounter(
      "ustl_flight_dumps_total",
      "Flight-recorder dumps fired (stall / deadline / error / drain)");
  trace_sampled_ = metrics_.RegisterCounter(
      "ustl_trace_sampled_total",
      "Requests whose content hash selected them for the trace sink");
  trace_unsampled_ = metrics_.RegisterCounter(
      "ustl_trace_unsampled_total",
      "Requests head-sampled away from the trace sink");

  // The broker / search-cache / retry layers keep their pinned stats
  // structs; snapshot-time collectors copy them into gauges so one
  // scrape surfaces everything. Collectors only read and Set — metrics
  // stay write-only from the serving side (zero perturbation).
  Gauge* oracle_questions =
      metrics_.RegisterGauge("ustl_oracle_questions", "Questions asked");
  Gauge* oracle_backend_calls = metrics_.RegisterGauge(
      "ustl_oracle_backend_calls", "Questions that reached the backend");
  Gauge* oracle_cache_hits = metrics_.RegisterGauge(
      "ustl_oracle_cache_hits", "Questions served from the verdict cache");
  Gauge* oracle_batches =
      metrics_.RegisterGauge("ustl_oracle_batches", "Combined batches drained");
  Gauge* oracle_max_batch =
      metrics_.RegisterGauge("ustl_oracle_max_batch", "Largest batch drained");
  Gauge* oracle_evictions = metrics_.RegisterGauge(
      "ustl_oracle_evictions", "Verdicts dropped by the LRU bound");
  Gauge* search_lookups = metrics_.RegisterGauge(
      "ustl_search_cache_lookups", "Cross-engine warm-start lookups");
  Gauge* search_warm_starts = metrics_.RegisterGauge(
      "ustl_search_cache_warm_starts", "Lookups that found their key");
  Gauge* search_entries_served = metrics_.RegisterGauge(
      "ustl_search_cache_entries_served", "Pivots copied out by warm starts");
  Gauge* search_publishes = metrics_.RegisterGauge(
      "ustl_search_cache_publishes", "Engine result sets published");
  Gauge* search_keys =
      metrics_.RegisterGauge("ustl_search_cache_keys", "Distinct keys held");
  Gauge* search_entries =
      metrics_.RegisterGauge("ustl_search_cache_entries", "Pivots held");
  Gauge* search_evictions = metrics_.RegisterGauge(
      "ustl_search_cache_evictions", "Keys dropped by the LRU bound");
  Gauge* retry_retries =
      metrics_.RegisterGauge("ustl_retry_retries", "Re-asks after a failure");
  Gauge* retry_recovered = metrics_.RegisterGauge(
      "ustl_retry_recovered", "Verdicts that needed >= 1 retry");
  Gauge* retry_exhausted = metrics_.RegisterGauge(
      "ustl_retry_exhausted", "Questions that failed every attempt");
  Gauge* retry_breaker_opens = metrics_.RegisterGauge(
      "ustl_retry_breaker_opens", "Closed -> open breaker transitions");
  Gauge* retry_short_circuits = metrics_.RegisterGauge(
      "ustl_retry_short_circuits", "Calls answered while the breaker was open");
  Gauge* retry_replayed = metrics_.RegisterGauge(
      "ustl_retry_replayed_verdicts", "Short circuits served from replay");
  Gauge* retry_breaker_open = metrics_.RegisterGauge(
      "ustl_retry_breaker_open", "1 while the breaker is open or probing");
  Gauge* active_requests = metrics_.RegisterGauge(
      "ustl_active_requests", "Admitted, not yet finalized requests");
  Gauge* max_concurrent = metrics_.RegisterGauge(
      "ustl_max_concurrent_requests", "High-water mark of active requests");
  Gauge* persist_wal_appends = metrics_.RegisterGauge(
      "ustl_persist_wal_appends", "Durable records appended to the WAL");
  Gauge* persist_fsyncs =
      metrics_.RegisterGauge("ustl_persist_fsyncs", "WAL fsync calls");
  Gauge* persist_recovered = metrics_.RegisterGauge(
      "ustl_persist_recovered_records",
      "Records recovered on open (snapshot + WAL durable prefix)");
  Gauge* persist_truncated = metrics_.RegisterGauge(
      "ustl_persist_truncated_tail_bytes",
      "Torn-tail bytes dropped from the WAL on open");
  Gauge* persist_snapshots = metrics_.RegisterGauge(
      "ustl_persist_snapshot_writes", "Snapshots written (compaction + final)");
  metrics_.AddCollector([=] {
    const OracleBrokerStats oracle = broker_.stats();
    oracle_questions->Set(static_cast<int64_t>(oracle.questions));
    oracle_backend_calls->Set(static_cast<int64_t>(oracle.backend_calls));
    oracle_cache_hits->Set(static_cast<int64_t>(oracle.cache_hits));
    oracle_batches->Set(static_cast<int64_t>(oracle.batches));
    oracle_max_batch->Set(static_cast<int64_t>(oracle.max_batch));
    oracle_evictions->Set(static_cast<int64_t>(oracle.evictions));
    const SearchCacheStats search = search_cache_.stats();
    search_lookups->Set(static_cast<int64_t>(search.lookups));
    search_warm_starts->Set(static_cast<int64_t>(search.warm_starts));
    search_entries_served->Set(static_cast<int64_t>(search.entries_served));
    search_publishes->Set(static_cast<int64_t>(search.publishes));
    search_keys->Set(static_cast<int64_t>(search.keys));
    search_entries->Set(static_cast<int64_t>(search.entries));
    search_evictions->Set(static_cast<int64_t>(search.evictions));
    if (retrying_ != nullptr) {
      const RetryingOracleStats retry = retrying_->stats();
      retry_retries->Set(static_cast<int64_t>(retry.retries));
      retry_recovered->Set(static_cast<int64_t>(retry.recovered));
      retry_exhausted->Set(static_cast<int64_t>(retry.exhausted));
      retry_breaker_opens->Set(static_cast<int64_t>(retry.breaker_opens));
      retry_short_circuits->Set(static_cast<int64_t>(retry.short_circuits));
      retry_replayed->Set(static_cast<int64_t>(retry.replayed_verdicts));
      retry_breaker_open->Set(retrying_->breaker_open() ? 1 : 0);
    }
    if (persist_ != nullptr) {
      const PersistStats persist = persist_->stats();
      persist_wal_appends->Set(static_cast<int64_t>(persist.wal_appends));
      persist_fsyncs->Set(static_cast<int64_t>(persist.fsyncs));
      persist_recovered->Set(static_cast<int64_t>(persist.recovered_records));
      persist_truncated->Set(
          static_cast<int64_t>(persist.truncated_tail_bytes));
      persist_snapshots->Set(static_cast<int64_t>(persist.snapshot_writes));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    active_requests->Set(static_cast<int64_t>(active_.size()));
    max_concurrent->Set(static_cast<int64_t>(max_concurrent_requests_));
  });
  if (recorder_ != nullptr) {
    Gauge* recorder_spans = metrics_.RegisterGauge(
        "ustl_flight_recorder_spans", "Spans ever written to the ring");
    FlightRecorder* recorder = recorder_.get();
    metrics_.AddCollector([=] {
      recorder_spans->Set(static_cast<int64_t>(recorder->recorded()));
    });
  }
  if (profiler_ != nullptr) {
    // Collectors run under the registry mutex and cannot register, so
    // every per-name gauge the profile could ever produce is registered
    // up front from the closed set of span names the service emits.
    Gauge* profile_folded = metrics_.RegisterGauge(
        "ustl_profile_folded_spans", "Spans folded into the profile table");
    Gauge* profile_dropped = metrics_.RegisterGauge(
        "ustl_profile_dropped_spans",
        "Spans dropped by the profiler's buffering bound");
    auto wall_gauges =
        std::make_shared<std::map<std::string, Gauge*>>();
    auto cpu_gauges = std::make_shared<std::map<std::string, Gauge*>>();
    for (const char* name : kProfiledSpanNames) {
      (*wall_gauges)[name] = metrics_.RegisterGauge(
          std::string("ustl_profile_self_wall_us_") + name,
          std::string("Exclusive wall microseconds in '") + name + "' spans");
      (*cpu_gauges)[name] = metrics_.RegisterGauge(
          std::string("ustl_profile_self_cpu_us_") + name,
          std::string("Exclusive CPU microseconds in '") + name + "' spans");
    }
    ProfileAccumulator* profiler = profiler_.get();
    metrics_.AddCollector([=] {
      profile_folded->Set(static_cast<int64_t>(profiler->folded_spans()));
      profile_dropped->Set(static_cast<int64_t>(profiler->dropped_spans()));
      const auto totals = profiler->TotalsByName();
      for (const auto& [name, gauge] : *wall_gauges) {
        const auto it = totals.find(name);
        gauge->Set(it == totals.end() ? 0 : it->second.self_wall_us);
      }
      for (const auto& [name, gauge] : *cpu_gauges) {
        const auto it = totals.find(name);
        gauge->Set(it == totals.end() ? 0 : it->second.self_cpu_us);
      }
    });
  }
  RegisterProcessMetrics(&metrics_);
}

ConsolidationService::~ConsolidationService() {
  Shutdown(/*drain=*/true);
  // pool_ (declared last) is destroyed first, joining the — now idle —
  // workers before any other member goes away.
}

void ConsolidationService::Shutdown(bool drain) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!draining_) {
      draining_ = true;
      // Submits blocked on a full backlog wake up and reject.
      admission_cv_.notify_all();
    }
    if (!drain) return;
    paused_ = false;
    Pump();
    // In-flight requests finish under their own deadlines; admitting_
    // covers Submits past the admission check but still emitting their
    // kAdmitted event outside the lock.
    const auto drained = [&] {
      return active_.empty() && running_jobs_ == 0 && admitting_ == 0;
    };
    if (recorder_ != nullptr && options_.stall_threshold_ms > 0) {
      // A drain that outlives the stall threshold dumps the ring once —
      // the last chance to see what the stuck requests were doing — then
      // keeps waiting (the dump diagnoses the hang, it does not break it).
      bool dumped = false;
      while (!idle_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.stall_threshold_ms),
          drained)) {
        if (dumped) continue;
        dumped = true;
        lock.unlock();
        FireFlightDump("drain_timeout");
        lock.lock();
      }
    } else {
      idle_cv_.wait(lock, drained);
    }
    if (final_snapshot_done_) return;
    final_snapshot_done_ = true;
  }
  // Final snapshot outside mutex_: ExportDurableState takes the broker
  // mutex and WriteSnapshot fsyncs. The drain already completed, so no
  // new state can race past the export.
  if (persist_ != nullptr) {
    broker_.SetDurabilityListener(nullptr);
    (void)persist_->WriteSnapshot(broker_.ExportDurableState());
    (void)persist_->Flush();
  }
}

uint64_t ConsolidationService::Submit(Table* table, RequestOptions options) {
  USTL_CHECK(table != nullptr);
  auto owned = std::make_unique<Request>();
  Request* request = owned.get();
  request->table = table;
  request->framework =
      options.framework.has_value() ? *options.framework : options_.framework;
  request->on_event = std::move(options.on_event);
  // Armed before admission, so the deadline covers backlog queueing time
  // — the client-facing latency bound, not a processing-time bound.
  request->cancel.SetDeadlineMs(options.deadline_ms);
  const size_t num_columns = table->num_columns();
  request->columns.resize(num_columns);
  request->results.resize(num_columns);
  // Extracted before admission so a blocked Submit holds no lock while
  // copying a large table.
  for (size_t col = 0; col < num_columns; ++col) {
    request->columns[col] = table->ExtractColumn(col);
  }

  // Time origin of the admission-wait histogram and (when traced) the
  // request root span: right before the backlog wait, so both measure
  // the client-facing queueing latency.
  request->submit_time = SteadyNow();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // admitting_ reserves this request's backlog slot across the unlock
    // below, so concurrent Submits cannot all pass the check before any
    // of them is counted — the bound holds under contention. A drain
    // releases every blocked Submit immediately: they reject below.
    admission_cv_.wait(lock, [&] {
      return draining_ ||
             active_.size() + admitting_ < options_.max_pending_requests;
    });
    if (draining_) {
      // Shutdown began: never admit. The handle comes back pre-completed
      // so the caller's usual Wait sees the typed status instead of a
      // special return value; its stream (if any) is one kRequestDone.
      request->id = next_id_++;
      request->label = options.label.empty()
                           ? "request-" + std::to_string(request->id)
                           : std::move(options.label);
      request->columns.clear();
      request->results.clear();
      request->status = RequestStatus::kShuttingDown;
      request->done = true;
      const uint64_t id = request->id;
      requests_.emplace(id, std::move(owned));
      retained_.push_back(id);
      ReapRetained();
      lock.unlock();
      requests_rejected_->Increment();
      ServeEvent rejected;
      rejected.kind = ServeEvent::Kind::kRequestDone;
      rejected.status = RequestStatus::kShuttingDown;
      Emit(*request, std::move(rejected));
      return id;
    }
    ++admitting_;
    request->id = next_id_++;
    request->arrival = next_arrival_++;
    request->label = options.label.empty()
                         ? "request-" + std::to_string(request->id)
                         : std::move(options.label);
    request->last_grant_seq = grant_seq_;  // aging clock starts at admission
    requests_.emplace(request->id, std::move(owned));
  }
  requests_admitted_->Increment();
  admission_wait_us_->Observe(MicrosSince(request->submit_time));
  // Head sampling gates only the caller's sink: the decision is a pure
  // function of request *content* (not arrival order or thread), so the
  // same table is sampled — or not — on every run, and a sampled run
  // stays byte-identical to an unsampled one.
  TraceSink* user_sink = options.trace_sink;
  if (user_sink != nullptr && options_.trace_sample > 1) {
    if (HashTableContent(*table) % options_.trace_sample == 0) {
      trace_sampled_->Increment();
    } else {
      trace_unsampled_->Increment();
      user_sink = nullptr;
    }
  }
  // The diagnosis sinks (profiler, recorder) see every request's spans
  // regardless of sampling; the tee fans one emission out to whichever
  // of the three are live.
  if (user_sink != nullptr || profiler_ != nullptr || recorder_ != nullptr) {
    request->tee = std::make_unique<TeeTraceSink>(std::vector<TraceSink*>{
        user_sink, profiler_ ? profiler_.get() : nullptr,
        recorder_ ? recorder_.get() : nullptr});
    // The trace request id suffixes the handle so it stays unique even
    // when labels repeat (warm rounds resubmit the same table name).
    request->trace = std::make_unique<TraceContext>(
        request->tee.get(),
        request->label + "#" + std::to_string(request->id), epoch_);
    // Reserve span id 1 for the request root: every other span nests
    // under it, and the root itself is emitted at finalize (interval
    // [submit_time, finalize]) — consumers buffer and re-order on id.
    request->root_span = request->trace->NextSpanId();
    TraceSpan admission;
    admission.request_id = request->trace->request_id();
    admission.id = request->trace->NextSpanId();
    admission.parent = request->root_span;
    admission.name = "admission_wait";
    admission.start_us = DurationMicros(epoch_, request->submit_time);
    admission.end_us = request->trace->NowMicros();
    request->trace->sink()->Emit(admission);
  }

  // Emitted before the request enters active_, so its event stream is
  // guaranteed to open with kAdmitted — a worker cannot pick (and emit
  // verdicts for) a request the consumer has not seen admitted. Emit
  // never runs under mutex_, so a callback may read service state
  // (stats(), CompletionOrder()); it still must not Submit/Wait (see
  // RequestOptions::on_event).
  ServeEvent event;
  event.kind = ServeEvent::Kind::kAdmitted;
  Emit(*request, std::move(event));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --admitting_;
    active_.push_back(request);
    max_concurrent_requests_ =
        std::max(max_concurrent_requests_, active_.size());
    Pump();
  }
  // A zero-column table has no jobs for the workers to complete it with;
  // finalize inline (FinalizeRequest expects the request in active_).
  if (num_columns == 0) FinalizeRequest(request);
  return request->id;
}

RequestResult ConsolidationService::Wait(uint64_t handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = requests_.find(handle);
  USTL_CHECK(it != requests_.end());
  Request* request = it->second.get();
  request->waiting = true;  // pins the handle against the GC
  done_cv_.wait(lock, [&] { return request->done; });
  std::exception_ptr error = request->error;
  RequestResult result = std::move(request->result);
  result.status = request->status;
  auto retained = std::find(retained_.begin(), retained_.end(), handle);
  if (retained != retained_.end()) retained_.erase(retained);
  requests_.erase(it);
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
  return result;
}

void ConsolidationService::Cancel(uint64_t handle) {
  // Trips the shared state only; workers observe it at their next
  // checkpoint and the finalize path turns it into a typed status. Takes
  // mutex_ but never event_mutex_, so calling from an on_event callback
  // cannot self-deadlock.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = requests_.find(handle);
  if (it == requests_.end() || it->second->done) return;
  it->second->cancel.Cancel(RequestStatus::kCancelled);
}

void ConsolidationService::Resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  Pump();
}

std::vector<uint64_t> ConsolidationService::CompletionOrder() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completion_order_;
}

ServiceStats ConsolidationService::stats() const {
  ServiceStats out;
  out.oracle = broker_.stats();
  out.search_cache = search_cache_.stats();
  if (retrying_ != nullptr) out.retry = retrying_->stats();
  // The lifecycle counters live in the registry now; ServiceStats is a
  // read-through view of the same instruments the scrape exports.
  out.requests_admitted = requests_admitted_->Value();
  out.requests_completed = requests_completed_->Value();
  out.columns_dispatched = columns_dispatched_->Value();
  out.requests_cancelled = requests_cancelled_->Value();
  out.requests_deadline_exceeded = requests_deadline_exceeded_->Value();
  out.aged_grants = aged_grants_->Value();
  out.handles_reaped = handles_reaped_->Value();
  out.requests_rejected = requests_rejected_->Value();
  if (persist_ != nullptr) out.persist = persist_->stats();
  std::lock_guard<std::mutex> lock(mutex_);
  out.max_concurrent_requests = max_concurrent_requests_;
  return out;
}

std::vector<ApprovedTransformation> ConsolidationService::ApprovedLog() const {
  return broker_.ApprovedLog();
}

void ConsolidationService::Pump() {
  if (paused_) return;
  size_t pending = 0;
  for (const Request* request : active_) {
    // >= guards the subtraction: a finalizing request drops its working
    // copies before leaving active_ (both under mutex_, but belt and
    // braces against any future reordering — an underflow here would ask
    // for ~2^64 jobs).
    if (request->dispatched >= request->columns.size()) continue;
    pending += request->columns.size() - request->dispatched;
  }
  while (running_jobs_ < workers_ && pending > 0) {
    ++running_jobs_;
    --pending;
    pool_->Submit([this] { RunJobs(); });
  }
}

bool ConsolidationService::PickJob(Request** request, size_t* column) {
  // Fairness aging: one grant per cycle is no guarantee when continuous
  // fresh arrivals keep the cycle from ever closing — each newcomer is
  // hungry in the *current* cycle, so a huge table that already took its
  // grant can wait unboundedly for cycle_ to advance. A request passed
  // over for aging_grant_threshold consecutive grants takes the next slot
  // out of turn (oldest grant first, arrival breaking ties).
  if (options_.aging_grant_threshold > 0) {
    Request* starved = nullptr;
    for (Request* candidate : active_) {
      if (candidate->dispatched >= candidate->columns.size()) continue;
      if (grant_seq_ - candidate->last_grant_seq <
          options_.aging_grant_threshold) {
        continue;
      }
      if (starved == nullptr ||
          candidate->last_grant_seq < starved->last_grant_seq ||
          (candidate->last_grant_seq == starved->last_grant_seq &&
           candidate->arrival < starved->arrival)) {
        starved = candidate;
      }
    }
    if (starved != nullptr) {
      aged_grants_->Increment();
      starved->granted_cycle = cycle_;
      starved->last_grant_seq = ++grant_seq_;
      *request = starved;
      *column = starved->dispatched++;
      return true;
    }
  }
  // Weighted round-robin (see the file comment): one column per request
  // per cycle, requests within a cycle ordered fewest-remaining-first
  // with arrival breaking ties.
  for (;;) {
    Request* pick = nullptr;
    bool any_undispatched = false;
    for (Request* candidate : active_) {
      if (candidate->dispatched >= candidate->columns.size()) continue;
      any_undispatched = true;
      if (candidate->granted_cycle >= cycle_) continue;  // served this cycle
      if (pick == nullptr) {
        pick = candidate;
        continue;
      }
      const size_t candidate_left =
          candidate->columns.size() - candidate->dispatched;
      const size_t pick_left = pick->columns.size() - pick->dispatched;
      if (candidate_left < pick_left ||
          (candidate_left == pick_left &&
           candidate->arrival < pick->arrival)) {
        pick = candidate;
      }
    }
    if (pick == nullptr) {
      if (!any_undispatched) return false;
      ++cycle_;  // every hungry request was served this cycle; next round
      continue;
    }
    pick->granted_cycle = cycle_;
    pick->last_grant_seq = ++grant_seq_;
    *request = pick;
    *column = pick->dispatched++;
    return true;
  }
}

void ConsolidationService::RunJobs() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Request* request = nullptr;
    size_t column = 0;
    if (paused_ || !PickJob(&request, &column)) break;
    columns_dispatched_->Increment();
    // Take a budget-remainder boost token when one is free (returned
    // below), so the whole --threads budget reaches the engines even
    // when it does not divide evenly across the workers.
    const bool boosted = boost_tokens_ > 0;
    if (boosted) --boost_tokens_;
    lock.unlock();
    ExecuteColumn(request, column, per_job_threads_ + (boosted ? 1 : 0));
    if (boosted) {
      std::lock_guard<std::mutex> boost_lock(mutex_);
      ++boost_tokens_;
    }

    // Fold the column's grouping work into the registry counters (the
    // engines themselves stay registry-free). Zeros for a cancelled
    // column whose result was never written.
    {
      const IncrementalStats& grouping = request->results[column].grouping;
      grouping_searches_->Increment(grouping.searches);
      grouping_expansions_->Increment(grouping.expansions);
      grouping_cache_hits_->Increment(grouping.cache_hits);
      grouping_warm_hits_->Increment(grouping.warm_hits);
      grouping_speculative_searches_->Increment(grouping.speculative_searches);
      index_blocks_skipped_->Increment(grouping.blocks_skipped);
      index_blocks_decoded_->Increment(grouping.blocks_decoded);
      index_joins_pruned_->Increment(grouping.joins_pruned);
    }

    // Emit before publishing completion: as long as this column is not
    // counted done, no other worker can finalize the request, so the
    // request cannot be erased by a concurrent Wait under our feet.
    if (request->on_event) {
      const ColumnRunResult& result = request->results[column];
      ServeEvent event;
      event.kind = ServeEvent::Kind::kColumnDone;
      event.column = request->table->column_names()[column];
      event.column_index = column;
      event.groups_presented = result.groups_presented;
      event.groups_approved = result.groups_approved;
      event.edits = result.edits;
      Emit(*request, std::move(event));
    }

    lock.lock();
    ++request->completed;
    const bool last_column = request->completed == request->columns.size();
    lock.unlock();
    // completed == columns implies dispatched == columns, so exactly one
    // worker — the one finishing the last column — finalizes.
    if (last_column) FinalizeRequest(request);
    lock.lock();
  }
  --running_jobs_;
  idle_cv_.notify_all();
}

void ConsolidationService::ExecuteColumn(Request* request, size_t column,
                                         int grouping_threads) {
  try {
    CancelToken token(&request->cancel);
    // A cancelled / expired request's remaining columns are no-ops: the
    // job still runs (completion accounting needs it) but does no work,
    // which is what bounds cancel latency to the in-flight columns'
    // checkpoint distance.
    token.Check();
    FrameworkOptions framework = request->framework;
    framework.cancel = token;
    framework.request_id = request->id;
    framework.column_name = request->table->column_names()[column];
    framework.grouping.num_threads = grouping_threads;
    framework.grouping.shared_search_cache =
        options_.share_search_cache ? &search_cache_ : nullptr;
    if (framework.progress_callback != nullptr && workers_ > 1) {
      auto callback = request->framework.progress_callback;
      framework.progress_callback = [this, callback](size_t presented,
                                                     const Column& state) {
        std::lock_guard<std::mutex> lock(progress_mutex_);
        callback(presented, state);
      };
    }
    // Column span under the request root; everything the framework and
    // the layers below it open nests under this span's id (inert — id
    // 0 — for an untraced request).
    ScopedSpan column_span(request->trace.get(), request->root_span, "column",
                           framework.column_name);
    framework.trace = request->trace.get();
    framework.trace_parent = column_span.id();
    ServeEventOracle oracle(this, request, column);
    const Timer column_timer;
    request->results[column] =
        StandardizeColumn(&request->columns[column], &oracle, framework);
    column_duration_us_->Observe(column_timer.ElapsedMicros());
  } catch (const CancelledError&) {
    // The expected unwind of a cancelled / past-deadline request: not an
    // error. The terminal status lives in request->cancel; the finalize
    // path turns it into the typed result and commits nothing.
  } catch (...) {
    // First failure wins; the request still drains (remaining columns run
    // and the broker stays usable) and Wait rethrows.
    std::lock_guard<std::mutex> lock(mutex_);
    if (request->error == nullptr) request->error = std::current_exception();
  }
}

void ConsolidationService::FinalizeRequest(Request* request) {
  // Poll (not a raw read) so a deadline that expired without any
  // checkpoint observing it still latches here — the status a client
  // sees is decided once, at finalize.
  const RequestStatus status = request->cancel.Poll();
  request->status =
      request->error != nullptr ? RequestStatus::kError : status;
  if (request->error == nullptr && status == RequestStatus::kOk) {
    // The only mutation of the caller's table, in column index order —
    // same commit discipline as the pipeline. A cancelled / expired
    // request skips this: its table stays exactly as submitted.
    ScopedSpan fuse_span(request->trace.get(), request->root_span, "fuse");
    for (size_t col = 0; col < request->columns.size(); ++col) {
      request->table->StoreColumn(col, request->columns[col]);
    }
    request->result.per_column = std::move(request->results);
    request->result.golden_records = MajorityConsensus(*request->table);
    fuse_span.AddAttr(
        "golden_records",
        static_cast<int64_t>(request->result.golden_records.size()));
  }
  if (request->status == RequestStatus::kCancelled ||
      request->status == RequestStatus::kDeadlineExceeded) {
    ServeEvent cancelled;
    cancelled.kind = ServeEvent::Kind::kCancelled;
    cancelled.status = request->status;
    Emit(*request, std::move(cancelled));
  }

  ServeEvent event;
  event.kind = ServeEvent::Kind::kRequestDone;
  event.status = request->status;
  for (const ColumnRunResult& result : request->result.per_column) {
    event.groups_presented += result.groups_presented;
    event.groups_approved += result.groups_approved;
    event.edits += result.edits;
  }
  // Emit before `done` is published: once done is observable, a waiting
  // thread may erase the request.
  Emit(*request, std::move(event));

  request_duration_us_->Observe(MicrosSince(request->submit_time));
  if (request->trace != nullptr) {
    // The root span, emitted last with its reserved id 1 and the full
    // [submit, finalize] interval; children were emitted as they closed.
    TraceSpan root;
    root.request_id = request->trace->request_id();
    root.id = request->root_span;
    root.parent = 0;
    root.name = "request";
    root.detail = request->label;
    root.start_us = DurationMicros(epoch_, request->submit_time);
    root.end_us = request->trace->NowMicros();
    root.attrs.emplace_back("status", static_cast<int64_t>(request->status));
    request->trace->sink()->Emit(root);
  }

  // A request that ends badly dumps the ring while it is still in
  // active_, so the dump's per-request progress includes the culprit.
  // mutex_ is NOT held here (FireFlightDump takes it).
  if (recorder_ != nullptr &&
      (request->status == RequestStatus::kDeadlineExceeded ||
       request->status == RequestStatus::kError)) {
    FireFlightDump(request->status == RequestStatus::kError
                       ? "error"
                       : "deadline_exceeded");
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The working copies are committed (or abandoned on error); drop them
    // now instead of pinning a full table until Wait collects the handle.
    // Released under mutex_, NOT earlier: this request is still in
    // active_, and PickJob/Pump distinguish "fully dispatched" from
    // "hungry" by comparing dispatched against columns.size() — shrinking
    // columns outside the lock made a finalizing request look like it had
    // undispatched work, handing a worker an out-of-range column index.
    request->columns.clear();
    request->columns.shrink_to_fit();
    request->results.clear();
    request->results.shrink_to_fit();
    request->done = true;
    completion_order_.push_back(request->id);
    requests_completed_->Increment();
    if (request->status == RequestStatus::kCancelled) {
      requests_cancelled_->Increment();
    }
    if (request->status == RequestStatus::kDeadlineExceeded) {
      requests_deadline_exceeded_->Increment();
    }
    active_.erase(std::find(active_.begin(), active_.end(), request));
    if (!request->waiting) {
      retained_.push_back(request->id);
      ReapRetained();
    }
    done_cv_.notify_all();
    admission_cv_.notify_all();
    // A zero-column request finalizes on the Submit thread with no worker
    // exit to signal idleness — a draining Shutdown must still wake.
    idle_cv_.notify_all();
  }
  MaybeCompact();
}

void ConsolidationService::MaybeCompact() {
  if (persist_ == nullptr || !persist_->ShouldCompact()) return;
  // Export (broker mutex) then write (persist mutex + fsync), with
  // mutex_ NOT held: dispatch keeps flowing while the snapshot lands.
  // Concurrent finalizes may both compact; the writes just serialize.
  (void)persist_->WriteSnapshot(broker_.ExportDurableState());
}

void ConsolidationService::ReapRetained() {
  if (options_.max_retained_results == 0) return;
  while (retained_.size() > options_.max_retained_results) {
    const uint64_t victim = retained_.front();
    retained_.pop_front();
    auto it = requests_.find(victim);
    if (it == requests_.end()) continue;  // collected by Wait meanwhile
    Request* request = it->second.get();
    if (request->waiting) continue;  // a Wait arrived; let it collect
    request->result = RequestResult{};
    request->error = nullptr;
    request->status = RequestStatus::kReaped;
    request->reaped = true;
    handles_reaped_->Increment();
  }
}

void ConsolidationService::Emit(Request& request, ServeEvent event) {
  if (!request.on_event) return;
  event.request = request.id;
  event.label = request.label;
  std::lock_guard<std::mutex> lock(event_mutex_);
  // Sequence numbers are per request and assigned at emission under the
  // event lock, so the stream a consumer sees is totally ordered even
  // when the request's column jobs emit concurrently. The timestamp is
  // service-relative (monotonic, no wall clock). Both are scheduling-
  // dependent: determinism comparisons exclude them.
  event.seq = ++request.next_event_seq;
  event.ts_us = MicrosSince(epoch_);
  request.on_event(event);
}

void ConsolidationService::EmitForRequestId(uint64_t id, ServeEvent event) {
  if (id == 0) return;
  Request* request = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = requests_.find(id);
    if (it == requests_.end()) return;
    request = it->second.get();
  }
  // Safe outside the lock: the attributed request is blocked inside the
  // broker on the very question being retried, so it cannot finalize (and
  // be erased by Wait) while we emit.
  Emit(*request, std::move(event));
}

size_t ConsolidationService::CheckStalls() {
  if (recorder_ == nullptr || options_.stall_threshold_ms <= 0) return 0;
  const int64_t threshold_us = options_.stall_threshold_ms * 1000;
  size_t stalled = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Request* request : active_) {
      if (request->stall_dumped) continue;
      if (MicrosSince(request->submit_time) < threshold_us) continue;
      // Latched: a request that keeps stalling dumps once, not once per
      // watchdog tick. The flag lives on the request, so a later NEW
      // stalled request still triggers a fresh dump.
      request->stall_dumped = true;
      ++stalled;
    }
  }
  // One dump covers every request that crossed the threshold this tick —
  // the ring and the progress table already describe all of them.
  if (stalled > 0) FireFlightDump("stall");
  return stalled;
}

void ConsolidationService::FireFlightDump(const char* reason) {
  if (recorder_ == nullptr) return;
  // Subsystem stats first, each under its own lock, with mutex_ NOT held
  // (broker stats + persist stats take their own mutexes; taking them
  // under mutex_ would order locks against the dispatch path).
  const OracleBrokerStats broker = broker_.stats();
  uint64_t retries = 0;
  uint64_t short_circuits = 0;
  bool breaker_open = false;
  if (retrying_ != nullptr) {
    const RetryingOracleStats retry = retrying_->stats();
    retries = retry.retries;
    short_circuits = retry.short_circuits;
    breaker_open = retrying_->breaker_open();
  }
  PersistStats persist;
  if (persist_ != nullptr) persist = persist_->stats();

  // Progress table under mutex_: where every admitted-but-unfinished
  // request is stuck (columns dispatched vs done, how long it has been
  // in flight). This is the part a post-mortem cannot reconstruct from
  // the span ring alone.
  std::string context = "{\"requests\": [";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const Request* request : active_) {
      if (!first) context += ", ";
      first = false;
      context += "{\"id\": " + std::to_string(request->id) + ", \"label\": ";
      AppendJsonEscaped(&context, request->label);
      context += ", \"columns\": " + std::to_string(request->columns.size()) +
                 ", \"dispatched\": " + std::to_string(request->dispatched) +
                 ", \"completed\": " + std::to_string(request->completed) +
                 ", \"age_us\": " +
                 std::to_string(MicrosSince(request->submit_time)) + "}";
    }
  }
  // Zeros when a subsystem is absent: the dump schema is stable, so
  // check_trace.py validates one shape regardless of configuration.
  context += "], \"broker\": {\"pending\": " + std::to_string(broker.pending) +
             ", \"questions\": " + std::to_string(broker.questions) +
             ", \"backend_calls\": " + std::to_string(broker.backend_calls) +
             ", \"cache_hits\": " + std::to_string(broker.cache_hits) +
             "}, \"retry\": {\"breaker_open\": " +
             (breaker_open ? std::string("true") : std::string("false")) +
             ", \"retries\": " + std::to_string(retries) +
             ", \"short_circuits\": " + std::to_string(short_circuits) +
             "}, \"persist\": {\"wal_appends\": " +
             std::to_string(persist.wal_appends) +
             ", \"fsyncs\": " + std::to_string(persist.fsyncs) +
             ", \"snapshot_writes\": " + std::to_string(persist.snapshot_writes) +
             "}}";

  const std::string dump =
      recorder_->DumpJson(reason, MicrosSince(epoch_), context);
  flight_dumps_->Increment();
  if (options_.flight_dump_sink) options_.flight_dump_sink(dump);
}

RetryingOracle::Options ConsolidationService::WireRetryOptions() {
  RetryingOracle::Options retry = options_.retry;
  auto user_retry = retry.on_retry;
  retry.on_retry = [this, user_retry](uint64_t id, int attempt) {
    ServeEvent event;
    event.kind = ServeEvent::Kind::kRetried;
    event.attempt = attempt;
    EmitForRequestId(id, std::move(event));
    if (user_retry) user_retry(id, attempt);
  };
  auto user_breaker = retry.on_breaker;
  retry.on_breaker = [this, user_breaker](uint64_t id, bool open) {
    ServeEvent event;
    event.kind = ServeEvent::Kind::kBreakerOpen;
    event.status = open ? RequestStatus::kError : RequestStatus::kOk;
    EmitForRequestId(id, std::move(event));
    if (user_breaker) user_breaker(id, open);
  };
  return retry;
}

}  // namespace ustl

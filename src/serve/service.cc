#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "consolidate/truth_discovery.h"

namespace ustl {

// Per-column-job oracle shim: forwards every question to the service's
// shared broker, then streams the verdict as an event. One instance per
// job, so the request/column attribution needs no lookup.
class ServeEventOracle : public VerificationOracle {
 public:
  ServeEventOracle(ConsolidationService* service,
                   ConsolidationService::Request* request, size_t column)
      : service_(service), request_(request), column_(column) {}

  Verdict Verify(const std::vector<StringPair>& group_pairs) override {
    return VerifyWithContext(group_pairs, QuestionContext{});
  }

  Verdict VerifyWithContext(const std::vector<StringPair>& group_pairs,
                            const QuestionContext& context) override {
    Verdict verdict = service_->broker_.VerifyWithContext(group_pairs, context);
    // This runs once per presented group — the pipeline's hot path now
    // that it delegates here — so skip event construction (two string
    // copies) outright for the common listener-less request.
    if (!request_->on_event) return verdict;
    ServeEvent event;
    event.kind = ServeEvent::Kind::kVerdict;
    event.column = request_->table->column_names()[column_];
    event.column_index = column_;
    event.presented = context.presented;
    event.group_size = group_pairs.size();
    event.approved = verdict.approved;
    event.direction = verdict.direction;
    event.program = std::string(context.program);
    service_->Emit(*request_, std::move(event));
    return verdict;
  }

 private:
  ConsolidationService* service_;
  ConsolidationService::Request* request_;
  size_t column_;
};

ConsolidationService::ConsolidationService(VerificationOracle* backend,
                                           ServiceOptions options)
    : backend_(backend),
      options_(std::move(options)),
      budget_(ResolveThreadCount(options_.num_threads)),
      workers_(options_.max_concurrent_jobs > 0
                   ? std::min(budget_, options_.max_concurrent_jobs)
                   : budget_),
      per_job_threads_(std::max(1, budget_ / workers_)),
      retrying_(options_.enable_retry
                    ? std::make_unique<RetryingOracle>(backend_,
                                                       WireRetryOptions())
                    : nullptr),
      broker_(retrying_ != nullptr
                  ? static_cast<VerificationOracle*>(retrying_.get())
                  : backend_,
              options_.broker),
      search_cache_(options_.search_cache),
      pool_(std::make_unique<ThreadPool>(workers_ + 1)) {
  USTL_CHECK(backend_ != nullptr);
  USTL_CHECK(options_.max_pending_requests > 0);
  paused_ = options_.start_paused;
  boost_tokens_ = budget_ % workers_;
}

ConsolidationService::~ConsolidationService() {
  std::unique_lock<std::mutex> lock(mutex_);
  paused_ = false;
  Pump();
  idle_cv_.wait(lock, [&] { return active_.empty() && running_jobs_ == 0; });
  // pool_ (declared last) is destroyed first, joining the — now idle —
  // workers before any other member goes away.
}

uint64_t ConsolidationService::Submit(Table* table, RequestOptions options) {
  USTL_CHECK(table != nullptr);
  auto owned = std::make_unique<Request>();
  Request* request = owned.get();
  request->table = table;
  request->framework =
      options.framework.has_value() ? *options.framework : options_.framework;
  request->on_event = std::move(options.on_event);
  // Armed before admission, so the deadline covers backlog queueing time
  // — the client-facing latency bound, not a processing-time bound.
  request->cancel.SetDeadlineMs(options.deadline_ms);
  const size_t num_columns = table->num_columns();
  request->columns.resize(num_columns);
  request->results.resize(num_columns);
  // Extracted before admission so a blocked Submit holds no lock while
  // copying a large table.
  for (size_t col = 0; col < num_columns; ++col) {
    request->columns[col] = table->ExtractColumn(col);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // admitting_ reserves this request's backlog slot across the unlock
    // below, so concurrent Submits cannot all pass the check before any
    // of them is counted — the bound holds under contention.
    admission_cv_.wait(lock, [&] {
      return active_.size() + admitting_ < options_.max_pending_requests;
    });
    ++admitting_;
    request->id = next_id_++;
    request->arrival = next_arrival_++;
    request->label = options.label.empty()
                         ? "request-" + std::to_string(request->id)
                         : std::move(options.label);
    request->last_grant_seq = grant_seq_;  // aging clock starts at admission
    requests_.emplace(request->id, std::move(owned));
    ++requests_admitted_;
  }

  // Emitted before the request enters active_, so its event stream is
  // guaranteed to open with kAdmitted — a worker cannot pick (and emit
  // verdicts for) a request the consumer has not seen admitted. Emit
  // never runs under mutex_, so a callback may read service state
  // (stats(), CompletionOrder()); it still must not Submit/Wait (see
  // RequestOptions::on_event).
  ServeEvent event;
  event.kind = ServeEvent::Kind::kAdmitted;
  Emit(*request, std::move(event));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    --admitting_;
    active_.push_back(request);
    max_concurrent_requests_ =
        std::max(max_concurrent_requests_, active_.size());
    Pump();
  }
  // A zero-column table has no jobs for the workers to complete it with;
  // finalize inline (FinalizeRequest expects the request in active_).
  if (num_columns == 0) FinalizeRequest(request);
  return request->id;
}

RequestResult ConsolidationService::Wait(uint64_t handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = requests_.find(handle);
  USTL_CHECK(it != requests_.end());
  Request* request = it->second.get();
  request->waiting = true;  // pins the handle against the GC
  done_cv_.wait(lock, [&] { return request->done; });
  std::exception_ptr error = request->error;
  RequestResult result = std::move(request->result);
  result.status = request->status;
  auto retained = std::find(retained_.begin(), retained_.end(), handle);
  if (retained != retained_.end()) retained_.erase(retained);
  requests_.erase(it);
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
  return result;
}

void ConsolidationService::Cancel(uint64_t handle) {
  // Trips the shared state only; workers observe it at their next
  // checkpoint and the finalize path turns it into a typed status. Takes
  // mutex_ but never event_mutex_, so calling from an on_event callback
  // cannot self-deadlock.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = requests_.find(handle);
  if (it == requests_.end() || it->second->done) return;
  it->second->cancel.Cancel(RequestStatus::kCancelled);
}

void ConsolidationService::Resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  Pump();
}

std::vector<uint64_t> ConsolidationService::CompletionOrder() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completion_order_;
}

ServiceStats ConsolidationService::stats() const {
  ServiceStats out;
  out.oracle = broker_.stats();
  out.search_cache = search_cache_.stats();
  if (retrying_ != nullptr) out.retry = retrying_->stats();
  std::lock_guard<std::mutex> lock(mutex_);
  out.requests_admitted = requests_admitted_;
  out.requests_completed = requests_completed_;
  out.columns_dispatched = columns_dispatched_;
  out.max_concurrent_requests = max_concurrent_requests_;
  out.requests_cancelled = requests_cancelled_;
  out.requests_deadline_exceeded = requests_deadline_exceeded_;
  out.aged_grants = aged_grants_;
  out.handles_reaped = handles_reaped_;
  return out;
}

std::vector<ApprovedTransformation> ConsolidationService::ApprovedLog() const {
  return broker_.ApprovedLog();
}

void ConsolidationService::Pump() {
  if (paused_) return;
  size_t pending = 0;
  for (const Request* request : active_) {
    pending += request->columns.size() - request->dispatched;
  }
  while (running_jobs_ < workers_ && pending > 0) {
    ++running_jobs_;
    --pending;
    pool_->Submit([this] { RunJobs(); });
  }
}

bool ConsolidationService::PickJob(Request** request, size_t* column) {
  // Fairness aging: one grant per cycle is no guarantee when continuous
  // fresh arrivals keep the cycle from ever closing — each newcomer is
  // hungry in the *current* cycle, so a huge table that already took its
  // grant can wait unboundedly for cycle_ to advance. A request passed
  // over for aging_grant_threshold consecutive grants takes the next slot
  // out of turn (oldest grant first, arrival breaking ties).
  if (options_.aging_grant_threshold > 0) {
    Request* starved = nullptr;
    for (Request* candidate : active_) {
      if (candidate->dispatched == candidate->columns.size()) continue;
      if (grant_seq_ - candidate->last_grant_seq <
          options_.aging_grant_threshold) {
        continue;
      }
      if (starved == nullptr ||
          candidate->last_grant_seq < starved->last_grant_seq ||
          (candidate->last_grant_seq == starved->last_grant_seq &&
           candidate->arrival < starved->arrival)) {
        starved = candidate;
      }
    }
    if (starved != nullptr) {
      ++aged_grants_;
      starved->granted_cycle = cycle_;
      starved->last_grant_seq = ++grant_seq_;
      *request = starved;
      *column = starved->dispatched++;
      return true;
    }
  }
  // Weighted round-robin (see the file comment): one column per request
  // per cycle, requests within a cycle ordered fewest-remaining-first
  // with arrival breaking ties.
  for (;;) {
    Request* pick = nullptr;
    bool any_undispatched = false;
    for (Request* candidate : active_) {
      if (candidate->dispatched == candidate->columns.size()) continue;
      any_undispatched = true;
      if (candidate->granted_cycle >= cycle_) continue;  // served this cycle
      if (pick == nullptr) {
        pick = candidate;
        continue;
      }
      const size_t candidate_left =
          candidate->columns.size() - candidate->dispatched;
      const size_t pick_left = pick->columns.size() - pick->dispatched;
      if (candidate_left < pick_left ||
          (candidate_left == pick_left &&
           candidate->arrival < pick->arrival)) {
        pick = candidate;
      }
    }
    if (pick == nullptr) {
      if (!any_undispatched) return false;
      ++cycle_;  // every hungry request was served this cycle; next round
      continue;
    }
    pick->granted_cycle = cycle_;
    pick->last_grant_seq = ++grant_seq_;
    *request = pick;
    *column = pick->dispatched++;
    return true;
  }
}

void ConsolidationService::RunJobs() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Request* request = nullptr;
    size_t column = 0;
    if (paused_ || !PickJob(&request, &column)) break;
    ++columns_dispatched_;
    // Take a budget-remainder boost token when one is free (returned
    // below), so the whole --threads budget reaches the engines even
    // when it does not divide evenly across the workers.
    const bool boosted = boost_tokens_ > 0;
    if (boosted) --boost_tokens_;
    lock.unlock();
    ExecuteColumn(request, column, per_job_threads_ + (boosted ? 1 : 0));
    if (boosted) {
      std::lock_guard<std::mutex> boost_lock(mutex_);
      ++boost_tokens_;
    }

    // Emit before publishing completion: as long as this column is not
    // counted done, no other worker can finalize the request, so the
    // request cannot be erased by a concurrent Wait under our feet.
    if (request->on_event) {
      const ColumnRunResult& result = request->results[column];
      ServeEvent event;
      event.kind = ServeEvent::Kind::kColumnDone;
      event.column = request->table->column_names()[column];
      event.column_index = column;
      event.groups_presented = result.groups_presented;
      event.groups_approved = result.groups_approved;
      event.edits = result.edits;
      Emit(*request, std::move(event));
    }

    lock.lock();
    ++request->completed;
    const bool last_column = request->completed == request->columns.size();
    lock.unlock();
    // completed == columns implies dispatched == columns, so exactly one
    // worker — the one finishing the last column — finalizes.
    if (last_column) FinalizeRequest(request);
    lock.lock();
  }
  --running_jobs_;
  idle_cv_.notify_all();
}

void ConsolidationService::ExecuteColumn(Request* request, size_t column,
                                         int grouping_threads) {
  try {
    CancelToken token(&request->cancel);
    // A cancelled / expired request's remaining columns are no-ops: the
    // job still runs (completion accounting needs it) but does no work,
    // which is what bounds cancel latency to the in-flight columns'
    // checkpoint distance.
    token.Check();
    FrameworkOptions framework = request->framework;
    framework.cancel = token;
    framework.request_id = request->id;
    framework.column_name = request->table->column_names()[column];
    framework.grouping.num_threads = grouping_threads;
    framework.grouping.shared_search_cache =
        options_.share_search_cache ? &search_cache_ : nullptr;
    if (framework.progress_callback != nullptr && workers_ > 1) {
      auto callback = request->framework.progress_callback;
      framework.progress_callback = [this, callback](size_t presented,
                                                     const Column& state) {
        std::lock_guard<std::mutex> lock(progress_mutex_);
        callback(presented, state);
      };
    }
    ServeEventOracle oracle(this, request, column);
    request->results[column] =
        StandardizeColumn(&request->columns[column], &oracle, framework);
  } catch (const CancelledError&) {
    // The expected unwind of a cancelled / past-deadline request: not an
    // error. The terminal status lives in request->cancel; the finalize
    // path turns it into the typed result and commits nothing.
  } catch (...) {
    // First failure wins; the request still drains (remaining columns run
    // and the broker stays usable) and Wait rethrows.
    std::lock_guard<std::mutex> lock(mutex_);
    if (request->error == nullptr) request->error = std::current_exception();
  }
}

void ConsolidationService::FinalizeRequest(Request* request) {
  // Poll (not a raw read) so a deadline that expired without any
  // checkpoint observing it still latches here — the status a client
  // sees is decided once, at finalize.
  const RequestStatus status = request->cancel.Poll();
  request->status =
      request->error != nullptr ? RequestStatus::kError : status;
  if (request->error == nullptr && status == RequestStatus::kOk) {
    // The only mutation of the caller's table, in column index order —
    // same commit discipline as the pipeline. A cancelled / expired
    // request skips this: its table stays exactly as submitted.
    for (size_t col = 0; col < request->columns.size(); ++col) {
      request->table->StoreColumn(col, request->columns[col]);
    }
    request->result.per_column = std::move(request->results);
    request->result.golden_records = MajorityConsensus(*request->table);
  }
  // The working copies are committed (or abandoned on error); drop them
  // now instead of pinning a full table until Wait collects the handle.
  request->columns.clear();
  request->columns.shrink_to_fit();
  request->results.clear();
  request->results.shrink_to_fit();

  if (request->status == RequestStatus::kCancelled ||
      request->status == RequestStatus::kDeadlineExceeded) {
    ServeEvent cancelled;
    cancelled.kind = ServeEvent::Kind::kCancelled;
    cancelled.status = request->status;
    Emit(*request, std::move(cancelled));
  }

  ServeEvent event;
  event.kind = ServeEvent::Kind::kRequestDone;
  event.status = request->status;
  for (const ColumnRunResult& result : request->result.per_column) {
    event.groups_presented += result.groups_presented;
    event.groups_approved += result.groups_approved;
    event.edits += result.edits;
  }
  // Emit before `done` is published: once done is observable, a waiting
  // thread may erase the request.
  Emit(*request, std::move(event));

  std::lock_guard<std::mutex> lock(mutex_);
  request->done = true;
  completion_order_.push_back(request->id);
  ++requests_completed_;
  if (request->status == RequestStatus::kCancelled) ++requests_cancelled_;
  if (request->status == RequestStatus::kDeadlineExceeded) {
    ++requests_deadline_exceeded_;
  }
  active_.erase(std::find(active_.begin(), active_.end(), request));
  if (!request->waiting) {
    retained_.push_back(request->id);
    ReapRetained();
  }
  done_cv_.notify_all();
  admission_cv_.notify_all();
}

void ConsolidationService::ReapRetained() {
  if (options_.max_retained_results == 0) return;
  while (retained_.size() > options_.max_retained_results) {
    const uint64_t victim = retained_.front();
    retained_.pop_front();
    auto it = requests_.find(victim);
    if (it == requests_.end()) continue;  // collected by Wait meanwhile
    Request* request = it->second.get();
    if (request->waiting) continue;  // a Wait arrived; let it collect
    request->result = RequestResult{};
    request->error = nullptr;
    request->status = RequestStatus::kReaped;
    request->reaped = true;
    ++handles_reaped_;
  }
}

void ConsolidationService::Emit(const Request& request, ServeEvent event) {
  if (!request.on_event) return;
  event.request = request.id;
  event.label = request.label;
  std::lock_guard<std::mutex> lock(event_mutex_);
  request.on_event(event);
}

void ConsolidationService::EmitForRequestId(uint64_t id, ServeEvent event) {
  if (id == 0) return;
  Request* request = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = requests_.find(id);
    if (it == requests_.end()) return;
    request = it->second.get();
  }
  // Safe outside the lock: the attributed request is blocked inside the
  // broker on the very question being retried, so it cannot finalize (and
  // be erased by Wait) while we emit.
  Emit(*request, std::move(event));
}

RetryingOracle::Options ConsolidationService::WireRetryOptions() {
  RetryingOracle::Options retry = options_.retry;
  auto user_retry = retry.on_retry;
  retry.on_retry = [this, user_retry](uint64_t id, int attempt) {
    ServeEvent event;
    event.kind = ServeEvent::Kind::kRetried;
    event.attempt = attempt;
    EmitForRequestId(id, std::move(event));
    if (user_retry) user_retry(id, attempt);
  };
  auto user_breaker = retry.on_breaker;
  retry.on_breaker = [this, user_breaker](uint64_t id, bool open) {
    ServeEvent event;
    event.kind = ServeEvent::Kind::kBreakerOpen;
    event.status = open ? RequestStatus::kError : RequestStatus::kOk;
    EmitForRequestId(id, std::move(event));
    if (user_breaker) user_breaker(id, open);
  };
  return retry;
}

}  // namespace ustl

// The long-lived consolidation service (ROADMAP "Multi-table serving").
// The pipeline's ColumnScheduler standardizes one table per Run call and
// throws its warm state away afterwards; a serving deployment faces a
// *stream* of independent tables and wants the opposite: one ThreadPool,
// one OracleBroker (verdict cache + replay log persisting across
// requests) and one cross-engine SearchResultCache, alive for the
// process lifetime, with concurrent tables admitted fairly and verdicts
// streamed back per request — the shape long-lived query engines use to
// amortize index and cache warmth over independent queries.
//
// Fairness. Admitted requests are served by a weighted round-robin over
// their column jobs: each cycle grants every active request one column,
// requests within a cycle ordered by fewest remaining columns first
// (arrival order breaks ties). A small table therefore drains within one
// cycle of arriving — a huge table ahead of it in the queue cannot
// starve it — while the huge table keeps receiving every slot nobody
// smaller needs. Admission itself is bounded (ServiceOptions::
// max_pending_requests): Submit blocks until the backlog drains, the
// standard back-pressure contract.
//
// Determinism contract. Per-table output is byte-identical to a serial
// single-table run for ANY thread count, admission interleaving and
// cache state. The ingredients are the ones the pipeline established:
// column jobs touch only their own column and commit in index order;
// verdicts are pure functions of question content (oracle
// order-independence contract), so the shared broker cache — and its LRU
// evictions — change only how often the backend is asked; pivot-search
// results are pure functions of engine content, so the shared search
// cache changes only how many searches run. Event *interleaving* across
// concurrent requests is scheduling-dependent; the per-request event
// sequence is not.
#ifndef USTL_SERVE_SERVICE_H_
#define USTL_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/parallel.h"
#include "consolidate/framework.h"
#include "grouping/search_cache.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "persist/durable_state.h"
#include "pipeline/oracle_broker.h"
#include "pipeline/retrying_oracle.h"

namespace ustl {

struct ServiceOptions {
  /// Default per-request framework configuration (budget, grouping
  /// knobs...). `framework.column_name` and `framework.grouping
  /// .num_threads` are overwritten per column job; a non-null
  /// `framework.progress_callback` is serialized exactly like the
  /// pipeline's (never entered concurrently).
  FrameworkOptions framework;
  /// Total thread budget (0 = hardware concurrency): split between the
  /// concurrently running column jobs and their grouping engines, so
  /// nested parallelism never oversubscribes.
  int num_threads = 1;
  /// Cap on column jobs running simultaneously; 0 = the thread budget.
  /// 1 reproduces a strictly serial per-column loop (the pipeline's
  /// column_parallel = false) whatever the budget — each job then gets
  /// the whole budget for its grouping engine.
  int max_concurrent_jobs = 0;
  /// Shared broker configuration. The verdict cache lives as long as the
  /// service, so long-lived deployments should set
  /// `broker.max_cache_entries`.
  OracleBroker::Options broker;
  /// Share one cross-engine pivot-search cache across all requests (see
  /// grouping/search_cache.h): a column whose content repeats an earlier
  /// column's — in this request or any previous one — skips its round-one
  /// searches. Byte-identical on or off.
  bool share_search_cache = true;
  /// Bounds for the shared search cache; like the broker's verdict
  /// cache, a long-lived service should set `search_cache.max_keys` so
  /// a stream of distinct tables cannot grow it without limit.
  SearchResultCache::Options search_cache;
  /// Bound on requests admitted but not yet completed; Submit blocks
  /// while the backlog is at the bound.
  size_t max_pending_requests = 64;
  /// Construct the service with dispatch paused: requests queue up but no
  /// column job starts until Resume(). Lets tests and benches admit a
  /// whole workload atomically so the fairness order is reproducible.
  /// Waiting on a paused service without calling Resume() deadlocks.
  bool start_paused = false;
  /// Front the backend with a RetryingOracle (retry/backoff/circuit
  /// breaker, pipeline/retrying_oracle.h). The service wires the
  /// decorator's observability hooks to kRetried / kBreakerOpen events
  /// and folds its counters into ServiceStats. Off = the backend is
  /// called directly, exactly the pre-retry behavior.
  bool enable_retry = false;
  RetryingOracle::Options retry;
  /// Fairness aging: a request with undispatched columns that has been
  /// passed over for this many consecutive grants receives the next slot
  /// regardless of the round-robin cycle (stats().aged_grants counts
  /// them). Guards against continuous small-table arrivals pinning the
  /// cycle open so a huge table's one-grant-per-cycle never comes around
  /// again. 0 disables aging. Dispatch order only — output bytes are
  /// admission-order-independent either way.
  size_t aging_grant_threshold = 64;
  /// GC of never-waited handles: at most this many completed-but-unwaited
  /// results are retained; past the bound the oldest completed handle is
  /// reaped — its result freed, its Wait() returning a typed kReaped
  /// status. 0 = retain everything (the pre-GC behavior; fine for
  /// short-lived runs, unbounded for a service fronting careless
  /// clients).
  size_t max_retained_results = 0;
  /// Directory for durable warm state (src/persist/): the broker's
  /// verdict cache and approved log are WAL-logged as they grow,
  /// snapshotted on compaction and shutdown, and recovered into the
  /// broker before the service admits its first request. Empty (the
  /// default) = fully volatile, the pre-persistence behavior. Recovery
  /// never changes output bytes — warm state only skips backend calls
  /// (the order-independence contract) — so a restarted service is
  /// byte-identical to a cold one, just cheaper. The constructor throws
  /// std::runtime_error if the directory's state is unreadably corrupt.
  std::string persist_dir;
  /// Fsync policy / compaction thresholds for persist_dir.
  DurableState::Options persist;
  /// Always-on flight recorder (obs/flight_recorder.h): every request —
  /// traced or not — streams its closed spans into a fixed-size ring, so
  /// a stalled / deadline-exceeded / errored request leaves post-hoc
  /// trace evidence with zero pre-arming. Per-span cost is one mutex
  /// acquire + one slot copy (priced by the obs_overhead bench gate).
  bool enable_flight_recorder = true;
  size_t flight_recorder_capacity = 256;
  /// A request active longer than this (milliseconds) is considered
  /// stalled: the next CheckStalls() call fires one flight-recorder dump
  /// for it (latched per request). Also bounds the Shutdown(drain) wait
  /// between dump-free checks: a drain blocked past the threshold dumps
  /// once with reason "drain_timeout". 0 disables stall detection.
  int64_t stall_threshold_ms = 0;
  /// Receives each flight-recorder dump (one JSON object, schema in
  /// obs/flight_recorder.h) — the CLI writes it to --flight-dump, tests
  /// capture it. Null: dumps are counted (ustl_flight_dumps_total) but
  /// dropped. Called outside the service mutex; must be thread-safe.
  std::function<void(const std::string&)> flight_dump_sink;
  /// CPU-attributed profiling (obs/profile.h): fold every closed span
  /// into the per-path inclusive/exclusive wall+CPU table, exposed as
  /// ustl_profile_* gauges and through profiler(). Off by default — the
  /// fold is cheap but not free, and a serving deployment opts in.
  bool enable_profiler = false;
  /// Deterministic head sampling for the per-request trace sink: a
  /// request is traced iff FNV-1a(table content) % trace_sample == 0.
  /// Pure function of request content — the sampled set is identical
  /// across thread counts, codecs and runs, so sampled sweeps stay
  /// byte-identical and replayable. 0 or 1 = trace every request that
  /// supplies a sink. Sampling gates only the request's own sink; the
  /// flight recorder and profiler always see every span.
  uint64_t trace_sample = 0;
};

/// One streamed service event. kVerdict events carry the broker's answer
/// for one presented group; kColumnDone / kRequestDone carry the
/// accumulated counters. kRetried / kBreakerOpen surface the retry
/// decorator's activity (enable_retry); kCancelled is emitted once when a
/// cancelled or deadline-exceeded request finalizes, before its
/// kRequestDone.
struct ServeEvent {
  enum class Kind {
    kAdmitted,
    kVerdict,
    kColumnDone,
    kRequestDone,
    kRetried,
    kCancelled,
    kBreakerOpen
  };
  Kind kind = Kind::kAdmitted;
  uint64_t request = 0;
  std::string label;
  /// Column being standardized (kVerdict / kColumnDone).
  std::string column;
  size_t column_index = 0;
  /// kVerdict: 1-based presentation rank within the column, group size,
  /// verdict and the (possibly empty) pivot program.
  size_t presented = 0;
  size_t group_size = 0;
  bool approved = false;
  ReplaceDirection direction = ReplaceDirection::kLhsToRhs;
  std::string program;
  /// kColumnDone: the column's totals. kRequestDone: the request's.
  size_t groups_presented = 0;
  size_t groups_approved = 0;
  size_t edits = 0;
  /// kRetried: the attempt number that just failed. kBreakerOpen: unused.
  int attempt = 0;
  /// kCancelled / kRequestDone: the request's terminal status.
  /// kBreakerOpen: kOk when the breaker closed again (a successful
  /// half-open probe), kError when it opened.
  RequestStatus status = RequestStatus::kOk;
  /// Ordering/timing a consumer can correlate on: `seq` is the 1-based
  /// monotonic sequence number of this event within its request (assigned
  /// at emission, so it totals the per-request stream even when column
  /// jobs emit concurrently) and `ts_us` is microseconds since service
  /// construction (monotonic clock, no wall time). Both are
  /// scheduling-dependent — determinism comparisons must exclude them
  /// (the byte-compare legs diff table output, never event streams).
  uint64_t seq = 0;
  int64_t ts_us = 0;
};

struct RequestOptions {
  /// Display label for events and logs; defaults to "request-<id>".
  std::string label;
  /// Overrides the service's default framework configuration (e.g. a
  /// per-table budget).
  std::optional<FrameworkOptions> framework;
  /// Streamed events for this request. Invocations are serialized across
  /// the whole service (one event at a time, from any request), so the
  /// callback may touch unsynchronized state; events of concurrent
  /// requests interleave in scheduling order. The callback runs under
  /// the service's event lock: it must NOT call back into the service
  /// (Submit/Wait/Resume would self-deadlock, except Cancel, which is
  /// explicitly event-callback-safe) — hand follow-up work to another
  /// thread instead.
  std::function<void(const ServeEvent&)> on_event;
  /// Wall-clock deadline for this request, armed at admission; 0 = none.
  /// A request past its deadline unwinds at the next cooperative
  /// checkpoint (column loop heads, pivot-search wave boundaries, broker
  /// waits) and finalizes with status kDeadlineExceeded: no column is
  /// committed to the table, shared caches keep only complete entries
  /// published before the trip, and other in-flight requests are
  /// untouched.
  int64_t deadline_ms = 0;
  /// Per-request trace sink (obs/trace.h; borrowed, must outlive the
  /// request). Null (the default) disables tracing at zero cost — no
  /// clock reads, no span ids. Non-null makes the service carry a
  /// TraceContext through every layer of this request: spans for the
  /// request root, admission wait, each column, graph builds, search
  /// waves, oracle batches/calls and the final fuse, plus cache-hit and
  /// retry/breaker events. Observability only — table output is
  /// byte-identical with tracing on or off.
  TraceSink* trace_sink = nullptr;
};

/// What one request produced; the table passed to Submit has been
/// standardized in place by the time Wait returns — unless `status` is
/// not kOk, in which case the table is exactly as submitted (cancelled
/// or expired requests commit nothing) and the vectors are empty.
struct RequestResult {
  RequestStatus status = RequestStatus::kOk;
  std::vector<ColumnRunResult> per_column;
  std::vector<GoldenRecord> golden_records;
};

struct ServiceStats {
  OracleBrokerStats oracle;
  SearchCacheStats search_cache;
  /// Retry decorator counters; all zero unless enable_retry.
  RetryingOracleStats retry;
  size_t requests_admitted = 0;
  size_t requests_completed = 0;
  size_t columns_dispatched = 0;
  /// High-water mark of concurrently admitted (incomplete) requests.
  size_t max_concurrent_requests = 0;
  /// Requests finalized with status kCancelled / kDeadlineExceeded.
  size_t requests_cancelled = 0;
  size_t requests_deadline_exceeded = 0;
  /// Fairness-aging preemptions (grants awarded out of cycle order).
  size_t aged_grants = 0;
  /// Completed-but-unwaited results reclaimed by the handle GC.
  size_t handles_reaped = 0;
  /// Submits rejected with kShuttingDown after drain began.
  size_t requests_rejected = 0;
  /// Durability counters; all zero unless persist_dir is set.
  PersistStats persist;
};

class ConsolidationService {
 public:
  /// `backend` answers every question of every request through the shared
  /// broker; it must outlive the service and satisfy the
  /// order-independence contract (consolidate/oracle.h) — the service
  /// serializes calls into it, so it need not be thread-safe.
  ConsolidationService(VerificationOracle* backend, ServiceOptions options);

  /// Shutdown(true): resumes a paused service, blocks until every
  /// admitted request completed, writes the final snapshot.
  ~ConsolidationService();

  ConsolidationService(const ConsolidationService&) = delete;
  ConsolidationService& operator=(const ConsolidationService&) = delete;

  /// Admits `table` and returns its request handle. The table is
  /// standardized in place; it must stay alive and untouched until Wait
  /// returns (or the service is destroyed). Blocks while the admission
  /// queue is full.
  uint64_t Submit(Table* table, RequestOptions request = {});

  /// Blocks until the request completed and returns its result (each
  /// handle can be waited once). Rethrows the first exception the
  /// request's column jobs surfaced (e.g. a backend failure) — except
  /// cancellation and deadline trips, which return normally with the
  /// typed RequestResult::status instead of throwing. A handle that is
  /// never waited keeps its (post-finalize, working-copies-freed) result
  /// alive until the handle GC reaps it (max_retained_results); waiting
  /// a reaped handle returns immediately with status kReaped.
  RequestResult Wait(uint64_t handle);

  /// Cancels an admitted request: trips its cancel state so in-flight
  /// column jobs unwind at the next cooperative checkpoint and
  /// undispatched columns are skipped, then the request finalizes with
  /// status kCancelled in bounded time. Nothing is committed to its
  /// table; other requests and the shared caches are unaffected. Safe
  /// from any thread, including on_event callbacks; cancelling an
  /// already-completed or unknown handle is a no-op.
  void Cancel(uint64_t handle);

  /// Starts dispatch on a service constructed with start_paused.
  void Resume();

  /// Begins shutdown: admission stops immediately — a Submit that arrives
  /// (or was blocked on a full queue) after this returns a pre-completed
  /// handle whose Wait yields status kShuttingDown — while every already-
  /// admitted request keeps running under its existing deadline and its
  /// Wait completes normally. With `drain` true (the default) the call
  /// blocks until all in-flight requests finalized, then writes the final
  /// snapshot (persist_dir) and syncs the WAL; with false it only flips
  /// admission off and returns (the destructor still drains). Idempotent
  /// and safe from any thread, including a signal-watcher.
  void Shutdown(bool drain = true);

  /// Request handles in completion order — the observable the fairness
  /// policy is judged by.
  std::vector<uint64_t> CompletionOrder() const;

  ServiceStats stats() const;

  /// The shared broker's deduplicated approved-transformation log,
  /// accumulated across every request served so far (replay.h).
  std::vector<ApprovedTransformation> ApprovedLog() const;

  /// The service's unified metrics registry (obs/metrics.h): the single
  /// source the text/JSON scrapes read. Lifecycle counters and latency
  /// histograms are registry-native; the broker / search-cache / retry
  /// stats structs surface through snapshot-time collectors. Metrics are
  /// write-only from the serving layers — nothing in scheduling or
  /// caching ever reads them back (zero perturbation).
  MetricsRegistry& metrics() { return metrics_; }

  /// Resolved number of concurrently running column jobs.
  int workers() const { return workers_; }

  /// The CPU profiler (null unless ServiceOptions::enable_profiler).
  /// Read-only consumers: the CLI's --profile-out dump and tests.
  ProfileAccumulator* profiler() const { return profiler_.get(); }

  /// The always-on flight recorder (null when disabled).
  FlightRecorder* flight_recorder() const { return recorder_.get(); }

  /// Stall watchdog hook: scans admitted requests and fires one
  /// flight-recorder dump (reason "stall", latched per request) for each
  /// that has been active longer than stall_threshold_ms. The CLI's
  /// shutdown-watcher thread polls this; tests call it directly. Returns
  /// the number of dumps fired. No-op (0) when the recorder is disabled
  /// or the threshold is 0.
  size_t CheckStalls();

 private:
  struct Request {
    uint64_t id = 0;
    std::string label;
    Table* table = nullptr;
    FrameworkOptions framework;
    std::function<void(const ServeEvent&)> on_event;
    std::vector<Column> columns;
    std::vector<ColumnRunResult> results;
    size_t dispatched = 0;  // columns handed to workers (== next column)
    size_t completed = 0;   // columns finished
    uint64_t arrival = 0;
    uint64_t granted_cycle = 0;  // fairness: last round-robin cycle served
    uint64_t last_grant_seq = 0;  // fairness aging: global grant counter
                                  // value when this request last got a slot
    bool done = false;
    bool waiting = false;  // a Wait() is blocked on it; GC must not reap
    bool reaped = false;   // result GC'd; Wait returns kReaped immediately
    std::exception_ptr error;  // first failing column's exception
    /// Cooperative cancellation state shared with every layer below
    /// (framework -> grouping -> broker) via CancelToken views.
    CancelState cancel;
    RequestStatus status = RequestStatus::kOk;  // set at finalize
    RequestResult result;
    /// Submit entry time: start of the root trace span and of the
    /// admission-wait / request-duration histogram intervals.
    SteadyClock::time_point submit_time;
    /// Per-request trace state (null = untraced AND no recorder /
    /// profiler). The context outlives every span opened under it: jobs
    /// hold the Request* until their column completes, and completion
    /// precedes finalize.
    std::unique_ptr<TraceContext> trace;
    /// Fan-out the context emits into: the (sampled) user sink, the
    /// profiler and the flight recorder. Owned here so it lives as long
    /// as the context pointing at it.
    std::unique_ptr<TeeTraceSink> tee;
    uint64_t root_span = 0;  // span id every column span nests under
    /// Next event sequence number; advanced under the event lock.
    uint64_t next_event_seq = 0;
    /// Stall dumps are latched: one per request, however long it stalls.
    bool stall_dumped = false;
  };

  /// Requires mutex_. Submits worker loops until every slot is busy or no
  /// job is dispatchable.
  void Pump();
  /// Worker loop: picks and runs column jobs until none remain.
  void RunJobs();
  /// Requires mutex_. Fairness policy (see file comment); false when no
  /// active request has an undispatched column.
  bool PickJob(Request** request, size_t* column);
  /// Runs one column job on `grouping_threads` (no lock held); failures
  /// land in request->error.
  void ExecuteColumn(Request* request, size_t column, int grouping_threads);
  /// Commits columns, runs truth discovery and marks the request done.
  void FinalizeRequest(Request* request);
  /// Serialized event delivery; stamps the event's per-request sequence
  /// number and service-relative timestamp under the event lock.
  void Emit(Request& request, ServeEvent event);
  /// Emit for a request known only by id (retry decorator callbacks);
  /// silently drops unattributed (id 0) or already-erased requests.
  void EmitForRequestId(uint64_t id, ServeEvent event);
  /// Requires mutex_. Reaps oldest completed-unwaited results past
  /// max_retained_results.
  void ReapRetained();
  /// Snapshot + WAL reset when the WAL outgrew its compaction threshold.
  /// Called at the tail of FinalizeRequest with NO lock held: it takes
  /// the broker mutex (ExportDurableState), which the durability
  /// listener path holds while appending — compacting from inside that
  /// path would self-deadlock.
  void MaybeCompact();
  /// options_.retry with the service's kRetried / kBreakerOpen event
  /// emission chained in front of any user callbacks.
  RetryingOracle::Options WireRetryOptions();
  /// Constructor helper: registers every instrument and the snapshot
  /// collectors on metrics_.
  void RegisterMetrics();
  /// Builds the dump-context JSON (per-request progress, broker pending,
  /// retry/breaker and persist state), renders the recorder ring and
  /// hands the dump to flight_dump_sink. Takes mutex_ internally — the
  /// caller must NOT hold it. No-op when the recorder is off.
  void FireFlightDump(const char* reason);

  friend class ServeEventOracle;

  VerificationOracle* backend_;
  ServiceOptions options_;
  int budget_ = 1;   // resolved thread budget
  int workers_ = 1;  // resolved concurrent column jobs
  /// Diagnosis layer (ISSUE 10), constructed in the ctor body before any
  /// request or the persist layer can emit. Declared before persist_
  /// (further down) so the process-level context outlives the
  /// DurableState that borrows it.
  std::unique_ptr<ProfileAccumulator> profiler_;
  std::unique_ptr<FlightRecorder> recorder_;
  /// Process-level span fan-out (profiler + recorder only, never a
  /// user's --trace-out sink) and the context the persist layer opens
  /// its wal_append / fsync / snapshot_write / compaction spans under.
  /// Null when neither consumer is enabled.
  std::unique_ptr<TeeTraceSink> service_tee_;
  std::unique_ptr<TraceContext> service_trace_;
  /// Grouping threads per column job: every job gets budget / workers,
  /// and the budget % workers remainder circulates as boost tokens — a
  /// dispatching job takes one when available (mutex_-guarded
  /// boost_tokens_) and returns it on completion, so concurrently
  /// running jobs never exceed the budget and none of it idles.
  int per_job_threads_ = 1;
  /// Declared before broker_ so the broker can front it: with
  /// enable_retry the call chain is broker -> retrying -> backend.
  std::unique_ptr<RetryingOracle> retrying_;
  OracleBroker broker_;
  SearchResultCache search_cache_;
  /// Durable warm state (null without persist_dir). Declared after
  /// broker_ so it is destroyed first — Shutdown detaches it as the
  /// broker's listener before that happens.
  std::unique_ptr<DurableState> persist_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;       // request completions
  std::condition_variable admission_cv_;  // queue-space waiters
  std::condition_variable idle_cv_;       // destructor drain
  std::unordered_map<uint64_t, std::unique_ptr<Request>> requests_;
  std::vector<Request*> active_;  // admitted, not finalized; arrival order
  std::vector<uint64_t> completion_order_;
  uint64_t next_id_ = 1;
  uint64_t next_arrival_ = 0;
  uint64_t cycle_ = 1;      // fairness round-robin cycle
  uint64_t grant_seq_ = 0;  // total grants; drives fairness aging
  /// Completed-but-unwaited handles in completion order (GC candidates).
  std::deque<uint64_t> retained_;
  /// Requests past the admission check but not yet in active_ (their
  /// kAdmitted event is being emitted outside the lock); counted against
  /// max_pending_requests so concurrent Submits cannot overshoot it.
  size_t admitting_ = 0;
  int running_jobs_ = 0;
  int boost_tokens_ = 0;  // see per_job_threads_
  bool paused_ = false;
  /// Set once by Shutdown; Submit rejects with kShuttingDown while set.
  bool draining_ = false;
  /// The final shutdown snapshot happens exactly once.
  bool final_snapshot_done_ = false;
  /// High-water mark of concurrent requests (mutex_-guarded; exposed as
  /// a gauge by the registry collector).
  size_t max_concurrent_requests_ = 0;

  /// The unified registry and its registry-native instruments: the
  /// lifecycle counters below ARE the service's stats storage (stats()
  /// sums their shards), so the scrape, ServiceStats and the CLI all
  /// read one source of truth. Handles are registered in the
  /// constructor and stay valid for the service lifetime; increments
  /// are relaxed atomic adds (no lock, no feedback into scheduling).
  MetricsRegistry metrics_;
  /// Service-relative time origin: ServeEvent::ts_us and every trace
  /// span measure from here (common/clock.h steady clock).
  SteadyClock::time_point epoch_ = SteadyNow();
  Counter* requests_admitted_ = nullptr;
  Counter* requests_completed_ = nullptr;
  Counter* columns_dispatched_ = nullptr;
  Counter* requests_cancelled_ = nullptr;
  Counter* requests_deadline_exceeded_ = nullptr;
  Counter* aged_grants_ = nullptr;
  Counter* handles_reaped_ = nullptr;
  Counter* requests_rejected_ = nullptr;
  /// Grouping work counters, folded in once per completed column job
  /// from its ColumnRunResult (the engines stay registry-free).
  Counter* grouping_searches_ = nullptr;
  Counter* grouping_expansions_ = nullptr;
  Counter* grouping_cache_hits_ = nullptr;
  Counter* grouping_warm_hits_ = nullptr;
  Counter* grouping_speculative_searches_ = nullptr;
  Counter* index_blocks_skipped_ = nullptr;
  Counter* index_blocks_decoded_ = nullptr;
  Counter* index_joins_pruned_ = nullptr;
  Histogram* admission_wait_us_ = nullptr;
  Histogram* request_duration_us_ = nullptr;
  Histogram* column_duration_us_ = nullptr;
  /// WAL fsync latency (persist satellite); handed to DurableState.
  Histogram* persist_fsync_latency_us_ = nullptr;
  Counter* flight_dumps_ = nullptr;
  Counter* trace_sampled_ = nullptr;
  Counter* trace_unsampled_ = nullptr;

  std::mutex event_mutex_;     // serializes on_event callbacks
  std::mutex progress_mutex_;  // serializes framework progress callbacks

  /// Declared last: destroyed first, which joins the workers while every
  /// member they touch is still alive. Sized workers_ + 1 because a
  /// ThreadPool spawns num_threads - 1 real threads (the missing lane is
  /// the ParallelFor caller, which an asynchronous service never is).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ustl

#endif  // USTL_SERVE_SERVICE_H_

// Slow-request flight recorder (ISSUE 10): a fixed-size ring of the most
// recently closed spans and point events, always on, so that a request
// that stalls mid-column, blows its deadline, errors out or hangs a
// drain leaves post-hoc trace evidence with zero pre-arming. The ring is
// the only storage — cost per span is one mutex acquire and one slot
// copy, priced by the obs_overhead bench leg with the recorder enabled.
//
// The recorder never initiates its own dump: the service's watchdog (or
// its FinalizeRequest/Shutdown paths) decides *when* and supplies the
// per-request progress context (columns dispatched/done, broker pending,
// retry/breaker state); DumpJson renders ring + context as one JSON
// object whose schema tools/check_trace.py --flight validates.
#ifndef USTL_OBS_FLIGHT_RECORDER_H_
#define USTL_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ustl {

class FlightRecorder : public TraceSink {
 public:
  explicit FlightRecorder(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  /// Stores the span in the ring, overwriting the oldest slot once full.
  void Emit(const TraceSpan& span) override;

  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;

  /// Oldest-to-newest snapshot of the ring contents.
  std::vector<TraceSpan> Snapshot() const;

  /// Renders the dump object:
  ///   {"flight_recorder": {"reason": .., "dumped_us": ..,
  ///    "capacity": .., "recorded": .., "spans": [span objects...],
  ///    "context": <context_json or {}>}}
  /// `context_json` must be a complete JSON value (the service passes an
  /// object with per-request progress and subsystem state) — it is
  /// embedded verbatim.
  std::string DumpJson(const std::string& reason, int64_t dumped_us,
                       const std::string& context_json) const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> ring_;
  uint64_t seq_ = 0;  // total spans ever recorded; ring slot = seq % cap
};

}  // namespace ustl

#endif  // USTL_OBS_FLIGHT_RECORDER_H_

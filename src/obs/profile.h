// CPU-attributed profiling over the span stream (ISSUE 10). A
// ProfileAccumulator is a TraceSink that folds closed spans into a
// per-path inclusive/exclusive table: the path is the span-name chain
// from the request root (`request;column;search_wave`), inclusive time
// is the span's own wall/CPU interval, and exclusive ("self") time is
// inclusive minus the children's inclusive time — the classic profile
// split that makes wall-vs-CPU divergence (queueing, fsync stalls,
// oracle latency) visible per stage without reading raw traces.
//
// Folding works with the stack's emission order (children close before
// parents — RAII): spans buffer per request id until a root (parent 0)
// closes, then the subtree reachable from that root folds into the
// table in one pass and leaves the buffer. Point events (start == end)
// fold like any other span with zero duration, so their counts appear
// in the table too. The accumulator never feeds a decision — it is
// write-only observability under the repo's zero-perturbation contract.
//
// Outputs: Table()/TotalsByName() for registry gauges, WriteJson() for
// `ustl-serve --profile-out`, and WriteFolded() — collapsed-stack text
// ("path;seg;seg value" lines, self wall µs) consumable by
// flamegraph.pl or speedscope directly.
#ifndef USTL_OBS_PROFILE_H_
#define USTL_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace ustl {

class ProfileAccumulator : public TraceSink {
 public:
  /// One row of the profile table, keyed by ';'-joined span path.
  struct Entry {
    uint64_t count = 0;
    int64_t wall_us = 0;       // inclusive wall time
    int64_t self_wall_us = 0;  // wall minus children's inclusive wall
    int64_t cpu_us = 0;        // inclusive thread-CPU time
    int64_t self_cpu_us = 0;   // CPU minus children's inclusive CPU
  };

  /// `max_buffered_spans` bounds the open (not-yet-folded) buffer across
  /// all request ids; spans arriving beyond the bound are counted as
  /// dropped instead of growing memory without limit (a request that
  /// never closes its root must not leak its subtree forever).
  explicit ProfileAccumulator(size_t max_buffered_spans = 8192)
      : max_buffered_spans_(max_buffered_spans) {}

  void Emit(const TraceSpan& span) override;

  /// Snapshot of the folded table, keyed by path (deterministic order).
  std::map<std::string, Entry> Table() const;

  /// Aggregates Table() rows by leaf span name — the fixed-cardinality
  /// view the registry gauges export (paths are unbounded; names are a
  /// small closed set).
  std::map<std::string, Entry> TotalsByName() const;

  uint64_t folded_spans() const;
  uint64_t dropped_spans() const;

  /// Full profile dump: {"profile": [rows sorted by path],
  /// "folded_spans": N, "dropped_spans": N}.
  std::string WriteJson() const;

  /// Collapsed-stack text, one "path;seg;seg value" line per path with
  /// nonzero self wall µs, sorted by path.
  std::string WriteFolded() const;

 private:
  // What folding actually needs from a buffered span: the tree edges,
  // the timings, and the name. Dropping request_id (the buffer key) and
  // attrs keeps the hot Emit path allocation-free in practice — every
  // profiled span name fits the small-string buffer.
  struct BufferedSpan {
    uint64_t id;
    uint64_t parent;
    int64_t start_us;
    int64_t end_us;
    int64_t cpu_us;
    std::string name;
  };

  void FoldRootLocked(const TraceSpan& root);

  const size_t max_buffered_spans_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<BufferedSpan>> buffers_;
  size_t buffered_ = 0;
  std::map<std::string, Entry> table_;
  uint64_t folded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace ustl

#endif  // USTL_OBS_PROFILE_H_

// Per-request tracing for the serving stack (ISSUE 8). A request carries
// one TraceContext down through the service, the column pipeline, the
// grouping engines and the oracle broker; each layer opens ScopedSpans
// (admission wait → column standardize → graph build → search waves →
// oracle batches → apply/fuse) that record service-relative monotonic
// timestamps and land in a TraceSink as they close.
//
// Design constraints, in order:
//   * zero perturbation — tracing records what happened and never feeds
//     a decision; per-table output is byte-identical with tracing on or
//     off (the serve tests and check.sh byte-compare both legs);
//   * zero overhead when disabled — a null sink makes every span
//     constructor a pointer test: no clock read, no allocation, no
//     atomic. The `trace` pointer threaded through the stack is simply
//     null in the untraced (default) configuration;
//   * causal order without cross-thread coordination — span ids come
//     from one per-request atomic counter, so a child's id is always
//     greater than its parent's (the parent is open when the child is
//     created). Sinks receive spans at *end* time (RAII order), so
//     consumers must buffer before ordering; tools/check_trace.py
//     validates id ordering, interval containment and request closure.
//
// Spans cross threads: a column job opens a span on a worker thread, and
// the broker's combiner emits oracle_call spans for *other* requests
// while holding their contexts. Both the span-id counter and the sink
// must therefore be thread-safe; JsonLinesTraceSink serializes writes
// with a mutex (tracing is off on hot paths by default, so this lock is
// never contended in production-shaped runs).
#ifndef USTL_OBS_TRACE_H_
#define USTL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace ustl {

/// One closed span. `start_us`/`end_us` are microseconds since the
/// context epoch (service start for served requests), so timestamps are
/// comparable across all spans of one process and carry no wall-clock.
/// A point event is a span with start_us == end_us. `parent` is 0 for
/// the request root (span ids start at 1).
struct TraceSpan {
  std::string request_id;
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  std::string detail;  // free-form qualifier: column name, program, ...
  int64_t start_us = 0;
  int64_t end_us = 0;
  /// CPU time the owning thread consumed inside [start_us, end_us]
  /// (CLOCK_THREAD_CPUTIME_ID delta, clamped to [0, wall]). A span with
  /// cpu_us far below its wall interval sat on a queue, a lock or I/O
  /// rather than running hot — the profiling layer splits the two.
  /// Hand-built spans that cross threads (request root, admission_wait)
  /// carry 0: "unknown", never an over-claim.
  int64_t cpu_us = 0;
  std::vector<std::pair<std::string, int64_t>> attrs;
};

/// Receives closed spans. Implementations must be thread-safe: spans
/// arrive concurrently from worker threads and from the broker combiner.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceSpan& span) = 0;
};

/// Writes each span as one JSON object per line to a caller-owned
/// stream. Line order is emission order (children before parents —
/// RAII); consumers re-order on (request_id, id).
class JsonLinesTraceSink : public TraceSink {
 public:
  explicit JsonLinesTraceSink(std::ostream* out) : out_(out) {}
  void Emit(const TraceSpan& span) override;

 private:
  std::ostream* out_;
  std::mutex mutex_;
};

/// Counts spans and discards them — for overhead measurement (the
/// obs_overhead bench leg) and tests that only assert emission counts.
class CountingTraceSink : public TraceSink {
 public:
  void Emit(const TraceSpan& span) override;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t formatted_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> bytes_{0};
};

/// Fans each span out to several sinks (user trace stream, profiler,
/// flight recorder). Null entries are skipped, so callers can wire the
/// fixed consumer slots unconditionally. The sink list is immutable
/// after construction — thread-safety reduces to the targets' own.
class TeeTraceSink : public TraceSink {
 public:
  explicit TeeTraceSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void Emit(const TraceSpan& span) override {
    for (TraceSink* sink : sinks_) {
      if (sink != nullptr) sink->Emit(span);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Formats a span as its JSON-lines object (no trailing newline).
/// Shared by the sinks above so there is exactly one schema definition.
std::string FormatTraceSpanJson(const TraceSpan& span);

/// Per-request trace state, owned by the service request and passed by
/// pointer (null ⇒ tracing disabled) through FrameworkOptions,
/// GroupingOptions, IncrementalOptions and QuestionContext.
class TraceContext {
 public:
  TraceContext(TraceSink* sink, std::string request_id,
               SteadyClock::time_point epoch)
      : sink_(sink), request_id_(std::move(request_id)), epoch_(epoch) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  TraceSink* sink() const { return sink_; }
  const std::string& request_id() const { return request_id_; }
  int64_t NowMicros() const { return MicrosSince(epoch_); }
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Point event (start == end) under `parent`. No-op on a null sink.
  void Event(uint64_t parent, const char* name, const std::string& detail,
             std::vector<std::pair<std::string, int64_t>> attrs = {});

 private:
  TraceSink* sink_;
  std::string request_id_;
  SteadyClock::time_point epoch_;
  std::atomic<uint64_t> next_span_id_{0};
};

/// RAII span. Inert (no clock read, no id allocation) when constructed
/// with a null context or a context with a null sink. Movable so layers
/// can return/stash open spans; not copyable.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  /// Opens a span under `parent` (0 ⇒ request root).
  ScopedSpan(TraceContext* ctx, uint64_t parent, const char* name,
             std::string detail = std::string());
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { MoveFrom(&other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      MoveFrom(&other);
    }
    return *this;
  }
  ~ScopedSpan() { End(); }

  /// The id children should use as their parent (0 when inert, which
  /// keeps nesting well-defined in the untraced configuration).
  uint64_t id() const { return span_.id; }
  bool active() const { return ctx_ != nullptr; }

  /// Attach a numeric attribute (counts, sizes). No-op when inert —
  /// callers may pass values unconditionally.
  void AddAttr(const char* key, int64_t value) {
    if (ctx_ != nullptr) span_.attrs.emplace_back(key, value);
  }

  /// Close and emit now (idempotent; the destructor calls it too).
  void End();

 private:
  void MoveFrom(ScopedSpan* other) {
    ctx_ = other->ctx_;
    span_ = std::move(other->span_);
    cpu_start_us_ = other->cpu_start_us_;
    other->ctx_ = nullptr;
  }
  TraceContext* ctx_ = nullptr;
  TraceSpan span_;
  // Thread-CPU clock at open; End() stores the clamped delta in
  // span_.cpu_us. Valid only when open and close run on one thread,
  // which RAII guarantees for every span in the stack.
  int64_t cpu_start_us_ = 0;
};

}  // namespace ustl

#endif  // USTL_OBS_TRACE_H_

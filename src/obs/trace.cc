#include "obs/trace.h"

#include <cstdio>

namespace ustl {

namespace {

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendInt(std::string* out, long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  *out += buf;
}

}  // namespace

std::string FormatTraceSpanJson(const TraceSpan& span) {
  std::string out = "{\"request\": ";
  AppendJsonString(&out, span.request_id);
  out += ", \"id\": ";
  AppendInt(&out, static_cast<long long>(span.id));
  out += ", \"parent\": ";
  AppendInt(&out, static_cast<long long>(span.parent));
  out += ", \"name\": ";
  AppendJsonString(&out, span.name);
  if (!span.detail.empty()) {
    out += ", \"detail\": ";
    AppendJsonString(&out, span.detail);
  }
  out += ", \"start_us\": ";
  AppendInt(&out, span.start_us);
  out += ", \"end_us\": ";
  AppendInt(&out, span.end_us);
  out += ", \"cpu_us\": ";
  AppendInt(&out, span.cpu_us);
  if (!span.attrs.empty()) {
    out += ", \"attrs\": {";
    bool first = true;
    for (const auto& attr : span.attrs) {
      if (!first) out += ", ";
      first = false;
      AppendJsonString(&out, attr.first);
      out += ": ";
      AppendInt(&out, attr.second);
    }
    out += "}";
  }
  out += "}";
  return out;
}

void JsonLinesTraceSink::Emit(const TraceSpan& span) {
  const std::string line = FormatTraceSpanJson(span);
  std::lock_guard<std::mutex> lock(mutex_);
  (*out_) << line << '\n';
}

void CountingTraceSink::Emit(const TraceSpan& span) {
  // Format-and-discard: the overhead bench should price the full
  // emission path (clock reads, id allocation, JSON formatting), not
  // just the pointer tests, so the sink does everything but the write.
  const std::string line = FormatTraceSpanJson(span);
  count_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<int64_t>(line.size()),
                   std::memory_order_relaxed);
}

void TraceContext::Event(uint64_t parent, const char* name,
                         const std::string& detail,
                         std::vector<std::pair<std::string, int64_t>> attrs) {
  if (sink_ == nullptr) return;
  TraceSpan span;
  span.request_id = request_id_;
  span.id = NextSpanId();
  span.parent = parent;
  span.name = name;
  span.detail = detail;
  span.start_us = NowMicros();
  span.end_us = span.start_us;
  span.attrs = std::move(attrs);
  sink_->Emit(span);
}

ScopedSpan::ScopedSpan(TraceContext* ctx, uint64_t parent, const char* name,
                       std::string detail) {
  if (ctx == nullptr || ctx->sink() == nullptr) return;
  ctx_ = ctx;
  span_.request_id = ctx->request_id();
  span_.id = ctx->NextSpanId();
  span_.parent = parent;
  span_.name = name;
  span_.detail = std::move(detail);
  span_.start_us = ctx->NowMicros();
  cpu_start_us_ = ThreadCpuMicros();
}

void ScopedSpan::End() {
  if (ctx_ == nullptr) return;
  const int64_t cpu_delta = ThreadCpuMicros() - cpu_start_us_;
  span_.end_us = ctx_->NowMicros();
  // Clamp to [0, wall]: the CPU and wall clocks tick independently, so a
  // tight span can read cpu > wall by a rounding quantum; check_trace.py
  // enforces cpu_us <= wall as a schema invariant.
  const int64_t wall = span_.end_us - span_.start_us;
  span_.cpu_us = cpu_delta < 0 ? 0 : (cpu_delta > wall ? wall : cpu_delta);
  ctx_->sink()->Emit(span_);
  ctx_ = nullptr;
}

}  // namespace ustl

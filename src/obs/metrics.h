// Unified metrics registry for the serving stack (ISSUE 8). One registry
// holds every counter, gauge and fixed-bucket latency histogram a process
// exposes, with two properties the serving determinism contract needs:
//
//   * lock-cheap updates — counters and histograms are sharded across a
//     fixed set of cache-line-padded atomic slots (a thread picks its
//     slot once, via a thread-local index) and aggregated only on scrape,
//     so the hot paths never contend on a registry lock and never feed a
//     value back into scheduling or caching decisions (zero
//     perturbation: metrics are write-only from the serving layers);
//   * deterministic exposition — metrics render in registration order,
//     never hash order, so two scrapes of identical state are
//     byte-identical and text diffs between scrapes are stable.
//
// Two writers: WriteText (Prometheus text exposition: # HELP / # TYPE /
// samples, histogram _bucket{le=...}/_sum/_count) and WriteJson (one
// snapshot object, registration-ordered keys). Gauges additionally
// support collectors — callbacks run at snapshot time that copy
// externally-owned counters (the broker's OracleBrokerStats, the search
// cache's stats...) into registered gauges, which is how the scattered
// per-subsystem stats structs surface through one scrape without giving
// every subsystem a registry dependency.
#ifndef USTL_OBS_METRICS_H_
#define USTL_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ustl {

/// Number of independent update slots per sharded metric. A thread hashes
/// to one slot for its whole lifetime; 16 slots keep concurrent column
/// jobs (the service runs at most the thread budget of them) off each
/// other's cache lines without bloating every counter.
constexpr size_t kMetricShards = 16;

/// The slot index of the calling thread (stable for the thread lifetime).
size_t MetricShardIndex();

/// Monotonic counter. Increment is a relaxed atomic add on the calling
/// thread's shard; Value() sums the shards (scrape-time only).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[MetricShardIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins signed value (queue depths, cache sizes, breaker
/// state). Set/Add are single atomic ops — gauges are written rarely
/// (scrape-time collectors, admission events), so they do not shard.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (typically latency in microseconds). Bucket
/// upper bounds are inclusive and fixed at registration; an implicit
/// +Inf bucket catches the tail. Observe is a bucket scan (the bound
/// lists are short) plus three relaxed adds on the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> upper_bounds);

  void Observe(int64_t value);

  /// Scrape-time aggregation: per-bucket (non-cumulative) counts in bound
  /// order with the +Inf bucket last, plus sum and count of observations.
  struct Snapshot {
    std::vector<uint64_t> bucket_counts;
    int64_t sum = 0;
    uint64_t count = 0;
  };
  Snapshot Aggregate() const;

  const std::vector<int64_t>& upper_bounds() const { return upper_bounds_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<int64_t> sum{0};
    std::atomic<uint64_t> count{0};
  };
  std::vector<int64_t> upper_bounds_;  // ascending; +Inf implicit
  Shard shards_[kMetricShards];
};

/// Default latency bucket bounds in microseconds: 100us .. 100s in decade
/// steps — wide enough for admission waits and whole-request durations on
/// any hardware, few enough that exposition stays readable.
const std::vector<int64_t>& DefaultLatencyBucketsUs();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration: returns the existing instrument when the name was
  /// registered before (same kind required — a kind clash aborts), so
  /// independent subsystems may idempotently claim their metrics. Names
  /// should follow Prometheus conventions (snake_case, unit suffix).
  /// Registration takes the registry mutex; updates through the returned
  /// handles never do. Handles stay valid for the registry's lifetime.
  Counter* RegisterCounter(const std::string& name, const std::string& help);
  Gauge* RegisterGauge(const std::string& name, const std::string& help);
  /// Gauge with constant labels (rendered as `name{k="v",...} value` in
  /// the text exposition, a "labels" object in JSON). Labels are fixed at
  /// registration — the registry has no dynamic label sets by design
  /// (deterministic exposition) — which fits info-style metrics such as
  /// ustl_build_info. Idempotency keys on the bare name.
  Gauge* RegisterGauge(const std::string& name, const std::string& help,
                       std::vector<std::pair<std::string, std::string>> labels);
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help,
                               std::vector<int64_t> upper_bounds);

  /// Snapshot-time collector: runs (serialized, in registration order)
  /// at the start of every WriteText/WriteJson, before values are read.
  /// Use it to copy externally-owned stats structs into gauges.
  void AddCollector(std::function<void()> collector);

  /// Prometheus text exposition of every metric, registration order.
  std::string WriteText() const;
  /// One JSON object {"metrics": [...]} in registration order.
  std::string WriteJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::vector<std::pair<std::string, std::string>> labels;
    std::string label_suffix;  // pre-rendered {k="v",...} or empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Requires mutex_. Existing entry of this name (kind-checked) or null.
  Entry* Find(const std::string& name, Kind kind);
  void RunCollectors() const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::function<void()>> collectors_;
};

/// Registers the process-level gauges (`ustl_process_rss_bytes`,
/// `ustl_process_cpu_seconds_total`, `ustl_process_open_fds` — read from
/// /proc/self, 0 off Linux) plus a constant `ustl_build_info` gauge whose
/// compiler/build-type labels match the bench environment JSON, and one
/// collector that refreshes the /proc readings at scrape time.
/// Idempotent per registry.
void RegisterProcessMetrics(MetricsRegistry* registry);

/// Toolchain attribution strings, formatted exactly like the bench
/// environment JSON line (bench_util.h) so scrapes and recorded
/// trajectories agree: "gcc 12.2.0" / "clang 15.0.7" / "unknown", and
/// "Release"/"Debug" from NDEBUG.
std::string BuildCompilerString();
const char* BuildTypeString();

}  // namespace ustl

#endif  // USTL_OBS_METRICS_H_

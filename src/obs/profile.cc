#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace ustl {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendInt(std::string* out, long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  *out += buf;
}

}  // namespace

void ProfileAccumulator::Emit(const TraceSpan& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (span.parent == 0) {
    FoldRootLocked(span);
    return;
  }
  if (buffered_ >= max_buffered_spans_) {
    ++dropped_;
    return;
  }
  buffers_[span.request_id].push_back(BufferedSpan{
      span.id, span.parent, span.start_us, span.end_us, span.cpu_us,
      span.name});
  ++buffered_;
}

void ProfileAccumulator::FoldRootLocked(const TraceSpan& root) {
  // The buffered group holds every already-closed descendant of this
  // root (children close before parents), possibly mixed with spans of
  // *other* roots under the same request id (the process-level context
  // reuses one id for many persist roots). A DFS from the root folds
  // exactly its reachable subtree and removes it from the buffer.
  std::vector<BufferedSpan>* group = nullptr;
  auto group_it = buffers_.find(root.request_id);
  if (group_it != buffers_.end()) group = &group_it->second;

  std::unordered_map<uint64_t, std::vector<size_t>> children;
  if (group != nullptr) {
    for (size_t i = 0; i < group->size(); ++i) {
      children[(*group)[i].parent].push_back(i);
    }
  }

  std::vector<bool> folded_index(group != nullptr ? group->size() : 0, false);

  // Recursive fold returning the span's inclusive (wall, cpu) so the
  // parent can compute its exclusive share. Depth is the span-nesting
  // depth (a handful of stages), never the buffer size.
  struct Totals {
    int64_t wall;
    int64_t cpu;
  };
  std::function<Totals(const BufferedSpan&, const std::string&)> fold =
      [&](const BufferedSpan& span, const std::string& prefix) -> Totals {
    const std::string path =
        prefix.empty() ? span.name : prefix + ";" + span.name;
    const int64_t wall = span.end_us - span.start_us;
    const int64_t cpu = span.cpu_us;
    int64_t child_wall = 0;
    int64_t child_cpu = 0;
    auto kids = children.find(span.id);
    if (kids != children.end() && group != nullptr) {
      for (size_t index : kids->second) {
        folded_index[index] = true;
        const Totals child = fold((*group)[index], path);
        child_wall += child.wall;
        child_cpu += child.cpu;
      }
    }
    Entry& entry = table_[path];
    entry.count += 1;
    entry.wall_us += wall;
    entry.cpu_us += cpu;
    // Self time clamps at zero: concurrent children (several column
    // spans under one request root) can sum past the parent's wall, and
    // children that ran on other threads carry CPU the parent's thread
    // never spent.
    entry.self_wall_us += std::max<int64_t>(0, wall - child_wall);
    entry.self_cpu_us += std::max<int64_t>(0, cpu - child_cpu);
    ++folded_;
    return {wall, cpu};
  };
  fold(BufferedSpan{root.id, root.parent, root.start_us, root.end_us,
                    root.cpu_us, root.name},
       std::string());

  if (group != nullptr) {
    size_t kept = 0;
    for (size_t i = 0; i < group->size(); ++i) {
      if (!folded_index[i]) {
        (*group)[kept++] = std::move((*group)[i]);
      } else {
        --buffered_;
      }
    }
    group->resize(kept);
    if (group->empty()) buffers_.erase(group_it);
  }
}

std::map<std::string, ProfileAccumulator::Entry> ProfileAccumulator::Table()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_;
}

std::map<std::string, ProfileAccumulator::Entry>
ProfileAccumulator::TotalsByName() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Entry> totals;
  for (const auto& row : table_) {
    const std::string& path = row.first;
    const size_t sep = path.rfind(';');
    const std::string name =
        sep == std::string::npos ? path : path.substr(sep + 1);
    Entry& entry = totals[name];
    entry.count += row.second.count;
    entry.wall_us += row.second.wall_us;
    entry.self_wall_us += row.second.self_wall_us;
    entry.cpu_us += row.second.cpu_us;
    entry.self_cpu_us += row.second.self_cpu_us;
  }
  return totals;
}

uint64_t ProfileAccumulator::folded_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return folded_;
}

uint64_t ProfileAccumulator::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string ProfileAccumulator::WriteJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"profile\": [";
  bool first = true;
  for (const auto& row : table_) {
    if (!first) out += ", ";
    first = false;
    const std::string& path = row.first;
    const size_t sep = path.rfind(';');
    out += "{\"path\": ";
    AppendJsonEscaped(&out, path);
    out += ", \"name\": ";
    AppendJsonEscaped(
        &out, sep == std::string::npos ? path : path.substr(sep + 1));
    out += ", \"count\": ";
    AppendInt(&out, static_cast<long long>(row.second.count));
    out += ", \"wall_us\": ";
    AppendInt(&out, row.second.wall_us);
    out += ", \"self_wall_us\": ";
    AppendInt(&out, row.second.self_wall_us);
    out += ", \"cpu_us\": ";
    AppendInt(&out, row.second.cpu_us);
    out += ", \"self_cpu_us\": ";
    AppendInt(&out, row.second.self_cpu_us);
    out += "}";
  }
  out += "], \"folded_spans\": ";
  AppendInt(&out, static_cast<long long>(folded_));
  out += ", \"dropped_spans\": ";
  AppendInt(&out, static_cast<long long>(dropped_));
  out += "}";
  return out;
}

std::string ProfileAccumulator::WriteFolded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& row : table_) {
    if (row.second.self_wall_us <= 0) continue;
    out += row.first;
    out.push_back(' ');
    AppendInt(&out, row.second.self_wall_us);
    out.push_back('\n');
  }
  return out;
}

}  // namespace ustl

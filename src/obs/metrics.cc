#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>

namespace ustl {

namespace {

// Round-robin shard assignment: each new thread takes the next slot.
// Hashing std::this_thread::get_id would work too, but round-robin
// guarantees the first kMetricShards threads never collide, and the
// service's worker pool is created once and lives for the process.
std::atomic<size_t> g_next_shard{0};

size_t AssignShard() {
  return g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

size_t MetricShardIndex() {
  thread_local size_t shard = AssignShard();
  return shard;
}

Histogram::Histogram(std::vector<int64_t> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  const size_t buckets = upper_bounds_.size() + 1;  // + the +Inf bucket
  for (Shard& shard : shards_) {
    shard.buckets.reset(new std::atomic<uint64_t>[buckets]);
    for (size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(int64_t value) {
  size_t bucket = upper_bounds_.size();  // +Inf unless a bound catches it
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = shards_[MetricShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Aggregate() const {
  Snapshot snap;
  snap.bucket_counts.assign(upper_bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      snap.bucket_counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.count += shard.count.load(std::memory_order_relaxed);
  }
  return snap;
}

const std::vector<int64_t>& DefaultLatencyBucketsUs() {
  static const std::vector<int64_t> kBuckets = {
      100,      1000,      10000,      100000,
      1000000,  10000000,  100000000};  // 100us .. 100s, decade steps
  return kBuckets;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              Kind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  Entry* entry = entries_[it->second].get();
  if (entry->kind != kind) {
    std::fprintf(stderr,
                 "MetricsRegistry: metric '%s' re-registered as a different "
                 "kind\n",
                 name.c_str());
    std::abort();
  }
  return entry;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = Find(name, Kind::kCounter)) return existing->counter.get();
  auto entry = std::unique_ptr<Entry>(new Entry());
  entry->kind = Kind::kCounter;
  entry->name = name;
  entry->help = help;
  entry->counter.reset(new Counter());
  Counter* handle = entry->counter.get();
  index_[name] = entries_.size();
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = Find(name, Kind::kGauge)) return existing->gauge.get();
  auto entry = std::unique_ptr<Entry>(new Entry());
  entry->kind = Kind::kGauge;
  entry->name = name;
  entry->help = help;
  entry->gauge.reset(new Gauge());
  Gauge* handle = entry->gauge.get();
  index_[name] = entries_.size();
  entries_.push_back(std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<int64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = Find(name, Kind::kHistogram)) {
    return existing->histogram.get();
  }
  auto entry = std::unique_ptr<Entry>(new Entry());
  entry->kind = Kind::kHistogram;
  entry->name = name;
  entry->help = help;
  entry->histogram.reset(new Histogram(std::move(upper_bounds)));
  Histogram* handle = entry->histogram.get();
  index_[name] = entries_.size();
  entries_.push_back(std::move(entry));
  return handle;
}

void MetricsRegistry::AddCollector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collector));
}

void MetricsRegistry::RunCollectors() const {
  // Collectors only write gauges (atomics), so running them under the
  // registry mutex serializes concurrent scrapes without blocking any
  // metric update.
  for (const auto& collector : collectors_) collector();
}

std::string MetricsRegistry::WriteText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RunCollectors();
  std::string out;
  char buf[64];
  for (const auto& entry : entries_) {
    out += "# HELP " + entry->name + " " + entry->help + "\n";
    switch (entry->kind) {
      case Kind::kCounter: {
        out += "# TYPE " + entry->name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(entry->counter->Value()));
        out += entry->name + " " + buf + "\n";
        break;
      }
      case Kind::kGauge: {
        out += "# TYPE " + entry->name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(entry->gauge->Value()));
        out += entry->name + " " + buf + "\n";
        break;
      }
      case Kind::kHistogram: {
        out += "# TYPE " + entry->name + " histogram\n";
        const Histogram& h = *entry->histogram;
        const Histogram::Snapshot snap = h.Aggregate();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += snap.bucket_counts[i];
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(h.upper_bounds()[i]));
          out += entry->name + "_bucket{le=\"" + buf + "\"} ";
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(cumulative));
          out += buf;
          out += "\n";
        }
        cumulative += snap.bucket_counts.back();
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(cumulative));
        out += entry->name + "_bucket{le=\"+Inf\"} " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(snap.sum));
        out += entry->name + "_sum " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(snap.count));
        out += entry->name + "_count " + buf + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::WriteJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RunCollectors();
  std::string out = "{\"metrics\": [";
  char buf[64];
  bool first = true;
  for (const auto& entry : entries_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(&out, entry->name);
    switch (entry->kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(entry->counter->Value()));
        out += ", \"type\": \"counter\", \"value\": ";
        out += buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(entry->gauge->Value()));
        out += ", \"type\": \"gauge\", \"value\": ";
        out += buf;
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        const Histogram::Snapshot snap = h.Aggregate();
        out += ", \"type\": \"histogram\", \"buckets\": [";
        for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
          if (i) out += ", ";
          out += "{\"le\": ";
          if (i < h.upper_bounds().size()) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(h.upper_bounds()[i]));
            out += buf;
          } else {
            out += "\"+Inf\"";
          }
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(snap.bucket_counts[i]));
          out += ", \"count\": ";
          out += buf;
          out += "}";
        }
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(snap.sum));
        out += "], \"sum\": ";
        out += buf;
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(snap.count));
        out += ", \"count\": ";
        out += buf;
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ustl

#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace ustl {

namespace {

// Round-robin shard assignment: each new thread takes the next slot.
// Hashing std::this_thread::get_id would work too, but round-robin
// guarantees the first kMetricShards threads never collide, and the
// service's worker pool is created once and lives for the process.
std::atomic<size_t> g_next_shard{0};

size_t AssignShard() {
  return g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

size_t MetricShardIndex() {
  thread_local size_t shard = AssignShard();
  return shard;
}

Histogram::Histogram(std::vector<int64_t> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  const size_t buckets = upper_bounds_.size() + 1;  // + the +Inf bucket
  for (Shard& shard : shards_) {
    shard.buckets.reset(new std::atomic<uint64_t>[buckets]);
    for (size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(int64_t value) {
  size_t bucket = upper_bounds_.size();  // +Inf unless a bound catches it
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = shards_[MetricShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Aggregate() const {
  Snapshot snap;
  snap.bucket_counts.assign(upper_bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      snap.bucket_counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.count += shard.count.load(std::memory_order_relaxed);
  }
  return snap;
}

const std::vector<int64_t>& DefaultLatencyBucketsUs() {
  static const std::vector<int64_t> kBuckets = {
      100,      1000,      10000,      100000,
      1000000,  10000000,  100000000};  // 100us .. 100s, decade steps
  return kBuckets;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              Kind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  Entry* entry = entries_[it->second].get();
  if (entry->kind != kind) {
    std::fprintf(stderr,
                 "MetricsRegistry: metric '%s' re-registered as a different "
                 "kind\n",
                 name.c_str());
    std::abort();
  }
  return entry;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = Find(name, Kind::kCounter)) return existing->counter.get();
  auto entry = std::unique_ptr<Entry>(new Entry());
  entry->kind = Kind::kCounter;
  entry->name = name;
  entry->help = help;
  entry->counter.reset(new Counter());
  Counter* handle = entry->counter.get();
  index_[name] = entries_.size();
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  return RegisterGauge(name, help, {});
}

Gauge* MetricsRegistry::RegisterGauge(
    const std::string& name, const std::string& help,
    std::vector<std::pair<std::string, std::string>> labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = Find(name, Kind::kGauge)) return existing->gauge.get();
  auto entry = std::unique_ptr<Entry>(new Entry());
  entry->kind = Kind::kGauge;
  entry->name = name;
  entry->help = help;
  if (!labels.empty()) {
    entry->label_suffix = "{";
    bool first = true;
    for (const auto& label : labels) {
      if (!first) entry->label_suffix += ",";
      first = false;
      entry->label_suffix += label.first + "=\"";
      // Prometheus label-value escaping: backslash, quote, newline.
      for (char c : label.second) {
        if (c == '\\' || c == '"') entry->label_suffix.push_back('\\');
        if (c == '\n') {
          entry->label_suffix += "\\n";
        } else {
          entry->label_suffix.push_back(c);
        }
      }
      entry->label_suffix += "\"";
    }
    entry->label_suffix += "}";
  }
  entry->labels = std::move(labels);
  entry->gauge.reset(new Gauge());
  Gauge* handle = entry->gauge.get();
  index_[name] = entries_.size();
  entries_.push_back(std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<int64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = Find(name, Kind::kHistogram)) {
    return existing->histogram.get();
  }
  auto entry = std::unique_ptr<Entry>(new Entry());
  entry->kind = Kind::kHistogram;
  entry->name = name;
  entry->help = help;
  entry->histogram.reset(new Histogram(std::move(upper_bounds)));
  Histogram* handle = entry->histogram.get();
  index_[name] = entries_.size();
  entries_.push_back(std::move(entry));
  return handle;
}

void MetricsRegistry::AddCollector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collector));
}

void MetricsRegistry::RunCollectors() const {
  // Collectors only write gauges (atomics), so running them under the
  // registry mutex serializes concurrent scrapes without blocking any
  // metric update.
  for (const auto& collector : collectors_) collector();
}

std::string MetricsRegistry::WriteText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RunCollectors();
  std::string out;
  char buf[64];
  for (const auto& entry : entries_) {
    out += "# HELP " + entry->name + " " + entry->help + "\n";
    switch (entry->kind) {
      case Kind::kCounter: {
        out += "# TYPE " + entry->name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(entry->counter->Value()));
        out += entry->name + " " + buf + "\n";
        break;
      }
      case Kind::kGauge: {
        out += "# TYPE " + entry->name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(entry->gauge->Value()));
        out += entry->name + entry->label_suffix + " " + buf + "\n";
        break;
      }
      case Kind::kHistogram: {
        out += "# TYPE " + entry->name + " histogram\n";
        const Histogram& h = *entry->histogram;
        const Histogram::Snapshot snap = h.Aggregate();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += snap.bucket_counts[i];
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(h.upper_bounds()[i]));
          out += entry->name + "_bucket{le=\"" + buf + "\"} ";
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(cumulative));
          out += buf;
          out += "\n";
        }
        cumulative += snap.bucket_counts.back();
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(cumulative));
        out += entry->name + "_bucket{le=\"+Inf\"} " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(snap.sum));
        out += entry->name + "_sum " + buf + "\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(snap.count));
        out += entry->name + "_count " + buf + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::WriteJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RunCollectors();
  std::string out = "{\"metrics\": [";
  char buf[64];
  bool first = true;
  for (const auto& entry : entries_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": ";
    AppendJsonString(&out, entry->name);
    switch (entry->kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(entry->counter->Value()));
        out += ", \"type\": \"counter\", \"value\": ";
        out += buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(entry->gauge->Value()));
        out += ", \"type\": \"gauge\"";
        if (!entry->labels.empty()) {
          out += ", \"labels\": {";
          bool first_label = true;
          for (const auto& label : entry->labels) {
            if (!first_label) out += ", ";
            first_label = false;
            AppendJsonString(&out, label.first);
            out += ": ";
            AppendJsonString(&out, label.second);
          }
          out += "}";
        }
        out += ", \"value\": ";
        out += buf;
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        const Histogram::Snapshot snap = h.Aggregate();
        out += ", \"type\": \"histogram\", \"buckets\": [";
        for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
          if (i) out += ", ";
          out += "{\"le\": ";
          if (i < h.upper_bounds().size()) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(h.upper_bounds()[i]));
            out += buf;
          } else {
            out += "\"+Inf\"";
          }
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(snap.bucket_counts[i]));
          out += ", \"count\": ";
          out += buf;
          out += "}";
        }
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(snap.sum));
        out += "], \"sum\": ";
        out += buf;
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(snap.count));
        out += ", \"count\": ";
        out += buf;
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

// /proc/self readings, refreshed by the process collector at scrape
// time. All three return 0 off Linux (and on any read failure), so the
// gauges render as 0 rather than making registration conditional.
int64_t ReadRssBytes() {
#if defined(__linux__)
  FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return 0;
  long long total_pages = 0;
  long long rss_pages = 0;
  const int parsed = std::fscanf(file, "%lld %lld", &total_pages, &rss_pages);
  std::fclose(file);
  if (parsed != 2) return 0;
  return static_cast<int64_t>(rss_pages) * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

int64_t ReadCpuSeconds() {
#if defined(__linux__)
  FILE* file = std::fopen("/proc/self/stat", "r");
  if (file == nullptr) return 0;
  char buffer[1024];
  const size_t len = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  buffer[len] = '\0';
  // Field 2 (comm) may contain spaces; skip past its closing paren, then
  // utime/stime are fields 14/15 (1-based), i.e. 11 fields after state.
  const char* cursor = std::strrchr(buffer, ')');
  if (cursor == nullptr) return 0;
  ++cursor;
  long long utime = 0;
  long long stime = 0;
  int field = 2;  // just consumed pid + comm
  while (*cursor != '\0' && field < 15) {
    while (*cursor == ' ') ++cursor;
    ++field;
    if (field == 14) {
      utime = std::atoll(cursor);
    } else if (field == 15) {
      stime = std::atoll(cursor);
    }
    while (*cursor != '\0' && *cursor != ' ') ++cursor;
  }
  const long ticks = sysconf(_SC_CLK_TCK);
  if (ticks <= 0) return 0;
  return (utime + stime) / ticks;
#else
  return 0;
#endif
}

int64_t ReadOpenFds() {
#if defined(__linux__)
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  int64_t count = 0;
  while (struct dirent* entry = readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  closedir(dir);
  // Exclude the directory stream's own descriptor.
  return count > 0 ? count - 1 : 0;
#else
  return 0;
#endif
}

}  // namespace

std::string BuildCompilerString() {
  char compiler[64];
#if defined(__clang__)
  std::snprintf(compiler, sizeof(compiler), "clang %d.%d.%d", __clang_major__,
                __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::snprintf(compiler, sizeof(compiler), "gcc %d.%d.%d", __GNUC__,
                __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  std::snprintf(compiler, sizeof(compiler), "unknown");
#endif
  return compiler;
}

const char* BuildTypeString() {
#if defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

void RegisterProcessMetrics(MetricsRegistry* registry) {
  Gauge* rss = registry->RegisterGauge(
      "ustl_process_rss_bytes", "Resident set size from /proc/self/statm.");
  Gauge* cpu = registry->RegisterGauge(
      "ustl_process_cpu_seconds_total",
      "Whole seconds of user+system CPU from /proc/self/stat.");
  Gauge* fds = registry->RegisterGauge(
      "ustl_process_open_fds",
      "Open file descriptors counted in /proc/self/fd.");
  Gauge* build_info = registry->RegisterGauge(
      "ustl_build_info",
      "Constant 1; compiler/build_type labels match the bench "
      "environment JSON.",
      {{"compiler", BuildCompilerString()}, {"build_type", BuildTypeString()}});
  build_info->Set(1);
  registry->AddCollector([rss, cpu, fds] {
    rss->Set(ReadRssBytes());
    cpu->Set(ReadCpuSeconds());
    fds->Set(ReadOpenFds());
  });
}

}  // namespace ustl

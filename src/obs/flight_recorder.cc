#include "obs/flight_recorder.h"

#include <cstdio>

namespace ustl {

void FlightRecorder::Emit(const TraceSpan& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[seq_ % capacity_] = span;
  ++seq_;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::vector<TraceSpan> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out;
  const size_t count = seq_ < capacity_ ? seq_ : capacity_;
  out.reserve(count);
  const size_t start = seq_ < capacity_ ? 0 : seq_ % capacity_;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string FlightRecorder::DumpJson(const std::string& reason,
                                     int64_t dumped_us,
                                     const std::string& context_json) const {
  const std::vector<TraceSpan> spans = Snapshot();
  std::string out = "{\"flight_recorder\": {\"reason\": \"";
  // Reasons are internal identifiers (stall, deadline_exceeded, error,
  // drain_timeout) — escape defensively anyway.
  for (char c : reason) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\", \"dumped_us\": ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(dumped_us));
  out += buf;
  out += ", \"capacity\": ";
  std::snprintf(buf, sizeof(buf), "%zu", capacity_);
  out += buf;
  out += ", \"recorded\": ";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(recorded()));
  out += buf;
  out += ", \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i != 0) out += ", ";
    out += FormatTraceSpanJson(spans[i]);
  }
  out += "], \"context\": ";
  out += context_json.empty() ? "{}" : context_json;
  out += "}}";
  return out;
}

}  // namespace ustl

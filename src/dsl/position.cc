#include "dsl/position.h"

#include "common/status.h"

namespace ustl {

PosFn PosFn::ConstPos(int k) {
  USTL_CHECK(k != 0);
  PosFn p;
  p.kind_ = Kind::kConstPos;
  p.k_ = k;
  return p;
}

PosFn PosFn::MatchPos(Term term, int k, Dir dir) {
  USTL_CHECK(k != 0);
  PosFn p;
  p.kind_ = Kind::kMatchPos;
  p.term_ = std::move(term);
  p.k_ = k;
  p.dir_ = dir;
  return p;
}

std::optional<int> PosFn::Eval(std::string_view s) const {
  const int n = static_cast<int>(s.size());
  if (kind_ == Kind::kConstPos) {
    if (k_ > 0 && k_ <= n + 1) return k_;
    if (k_ < 0 && -k_ <= n + 1) return n + 2 + k_;
    return std::nullopt;
  }
  auto matches = FindMatches(term_, s);
  const int m = static_cast<int>(matches.size());
  int idx;  // 1-based match index
  if (k_ > 0 && k_ <= m) {
    idx = k_;
  } else if (k_ < 0 && -k_ <= m) {
    idx = m + 1 + k_;
  } else {
    return std::nullopt;
  }
  const TermMatch& match = matches[idx - 1];
  return dir_ == Dir::kBegin ? match.begin : match.end;
}

std::string PosFn::ToString() const {
  if (kind_ == Kind::kConstPos) {
    return "ConstPos(" + std::to_string(k_) + ")";
  }
  return "MatchPos(" + term_.ToString() + ", " + std::to_string(k_) + ", " +
         (dir_ == Dir::kBegin ? "B" : "E") + ")";
}

std::string PosFn::Key() const {
  std::string key;
  key.push_back(kind_ == Kind::kConstPos ? 'C' : 'M');
  key += std::to_string(k_);
  if (kind_ == Kind::kMatchPos) {
    key.push_back(dir_ == Dir::kBegin ? 'B' : 'E');
    if (term_.is_regex()) {
      key.push_back('r');
      key.push_back(CharClassMnemonic(term_.char_class()));
    } else {
      key.push_back('c');
      key += term_.literal();
    }
  }
  return key;
}

bool PosFn::operator<(const PosFn& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  if (k_ != o.k_) return k_ < o.k_;
  if (dir_ != o.dir_) return dir_ < o.dir_;
  return term_ < o.term_;
}

}  // namespace ustl

// Textual round-trip for transformation programs. Approved groups carry a
// pivot program; persisting them (transformation logs, the CLI tool,
// cross-run reuse) needs a parseable form. SerializeProgram emits the same
// surface syntax as Program::ToString but with fully escaped string
// literals, and ParseProgram reads it back:
//
//   SubStr(MatchPos(TC, 1, B), MatchPos(Tl, 1, E)) (+) ConstantStr(". ")
//
// Grammar (whitespace-insensitive between tokens):
//   program := fn ( "(+)" fn )*
//   fn      := ConstantStr "(" string ")"
//            | SubStr "(" pos "," pos ")"
//            | Prefix "(" term "," int ")"
//            | Suffix "(" term "," int ")"
//   pos     := ConstPos "(" int ")"
//            | MatchPos "(" term "," int "," ("B"|"E") ")"
//   term    := "Td" | "Tl" | "TC" | "Tb" | "T" string
//   string  := '"' (escaped chars) '"'   with \\ \" \n \t \r \xNN escapes
//
// ParseProgram(SerializeProgram(p)) reconstructs p exactly for every
// valid program; ToString output is also accepted whenever its literals
// contain no quote or backslash characters.
#ifndef USTL_DSL_PARSER_H_
#define USTL_DSL_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "dsl/program.h"

namespace ustl {

/// Quotes a string literal with invertible escaping.
std::string QuoteStringLiteral(std::string_view s);

/// Canonical, parseable text form of a program.
std::string SerializeProgram(const Program& program);

/// Parses the grammar above. Errors carry a byte offset and a reason.
Result<Program> ParseProgram(std::string_view text);

}  // namespace ustl

#endif  // USTL_DSL_PARSER_H_

// Position functions of the DSL (Appendix B). A position function applies
// to the input string s and returns a 1-based position in [1, |s|+1], or
// fails. Two kinds exist:
//
//   ConstPos(k)          absolute position; negative k counts from the end
//                        (k in [-(|s|+1), -1] maps to |s|+2+k).
//   MatchPos(tau, k, D)  the beginning (D=B) or ending (D=E) position of the
//                        k-th match of term tau in s; negative k counts
//                        matches from the end (k in [-m, -1] maps to m+1+k).
//
// Position functions are value types with a total order and a canonical
// byte key, so they can be embedded in string functions and interned.
#ifndef USTL_DSL_POSITION_H_
#define USTL_DSL_POSITION_H_

#include <optional>
#include <string>
#include <string_view>

#include "text/terms.h"

namespace ustl {

/// Direction selector for MatchPos: beginning or ending of the match.
enum class Dir : uint8_t { kBegin = 0, kEnd = 1 };

/// A position function (ConstPos or MatchPos). Immutable value type.
class PosFn {
 public:
  /// ConstPos(k); k != 0.
  static PosFn ConstPos(int k);
  /// MatchPos(term, k, dir); k != 0.
  static PosFn MatchPos(Term term, int k, Dir dir);

  bool is_const_pos() const { return kind_ == Kind::kConstPos; }
  bool is_match_pos() const { return kind_ == Kind::kMatchPos; }
  int k() const { return k_; }
  Dir dir() const { return dir_; }
  const Term& term() const { return term_; }

  /// Evaluates on `s`; nullopt when k is out of range or the term has too
  /// few matches. The result is always in [1, |s|+1] when present.
  std::optional<int> Eval(std::string_view s) const;

  /// Debug form, e.g. "ConstPos(2)" or "MatchPos(TC, 1, B)".
  std::string ToString() const;

  /// Canonical byte key for interning; injective over PosFn values.
  std::string Key() const;

  bool operator==(const PosFn& o) const {
    return kind_ == o.kind_ && k_ == o.k_ && dir_ == o.dir_ &&
           term_ == o.term_;
  }
  bool operator<(const PosFn& o) const;

 private:
  enum class Kind : uint8_t { kConstPos = 0, kMatchPos = 1 };

  PosFn() : term_(Term::Regex(CharClass::kDigit)) {}

  Kind kind_ = Kind::kConstPos;
  int k_ = 1;
  Dir dir_ = Dir::kBegin;
  Term term_;  // meaningful only for kMatchPos
};

}  // namespace ustl

#endif  // USTL_DSL_POSITION_H_

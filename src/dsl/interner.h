// Label interning. Every string function that appears as an edge label in
// any transformation graph is canonicalized to a dense LabelId, so that
// inverted-index keys, path comparison and group keys are integer
// operations. One interner lives per grouping run (typically per column or
// per structure group); LabelIds are not stable across interners.
#ifndef USTL_DSL_INTERNER_H_
#define USTL_DSL_INTERNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsl/string_function.h"

namespace ustl {

/// Dense identifier of an interned string function.
using LabelId = uint32_t;

/// Bidirectional StringFn <-> LabelId map. Not thread-safe.
class LabelInterner {
 public:
  LabelInterner() = default;
  LabelInterner(const LabelInterner&) = delete;
  LabelInterner& operator=(const LabelInterner&) = delete;

  /// Returns the id for `fn`, interning it on first sight.
  LabelId Intern(const StringFn& fn);

  /// Looks up an id without interning; returns false if absent.
  bool Lookup(const StringFn& fn, LabelId* id) const;

  /// The function for an id. `id` must have been returned by Intern.
  const StringFn& Get(LabelId id) const;

  size_t size() const { return fns_.size(); }

 private:
  std::unordered_map<std::string, LabelId> by_key_;
  std::vector<StringFn> fns_;
};

/// A transformation path / program skeleton: the sequence of interned
/// labels along a root-to-sink path in a transformation graph. Two paths
/// are the same transformation iff their label sequences are equal
/// (footnote 3 in the paper).
using LabelPath = std::vector<LabelId>;

/// Renders a label path via the interner, for reports and debugging.
std::string PathToString(const LabelPath& path, const LabelInterner& interner);

}  // namespace ustl

#endif  // USTL_DSL_INTERNER_H_

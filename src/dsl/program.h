// Transformation programs (Definition 5). A program is a sequence of
// string functions f1 (+) f2 (+) ... (+) fn; its outputs on an input s are
// the concatenations of one output choice per function. With the affix
// extension a program is multi-valued; a program is *consistent* with a
// replacement s -> t iff t is one of its outputs (Appendix D).
#ifndef USTL_DSL_PROGRAM_H_
#define USTL_DSL_PROGRAM_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dsl/interner.h"
#include "dsl/string_function.h"

namespace ustl {

/// An executable transformation program.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<StringFn> fns) : fns_(std::move(fns)) {}

  /// Reconstructs a program from an interned label path.
  static Program FromPath(const LabelPath& path, const LabelInterner& interner);

  const std::vector<StringFn>& functions() const { return fns_; }
  bool empty() const { return fns_.empty(); }
  size_t size() const { return fns_.size(); }

  void Append(StringFn fn) { fns_.push_back(std::move(fn)); }

  /// All distinct outputs of the program on `s`, in lexicographic order.
  /// Fails with ResourceExhausted when the output set would exceed
  /// `max_outputs` (affix functions multiply choices).
  Result<std::vector<std::string>> Evaluate(std::string_view s,
                                            size_t max_outputs = 4096) const;

  /// The unique output when every function is single-valued; fails with
  /// FailedPrecondition if some function produced no output or more than
  /// one output choice exists.
  Result<std::string> EvaluateDeterministic(std::string_view s) const;

  /// True iff `t` is an output of the program on `s` (the program is
  /// consistent with the replacement s -> t). Runs a DFS over per-function
  /// output choices without materializing the full output set.
  bool ConsistentWith(std::string_view s, std::string_view t) const;

  /// The per-function pieces of one successful parse of `t` (the first in
  /// choice order); nullopt when the program is not consistent with
  /// s -> t. Piece i is the output of functions()[i].
  std::optional<std::vector<std::string>> SplitTarget(std::string_view s,
                                                      std::string_view t) const;

  /// Fraction of |t| produced by ConstantStr functions along a successful
  /// parse; 1.0 for all-constant programs, 0.0 when inconsistent. Used to
  /// recognize "replace anything by mostly this literal" pivot programs.
  double ConstantCoverage(std::string_view s, std::string_view t) const;

  /// "f1 (+) f2 (+) f3" with each function rendered via ToString.
  std::string ToString() const;

 private:
  bool MatchFrom(std::string_view s, std::string_view t, size_t fn_index,
                 size_t t_offset) const;

  std::vector<StringFn> fns_;
};

}  // namespace ustl

#endif  // USTL_DSL_PROGRAM_H_

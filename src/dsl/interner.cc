#include "dsl/interner.h"

#include "common/status.h"

namespace ustl {

LabelId LabelInterner::Intern(const StringFn& fn) {
  std::string key = fn.Key();
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  LabelId id = static_cast<LabelId>(fns_.size());
  by_key_.emplace(std::move(key), id);
  fns_.push_back(fn);
  return id;
}

bool LabelInterner::Lookup(const StringFn& fn, LabelId* id) const {
  auto it = by_key_.find(fn.Key());
  if (it == by_key_.end()) return false;
  *id = it->second;
  return true;
}

const StringFn& LabelInterner::Get(LabelId id) const {
  USTL_CHECK(id < fns_.size());
  return fns_[id];
}

std::string PathToString(const LabelPath& path,
                         const LabelInterner& interner) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " (+) ";
    out += interner.Get(path[i]).ToString();
  }
  return out;
}

}  // namespace ustl

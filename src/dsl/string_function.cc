#include "dsl/string_function.h"

#include "common/status.h"
#include "common/string_util.h"

namespace ustl {
namespace {

// Resolves the k-th (or m+1+k-th for negative k) match of a term.
std::optional<TermMatch> ResolveMatch(const Term& term, int k,
                                      std::string_view s) {
  auto matches = FindMatches(term, s);
  const int m = static_cast<int>(matches.size());
  int idx;
  if (k > 0 && k <= m) {
    idx = k;
  } else if (k < 0 && -k <= m) {
    idx = m + 1 + k;
  } else {
    return std::nullopt;
  }
  return matches[idx - 1];
}

}  // namespace

StringFn StringFn::ConstantStr(std::string value) {
  // String functions produce non-empty pieces (graph edges span at least
  // one character); an empty constant would make Eval and CanProduce
  // disagree about the empty output.
  USTL_CHECK(!value.empty());
  StringFn f;
  f.kind_ = Kind::kConstantStr;
  f.constant_ = std::move(value);
  return f;
}

StringFn StringFn::SubStr(PosFn left, PosFn right) {
  StringFn f;
  f.kind_ = Kind::kSubStr;
  f.left_ = std::move(left);
  f.right_ = std::move(right);
  return f;
}

StringFn StringFn::Prefix(Term term, int k) {
  USTL_CHECK(term.is_regex());
  USTL_CHECK(k != 0);
  StringFn f;
  f.kind_ = Kind::kPrefix;
  f.term_ = std::move(term);
  f.k_ = k;
  return f;
}

StringFn StringFn::Suffix(Term term, int k) {
  USTL_CHECK(term.is_regex());
  USTL_CHECK(k != 0);
  StringFn f;
  f.kind_ = Kind::kSuffix;
  f.term_ = std::move(term);
  f.k_ = k;
  return f;
}

std::vector<std::string> StringFn::Eval(std::string_view s) const {
  switch (kind_) {
    case Kind::kConstantStr:
      return {constant_};
    case Kind::kSubStr: {
      auto l = left_.Eval(s);
      auto r = right_.Eval(s);
      if (!l || !r || *l >= *r) return {};
      return {std::string(s.substr(*l - 1, *r - *l))};
    }
    case Kind::kPrefix: {
      auto match = ResolveMatch(term_, k_, s);
      if (!match) return {};
      std::vector<std::string> out;
      std::string_view text = s.substr(match->begin - 1,
                                       match->end - match->begin);
      for (size_t len = 1; len <= text.size(); ++len) {
        out.emplace_back(text.substr(0, len));
      }
      return out;
    }
    case Kind::kSuffix: {
      auto match = ResolveMatch(term_, k_, s);
      if (!match) return {};
      std::vector<std::string> out;
      std::string_view text = s.substr(match->begin - 1,
                                       match->end - match->begin);
      for (size_t len = 1; len <= text.size(); ++len) {
        out.emplace_back(text.substr(text.size() - len));
      }
      return out;
    }
  }
  return {};
}

bool StringFn::CanProduce(std::string_view s, std::string_view out) const {
  if (out.empty()) return false;
  switch (kind_) {
    case Kind::kConstantStr:
      return constant_ == out;
    case Kind::kSubStr: {
      auto l = left_.Eval(s);
      auto r = right_.Eval(s);
      if (!l || !r || *l >= *r) return false;
      return s.substr(*l - 1, *r - *l) == out;
    }
    case Kind::kPrefix: {
      auto match = ResolveMatch(term_, k_, s);
      if (!match) return false;
      std::string_view text = s.substr(match->begin - 1,
                                       match->end - match->begin);
      return out.size() <= text.size() && StartsWith(text, out);
    }
    case Kind::kSuffix: {
      auto match = ResolveMatch(term_, k_, s);
      if (!match) return false;
      std::string_view text = s.substr(match->begin - 1,
                                       match->end - match->begin);
      return out.size() <= text.size() && EndsWith(text, out);
    }
  }
  return false;
}

std::string StringFn::ToString() const {
  switch (kind_) {
    case Kind::kConstantStr:
      return "ConstantStr(\"" + EscapeForDisplay(constant_) + "\")";
    case Kind::kSubStr:
      return "SubStr(" + left_.ToString() + ", " + right_.ToString() + ")";
    case Kind::kPrefix:
      return "Prefix(" + term_.ToString() + ", " + std::to_string(k_) + ")";
    case Kind::kSuffix:
      return "Suffix(" + term_.ToString() + ", " + std::to_string(k_) + ")";
  }
  return "?";
}

std::string StringFn::Key() const {
  std::string key;
  switch (kind_) {
    case Kind::kConstantStr:
      key.push_back('K');
      key += constant_;
      return key;
    case Kind::kSubStr:
      key.push_back('S');
      key += left_.Key();
      key.push_back('|');
      key += right_.Key();
      return key;
    case Kind::kPrefix:
      key.push_back('P');
      break;
    case Kind::kSuffix:
      key.push_back('X');
      break;
  }
  key.push_back(CharClassMnemonic(term_.char_class()));
  key += std::to_string(k_);
  return key;
}

bool StringFn::operator==(const StringFn& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kConstantStr:
      return constant_ == o.constant_;
    case Kind::kSubStr:
      return left_ == o.left_ && right_ == o.right_;
    case Kind::kPrefix:
    case Kind::kSuffix:
      return term_ == o.term_ && k_ == o.k_;
  }
  return false;
}

bool StringFn::operator<(const StringFn& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  switch (kind_) {
    case Kind::kConstantStr:
      return constant_ < o.constant_;
    case Kind::kSubStr:
      if (!(left_ == o.left_)) return left_ < o.left_;
      return right_ < o.right_;
    case Kind::kPrefix:
    case Kind::kSuffix:
      if (!(term_ == o.term_)) return term_ < o.term_;
      return k_ < o.k_;
  }
  return false;
}

}  // namespace ustl
